#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: run every CI gate, offline.
# Usage: scripts/ci.sh [--quick]
#   --quick   skip the release build (test/fmt/clippy only)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
  echo "==> $*" >&2
  "$@"
}

export CARGO_NET_OFFLINE=true

if [[ $quick -eq 0 ]]; then
  run cargo build --workspace --release --offline
fi
run cargo test -q --workspace --offline
run cargo bench --workspace --offline -- --help >/dev/null
run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings

echo "All CI gates passed."
