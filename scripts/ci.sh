#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: run every CI gate, offline.
# Usage: scripts/ci.sh [--quick]
#   --quick   skip the release build (test/fmt/clippy only)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
  echo "==> $*" >&2
  "$@"
}

export CARGO_NET_OFFLINE=true

if [[ $quick -eq 0 ]]; then
  run cargo build --workspace --release --offline
fi

# Feature matrix: the lock backend is selected at compile time, so every
# combination must build, test, and lint cleanly. The empty leg is the
# default std backend; fast-sync swaps in the spin-then-park locks.
feature_legs=("--no-default-features" "" "--features mpsim/fast-sync")
for features in "${feature_legs[@]}"; do
  # shellcheck disable=SC2086
  run cargo test -q --workspace --offline $features
  # shellcheck disable=SC2086
  run cargo clippy --workspace --all-targets --offline $features -- -D warnings
  # Envelope-coalescing smoke: the bench itself asserts byte- and
  # message-identical traffic between the per-chunk and coalesced
  # policies, so running it is a correctness gate for the vectored
  # fabric under every lock backend.
  # shellcheck disable=SC2086
  run cargo bench -q -p bcast-bench --bench ring_coalesce --offline $features -- --quick
done

run cargo bench --workspace --offline -- --help >/dev/null
run cargo fmt --all --check

# Static verification: the schedule sweep proves every collective's symbolic
# schedule deadlock-free, fully covering, and traffic-exact (and drills
# seeded mutants); repolint enforces source conventions (sync facade,
# panic-free libraries, documented unsafe).
if [[ $quick -eq 1 ]]; then
  run cargo run -q -p schedcheck --bin schedcheck --offline -- --quick
else
  run cargo run -q -p schedcheck --bin schedcheck --offline
fi
run cargo run -q -p schedcheck --bin repolint --offline

# Chaos gate: replay the seeded fault-injection batteries (P ∈ {4,8,10,16}
# × drop/dup/mixed link faults and one-rank crashes, both executors) under
# a second fixed seed, so CI exercises a different fault pattern than the
# developer-default seed baked into the tests. Any failure replays
# bit-identically with the printed TESTKIT_SEED.
chaos_seed=0xC4A05C1A05150002
run env TESTKIT_SEED=$chaos_seed cargo test -q -p bcast-core --offline --test chaos_recovery
run env TESTKIT_SEED=$chaos_seed cargo test -q -p bcast-opt --offline --test comm_conformance

if [[ $quick -eq 0 ]]; then
  run scripts/bench_compare.sh
fi

echo "All CI gates passed."
