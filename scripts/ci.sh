#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: run every CI gate, offline,
# with a per-phase wall-clock report so the growing matrix stays
# diagnosable.
# Usage: scripts/ci.sh [--quick]
#   --quick   skip the release build, the release megascale sweeps (event
#             executor and self-healing recovery), the chaos search, and
#             the bench regression gate (test/fmt/clippy only)
# Environment:
#   CI_BUDGET_SECONDS   soft wall-clock budget for the whole run; the
#                       summary prints a warning when it is exceeded
#                       (default 1200). The run still passes — the budget
#                       flags drift, it does not gate.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
  echo "==> $*" >&2
  "$@"
}

# Per-phase wall-clock accounting: every top-level gate runs under
# run_phase so the summary table at the end shows where the minutes went.
PHASE_NAMES=()
PHASE_SECS=()
run_phase() {
  local name="$1"
  shift
  echo "=== phase: $name ===" >&2
  local t0=$SECONDS
  "$@"
  PHASE_NAMES+=("$name")
  PHASE_SECS+=($((SECONDS - t0)))
}

export CARGO_NET_OFFLINE=true

# Feature matrix: the lock backend is selected at compile time, so every
# combination must build, test, and lint cleanly. The empty leg is the
# default std backend; fast-sync swaps in the spin-then-park locks.
feature_legs=("--no-default-features" "" "--features mpsim/fast-sync")

phase_build() {
  run cargo build --workspace --release --offline
}

phase_feature_matrix() {
  for features in "${feature_legs[@]}"; do
    # shellcheck disable=SC2086
    run cargo test -q --workspace --offline $features
    # shellcheck disable=SC2086
    run cargo clippy --workspace --all-targets --offline $features -- -D warnings
    # Envelope-coalescing smoke: the bench itself asserts byte- and
    # message-identical traffic between the per-chunk and coalesced
    # policies, so running it is a correctness gate for the vectored
    # fabric under every lock backend.
    # shellcheck disable=SC2086
    run cargo bench -q -p bcast-bench --bench ring_coalesce --offline $features -- --quick
  done
}

phase_harness_and_fmt() {
  run cargo bench --workspace --offline -- --help >/dev/null
  run cargo fmt --all --check
}

# Static verification: the schedule sweep proves every collective's symbolic
# schedule deadlock-free, fully covering, and traffic-exact (and drills
# seeded mutants); repolint enforces source conventions (sync facade,
# panic-free libraries, documented unsafe, virtual-clock purity of the
# event executor).
phase_schedcheck() {
  if [[ $quick -eq 1 ]]; then
    run cargo run -q -p schedcheck --bin schedcheck --offline -- --quick
  else
    run cargo run -q -p schedcheck --bin schedcheck --offline
  fi
  run cargo run -q -p schedcheck --bin repolint --offline
}

# Reactor model-checking lane: every sync/reactor protocol model explored
# exhaustively AND with the sleep-set DPOR reduction (verdicts must agree,
# per-model state counts and reduction factors printed), plus the seeded
# mutation drill — one known lost-wakeup / stale-handle / accounting bug
# per model, each of which both explorers must catch. The state budget is
# pinned well below the library default so state-space growth in a model
# (or a reduction regression re-inflating the DPOR walk) fails the phase
# instead of silently eating CI minutes.
phase_schedcheck_reactor() {
  run cargo run -q -p schedcheck --bin schedcheck --offline -- \
    explore-reactor --max-states 200000
}

# Chaos gate: replay the seeded fault-injection batteries (P ∈ {4,8,10,16}
# × drop/dup/mixed link faults and one-rank crashes, all executors) under
# a second fixed seed, so CI exercises a different fault pattern than the
# developer-default seed baked into the tests. Any failure replays
# bit-identically with the printed TESTKIT_SEED.
phase_chaos() {
  local chaos_seed=0xC4A05C1A05150002
  run env TESTKIT_SEED=$chaos_seed cargo test -q -p bcast-core --offline --test chaos_recovery
  run env TESTKIT_SEED=$chaos_seed cargo test -q -p bcast-opt --offline --test comm_conformance
}

# event-exec lane: prove the discrete-event executor in every feature leg —
# conformance battery (incl. seeded faults over the virtual clock), the
# paper's P=8/P=10 traffic table, and the P=256 megascale sweep. The
# P ∈ {1024, 4096} sweeps (~1M and ~16.8M messages per algorithm) run in
# release only, pinned to the same closed-form envelope/byte counts. The
# P=16384 sweep (~268M messages through the reactor) runs as its own phase
# below so its wall clock gets a dedicated row in the timing table.
phase_event_exec() {
  for features in "${feature_legs[@]}"; do
    # shellcheck disable=SC2086
    run cargo test -q -p bcast-opt --offline $features --test comm_conformance event_
    # shellcheck disable=SC2086
    run cargo test -q -p bcast-opt --offline $features --test traffic_table event_world
    # shellcheck disable=SC2086
    run cargo test -q -p bcast-opt --offline $features --test event_megascale
  done
  if [[ $quick -eq 0 ]]; then
    run cargo test --release -q -p bcast-opt --offline --test event_megascale -- \
      --ignored --skip megascale_p16384
  fi
}

phase_event_megascale_p16384() {
  run cargo test --release -q -p bcast-opt --offline --test event_megascale -- \
    --ignored megascale_p16384
}

# Self-healing megascale: cascading multi-epoch recovery at P ∈ {1024, 4096}
# on the event executor's virtual clock — three staggered crashes, ≥ 3
# epochs, byte-identical survivors, reconciled traffic. Release-only (debug
# builds are too slow at these sizes) and the longest phase in the table
# (~10–12 min), which is why it gets its own row.
phase_recovery_megascale() {
  run cargo test --release -q -p bcast-core --offline --test chaos_recovery -- \
    --ignored
}

# Adversarial chaos search: a budgeted coverage-guided walk over fault plans
# (crash victims/times, drop/dup/delay rates, world size, algorithm) against
# the production recovery invariants, then the seeded drill — each
# RecoveryDrill knob reintroduces a known recovery regression and the search
# must find it, shrink it, and replay the identical minimal spec from the
# same seed (3/3 caught).
phase_chaos_search() {
  run cargo run --release -q -p schedcheck --bin chaos-search --offline -- --budget 200
  run cargo run --release -q -p schedcheck --bin chaos-search --offline -- --drill --budget 200
}

phase_bench_gate() {
  # The recovery_hotpath P=1024 legs take seconds per sample, so the quick
  # gate does not re-measure them; their baseline rows stay waived by name
  # until a first CI-recorded baseline lands (see bench_compare.sh header).
  # Likewise the zero_copy P=4096 legs (~4 GiB of payload per measured
  # world): recorded out-of-band in results/zero_copy.json, waived here.
  run scripts/bench_compare.sh \
    --allow-missing recovery_hotpath/p1024/c0 \
    --allow-missing recovery_hotpath/p1024/c1 \
    --allow-missing recovery_hotpath/p1024/c4 \
    --allow-missing zero_copy/binomial/4096x64K \
    --allow-missing zero_copy/binomial/4096x1M \
    --allow-missing zero_copy/binomial_copy/4096x64K \
    --allow-missing zero_copy/binomial_copy/4096x1M
}

if [[ $quick -eq 0 ]]; then
  run_phase "build (release)" phase_build
fi
run_phase "feature matrix (test + clippy + coalesce smoke)" phase_feature_matrix
run_phase "bench harness + fmt" phase_harness_and_fmt
run_phase "schedcheck + repolint" phase_schedcheck
run_phase "schedcheck-reactor (DPOR + mutation drill)" phase_schedcheck_reactor
run_phase "chaos gate (seeded faults)" phase_chaos
run_phase "event-exec lane" phase_event_exec
if [[ $quick -eq 0 ]]; then
  # The bench gate runs BEFORE the megascale phases: those worlds allocate
  # and free tens of GiB, and for minutes afterwards the kernel's memory
  # reclaim steals enough CPU to swing ~100 ms benches by 2-4x — measured
  # repeatedly as spurious gate failures when this phase ran last.
  run_phase "bench regression gate" phase_bench_gate
  run_phase "event-exec megascale P=16384" phase_event_megascale_p16384
  run_phase "self-healing megascale P in {1024,4096}" phase_recovery_megascale
  run_phase "chaos search (budget 200 + seeded drill)" phase_chaos_search
fi

budget=${CI_BUDGET_SECONDS:-1200}
total=0
echo
echo "CI phase timing:"
for i in "${!PHASE_NAMES[@]}"; do
  printf '  %-48s %5ss\n' "${PHASE_NAMES[$i]}" "${PHASE_SECS[$i]}"
  total=$((total + PHASE_SECS[i]))
done
printf '  %-48s %5ss\n' "total" "$total"
if [[ $total -gt $budget ]]; then
  echo "warning: CI wall clock ${total}s exceeds soft budget ${budget}s" \
    "(CI_BUDGET_SECONDS) — consider trimming the slowest phase above" >&2
fi

echo "All CI gates passed."
