#!/usr/bin/env bash
# Benchmark trajectory gate: run the pure-CPU kernels of the traffic_counts
# bench (step_flag and timeline groups — no thread spawning, so their
# medians are stable even under --quick) and fail if any median regressed
# by more than the threshold against the checked-in baseline.
#
# Usage: scripts/bench_compare.sh [--update-baseline]
#   --update-baseline   re-measure and overwrite results/bench_baseline.json
#
# Environment:
#   BENCH_COMPARE_THRESHOLD   allowed median regression in percent (default 30)
#   BENCH_COMPARE_OUT         where to write the fresh measurements
#                             (default target/bench_current.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=results/bench_baseline.json
CURRENT=${BENCH_COMPARE_OUT:-target/bench_current.json}
THRESHOLD=${BENCH_COMPARE_THRESHOLD:-30}

update=0
[[ "${1:-}" == "--update-baseline" ]] && update=1

export CARGO_NET_OFFLINE=true
mkdir -p "$(dirname "$CURRENT")"
# The bench binary runs with the package root as cwd; hand it an absolute path.
cargo bench -p bcast-bench --bench traffic_counts --offline -- \
  --quick --json "$PWD/$CURRENT" step_flag timeline >/dev/null

if [[ $update -eq 1 ]]; then
  cp "$CURRENT" "$BASELINE"
  echo "baseline updated: $BASELINE"
  exit 0
fi

if [[ ! -f $BASELINE ]]; then
  echo "error: no baseline at $BASELINE — run scripts/bench_compare.sh --update-baseline" >&2
  exit 1
fi

python3 - "$BASELINE" "$CURRENT" "$THRESHOLD" <<'PY'
import json, sys

base_path, cur_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
GATED_GROUPS = {"step_flag", "timeline"}

def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {f"{r['group']}/{r['id']}": r["median_ns"] for r in doc["benchmarks"]}

base, cur = load(base_path), load(cur_path)
failed = False
for name in sorted(base):
    if name.split("/", 1)[0] not in GATED_GROUPS:
        continue
    if name not in cur:
        print(f"MISSING   {name} (in baseline, absent from this run)")
        failed = True
        continue
    b, c = base[name], cur[name]
    delta = 100.0 * (c - b) / b if b > 0 else 0.0
    status = "OK"
    if delta > threshold:
        status, failed = "REGRESSED", True
    print(f"{status:9s} {name}: {b:.0f} ns -> {c:.0f} ns ({delta:+.1f}%)")
if failed:
    print(f"bench gate FAILED (threshold {threshold:.0f}% on median)", file=sys.stderr)
sys.exit(1 if failed else 0)
PY
echo "bench gate passed (threshold ${THRESHOLD}% on median)"
