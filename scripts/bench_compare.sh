#!/usr/bin/env bash
# Benchmark trajectory gate: run the single-threaded kernels of the
# traffic_counts bench (step_flag, timeline, and the event executor's
# broadcast hot path — no thread spawning, so full-sample medians are
# stable) plus the recovery_hotpath bench's P=8 legs
# (time-to-recover vs casualty count on the event executor), and fail if
# any median regressed by more than the threshold against the checked-in
# baseline.
#
# Usage: scripts/bench_compare.sh [--update-baseline] [--allow-missing NAME]...
#   --update-baseline     re-measure and overwrite results/bench_baseline.json
#   --allow-missing NAME  the named benchmark ("group/id") may be present in
#                         the baseline but absent from this run without
#                         failing the gate (repeatable; use while renaming or
#                         retiring that bench, then refresh the baseline).
#                         Unlike a blanket flag, every waived bench is named,
#                         so an unrelated bench silently falling out of the
#                         run still fails.
#
# Gated benches that are absent from the *baseline* never fail the gate:
# they are reported as SKIPPED (no baseline entry) so a freshly added bench
# is visible but ungated until the baseline is refreshed.
#
# A failing comparison is retried exactly once: the benches are re-measured
# and each statistic is replaced by its best (minimum) across the two
# passes before the final verdict — background load only ever slows a run
# down, so this forgives transient machine bursts without loosening the
# threshold for real regressions.
#
# On top of the relative gate, SPEEDUP_FLOORS (in the python below) pins
# named benches to an absolute ceiling frozen in this script — a banked
# optimization win that stays enforced even across --update-baseline.
# RELATIVE_FLOORS does the same for speedups banked against a baseline
# *algorithm* kept in-tree, gating leg-vs-leg within one run so machine
# drift cancels.
#
# Environment:
#   BENCH_COMPARE_THRESHOLD   allowed median regression in percent (default 30)
#   BENCH_COMPARE_OUT         where to write the fresh measurements
#                             (default target/bench_current.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=results/bench_baseline.json
CURRENT=${BENCH_COMPARE_OUT:-target/bench_current.json}
THRESHOLD=${BENCH_COMPARE_THRESHOLD:-30}

usage() {
  sed -n '2,40p' "$0" | sed 's/^# \{0,1\}//'
}

update=0
allow_missing=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --update-baseline) update=1 ;;
    --allow-missing)
      if [[ $# -lt 2 ]]; then
        echo "error: --allow-missing needs a benchmark name (group/id)" >&2
        exit 2
      fi
      allow_missing+=("$2")
      shift
      ;;
    -h|--help) usage; exit 0 ;;
    *)
      echo "error: unknown argument '$1'" >&2
      usage >&2
      exit 2
      ;;
  esac
  shift
done

export CARGO_NET_OFFLINE=true
mkdir -p "$(dirname "$CURRENT")"
# The bench binaries run with the package root as cwd; hand them absolute
# paths. recovery_hotpath's P=8 legs are microsecond-scale event worlds, so
# they join the quick gate; the P=1024 legs take seconds per sample and are
# recorded out-of-band (results/recovery_hotpath.json), so the gate waives
# them by name via --allow-missing from ci.sh.
RECOVERY_CURRENT=${CURRENT%.json}_recovery.json
# The zero_copy P=4096 legs move ~4 GiB of payload per world, so like the
# recovery P=1024 legs they are recorded out-of-band (results/zero_copy.json)
# and waived by name from ci.sh; the quick gate runs the P=8/P=1024 legs,
# whose 1 MiB pair carries the banked RELATIVE_FLOORS entry below.
ZERO_COPY_CURRENT=${CURRENT%.json}_zero_copy.json
# One full measurement pass into $CURRENT. Full sample counts (no --quick)
# everywhere: with only 3 samples a single disturbed iteration poisons both
# the median and the p10 (observed +60..90% one-off swings on the ~100 ms
# legs). Default warmup absorbs allocator/page-cache cold starts; 20
# samples put the median and fastest-decile out of reach of a one-sample
# transient. The p8 recovery legs are microsecond-scale, so the extra
# samples cost milliseconds.
measure() {
  cargo bench -p bcast-bench --bench traffic_counts --offline -- \
    --json "$PWD/$CURRENT" step_flag timeline event_world_hotpath >/dev/null
  cargo bench -p bcast-bench --bench recovery_hotpath --offline -- \
    --json "$PWD/$RECOVERY_CURRENT" recovery_hotpath/p8 >/dev/null
  # The P=1024 zero_copy worlds allocate ~1 GiB of rank buffers per
  # iteration, so fewer samples: two warmups absorb the cold start, five
  # samples keep the p10 honest.
  cargo bench -p bcast-bench --bench zero_copy --offline -- \
    --warmup 2 --samples 5 --json "$PWD/$ZERO_COPY_CURRENT" \
    zero_copy/binomial/8x zero_copy/binomial_copy/8x \
    zero_copy/binomial/1024x zero_copy/binomial_copy/1024x >/dev/null
  python3 - "$CURRENT" "$RECOVERY_CURRENT" "$ZERO_COPY_CURRENT" <<'PY'
import json, sys
main = sys.argv[1]
doc = json.load(open(main))
for extra in sys.argv[2:]:
    doc["benchmarks"].extend(json.load(open(extra))["benchmarks"])
json.dump(doc, open(main, "w"))
PY
  if [[ ! -s $CURRENT ]]; then
    echo "error: bench run produced no measurements at $CURRENT" >&2
    exit 1
  fi
}

measure

if [[ $update -eq 1 ]]; then
  mkdir -p "$(dirname "$BASELINE")"
  cp "$CURRENT" "$BASELINE"
  echo "baseline updated: $BASELINE"
  exit 0
fi

if [[ ! -f $BASELINE ]]; then
  echo "error: no baseline at $BASELINE" >&2
  echo "hint: create one with: scripts/bench_compare.sh --update-baseline" >&2
  exit 1
fi

ALLOW_MISSING_LIST=$(IFS=$'\n'; echo "${allow_missing[*]:-}")
export ALLOW_MISSING_LIST
compare() {
  python3 - "$BASELINE" "$CURRENT" "$THRESHOLD" <<'PY'
import json, os, sys

base_path, cur_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
allow_missing = {n for n in os.environ.get("ALLOW_MISSING_LIST", "").splitlines() if n}
GATED_GROUPS = {"step_flag", "timeline", "event_world_hotpath", "recovery_hotpath",
                "zero_copy"}

def load(path, role):
    try:
        with open(path) as f:
            doc = json.load(f)
        rows = doc["benchmarks"]
        return {f"{r['group']}/{r['id']}": r for r in rows}
    except (OSError, ValueError, KeyError, TypeError) as e:
        print(f"error: {role} file {path} is not a bench report: {e}", file=sys.stderr)
        print("hint: regenerate it with scripts/bench_compare.sh --update-baseline",
              file=sys.stderr)
        sys.exit(2)

base, cur = load(base_path, "baseline"), load(cur_path, "current")
gated = {n for n in base if n.split("/", 1)[0] in GATED_GROUPS}
if not gated:
    print(f"error: baseline {base_path} has no benchmarks in gated groups "
          f"({', '.join(sorted(GATED_GROUPS))}) — wrong or stale baseline?",
          file=sys.stderr)
    sys.exit(2)
failed = False
for name in sorted(gated):
    if name not in cur:
        if name in allow_missing:
            print(f"SKIPPED   {name} (in baseline, absent from this run; "
                  "waived by --allow-missing)")
        else:
            print(f"MISSING   {name} (in baseline, absent from this run)")
            print(f"hint: pass --allow-missing '{name}' if it was renamed or "
                  "retired, then refresh the baseline", file=sys.stderr)
            failed = True
        continue
    b, c = base[name]["median_ns"], cur[name]["median_ns"]
    delta = 100.0 * (c - b) / b if b > 0 else 0.0
    status = "OK"
    if delta > threshold:
        status, failed = "REGRESSED", True
    print(f"{status:9s} {name}: {b:.0f} ns -> {c:.0f} ns ({delta:+.1f}%)")
# New benches in a gated group without a baseline entry are skipped by
# name, never gated: adding a bench must not fail CI before the baseline
# is refreshed, but the skip is printed so it cannot go unnoticed.
for name in sorted(cur):
    if name.split("/", 1)[0] in GATED_GROUPS and name not in base:
        print(f"SKIPPED   {name} (no baseline entry — ungated; "
              "refresh with --update-baseline)")
# Named absolute floors: optimization wins a PR explicitly banked. Unlike
# the relative gate, the reference is hard-coded here, not read from the
# baseline file, so re-recording the baseline cannot silently launder a
# regression past it. The current run's p10_ns stands in for the machine's
# honest speed: quick-mode samples are few and background load only ever
# slows a run down, so the fastest decile is the noise-robust side to gate
# on, while the reference stays the (noisier, conservative) median of the
# recording it was banked against.
SPEEDUP_FLOORS = {
    # Reactor hot-path overhaul (lane mailboxes / timer wheel / slab tasks /
    # envelope-handle cache): >=2x msgs/sec over the PR 6 reactor, whose
    # recorded median for this bench was 267,645,348 ns.
    "event_world_hotpath/tuned_bcast/1024": (267_645_348, 2.0),
}
for name, (ref_ns, factor) in sorted(SPEEDUP_FLOORS.items()):
    ceiling = ref_ns / factor
    if name not in cur:
        print(f"MISSING   {name} (speedup floor: {factor:g}x over {ref_ns} ns)")
        failed = True
        continue
    fast = cur[name].get("p10_ns") or cur[name]["median_ns"]
    status = "OK"
    if fast > ceiling:
        status, failed = "TOO SLOW", True
    print(f"{status:9s} {name}: p10 {fast:.0f} ns vs ceiling {ceiling:.0f} ns "
          f"(banked {factor:g}x over {ref_ns} ns)")
# Same-run relative floors: the reference bench runs seconds apart in the
# same process, so machine drift cancels — the right shape for a banked
# speedup over a *baseline algorithm* kept in-tree, where background load
# slows both legs together and an absolute ceiling would flake. The
# reference leg cannot quietly decay to loosen the floor: it is itself
# median-gated against the baseline file above.
RELATIVE_FLOORS = {
    # Zero-copy broadcast (shared refcounted envelopes, owned receives):
    # >=1.5x over the per-hop copy baseline kept as bcast_binomial_copy,
    # leg vs leg in this very run. Recorded medians at banking time:
    # 79,244,934 ns zero-copy vs 156,521,108 ns copy, ~2x
    # (results/zero_copy.json).
    "zero_copy/binomial/1024x1M": ("zero_copy/binomial_copy/1024x1M", 1.5),
}
for name, (ref_name, factor) in sorted(RELATIVE_FLOORS.items()):
    if name not in cur or ref_name not in cur:
        absent = name if name not in cur else ref_name
        print(f"MISSING   {absent} (relative floor: {name} {factor:g}x "
              f"faster than {ref_name})")
        failed = True
        continue
    ceiling = cur[ref_name]["median_ns"] / factor
    fast = cur[name].get("p10_ns") or cur[name]["median_ns"]
    status = "OK"
    if fast > ceiling:
        status, failed = "TOO SLOW", True
    print(f"{status:9s} {name}: p10 {fast:.0f} ns vs ceiling {ceiling:.0f} ns "
          f"(banked {factor:g}x under same-run {ref_name})")
unused = allow_missing - gated
for name in sorted(unused):
    print(f"warning: --allow-missing '{name}' matches no gated baseline bench",
          file=sys.stderr)
if failed:
    print(f"bench gate FAILED (threshold {threshold:.0f}% on median)", file=sys.stderr)
sys.exit(1 if failed else 0)
PY
}

if ! compare; then
  # Best-of-two flake mitigation: background load on a shared box only ever
  # slows a run down, so the elementwise minimum across two independent
  # measurement passes is the honest estimate of the machine's speed. A
  # real code regression inflates both passes and still fails; a transient
  # burst (kernel reclaim after a memory-heavy CI phase, a noisy
  # neighbour) hits one pass and is forgiven. One retry only — a gate that
  # loops until green is no gate.
  echo "bench gate failed — re-measuring once to rule out transient machine load" >&2
  sleep 15
  FIRST_PASS=${CURRENT%.json}_pass1.json
  cp "$CURRENT" "$FIRST_PASS"
  measure
  python3 - "$FIRST_PASS" "$CURRENT" <<'PY'
import json, sys
first, cur_path = sys.argv[1], sys.argv[2]
prev = {f"{r['group']}/{r['id']}": r
        for r in json.load(open(first))["benchmarks"]}
doc = json.load(open(cur_path))
for r in doc["benchmarks"]:
    p = prev.get(f"{r['group']}/{r['id']}")
    if not p:
        continue
    for k in ("median_ns", "p10_ns", "p90_ns"):
        if isinstance(r.get(k), (int, float)) and isinstance(p.get(k), (int, float)):
            r[k] = min(r[k], p[k])
json.dump(doc, open(cur_path, "w"))
PY
  echo "--- second pass (elementwise best of two) ---"
  compare
fi
echo "bench gate passed (threshold ${THRESHOLD}% on median)"
