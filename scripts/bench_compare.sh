#!/usr/bin/env bash
# Benchmark trajectory gate: run the single-threaded kernels of the
# traffic_counts bench (step_flag, timeline, and the event executor's
# broadcast hot path — no thread spawning, so their medians are stable
# even under --quick) plus the recovery_hotpath bench's P=8 legs
# (time-to-recover vs casualty count on the event executor), and fail if
# any median regressed by more than the threshold against the checked-in
# baseline.
#
# Usage: scripts/bench_compare.sh [--update-baseline] [--allow-missing NAME]...
#   --update-baseline     re-measure and overwrite results/bench_baseline.json
#   --allow-missing NAME  the named benchmark ("group/id") may be present in
#                         the baseline but absent from this run without
#                         failing the gate (repeatable; use while renaming or
#                         retiring that bench, then refresh the baseline).
#                         Unlike a blanket flag, every waived bench is named,
#                         so an unrelated bench silently falling out of the
#                         run still fails.
#
# Gated benches that are absent from the *baseline* never fail the gate:
# they are reported as SKIPPED (no baseline entry) so a freshly added bench
# is visible but ungated until the baseline is refreshed.
#
# On top of the relative gate, SPEEDUP_FLOORS (in the python below) pins
# named benches to an absolute ceiling frozen in this script — a banked
# optimization win that stays enforced even across --update-baseline.
#
# Environment:
#   BENCH_COMPARE_THRESHOLD   allowed median regression in percent (default 30)
#   BENCH_COMPARE_OUT         where to write the fresh measurements
#                             (default target/bench_current.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=results/bench_baseline.json
CURRENT=${BENCH_COMPARE_OUT:-target/bench_current.json}
THRESHOLD=${BENCH_COMPARE_THRESHOLD:-30}

usage() {
  sed -n '2,25p' "$0" | sed 's/^# \{0,1\}//'
}

update=0
allow_missing=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --update-baseline) update=1 ;;
    --allow-missing)
      if [[ $# -lt 2 ]]; then
        echo "error: --allow-missing needs a benchmark name (group/id)" >&2
        exit 2
      fi
      allow_missing+=("$2")
      shift
      ;;
    -h|--help) usage; exit 0 ;;
    *)
      echo "error: unknown argument '$1'" >&2
      usage >&2
      exit 2
      ;;
  esac
  shift
done

export CARGO_NET_OFFLINE=true
mkdir -p "$(dirname "$CURRENT")"
# The bench binaries run with the package root as cwd; hand them absolute
# paths. recovery_hotpath's P=8 legs are microsecond-scale event worlds, so
# they join the quick gate; the P=1024 legs take seconds per sample and are
# recorded out-of-band (results/recovery_hotpath.json), so the gate waives
# them by name via --allow-missing from ci.sh.
RECOVERY_CURRENT=${CURRENT%.json}_recovery.json
cargo bench -p bcast-bench --bench traffic_counts --offline -- \
  --quick --json "$PWD/$CURRENT" step_flag timeline event_world_hotpath >/dev/null
cargo bench -p bcast-bench --bench recovery_hotpath --offline -- \
  --quick --json "$PWD/$RECOVERY_CURRENT" recovery_hotpath/p8 >/dev/null
python3 - "$CURRENT" "$RECOVERY_CURRENT" <<'PY'
import json, sys
main, extra = sys.argv[1], sys.argv[2]
doc = json.load(open(main))
doc["benchmarks"].extend(json.load(open(extra))["benchmarks"])
json.dump(doc, open(main, "w"))
PY

if [[ ! -s $CURRENT ]]; then
  echo "error: bench run produced no measurements at $CURRENT" >&2
  exit 1
fi

if [[ $update -eq 1 ]]; then
  mkdir -p "$(dirname "$BASELINE")"
  cp "$CURRENT" "$BASELINE"
  echo "baseline updated: $BASELINE"
  exit 0
fi

if [[ ! -f $BASELINE ]]; then
  echo "error: no baseline at $BASELINE" >&2
  echo "hint: create one with: scripts/bench_compare.sh --update-baseline" >&2
  exit 1
fi

ALLOW_MISSING_LIST=$(IFS=$'\n'; echo "${allow_missing[*]:-}")
export ALLOW_MISSING_LIST
python3 - "$BASELINE" "$CURRENT" "$THRESHOLD" <<'PY'
import json, os, sys

base_path, cur_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
allow_missing = {n for n in os.environ.get("ALLOW_MISSING_LIST", "").splitlines() if n}
GATED_GROUPS = {"step_flag", "timeline", "event_world_hotpath", "recovery_hotpath"}

def load(path, role):
    try:
        with open(path) as f:
            doc = json.load(f)
        rows = doc["benchmarks"]
        return {f"{r['group']}/{r['id']}": r for r in rows}
    except (OSError, ValueError, KeyError, TypeError) as e:
        print(f"error: {role} file {path} is not a bench report: {e}", file=sys.stderr)
        print("hint: regenerate it with scripts/bench_compare.sh --update-baseline",
              file=sys.stderr)
        sys.exit(2)

base, cur = load(base_path, "baseline"), load(cur_path, "current")
gated = {n for n in base if n.split("/", 1)[0] in GATED_GROUPS}
if not gated:
    print(f"error: baseline {base_path} has no benchmarks in gated groups "
          f"({', '.join(sorted(GATED_GROUPS))}) — wrong or stale baseline?",
          file=sys.stderr)
    sys.exit(2)
failed = False
for name in sorted(gated):
    if name not in cur:
        if name in allow_missing:
            print(f"SKIPPED   {name} (in baseline, absent from this run; "
                  "waived by --allow-missing)")
        else:
            print(f"MISSING   {name} (in baseline, absent from this run)")
            print(f"hint: pass --allow-missing '{name}' if it was renamed or "
                  "retired, then refresh the baseline", file=sys.stderr)
            failed = True
        continue
    b, c = base[name]["median_ns"], cur[name]["median_ns"]
    delta = 100.0 * (c - b) / b if b > 0 else 0.0
    status = "OK"
    if delta > threshold:
        status, failed = "REGRESSED", True
    print(f"{status:9s} {name}: {b:.0f} ns -> {c:.0f} ns ({delta:+.1f}%)")
# New benches in a gated group without a baseline entry are skipped by
# name, never gated: adding a bench must not fail CI before the baseline
# is refreshed, but the skip is printed so it cannot go unnoticed.
for name in sorted(cur):
    if name.split("/", 1)[0] in GATED_GROUPS and name not in base:
        print(f"SKIPPED   {name} (no baseline entry — ungated; "
              "refresh with --update-baseline)")
# Named absolute floors: optimization wins a PR explicitly banked. Unlike
# the relative gate, the reference is hard-coded here, not read from the
# baseline file, so re-recording the baseline cannot silently launder a
# regression past it. The current run's p10_ns stands in for the machine's
# honest speed: quick-mode samples are few and background load only ever
# slows a run down, so the fastest decile is the noise-robust side to gate
# on, while the reference stays the (noisier, conservative) median of the
# recording it was banked against.
SPEEDUP_FLOORS = {
    # Reactor hot-path overhaul (lane mailboxes / timer wheel / slab tasks /
    # envelope-handle cache): >=2x msgs/sec over the PR 6 reactor, whose
    # recorded median for this bench was 267,645,348 ns.
    "event_world_hotpath/tuned_bcast/1024": (267_645_348, 2.0),
}
for name, (ref_ns, factor) in sorted(SPEEDUP_FLOORS.items()):
    ceiling = ref_ns / factor
    if name not in cur:
        print(f"MISSING   {name} (speedup floor: {factor:g}x over {ref_ns} ns)")
        failed = True
        continue
    fast = cur[name].get("p10_ns") or cur[name]["median_ns"]
    status = "OK"
    if fast > ceiling:
        status, failed = "TOO SLOW", True
    print(f"{status:9s} {name}: p10 {fast:.0f} ns vs ceiling {ceiling:.0f} ns "
          f"(banked {factor:g}x over {ref_ns} ns)")
unused = allow_missing - gated
for name in sorted(unused):
    print(f"warning: --allow-missing '{name}' matches no gated baseline bench",
          file=sys.stderr)
if failed:
    print(f"bench gate FAILED (threshold {threshold:.0f}% on median)", file=sys.stderr)
sys.exit(1 if failed else 0)
PY
echo "bench gate passed (threshold ${THRESHOLD}% on median)"
