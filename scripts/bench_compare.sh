#!/usr/bin/env bash
# Benchmark trajectory gate: run the pure-CPU kernels of the traffic_counts
# bench (step_flag and timeline groups — no thread spawning, so their
# medians are stable even under --quick) and fail if any median regressed
# by more than the threshold against the checked-in baseline.
#
# Usage: scripts/bench_compare.sh [--update-baseline] [--allow-missing]
#   --update-baseline   re-measure and overwrite results/bench_baseline.json
#   --allow-missing     benchmarks present in the baseline but absent from
#                       this run are reported but do not fail the gate
#                       (use while renaming/retiring a bench; refresh the
#                       baseline afterwards)
#
# Environment:
#   BENCH_COMPARE_THRESHOLD   allowed median regression in percent (default 30)
#   BENCH_COMPARE_OUT         where to write the fresh measurements
#                             (default target/bench_current.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=results/bench_baseline.json
CURRENT=${BENCH_COMPARE_OUT:-target/bench_current.json}
THRESHOLD=${BENCH_COMPARE_THRESHOLD:-30}

usage() {
  sed -n '2,16p' "$0" | sed 's/^# \{0,1\}//'
}

update=0
allow_missing=0
for arg in "$@"; do
  case "$arg" in
    --update-baseline) update=1 ;;
    --allow-missing) allow_missing=1 ;;
    -h|--help) usage; exit 0 ;;
    *)
      echo "error: unknown argument '$arg'" >&2
      usage >&2
      exit 2
      ;;
  esac
done

export CARGO_NET_OFFLINE=true
mkdir -p "$(dirname "$CURRENT")"
# The bench binary runs with the package root as cwd; hand it an absolute path.
cargo bench -p bcast-bench --bench traffic_counts --offline -- \
  --quick --json "$PWD/$CURRENT" step_flag timeline >/dev/null

if [[ ! -s $CURRENT ]]; then
  echo "error: bench run produced no measurements at $CURRENT" >&2
  exit 1
fi

if [[ $update -eq 1 ]]; then
  mkdir -p "$(dirname "$BASELINE")"
  cp "$CURRENT" "$BASELINE"
  echo "baseline updated: $BASELINE"
  exit 0
fi

if [[ ! -f $BASELINE ]]; then
  echo "error: no baseline at $BASELINE" >&2
  echo "hint: create one with: scripts/bench_compare.sh --update-baseline" >&2
  exit 1
fi

python3 - "$BASELINE" "$CURRENT" "$THRESHOLD" "$allow_missing" <<'PY'
import json, sys

base_path, cur_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
allow_missing = sys.argv[4] == "1"
GATED_GROUPS = {"step_flag", "timeline"}

def load(path, role):
    try:
        with open(path) as f:
            doc = json.load(f)
        rows = doc["benchmarks"]
        return {f"{r['group']}/{r['id']}": r["median_ns"] for r in rows}
    except (OSError, ValueError, KeyError, TypeError) as e:
        print(f"error: {role} file {path} is not a bench report: {e}", file=sys.stderr)
        print("hint: regenerate it with scripts/bench_compare.sh --update-baseline",
              file=sys.stderr)
        sys.exit(2)

base, cur = load(base_path, "baseline"), load(cur_path, "current")
gated = {n for n in base if n.split("/", 1)[0] in GATED_GROUPS}
if not gated:
    print(f"error: baseline {base_path} has no benchmarks in gated groups "
          f"({', '.join(sorted(GATED_GROUPS))}) — wrong or stale baseline?",
          file=sys.stderr)
    sys.exit(2)
failed = False
for name in sorted(gated):
    if name not in cur:
        if allow_missing:
            print(f"SKIPPED   {name} (in baseline, absent from this run; --allow-missing)")
        else:
            print(f"MISSING   {name} (in baseline, absent from this run)")
            print(f"hint: pass --allow-missing if '{name}' was renamed or retired, "
                  "then refresh the baseline", file=sys.stderr)
            failed = True
        continue
    b, c = base[name], cur[name]
    delta = 100.0 * (c - b) / b if b > 0 else 0.0
    status = "OK"
    if delta > threshold:
        status, failed = "REGRESSED", True
    print(f"{status:9s} {name}: {b:.0f} ns -> {c:.0f} ns ({delta:+.1f}%)")
for name in sorted(cur):
    if name.split("/", 1)[0] in GATED_GROUPS and name not in base:
        print(f"NEW       {name} (not in baseline; refresh with --update-baseline)")
if failed:
    print(f"bench gate FAILED (threshold {threshold:.0f}% on median)", file=sys.stderr)
sys.exit(1 if failed else 0)
PY
echo "bench gate passed (threshold ${THRESHOLD}% on median)"
