//! Steady-state allocation behaviour of the pooled message fabric.
//!
//! The zero-allocation claim: after a warm-up round has populated the
//! world's buffer pool, further broadcast rounds ride entirely on recycled
//! buffers — the pool's `misses` counter (each miss is one heap allocation)
//! must not grow, and every rented buffer must be back in the pool once the
//! collective completes.

use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use mpsim::{Communicator, ThreadWorld};

#[test]
fn tuned_ring_broadcast_allocates_nothing_in_steady_state() {
    const P: usize = 8;
    const NBYTES: usize = 1 << 20; // 1 MiB, the paper's large-message regime
    const ROUNDS: usize = 4;

    let src = pattern(NBYTES, 11);
    let out = ThreadWorld::run(P, |comm| {
        let mut after_warmup = None;
        for round in 0..ROUNDS {
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; NBYTES] };
            bcast_with(comm, &mut buf, 0, Algorithm::ScatterRingTuned).unwrap();
            assert_eq!(buf, src, "round {round} delivered wrong payload");
            // The barrier guarantees every rank's receives completed, so all
            // of this round's envelopes have been dropped back into the pool.
            comm.barrier().unwrap();
            // Two warm-up rounds: the first populates the pool, the second
            // absorbs scheduling jitter in the peak number of in-flight
            // buffers before we pin the allocation count down.
            if round == 1 {
                after_warmup = Some(comm.pool_stats());
            }
        }
        let warm = after_warmup.unwrap();
        let end = comm.pool_stats();
        // Rank 0 reads the shared counters after the last barrier; the other
        // ranks' sends for the final round are all delivered by then.
        if comm.rank() == 0 {
            // The pool only allocates when instantaneous in-flight demand
            // tops every previous peak, and that peak is scheduling-dependent
            // (send-only ranks of the tuned ring run ahead a variable number
            // of steps), so a later round may legitimately exceed the warm-up
            // peak by a buffer or two. Allow at most one extra buffer per
            // rank; a recycling regression would instead add one miss per
            // message, ~51 per round.
            assert!(
                end.misses <= warm.misses + P as u64,
                "steady state allocated: {} misses after warm-up, {} at end",
                warm.misses,
                end.misses
            );
            assert!(end.hits > warm.hits, "later rounds must hit the warm pool");
        }
    });

    // Every rented buffer was returned: nothing outstanding after teardown.
    assert_eq!(out.pool.outstanding, 0, "leaked pooled buffers: {:?}", out.pool);
    assert!(out.pool.hit_rate() > 0.5, "pool barely used: {:?}", out.pool);
}

#[test]
fn repeated_small_messages_reach_full_hit_rate() {
    // 2 ranks ping-ponging the same size: after the first two rents the
    // pool always has a warm buffer of the right class.
    let out = ThreadWorld::run(2, |comm| {
        let payload = [42u8; 256];
        let mut buf = [0u8; 256];
        for _ in 0..100 {
            if comm.rank() == 0 {
                comm.send(&payload, 1, mpsim::Tag(0)).unwrap();
                comm.recv(&mut buf, 1, mpsim::Tag(1)).unwrap();
            } else {
                comm.recv(&mut buf, 0, mpsim::Tag(0)).unwrap();
                comm.send(&buf, 0, mpsim::Tag(1)).unwrap();
            }
        }
    });
    assert_eq!(out.pool.outstanding, 0);
    // 200 sends total (100 each way); at most a handful of cold misses.
    let rents = out.pool.hits + out.pool.misses;
    assert_eq!(rents, 200);
    assert!(out.pool.misses <= 4, "too many allocations: {:?}", out.pool);
}
