//! Property-based tests of the simulator-backed stack: arbitrary shapes,
//! models and protocols must all deliver correct broadcasts with balanced,
//! model-matching traffic, and virtual time must behave like time.

use bcast_core::traffic::bcast_volume;
use bcast_core::{bcast_with, Algorithm};
use mpsim::Communicator;
use netsim::{NetworkModel, Placement, SimWorld};
use proptest::prelude::*;

fn model_strategy() -> impl Strategy<Value = NetworkModel> {
    (
        0.0f64..2000.0,      // alpha
        0.0f64..4.0,         // beta
        0usize..20_000,      // eager threshold
        prop_oneof![Just(false), Just(true)], // contention
        1.0f64..8.0,         // mem channels
        prop_oneof![Just(usize::MAX), (1usize..8).prop_map(|c| c)], // credits
    )
        .prop_map(|(alpha, beta, eager, contention, k, credits)| {
            let mut m = NetworkModel::uniform(alpha, beta);
            m.eager_threshold = eager;
            m.contention = contention;
            m.mem_channels = k;
            m.eager_credits = credits;
            m.rendezvous_handshake_ns = alpha / 2.0;
            m.eager_unpack_copy = contention;
            m.o_send_ns = 50.0;
            m.o_recv_ns = 50.0;
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any model, any placement, any shape: the tuned broadcast delivers and
    /// the traffic matches the analytic volume.
    #[test]
    fn tuned_bcast_correct_under_arbitrary_models(
        model in model_strategy(),
        np in 1usize..20,
        cores in 1usize..26,
        nbytes in 0usize..3000,
        root_pick in any::<u64>(),
    ) {
        let root = (root_pick as usize) % np;
        let src = bcast_core::verify::pattern(nbytes, 31);
        let src2 = src.clone();
        let out = SimWorld::run(model, Placement::new(cores), np, move |comm| {
            let mut buf = if comm.rank() == root { src2.clone() } else { vec![0u8; nbytes] };
            bcast_with(comm, &mut buf, root, Algorithm::ScatterRingTuned).unwrap();
            buf
        });
        prop_assert!(out.results.iter().all(|b| b == &src));
        prop_assert!(out.traffic.is_balanced());
        let vol = bcast_volume(Algorithm::ScatterRingTuned, nbytes, np);
        prop_assert_eq!(out.traffic.total_msgs(), vol.msgs);
        prop_assert_eq!(out.traffic.total_bytes(), vol.bytes);
    }

    /// Virtual clocks never precede the physically-required minimum: a
    /// broadcast of n bytes through a β-limited fabric cannot beat the
    /// contention-free Hockney bound for the root's own sends.
    #[test]
    fn makespan_respects_hockney_lower_bound(
        np in 2usize..16,
        nbytes in 1usize..20_000,
    ) {
        let alpha = 500.0;
        let beta = 1.0;
        let model = NetworkModel::uniform(alpha, beta);
        let src = bcast_core::verify::pattern(nbytes, 33);
        let src2 = src.clone();
        let out = SimWorld::run(model, Placement::new(4), np, move |comm| {
            let mut buf = if comm.rank() == 0 { src2.clone() } else { vec![0u8; nbytes] };
            bcast_with(comm, &mut buf, 0, Algorithm::ScatterRingTuned).unwrap();
        });
        // Every non-root rank must receive nbytes total; the last byte into
        // the slowest rank needs at least α + nbytes·β/P per hop once —
        // a loose but non-trivial bound: α + nbytes·β/np.
        let bound = alpha + (nbytes as f64 * beta) / np as f64;
        prop_assert!(
            out.makespan_ns + 1e-6 >= bound,
            "makespan {} below physical bound {}", out.makespan_ns, bound
        );
    }

    /// Per-rank finish times are monotone under repetition: k+1 broadcasts
    /// never finish before k broadcasts.
    #[test]
    fn more_work_never_finishes_earlier(
        np in 2usize..12,
        nbytes in 1usize..4000,
    ) {
        let model = NetworkModel::uniform(100.0, 0.5);
        let time_for = |iters: usize| {
            let src = bcast_core::verify::pattern(nbytes, 37);
            SimWorld::run(model.clone(), Placement::new(4), np, move |comm| {
                let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
                for _ in 0..iters {
                    bcast_with(comm, &mut buf, 0, Algorithm::ScatterRingTuned).unwrap();
                }
            })
            .makespan_ns
        };
        prop_assert!(time_for(3) >= time_for(2));
        prop_assert!(time_for(2) >= time_for(1));
    }
}
