//! Property-based tests of the simulator-backed stack: arbitrary shapes,
//! models and protocols must all deliver correct broadcasts with balanced,
//! model-matching traffic, and virtual time must behave like time.
//! Randomized by the in-tree `testkit` harness.

use bcast_core::traffic::bcast_volume;
use bcast_core::{bcast_with, Algorithm};
use mpsim::Communicator;
use netsim::{NetworkModel, Placement, SimWorld};
use testkit::prop::{self, Config, Strategy};

/// Strategy over the raw knobs of a [`NetworkModel`]; [`build_model`] turns
/// a generated tuple into the model (shrinking operates on the knobs).
fn model_knobs() -> impl Strategy<Value = (f64, f64, usize, bool, f64, u64)> {
    (
        prop::f64_range(0.0..2000.0), // alpha
        prop::f64_range(0.0..4.0),    // beta
        prop::usize_range(0..20_000), // eager threshold
        prop::any_bool(),             // contention
        prop::f64_range(1.0..8.0),    // mem channels
        prop::u64_range(0..8),        // credits (0 encodes "unlimited")
    )
}

fn build_model(knobs: &(f64, f64, usize, bool, f64, u64)) -> NetworkModel {
    let &(alpha, beta, eager, contention, k, credits) = knobs;
    let mut m = NetworkModel::uniform(alpha, beta);
    m.eager_threshold = eager;
    m.contention = contention;
    m.mem_channels = k;
    m.eager_credits = if credits == 0 { usize::MAX } else { credits as usize };
    m.rendezvous_handshake_ns = alpha / 2.0;
    m.eager_unpack_copy = contention;
    m.o_send_ns = 50.0;
    m.o_recv_ns = 50.0;
    m
}

/// Any model, any placement, any shape: the tuned broadcast delivers and
/// the traffic matches the analytic volume.
#[test]
fn tuned_bcast_correct_under_arbitrary_models() {
    prop::check(
        "tuned_bcast_correct_under_arbitrary_models",
        Config::cases(32),
        &(
            model_knobs(),
            prop::usize_range(1..20),
            prop::usize_range(1..26),
            prop::usize_range(0..3000),
            prop::any_u64(),
        ),
        |(knobs, np, cores, nbytes, root_pick)| {
            let (np, cores, nbytes) = (*np, *cores, *nbytes);
            let model = build_model(knobs);
            let root = (*root_pick as usize) % np;
            let src = bcast_core::verify::pattern(nbytes, 31);
            let src2 = src.clone();
            let out = SimWorld::run(model, Placement::new(cores), np, move |comm| {
                let mut buf = if comm.rank() == root { src2.clone() } else { vec![0u8; nbytes] };
                bcast_with(comm, &mut buf, root, Algorithm::ScatterRingTuned).unwrap();
                buf
            });
            if !out.results.iter().all(|b| b == &src) {
                return Err("a rank diverged from the payload".into());
            }
            if !out.traffic.is_balanced() {
                return Err("unbalanced traffic".into());
            }
            let vol = bcast_volume(Algorithm::ScatterRingTuned, nbytes, np);
            if out.traffic.total_msgs() != vol.msgs {
                return Err(format!("msgs {} != modelled {}", out.traffic.total_msgs(), vol.msgs));
            }
            if out.traffic.total_bytes() != vol.bytes {
                return Err(format!(
                    "bytes {} != modelled {}",
                    out.traffic.total_bytes(),
                    vol.bytes
                ));
            }
            Ok(())
        },
    );
}

/// Virtual clocks never precede the physically-required minimum: a
/// broadcast of n bytes through a β-limited fabric cannot beat the
/// contention-free Hockney bound for the root's own sends.
#[test]
fn makespan_respects_hockney_lower_bound() {
    prop::check(
        "makespan_respects_hockney_lower_bound",
        Config::cases(32),
        &(prop::usize_range(2..16), prop::usize_range(1..20_000)),
        |&(np, nbytes)| {
            let alpha = 500.0;
            let beta = 1.0;
            let model = NetworkModel::uniform(alpha, beta);
            let src = bcast_core::verify::pattern(nbytes, 33);
            let src2 = src.clone();
            let out = SimWorld::run(model, Placement::new(4), np, move |comm| {
                let mut buf = if comm.rank() == 0 { src2.clone() } else { vec![0u8; nbytes] };
                bcast_with(comm, &mut buf, 0, Algorithm::ScatterRingTuned).unwrap();
            });
            // Every non-root rank must receive nbytes total; the last byte into
            // the slowest rank needs at least α + nbytes·β/P per hop once —
            // a loose but non-trivial bound: α + nbytes·β/np.
            let bound = alpha + (nbytes as f64 * beta) / np as f64;
            if out.makespan_ns + 1e-6 < bound {
                return Err(format!("makespan {} below physical bound {bound}", out.makespan_ns));
            }
            Ok(())
        },
    );
}

/// Per-rank finish times are monotone under repetition: k+1 broadcasts
/// never finish before k broadcasts.
#[test]
fn more_work_never_finishes_earlier() {
    prop::check(
        "more_work_never_finishes_earlier",
        Config::cases(32),
        &(prop::usize_range(2..12), prop::usize_range(1..4000)),
        |&(np, nbytes)| {
            let model = NetworkModel::uniform(100.0, 0.5);
            let time_for = |iters: usize| {
                let src = bcast_core::verify::pattern(nbytes, 37);
                SimWorld::run(model.clone(), Placement::new(4), np, move |comm| {
                    let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
                    for _ in 0..iters {
                        bcast_with(comm, &mut buf, 0, Algorithm::ScatterRingTuned).unwrap();
                    }
                })
                .makespan_ns
            };
            let (t1, t2, t3) = (time_for(1), time_for(2), time_for(3));
            if t3 < t2 || t2 < t1 {
                return Err(format!("makespans not monotone: {t1} {t2} {t3}"));
            }
            Ok(())
        },
    );
}
