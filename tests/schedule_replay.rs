//! Schedule-IR replay: the symbolic schedules emitted by every
//! [`ScheduleSource`] must reproduce, rank by rank and byte by byte, the
//! traffic counters of the *executed* collectives — on both the threaded
//! runtime and the virtual-time simulator.
//!
//! The expected counters come from the schedcheck abstract executor (which
//! resolves each receive to its matched message, so received bytes are
//! exact, not capacities); the observed counters come from the instrumented
//! worlds. Any divergence means an emitter and its collective drifted apart.

use bcast_core::allgather::{allgather_bruck, allgather_rd, allgather_ring};
use bcast_core::alltoall::{alltoall_bruck, alltoall_pairwise};
use bcast_core::pipeline::bcast_pipeline;
use bcast_core::reduce::{
    allreduce_rabenseifner, allreduce_rd, reduce_binomial, reduce_scatter_block_rh,
};
use bcast_core::scatter_gather::{gather_binomial, scatter_binomial};
use bcast_core::{all_sources, bcast_with, Algorithm, NodeMap, Schedule};
use mpsim::{NonBlocking, Rank, ThreadWorld, WorldTraffic};
use netsim::{presets, SimWorld};
use schedcheck::{check, Semantics};

/// Execute the collective named by its schedule source on one rank.
/// Parameters mirror the corresponding `ScheduleSource::schedule` exactly:
/// `nbytes` is the total buffer for the bcast family, the per-rank block
/// for the symmetric collectives, and the element count (u8, so bytes) for
/// the reduce family.
fn run_collective<C: NonBlocking>(name: &str, comm: &C, nbytes: usize, root: Rank) {
    let p = comm.size();
    let rank = comm.rank();
    let seed = |i: usize| (i as u8).wrapping_mul(31).wrapping_add(rank as u8);
    let add = |a: u8, b: u8| a.wrapping_add(b);
    match name {
        "bcast/binomial"
        | "bcast/scatter_rd"
        | "bcast/scatter_ring_native"
        | "bcast/scatter_ring_tuned" => {
            let alg = match name {
                "bcast/binomial" => Algorithm::Binomial,
                "bcast/scatter_rd" => Algorithm::ScatterRdAllgather,
                "bcast/scatter_ring_native" => Algorithm::ScatterRingNative,
                _ => Algorithm::ScatterRingTuned,
            };
            let mut buf: Vec<u8> = (0..nbytes).map(seed).collect();
            bcast_with(comm, &mut buf, root, alg).unwrap();
        }
        "bcast/pipeline" => {
            let mut buf: Vec<u8> = (0..nbytes).map(seed).collect();
            // Same ragged cut as PipelineSource::schedule.
            bcast_pipeline(comm, &mut buf, root, nbytes.div_ceil(3).max(1)).unwrap();
        }
        "bcast/smp_native" | "bcast/smp_tuned" => {
            let inter = if name == "bcast/smp_tuned" {
                Algorithm::ScatterRingTuned
            } else {
                Algorithm::ScatterRingNative
            };
            let mut buf: Vec<u8> = (0..nbytes).map(seed).collect();
            // Same 4-cores-per-node map as SmpSource::schedule.
            bcast_core::smp::bcast_smp(comm, &mut buf, root, &NodeMap::new(4), inter).unwrap();
        }
        "allgather/ring" | "allgather/rd" | "allgather/bruck" => {
            let send: Vec<u8> = (0..nbytes).map(seed).collect();
            let mut recv = vec![0u8; nbytes * p];
            match name {
                "allgather/ring" => allgather_ring(comm, &send, &mut recv).unwrap(),
                "allgather/rd" => allgather_rd(comm, &send, &mut recv).unwrap(),
                _ => allgather_bruck(comm, &send, &mut recv).unwrap(),
            }
        }
        "alltoall/pairwise" | "alltoall/bruck" => {
            let send: Vec<u8> = (0..nbytes * p).map(seed).collect();
            let mut recv = vec![0u8; nbytes * p];
            if name == "alltoall/bruck" {
                alltoall_bruck(comm, &send, &mut recv).unwrap();
            } else {
                alltoall_pairwise(comm, &send, &mut recv).unwrap();
            }
        }
        "scatter/binomial" => {
            let send: Vec<u8> =
                if rank == root { (0..nbytes * p).map(seed).collect() } else { Vec::new() };
            let mut recv = vec![0u8; nbytes];
            scatter_binomial(comm, &send, &mut recv, root).unwrap();
        }
        "gather/binomial" => {
            let send: Vec<u8> = (0..nbytes).map(seed).collect();
            let mut recv = if rank == root { vec![0u8; nbytes * p] } else { Vec::new() };
            gather_binomial(comm, &send, &mut recv, root).unwrap();
        }
        "reduce/binomial" => {
            let send: Vec<u8> = (0..nbytes).map(seed).collect();
            let mut recv = vec![0u8; nbytes];
            reduce_binomial(comm, &send, &mut recv, add, root).unwrap();
        }
        "reduce/allreduce_rd" => {
            let mut buf: Vec<u8> = (0..nbytes).map(seed).collect();
            allreduce_rd(comm, &mut buf, add).unwrap();
        }
        "reduce/reduce_scatter_rh" => {
            let send: Vec<u8> = (0..nbytes * p).map(seed).collect();
            let mut recv = vec![0u8; nbytes];
            reduce_scatter_block_rh(comm, &send, &mut recv, add).unwrap();
        }
        "reduce/allreduce_rabenseifner" => {
            let mut buf: Vec<u8> = (0..nbytes).map(seed).collect();
            allreduce_rabenseifner(comm, &mut buf, add).unwrap();
        }
        other => panic!("no replay wired for schedule source {other}"),
    }
}

/// Compare the abstract executor's per-rank counters against an
/// instrumented world's, for one (source, p, nbytes, root) instance.
fn assert_traffic_matches(
    sched: &Schedule,
    observed: &WorldTraffic,
    backend: &str,
    nbytes: usize,
    root: Rank,
) {
    let report = check(sched, Semantics::Rendezvous);
    assert!(report.is_clean(), "{} p={} is not clean: {:?}", sched.name, sched.p, report.errors);
    for (rank, (want, got)) in report.traffic.iter().zip(&observed.per_rank).enumerate() {
        let ctx = format!(
            "{} p={} nbytes={nbytes} root={root} rank={rank} on {backend}",
            sched.name, sched.p
        );
        assert_eq!(want.msgs_sent, got.msgs_sent, "sent msgs diverge: {ctx}");
        assert_eq!(want.bytes_sent, got.bytes_sent, "sent bytes diverge: {ctx}");
        assert_eq!(want.msgs_recvd, got.msgs_recvd, "recvd msgs diverge: {ctx}");
        assert_eq!(want.bytes_recvd, got.bytes_recvd, "recvd bytes diverge: {ctx}");
    }
}

fn replay_all(ps: &[usize], sizes: &[usize], backend: &str) {
    for src in all_sources() {
        for &p in ps {
            if !src.supports(p) {
                continue;
            }
            for &nbytes in sizes {
                for root in [0, p - 1] {
                    let sched = src.schedule(p, nbytes, root);
                    let name = src.name();
                    let traffic = match backend {
                        "threads" => {
                            ThreadWorld::run(p, |comm| run_collective(name, comm, nbytes, root))
                                .traffic
                        }
                        "netsim" => {
                            let preset = presets::hornet();
                            SimWorld::run(
                                preset.model_for(nbytes, p),
                                preset.placement(),
                                p,
                                |comm| run_collective(name, comm, nbytes, root),
                            )
                            .traffic
                        }
                        other => panic!("unknown backend {other}"),
                    };
                    assert_traffic_matches(&sched, &traffic, backend, nbytes, root);
                }
            }
        }
    }
}

#[test]
fn ir_matches_executed_traffic_on_threads() {
    replay_all(&[2, 3, 4, 8], &[5, 64], "threads");
}

#[test]
fn ir_matches_executed_traffic_on_netsim() {
    replay_all(&[2, 3, 4, 8], &[5, 64], "netsim");
}

#[test]
fn ir_matches_executed_traffic_at_awkward_sizes() {
    // Non-power-of-two world with a payload smaller than the world: empty
    // scatter chunks, ragged blocks — the emitters must still mirror the
    // executed guards exactly.
    replay_all(&[5, 6], &[1, 17], "threads");
}
