//! Negative tests: seeded schedule bugs must be *rejected* by the static
//! analyses, each with a diagnostic naming the offending rank (and, where
//! the failure is op-level, the step). A checker that accepts mutants
//! proves nothing.

use bcast_core::bcast::{bcast_schedule, bcast_tuned_schedule_with};
use bcast_core::{step_flag, Algorithm};
use schedcheck::mutate::{drop_op, duplicate_op, redirect_send, retag, truncate_send};
use schedcheck::{check, Report, Semantics};

/// The mutant must fail under at least one semantics, with a rank-level
/// diagnostic; returns the failing report for further shape assertions.
fn must_reject(sched: &bcast_core::Schedule, what: &str) -> Report {
    for sem in Semantics::ALL {
        let rep = check(sched, sem);
        if !rep.is_clean() {
            assert!(
                rep.errors.iter().any(|e| e.contains("rank")),
                "{what}: diagnostics lack a rank: {:?}",
                rep.errors
            );
            return rep;
        }
    }
    panic!("{what}: mutant accepted under both semantics");
}

#[test]
fn step_flag_off_by_one_is_rejected() {
    // The paper's (step, flag) pruning, shifted by one: a rank keeps
    // sending one step too long and stops receiving one step too early.
    for p in [4usize, 8, 9, 16] {
        let sched = bcast_tuned_schedule_with(p, 64 * p, 0, |rel, size| {
            let (step, flag) = step_flag(rel, size);
            (step + 1, flag)
        });
        let rep = must_reject(&sched, &format!("step_flag+1 p={p}"));
        // The damage is localized: some transfer goes unmatched or some
        // required bytes never arrive.
        assert!(
            rep.errors.iter().any(|e| {
                e.contains("matching")
                    || e.contains("orphaned")
                    || e.contains("coverage")
                    || e.contains("deadlock")
            }),
            "p={p}: unexpected diagnostic shape: {:?}",
            rep.errors
        );
    }
}

#[test]
fn swapped_ring_neighbor_is_rejected() {
    // Rank 2's first ring hop sent to its *left* neighbor instead of its
    // right: classic direction swap.
    for p in [4usize, 8] {
        let mut sched = bcast_schedule(Algorithm::ScatterRingNative, p, 64 * p, 0);
        let step = sched.ranks[2]
            .ops
            .iter()
            .position(|op| op.phase == "ring" && op.send.is_some())
            .expect("rank 2 has a ring send");
        let wrong = sched.ranks[2].ops[step].recv.as_ref().unwrap().peer;
        redirect_send(&mut sched, 2, step, wrong);
        let rep = must_reject(&sched, &format!("swapped neighbor p={p}"));
        assert!(
            rep.errors.iter().any(|e| e.contains("rank 2") || e.contains("rank")),
            "{:?}",
            rep.errors
        );
    }
}

#[test]
fn truncated_scatter_chunk_is_rejected() {
    // The root's first scatter send loses its last byte: the subtree below
    // that child can never fill its required range.
    let p = 8;
    let mut sched = bcast_schedule(Algorithm::ScatterRingTuned, p, 64 * p, 0);
    let step = sched.ranks[0]
        .ops
        .iter()
        .position(|op| op.phase == "scatter" && op.send.is_some())
        .expect("root has a scatter send");
    let len = sched.ranks[0].ops[step].send.as_ref().unwrap().loc.len();
    truncate_send(&mut sched, 0, step, len - 1);
    let rep = must_reject(&sched, "truncated scatter chunk");
    assert!(rep.errors.iter().any(|e| e.contains("coverage")), "{:?}", rep.errors);
}

#[test]
fn dropped_and_duplicated_ops_are_rejected() {
    let p = 8;
    let base = bcast_schedule(Algorithm::Binomial, p, 256, 0);

    let mut dropped = base.clone();
    drop_op(&mut dropped, 0, 0);
    must_reject(&dropped, "dropped root send");

    let mut doubled = base.clone();
    duplicate_op(&mut doubled, 0, 0);
    let rep = must_reject(&doubled, "duplicated root send");
    assert!(rep.errors.iter().any(|e| e.contains("orphaned")), "{:?}", rep.errors);
}

#[test]
fn retagged_op_is_rejected() {
    let p = 8;
    let mut sched = bcast_schedule(Algorithm::Binomial, p, 256, 0);
    retag(&mut sched, 0, 0, mpsim::Tag(0x7777));
    must_reject(&sched, "retagged root send");
}

#[test]
fn diagnostics_name_rank_and_step() {
    // The rank/step coordinates in a diagnostic must point at the mutation
    // site (or its matched partner), so a failure is actionable.
    let p = 8;
    let mut sched = bcast_schedule(Algorithm::Binomial, p, 256, 0);
    redirect_send(&mut sched, 0, 0, 5);
    let rep = must_reject(&sched, "redirected binomial send");
    assert!(
        rep.errors.iter().any(|e| e.contains("step")),
        "diagnostics lack a step: {:?}",
        rep.errors
    );
}
