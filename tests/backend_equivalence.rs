//! The same collective code must behave identically on both executors:
//! identical payload delivery and identical traffic counters on the real
//! threaded runtime and on the virtual-time cluster simulator.

use bcast_core::traffic::bcast_volume;
use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use mpsim::{Communicator, ThreadWorld};
use netsim::{presets, NetworkModel, Placement, SimWorld};

fn sim_run(
    algorithm: Algorithm,
    np: usize,
    nbytes: usize,
    root: usize,
) -> (Vec<Vec<u8>>, mpsim::WorldTraffic) {
    let preset = presets::hornet();
    let model = preset.model_for(nbytes, np);
    let src = pattern(nbytes, 5);
    let out = SimWorld::run(model, preset.placement(), np, |comm| {
        let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
        bcast_with(comm, &mut buf, root, algorithm).unwrap();
        buf
    });
    (out.results, out.traffic)
}

fn thread_run(
    algorithm: Algorithm,
    np: usize,
    nbytes: usize,
    root: usize,
) -> (Vec<Vec<u8>>, mpsim::WorldTraffic) {
    let src = pattern(nbytes, 5);
    let out = ThreadWorld::run(np, |comm| {
        let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
        bcast_with(comm, &mut buf, root, algorithm).unwrap();
        buf
    });
    (out.results, out.traffic)
}

#[test]
fn same_payloads_and_traffic_on_both_backends() {
    for &algorithm in
        &[Algorithm::Binomial, Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned]
    {
        for &(np, nbytes, root) in &[(10usize, 997usize, 3usize), (24, 4096, 0), (9, 10, 8)] {
            let (tb, tt) = thread_run(algorithm, np, nbytes, root);
            let (sb, st) = sim_run(algorithm, np, nbytes, root);
            assert_eq!(tb, sb, "{algorithm:?} np={np}");
            assert_eq!(tt, st, "{algorithm:?} np={np} traffic differs");
            let model = bcast_volume(algorithm, nbytes, np);
            assert_eq!(tt.total_msgs(), model.msgs);
            assert_eq!(tt.total_bytes(), model.bytes);
        }
    }
}

#[test]
fn rd_path_matches_on_pof2_worlds() {
    for &(np, nbytes, root) in &[(8usize, 2048usize, 2usize), (16, 999, 15)] {
        let (tb, tt) = thread_run(Algorithm::ScatterRdAllgather, np, nbytes, root);
        let (sb, st) = sim_run(Algorithm::ScatterRdAllgather, np, nbytes, root);
        assert_eq!(tb, sb);
        assert_eq!(tt, st);
    }
}

#[test]
fn simulator_protocols_do_not_change_delivered_bytes() {
    // eager vs rendezvous is a timing matter only: force each protocol and
    // check payloads are identical.
    let np = 12;
    let nbytes = 50_000;
    let src = pattern(nbytes, 9);
    let mut results = Vec::new();
    for eager_threshold in [0usize, usize::MAX] {
        let mut model = NetworkModel::uniform(100.0, 0.5);
        model.eager_threshold = eager_threshold;
        let out = SimWorld::run(model, Placement::new(4), np, |comm| {
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
            bcast_core::bcast_opt(comm, &mut buf, 0).unwrap();
            buf
        });
        assert!(out.results.iter().all(|b| b == &src));
        results.push(out.traffic);
    }
    assert_eq!(results[0], results[1], "traffic must not depend on protocol");
}

#[test]
fn flow_control_credits_preserve_semantics() {
    // Tight credits change timing, never results.
    let np = 16;
    let nbytes = 16 * 512;
    let src = pattern(nbytes, 11);
    for credits in [1usize, 2, 7, usize::MAX] {
        let mut model = NetworkModel::uniform(10.0, 1.0);
        model.eager_threshold = usize::MAX; // everything eager
        model.eager_credits = credits;
        let out = SimWorld::run(model, Placement::new(4), np, |comm| {
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
            bcast_core::bcast_opt(comm, &mut buf, 0).unwrap();
            assert_eq!(buf, src, "credits={credits}");
        });
        assert!(out.traffic.is_balanced());
        assert!(out.makespan_ns > 0.0);
    }
}

#[test]
fn virtual_time_is_deterministic_without_contention() {
    let run = || {
        let model = NetworkModel::uniform(123.0, 0.75);
        let out = SimWorld::run(model, Placement::new(6), 18, |comm| {
            let mut buf = if comm.rank() == 4 { pattern(3000, 1) } else { vec![0u8; 3000] };
            bcast_core::bcast_native(comm, &mut buf, 4).unwrap();
            comm.now_ns()
        });
        out.results
    };
    assert_eq!(run(), run());
}
