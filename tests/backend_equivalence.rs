//! The same collective code must behave identically on every executor:
//! identical payload delivery and identical traffic counters on the real
//! threaded runtime, on the virtual-time cluster simulator, and on the
//! discrete-event async executor — and a seeded fault plan must replay the
//! same observable history on all of them.

use bcast_core::traffic::bcast_volume;
use bcast_core::verify::pattern;
use bcast_core::{bcast_with, bcast_with_async, Algorithm};
use mpsim::{
    complete_now, AsyncCommunicator, CommError, Communicator, EventWorld, Rank, SyncComm, Tag,
    ThreadWorld,
};
use netsim::{presets, FaultPlan, FaultyComm, NetworkModel, Placement, SimWorld};

fn sim_run(
    algorithm: Algorithm,
    np: usize,
    nbytes: usize,
    root: usize,
) -> (Vec<Vec<u8>>, mpsim::WorldTraffic) {
    let preset = presets::hornet();
    let model = preset.model_for(nbytes, np);
    let src = pattern(nbytes, 5);
    let out = SimWorld::run(model, preset.placement(), np, |comm| {
        let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
        bcast_with(comm, &mut buf, root, algorithm).unwrap();
        buf
    });
    (out.results, out.traffic)
}

fn thread_run(
    algorithm: Algorithm,
    np: usize,
    nbytes: usize,
    root: usize,
) -> (Vec<Vec<u8>>, mpsim::WorldTraffic) {
    let src = pattern(nbytes, 5);
    let out = ThreadWorld::run(np, |comm| {
        let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
        bcast_with(comm, &mut buf, root, algorithm).unwrap();
        buf
    });
    (out.results, out.traffic)
}

fn event_run(
    algorithm: Algorithm,
    np: usize,
    nbytes: usize,
    root: usize,
) -> (Vec<Vec<u8>>, mpsim::WorldTraffic) {
    let src = pattern(nbytes, 5);
    let out = EventWorld::run(np, |comm| {
        let src = src.clone();
        async move {
            let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
            bcast_with_async(&comm, &mut buf, root, algorithm).await.unwrap();
            buf
        }
    });
    assert_reactor_invariants(&out.reactor, np, out.traffic.total_msgs());
    (out.results, out.traffic)
}

/// The reactor-accounting invariants schedcheck's protocol models verify in
/// the abstract (run-queue dedup, lane-mailbox routing), asserted here on
/// the concrete executor's counters — in the tests themselves, not just the
/// launch helpers:
///
/// * collective traffic never leaves the mailbox lanes' inline buckets;
/// * every rank task completes on exactly one `Ready` poll, so the dedup
///   wake accounting satisfies `wakeups == spurious_polls + P` — a drifted
///   counter or a double-enqueue breaks the identity from either side;
/// * every `Pending` poll is attributable to a delivered message (a budget
///   self-requeue) or a rank's startup poll: `spurious_polls ≤ msgs + P`.
///   The targeted wake paths exist to hold this line — a reactor that
///   ping-pongs tasks would blow through it while still delivering.
fn assert_reactor_invariants(reactor: &mpsim::ReactorStats, p: usize, msgs: u64) {
    assert_eq!(reactor.mailbox_spills, 0, "P={p}: collective traffic spilled a mailbox lane");
    assert_eq!(
        reactor.wakeups,
        reactor.spurious_polls + p as u64,
        "P={p}: wakeup/poll accounting identity broken"
    );
    assert!(
        reactor.spurious_polls <= msgs + p as u64,
        "P={p}: {} spurious polls exceed the {} messages + {p} startup polls that could \
         legitimately cause them",
        reactor.spurious_polls,
        msgs
    );
}

#[test]
fn same_payloads_and_traffic_on_both_backends() {
    for &algorithm in
        &[Algorithm::Binomial, Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned]
    {
        for &(np, nbytes, root) in &[(10usize, 997usize, 3usize), (24, 4096, 0), (9, 10, 8)] {
            let (tb, tt) = thread_run(algorithm, np, nbytes, root);
            let (sb, st) = sim_run(algorithm, np, nbytes, root);
            assert_eq!(tb, sb, "{algorithm:?} np={np}");
            assert_eq!(tt, st, "{algorithm:?} np={np} traffic differs");
            let model = bcast_volume(algorithm, nbytes, np);
            assert_eq!(tt.total_msgs(), model.msgs);
            assert_eq!(tt.total_bytes(), model.bytes);
        }
    }
}

#[test]
fn rd_path_matches_on_pof2_worlds() {
    for &(np, nbytes, root) in &[(8usize, 2048usize, 2usize), (16, 999, 15)] {
        let (tb, tt) = thread_run(Algorithm::ScatterRdAllgather, np, nbytes, root);
        let (sb, st) = sim_run(Algorithm::ScatterRdAllgather, np, nbytes, root);
        assert_eq!(tb, sb);
        assert_eq!(tt, st);
    }
}

#[test]
fn simulator_protocols_do_not_change_delivered_bytes() {
    // eager vs rendezvous is a timing matter only: force each protocol and
    // check payloads are identical.
    let np = 12;
    let nbytes = 50_000;
    let src = pattern(nbytes, 9);
    let mut results = Vec::new();
    for eager_threshold in [0usize, usize::MAX] {
        let mut model = NetworkModel::uniform(100.0, 0.5);
        model.eager_threshold = eager_threshold;
        let out = SimWorld::run(model, Placement::new(4), np, |comm| {
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
            bcast_core::bcast_opt(comm, &mut buf, 0).unwrap();
            buf
        });
        assert!(out.results.iter().all(|b| b == &src));
        results.push(out.traffic);
    }
    assert_eq!(results[0], results[1], "traffic must not depend on protocol");
}

#[test]
fn flow_control_credits_preserve_semantics() {
    // Tight credits change timing, never results.
    let np = 16;
    let nbytes = 16 * 512;
    let src = pattern(nbytes, 11);
    for credits in [1usize, 2, 7, usize::MAX] {
        let mut model = NetworkModel::uniform(10.0, 1.0);
        model.eager_threshold = usize::MAX; // everything eager
        model.eager_credits = credits;
        let out = SimWorld::run(model, Placement::new(4), np, |comm| {
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
            bcast_core::bcast_opt(comm, &mut buf, 0).unwrap();
            assert_eq!(buf, src, "credits={credits}");
        });
        assert!(out.traffic.is_balanced());
        assert!(out.makespan_ns > 0.0);
    }
}

#[test]
fn event_world_matches_thread_world() {
    for &algorithm in
        &[Algorithm::Binomial, Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned]
    {
        for &(np, nbytes, root) in &[(10usize, 997usize, 3usize), (24, 4096, 0), (9, 10, 8)] {
            let (tb, tt) = thread_run(algorithm, np, nbytes, root);
            let (eb, et) = event_run(algorithm, np, nbytes, root);
            assert_eq!(tb, eb, "{algorithm:?} np={np}: payloads differ across executors");
            assert_eq!(tt, et, "{algorithm:?} np={np}: traffic differs across executors");
        }
    }
    for &(np, nbytes, root) in &[(8usize, 2048usize, 2usize), (16, 999, 15)] {
        let (tb, tt) = thread_run(Algorithm::ScatterRdAllgather, np, nbytes, root);
        let (eb, et) = event_run(Algorithm::ScatterRdAllgather, np, nbytes, root);
        assert_eq!(tb, eb);
        assert_eq!(tt, et);
    }
}

/// Deterministic crash workload for the cross-executor fault test: rank 5
/// attempts six sends to rank 0 and fail-stops mid-sequence per the plan,
/// rank 0 consumes exactly the pre-crash messages, and three bystander
/// pairs exchange four rounds over the same decorated channel. Everything
/// observable — which sends succeed, the crash error, every counter — is a
/// pure function of the plan, never of scheduling.
async fn crash_workload<C: AsyncCommunicator>(comm: &C, plan: FaultPlan) -> (u64, bool) {
    const CRASH_RANK: Rank = 5;
    const CRASH_AFTER: u64 = 4;
    let faulty = FaultyComm::new(comm, plan);
    let me = comm.rank();
    let mut sends_ok = 0u64;
    match me {
        5 => {
            for round in 0..6u32 {
                match faulty.send(&[me as u8, round as u8], 0, Tag(round)).await {
                    Ok(()) => sends_ok += 1,
                    Err(e) => {
                        assert_eq!(e, CommError::PeerFailed { rank: CRASH_RANK });
                        break;
                    }
                }
            }
            assert_eq!(sends_ok, CRASH_AFTER, "crash clock fired at the wrong op");
        }
        0 => {
            // The test owns the plan, so it knows exactly which messages
            // exist: the CRASH_AFTER sends before the fail-stop.
            let mut buf = [0u8; 2];
            for round in 0..CRASH_AFTER as u32 {
                let n = faulty.recv(&mut buf, CRASH_RANK, Tag(round)).await.unwrap();
                assert_eq!((n, buf), (2, [CRASH_RANK as u8, round as u8]));
            }
        }
        _ => {
            // Bystander pairs (1,2), (3,4), (6,7) keep independent traffic
            // flowing through the same fault layer.
            let partner = match me {
                1 => 2,
                2 => 1,
                3 => 4,
                4 => 3,
                6 => 7,
                _ => 6,
            };
            for round in 0..4u8 {
                let out = [me as u8, round];
                let mut inb = [0u8; 2];
                let n = faulty
                    .sendrecv(&out, partner, Tag(9), &mut inb, partner, Tag(9))
                    .await
                    .unwrap();
                assert_eq!((n, inb), (2, [partner as u8, round]));
            }
        }
    }
    (sends_ok, faulty.crashed())
}

#[test]
fn fault_plan_replays_identically_on_event_world() {
    let seed = 0xFA17_5EED;
    let plan = || FaultPlan::new(seed).with_crash(5, 4);

    let tplan = plan();
    let tout = ThreadWorld::run(8, move |comm| {
        complete_now(crash_workload(&SyncComm::new(comm), tplan.clone()))
    });
    let eplan = plan();
    let eout = EventWorld::run(8, move |comm| {
        let eplan = eplan.clone();
        async move { crash_workload(&comm, eplan).await }
    });

    assert_eq!(tout.results, eout.results, "crash workload outcomes differ across executors");
    assert_eq!(tout.traffic, eout.traffic, "crash workload traffic differs across executors");
    // Only the planned rank crashed, exactly after its fourth send.
    assert_eq!(tout.results[5], (4, true));
    assert!(tout.results.iter().enumerate().all(|(r, &(_, dead))| dead == (r == 5)));
}

#[test]
fn virtual_time_is_deterministic_without_contention() {
    let run = || {
        let model = NetworkModel::uniform(123.0, 0.75);
        let out = SimWorld::run(model, Placement::new(6), 18, |comm| {
            let mut buf = if comm.rank() == 4 { pattern(3000, 1) } else { vec![0u8; 3000] };
            bcast_core::bcast_native(comm, &mut buf, 4).unwrap();
            comm.now_ns()
        });
        out.results
    };
    assert_eq!(run(), run());
}
