//! Stress tests: randomized sequences of mixed collectives executed twice —
//! once on the threaded runtime, once on the simulator — with bit-identical
//! payload results and identical traffic counters required, plus failure-
//! injection checks for teardown behaviour.

use bcast_core::allgather::allgather_bruck;
use bcast_core::alltoall::alltoall_auto;
use bcast_core::reduce::allreduce_rd;
use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use mpsim::{Communicator, ThreadWorld, WorldTraffic};
use netsim::{presets, SimWorld};

/// One deterministic pseudo-random op sequence, parameterized by seed.
fn op_sequence(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 5) as u8
        })
        .collect()
}

/// Run a mixed-collective program; returns a digest of every rank's state
/// and the run's traffic.
fn run_program<C: Communicator + ?Sized>(comm: &C, seed: u64) -> Vec<u8> {
    let size = comm.size();
    let me = comm.rank();
    let mut state = pattern(64 * size, seed ^ me as u64);
    for (step, op) in op_sequence(seed, 6).into_iter().enumerate() {
        let root = (seed as usize + step) % size;
        match op {
            0 => bcast_with(comm, &mut state, root, Algorithm::ScatterRingTuned).unwrap(),
            1 => bcast_with(comm, &mut state, root, Algorithm::ScatterRingNative).unwrap(),
            2 => bcast_with(comm, &mut state, root, Algorithm::Binomial).unwrap(),
            3 => {
                let mine: Vec<u8> = state[me * 64..(me + 1) * 64].to_vec();
                allgather_bruck(comm, &mine, &mut state).unwrap();
            }
            _ => {
                let send = state.clone();
                alltoall_auto(comm, &send, &mut state).unwrap();
            }
        }
        // mix so later ops depend on earlier results
        for (i, b) in state.iter_mut().enumerate() {
            *b = b.wrapping_add((i % 7) as u8).rotate_left(1);
        }
    }
    // fold in a reduction so every rank agrees on a digest
    let mut digest: Vec<u64> = state
        .chunks(8)
        .map(|c| c.iter().fold(0u64, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64)))
        .collect();
    // op must be commutative + associative for all ranks to agree
    allreduce_rd(comm, &mut digest, u64::wrapping_add).unwrap();
    digest.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn on_threads(np: usize, seed: u64) -> (Vec<Vec<u8>>, WorldTraffic) {
    let out = ThreadWorld::run(np, |comm| run_program(comm, seed));
    (out.results, out.traffic)
}

fn on_sim(np: usize, seed: u64) -> (Vec<Vec<u8>>, WorldTraffic) {
    let preset = presets::hornet();
    let out = SimWorld::run(preset.model_for(64 * np, np), preset.placement(), np, |comm| {
        run_program(comm, seed)
    });
    (out.results, out.traffic)
}

#[test]
fn random_programs_agree_across_backends() {
    for &np in &[3usize, 8, 13] {
        for seed in 1..=4u64 {
            let (tr, tt) = on_threads(np, seed);
            let (sr, st) = on_sim(np, seed);
            assert_eq!(tr, sr, "np={np} seed={seed}: payloads diverged");
            assert_eq!(tt, st, "np={np} seed={seed}: traffic diverged");
            // the final allreduce makes every rank's digest identical
            assert!(tr.windows(2).all(|w| w[0] == w[1]), "digest mismatch np={np}");
        }
    }
}

#[test]
fn panic_mid_collective_tears_down_both_backends() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    for backend in ["thread", "sim"] {
        let result = catch_unwind(AssertUnwindSafe(|| match backend {
            "thread" => {
                ThreadWorld::run(6, |comm| {
                    let mut buf = vec![0u8; 600];
                    if comm.rank() == 3 {
                        panic!("injected failure");
                    }
                    // peers block inside the collective until teardown
                    let _ = bcast_with(comm, &mut buf, 0, Algorithm::ScatterRingTuned);
                });
            }
            _ => {
                let preset = presets::hornet();
                SimWorld::run(preset.model_for(600, 6), preset.placement(), 6, |comm| {
                    let mut buf = vec![0u8; 600];
                    if comm.rank() == 3 {
                        panic!("injected failure");
                    }
                    let _ = bcast_with(comm, &mut buf, 0, Algorithm::ScatterRingTuned);
                });
            }
        }));
        assert!(result.is_err(), "{backend}: injected panic must propagate");
    }
}

#[test]
fn truncation_surfaces_cleanly_not_as_hang() {
    // A size-mismatched receive must error, not deadlock the world.
    let out = ThreadWorld::run(2, |comm| {
        if comm.rank() == 0 {
            comm.send(&[0u8; 100], 1, mpsim::Tag(1)).unwrap();
            Ok(0)
        } else {
            let mut small = [0u8; 10];
            comm.recv(&mut small, 0, mpsim::Tag(1)).map(|_| 0)
        }
    });
    assert!(matches!(out.results[1], Err(mpsim::CommError::Truncation { .. })));
}

#[test]
fn back_to_back_worlds_are_independent() {
    // No state may leak between consecutive worlds (fresh mailboxes,
    // fresh fabric): same seed twice gives identical results.
    let a = on_threads(5, 99);
    let b = on_threads(5, 99);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
