//! Backend-agnostic conformance suite for [`Communicator`] semantics.
//!
//! One generic battery of point-to-point semantics — self-messaging
//! sendrecv, zero-byte messages, truncation errors, out-of-order
//! `(source, tag)` matching — executed verbatim against both executors:
//! the threaded runtime and the virtual-time simulator. The CI feature
//! matrix re-runs this binary with `--features mpsim/fast-sync`, so the
//! same battery also covers the spin-then-park lock backend.

use mpsim::{CommError, Communicator, NonBlocking, Tag, ThreadWorld};
use netsim::{NetworkModel, Placement, SimWorld};

const WORLD: usize = 6;

/// The conformance battery. Runs on every rank of a `WORLD`-sized world;
/// panics (failing the hosting test) on any semantic violation.
///
/// Out-of-order receive sections pre-post their receives with `irecv` so the
/// battery is protocol-agnostic: under a rendezvous protocol a blocking
/// receive for a not-yet-sent message while the peer's earlier send is still
/// unmatched would deadlock (exactly as in MPI).
fn conformance_battery<C: Communicator + NonBlocking>(comm: &C) {
    assert_eq!(comm.size(), WORLD);
    let me = comm.rank();

    // --- sendrecv with self as both peers: must not deadlock and must
    // deliver the payload back (MPI_Sendrecv to MPI_PROC self).
    let sbuf = [me as u8; 17];
    let mut rbuf = [0u8; 17];
    let n = comm.sendrecv(&sbuf, me, Tag(1), &mut rbuf, me, Tag(1)).unwrap();
    assert_eq!(n, 17);
    assert_eq!(rbuf, sbuf, "self sendrecv must loop the payload back");

    // --- zero-byte messages are real messages: they match, complete, and
    // report length 0 (MPI semantics; used by barrier-style protocols).
    let right = mpsim::ring_right(me, WORLD);
    let left = mpsim::ring_left(me, WORLD);
    let mut empty: [u8; 0] = [];
    let n = comm.sendrecv(&[], right, Tag(2), &mut empty, left, Tag(2)).unwrap();
    assert_eq!(n, 0, "zero-byte message must deliver zero bytes");

    // --- zero-byte into a non-empty buffer leaves the buffer untouched.
    // Self-messaging must go through sendrecv: a blocking send to self is
    // a deadlock under rendezvous protocols (as in MPI without buffering).
    let mut untouched = [0xEEu8; 4];
    let n = comm.sendrecv(&[], me, Tag(3), &mut untouched, me, Tag(3)).unwrap();
    assert_eq!(n, 0);
    assert_eq!(untouched, [0xEE; 4]);

    // --- truncation: a message larger than the receive buffer is an error
    // at the receiver, and the error carries both sizes.
    comm.barrier().unwrap();
    if me == 0 {
        // Eager backends complete this send; rendezvous backends surface the
        // truncation at the sender too (it is still blocked at match time).
        // Both are MPI-conformant, so only the receiver's error is pinned.
        let _ = comm.send(&[7u8; 32], 1, Tag(4));
    } else if me == 1 {
        let mut small = [0u8; 8];
        let err = comm.recv(&mut small, 0, Tag(4)).unwrap_err();
        assert_eq!(err, CommError::Truncation { capacity: 8, incoming: 32 });
    }
    // The fabric may fail the (rendezvous) sender too; either way the world
    // must keep working afterwards for everyone else.
    comm.barrier().unwrap();

    // --- out-of-order matching on tags: receives posted for all three tags,
    // waited in a different order than the sends, still pair up by tag.
    if me == 2 {
        comm.send(&[10], 3, Tag(10)).unwrap();
        comm.send(&[20], 3, Tag(20)).unwrap();
        comm.send(&[30], 3, Tag(30)).unwrap();
    } else if me == 3 {
        let pending: Vec<_> =
            [30u32, 10, 20].iter().map(|&t| comm.irecv(1, 2, Tag(t)).unwrap()).collect();
        for (p, tag) in pending.into_iter().zip([30u32, 10, 20]) {
            let mut buf = [0u8; 1];
            comm.wait_recv(p, &mut buf).unwrap();
            assert_eq!(u32::from(buf[0]), tag, "tag {tag} matched the wrong message");
        }
    }

    // --- out-of-order matching on sources: a receiver can pick messages
    // from distinct sources in any order it likes.
    if me == 4 {
        let mut buf = [0u8; 1];
        // post receives in descending source order; sends arrive ascending
        for src in [3usize, 2, 1, 0] {
            comm.recv(&mut buf, src, Tag(5)).unwrap();
            assert_eq!(buf[0] as usize, src, "source {src} matched the wrong message");
        }
    } else if me < 4 {
        comm.send(&[me as u8], 4, Tag(5)).unwrap();
    }

    // --- per-(source, tag) FIFO survives interleaving with another tag.
    if me == 5 {
        comm.send(&[1], 0, Tag(7)).unwrap();
        comm.send(&[99], 0, Tag(8)).unwrap();
        comm.send(&[2], 0, Tag(7)).unwrap();
    } else if me == 0 {
        let a = comm.irecv(1, 5, Tag(7)).unwrap();
        let b = comm.irecv(1, 5, Tag(7)).unwrap();
        let c = comm.irecv(1, 5, Tag(8)).unwrap();
        let mut buf = [0u8; 1];
        comm.wait_recv(a, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
        comm.wait_recv(b, &mut buf).unwrap();
        assert_eq!(buf[0], 2, "same-tag messages must stay FIFO");
        comm.wait_recv(c, &mut buf).unwrap();
        assert_eq!(buf[0], 99);
    }

    comm.barrier().unwrap();
}

#[test]
fn threaded_backend_conforms() {
    ThreadWorld::run(WORLD, conformance_battery);
}

#[test]
fn simulated_backend_conforms_rendezvous() {
    // uniform model: rendezvous everywhere
    let model = NetworkModel::uniform(50.0, 1.0);
    SimWorld::run(model, Placement::new(4), WORLD, conformance_battery);
}

#[test]
fn simulated_backend_conforms_eager() {
    let mut model = NetworkModel::uniform(50.0, 1.0);
    model.eager_threshold = usize::MAX; // everything eager
    SimWorld::run(model, Placement::new(2), WORLD, conformance_battery);
}
