//! Backend-agnostic conformance suite for communicator semantics.
//!
//! One generic battery of point-to-point semantics — self-messaging
//! sendrecv, zero-byte messages, truncation errors, out-of-order
//! `(source, tag)` matching — executed verbatim against all three
//! executors: the threaded runtime, the virtual-time simulator, and the
//! discrete-event async executor. The batteries are written once against
//! [`AsyncCommunicator`]; the blocking backends drive them through the
//! [`SyncComm`] bridge (whose futures complete on first poll), the event
//! executor runs them as genuinely suspending tasks. The CI feature matrix
//! re-runs this binary with `--features mpsim/fast-sync`, so the same
//! battery also covers the spin-then-park lock backend.
//!
//! A second battery covers the fault layer: `recv_timeout` expiry
//! semantics, and `ReliableComm` masking seeded drop / duplication / delay
//! faults injected by `netsim::FaultyComm` — again on every executor (on
//! the event executor the retransmission timers run on the virtual clock).
//! Its deadline-edge companion pins what happens when the deadline equals
//! the delivery timestamp: queued messages beat expired deadlines, expiry
//! consumes nothing, and on the event executor the exact-coincidence case
//! (deadline and send on one virtual timestamp) resolves deterministically
//! by poll order — both resolutions pinned.
//! The fault plan is seeded from `TESTKIT_SEED` when set, so a failing run
//! replays bit-identically.
//!
//! A third battery pins the vectored-I/O surface: wire-format equivalence
//! between plain and vectored transfers (a single-span `send_vectored` is
//! indistinguishable from `send`; either side may be plain while the other
//! is vectored), empty segment lists as zero-byte messages, fail-fast
//! rejection of overlapping spans, and full-duplex `sendrecv_vectored`
//! exchange — on every executor and under the simulator's rendezvous
//! regime, where the combined call is the only deadlock-free shape.
//!
//! A fourth battery pins the shared-payload (zero-copy) surface:
//! `make_shared` snapshot semantics (mutating the source after
//! `send_shared` is unobservable at any receiver), wire-format equivalence
//! with plain and vectored transfers in both directions, sub-view slice
//! forwarding, `send_shared_to` fan-out, truncation on `recv_owned`, and
//! the fused `sendrecv_shared` exchange — including forwarding a received
//! envelope without copying, the ring allgather's hold chain. A decorator
//! companion drives the same calls through `SubComm` rank translation,
//! `ReliableComm` retransmission framing, and the recovery layer's
//! `GuardedComm` deadlines, proving the copy-fallback trait defaults keep
//! every wrapper correct without a native zero-copy path of its own.

use std::time::Duration;

use bcast_core::GuardedComm;
use mpsim::{
    complete_now, AsyncCommunicator, AsyncNonBlocking, CommError, EventWorld, IoSpan, ReliableComm,
    RetryConfig, SubComm, SyncComm, Tag, ThreadWorld,
};
use netsim::{FaultPlan, FaultyComm, LinkFaults, NetworkModel, Placement, SimWorld};

const WORLD: usize = 6;

/// Seed for the fault battery: `TESTKIT_SEED` (decimal or 0x-hex) when set,
/// a fixed default otherwise — either way the whole run is deterministic.
fn battery_seed() -> u64 {
    let Ok(raw) = std::env::var("TESTKIT_SEED") else {
        return 0xB0A7_CAFE_5EED_0001;
    };
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("TESTKIT_SEED={raw:?} is not a decimal or 0x-hex u64"))
}

/// The conformance battery. Runs on every rank of a `WORLD`-sized world;
/// panics (failing the hosting test) on any semantic violation.
///
/// Out-of-order receive sections pre-post their receives with `irecv` so the
/// battery is protocol-agnostic: under a rendezvous protocol a blocking
/// receive for a not-yet-sent message while the peer's earlier send is still
/// unmatched would deadlock (exactly as in MPI).
async fn conformance_battery<C: AsyncCommunicator + AsyncNonBlocking>(comm: &C) {
    assert_eq!(comm.size(), WORLD);
    let me = comm.rank();

    // --- sendrecv with self as both peers: must not deadlock and must
    // deliver the payload back (MPI_Sendrecv to MPI_PROC self).
    let sbuf = [me as u8; 17];
    let mut rbuf = [0u8; 17];
    let n = comm.sendrecv(&sbuf, me, Tag(1), &mut rbuf, me, Tag(1)).await.unwrap();
    assert_eq!(n, 17);
    assert_eq!(rbuf, sbuf, "self sendrecv must loop the payload back");

    // --- zero-byte messages are real messages: they match, complete, and
    // report length 0 (MPI semantics; used by barrier-style protocols).
    let right = mpsim::ring_right(me, WORLD);
    let left = mpsim::ring_left(me, WORLD);
    let mut empty: [u8; 0] = [];
    let n = comm.sendrecv(&[], right, Tag(2), &mut empty, left, Tag(2)).await.unwrap();
    assert_eq!(n, 0, "zero-byte message must deliver zero bytes");

    // --- zero-byte into a non-empty buffer leaves the buffer untouched.
    // Self-messaging must go through sendrecv: a blocking send to self is
    // a deadlock under rendezvous protocols (as in MPI without buffering).
    let mut untouched = [0xEEu8; 4];
    let n = comm.sendrecv(&[], me, Tag(3), &mut untouched, me, Tag(3)).await.unwrap();
    assert_eq!(n, 0);
    assert_eq!(untouched, [0xEE; 4]);

    // --- truncation: a message larger than the receive buffer is an error
    // at the receiver, and the error carries both sizes.
    comm.barrier().await.unwrap();
    if me == 0 {
        // Eager backends complete this send; rendezvous backends surface the
        // truncation at the sender too (it is still blocked at match time).
        // Both are MPI-conformant, so only the receiver's error is pinned.
        let _ = comm.send(&[7u8; 32], 1, Tag(4)).await;
    } else if me == 1 {
        let mut small = [0u8; 8];
        let err = comm.recv(&mut small, 0, Tag(4)).await.unwrap_err();
        assert_eq!(err, CommError::Truncation { capacity: 8, incoming: 32 });
    }
    // The fabric may fail the (rendezvous) sender too; either way the world
    // must keep working afterwards for everyone else.
    comm.barrier().await.unwrap();

    // --- out-of-order matching on tags: receives posted for all three tags,
    // waited in a different order than the sends, still pair up by tag.
    if me == 2 {
        comm.send(&[10], 3, Tag(10)).await.unwrap();
        comm.send(&[20], 3, Tag(20)).await.unwrap();
        comm.send(&[30], 3, Tag(30)).await.unwrap();
    } else if me == 3 {
        let pending: Vec<_> =
            [30u32, 10, 20].iter().map(|&t| comm.irecv(1, 2, Tag(t)).unwrap()).collect();
        for (p, tag) in pending.into_iter().zip([30u32, 10, 20]) {
            let mut buf = [0u8; 1];
            comm.wait_recv(p, &mut buf).await.unwrap();
            assert_eq!(u32::from(buf[0]), tag, "tag {tag} matched the wrong message");
        }
    }

    // --- out-of-order matching on sources: a receiver can pick messages
    // from distinct sources in any order it likes.
    if me == 4 {
        let mut buf = [0u8; 1];
        // post receives in descending source order; sends arrive ascending
        for src in [3usize, 2, 1, 0] {
            comm.recv(&mut buf, src, Tag(5)).await.unwrap();
            assert_eq!(buf[0] as usize, src, "source {src} matched the wrong message");
        }
    } else if me < 4 {
        comm.send(&[me as u8], 4, Tag(5)).await.unwrap();
    }

    // --- per-(source, tag) FIFO survives interleaving with another tag.
    if me == 5 {
        comm.send(&[1], 0, Tag(7)).await.unwrap();
        comm.send(&[99], 0, Tag(8)).await.unwrap();
        comm.send(&[2], 0, Tag(7)).await.unwrap();
    } else if me == 0 {
        let a = comm.irecv(1, 5, Tag(7)).unwrap();
        let b = comm.irecv(1, 5, Tag(7)).unwrap();
        let c = comm.irecv(1, 5, Tag(8)).unwrap();
        let mut buf = [0u8; 1];
        comm.wait_recv(a, &mut buf).await.unwrap();
        assert_eq!(buf[0], 1);
        comm.wait_recv(b, &mut buf).await.unwrap();
        assert_eq!(buf[0], 2, "same-tag messages must stay FIFO");
        comm.wait_recv(c, &mut buf).await.unwrap();
        assert_eq!(buf[0], 99);
    }

    comm.barrier().await.unwrap();
}

/// The vectored-I/O battery. Every exchange is either pairwise one-way
/// (`me ^ 1` — `WORLD` is even) or a combined `sendrecv_vectored`, so the
/// battery is rendezvous-safe and runs verbatim under every regime.
async fn vectored_battery<C: AsyncCommunicator>(comm: &C) {
    assert_eq!(comm.size(), WORLD);
    let me = comm.rank();
    let partner = me ^ 1;

    // --- wire format: a k-span envelope is the concatenation of its
    // segments in list order, with no framing — so plain and vectored calls
    // are freely mixable per direction.
    let src: Vec<u8> = (0..32u8).collect();
    if me.is_multiple_of(2) {
        comm.send_vectored(&src, &[IoSpan::new(24, 4), IoSpan::new(4, 3)], partner, Tag(60))
            .await
            .unwrap();
        // single segment ≡ plain send: the receiver uses plain recv…
        comm.send_vectored(&src, &[IoSpan::new(3, 5)], partner, Tag(61)).await.unwrap();
        // …and a plain send scatters fine at the receiver.
        comm.send(&src[10..16], partner, Tag(62)).await.unwrap();
        // empty segment list = a real zero-byte message.
        comm.send_vectored(&src, &[], partner, Tag(63)).await.unwrap();
    } else {
        let mut buf = [0u8; 7];
        assert_eq!(comm.recv(&mut buf, partner, Tag(60)).await.unwrap(), 7);
        assert_eq!(buf[..4], src[24..28]);
        assert_eq!(buf[4..], src[4..7]);
        let mut plain = [0u8; 5];
        assert_eq!(comm.recv(&mut plain, partner, Tag(61)).await.unwrap(), 5);
        assert_eq!(plain[..], src[3..8]);
        let mut scat = [0xEEu8; 12];
        let n = comm
            .recv_scattered(&mut scat, &[IoSpan::new(9, 3), IoSpan::new(0, 3)], partner, Tag(62))
            .await
            .unwrap();
        assert_eq!(n, 6);
        assert_eq!(scat[9..12], src[10..13]);
        assert_eq!(scat[..3], src[13..16]);
        assert_eq!(scat[3..9], [0xEE; 6], "bytes outside the spans must stay untouched");
        let mut keep = [0xAAu8; 4];
        assert_eq!(comm.recv_scattered(&mut keep, &[], partner, Tag(63)).await.unwrap(), 0);
        assert_eq!(keep, [0xAA; 4], "zero-byte scatter must write nothing");
    }
    comm.barrier().await.unwrap();

    // --- span validation fails fast, before any traffic moves (no peer is
    // listening on Tag(64); reaching the barrier proves nothing was sent).
    let mut buf = [0u8; 16];
    let overlap = [IoSpan::new(0, 4), IoSpan::new(2, 4)];
    assert!(matches!(
        comm.send_vectored(&buf, &overlap, partner, Tag(64)).await.unwrap_err(),
        CommError::SpanOverlap { .. }
    ));
    assert!(matches!(
        comm.recv_scattered(&mut buf, &overlap, partner, Tag(64)).await.unwrap_err(),
        CommError::SpanOverlap { .. }
    ));
    // The send and receive lists of one combined call must also be
    // mutually disjoint — they alias the same buffer.
    assert!(matches!(
        comm.sendrecv_vectored(
            &mut buf,
            &[IoSpan::new(0, 8)],
            partner,
            Tag(64),
            &[IoSpan::new(4, 8)],
            partner,
            Tag(64),
        )
        .await
        .unwrap_err(),
        CommError::SpanOverlap { .. }
    ));
    assert!(matches!(
        comm.send_vectored(&buf, &[IoSpan::new(12, 8)], partner, Tag(64)).await.unwrap_err(),
        CommError::OutOfBounds { .. }
    ));
    comm.barrier().await.unwrap();

    // --- full-duplex vectored exchange around the ring: each rank forwards
    // two quarters of its buffer while absorbing the left neighbor's —
    // the coalescing ring's inner step, safe under rendezvous.
    let right = mpsim::ring_right(me, WORLD);
    let left = mpsim::ring_left(me, WORLD);
    let mut ring = [0u8; 16];
    ring[..8].fill(me as u8);
    let n = comm
        .sendrecv_vectored(
            &mut ring,
            &[IoSpan::new(0, 4), IoSpan::new(4, 4)],
            right,
            Tag(65),
            &[IoSpan::new(8, 4), IoSpan::new(12, 4)],
            left,
            Tag(65),
        )
        .await
        .unwrap();
    assert_eq!(n, 8);
    assert!(ring[8..].iter().all(|&b| b == left as u8), "ring exchange delivered wrong payload");
    comm.barrier().await.unwrap();
}

/// The fault battery: timeout semantics on the bare communicator, then
/// `ReliableComm` over `FaultyComm` under seeded drop, duplication, and
/// delay faults. Requires an eagerly-delivering transport (`FaultyComm`'s
/// send-side injection and `ReliableComm`'s sendrecv pump both document
/// this), so the simulator runs it on an all-eager model only; the event
/// executor is always eager and runs every timeout on its virtual clock.
async fn fault_battery<C: AsyncCommunicator>(comm: &C, seed: u64) {
    assert_eq!(comm.size(), WORLD);
    let me = comm.rank();
    let right = mpsim::ring_right(me, WORLD);
    let left = mpsim::ring_left(me, WORLD);

    // --- recv_timeout expiry is an error that consumes nothing: the same
    // receive succeeds once the message actually exists.
    if me == 0 {
        let mut buf = [0u8; 4];
        let err =
            comm.recv_timeout(&mut buf, 1, Tag(40), Duration::from_millis(20)).await.unwrap_err();
        assert_eq!(err, CommError::Timeout { peer: 1 });
    }
    comm.barrier().await.unwrap();
    if me == 1 {
        comm.send(&[9, 9, 9, 9], 0, Tag(40)).await.unwrap();
    } else if me == 0 {
        let mut buf = [0u8; 4];
        let n = comm.recv_timeout(&mut buf, 1, Tag(40), Duration::from_secs(5)).await.unwrap();
        assert_eq!((n, buf), (4, [9, 9, 9, 9]), "late message must still arrive intact");
    }
    comm.barrier().await.unwrap();

    // Short timeouts keep retransmission cheap; the attempt budget makes a
    // permanent failure under these loss rates astronomically unlikely.
    let retry = RetryConfig {
        base_timeout: Duration::from_millis(5),
        max_timeout: Duration::from_millis(40),
        max_attempts: 12,
    };
    let scenarios: [(&str, u32, LinkFaults); 3] = [
        ("drop", 41, LinkFaults { drop_ppm: 150_000, dup_ppm: 0, delay_ppm: 0 }),
        ("dup", 42, LinkFaults { drop_ppm: 0, dup_ppm: 1_000_000, delay_ppm: 0 }),
        ("mixed", 43, LinkFaults { drop_ppm: 100_000, dup_ppm: 200_000, delay_ppm: 200_000 }),
    ];
    for (label, tag, faults) in scenarios {
        let plan = FaultPlan::new(seed ^ u64::from(tag)).with_default(faults);
        let faulty = FaultyComm::new(comm, plan);
        let rc = ReliableComm::with_config(&faulty, retry);
        // Ring exchange with per-round payloads: delivery, ordering, and
        // duplicate suppression are all visible in the asserted bytes.
        for round in 0..8u8 {
            let out = [me as u8, round];
            let mut inb = [0u8; 2];
            let n = rc
                .sendrecv(&out, right, Tag(tag), &mut inb, left, Tag(tag))
                .await
                .unwrap_or_else(|e| panic!("{label}: rank {me} round {round} sendrecv: {e:?}"));
            assert_eq!(
                (n, inb),
                (2, [left as u8, round]),
                "{label}: round {round} payload corrupted or out of order"
            );
        }
        comm.barrier().await.unwrap();
        // Fan-in to rank 0 on a fresh tag: cross-source interleaving under
        // the same faults must still deliver one intact stream per source.
        let fan = Tag(tag + 100);
        if me == 0 {
            let mut buf = [0u8; 2];
            for src in 1..WORLD {
                for round in 0..4u8 {
                    rc.recv(&mut buf, src, fan).await.unwrap();
                    assert_eq!(buf, [src as u8, round], "{label}: fan-in stream broke");
                }
            }
        } else {
            for round in 0..4u8 {
                rc.send(&[me as u8, round], 0, fan).await.unwrap();
            }
        }
        comm.barrier().await.unwrap();
    }

    // --- vectored passthrough: the retry protocol frames a k-span envelope
    // exactly like a plain payload (one sequence number, one fault decision,
    // one ACK), so seeded faults are masked for vectored traffic too.
    let plan = FaultPlan::new(seed ^ 0x5EED_10C4).with_default(LinkFaults {
        drop_ppm: 120_000,
        dup_ppm: 150_000,
        delay_ppm: 150_000,
    });
    let faulty = FaultyComm::new(comm, plan);
    let rc = ReliableComm::with_config(&faulty, retry);
    let vtag = Tag(144);
    let mut ring = [0u8; 8];
    for round in 0..6u8 {
        ring[..4].copy_from_slice(&[me as u8, round, 0x55, 0xAA]);
        let n = rc
            .sendrecv_vectored(
                &mut ring,
                &[IoSpan::new(0, 2), IoSpan::new(2, 2)],
                right,
                vtag,
                &[IoSpan::new(4, 2), IoSpan::new(6, 2)],
                left,
                vtag,
            )
            .await
            .unwrap_or_else(|e| panic!("vectored: rank {me} round {round}: {e:?}"));
        assert_eq!(n, 4);
        assert_eq!(ring[4..], [left as u8, round, 0x55, 0xAA], "vectored stream corrupted");
    }
    comm.barrier().await.unwrap();
}

/// The deadline-edge battery: `recv_timeout` when the deadline has already
/// expired at evaluation time — the boundary the recovery layer's failure
/// detector lives on. The portable contract, pinned on every executor:
///
/// * **Queued message wins.** Expiry is judged only after the mailbox is
///   consulted, so a receive whose deadline is already past (zero timeout)
///   still delivers a message that was queued beforehand — the
///   `deadline == delivery timestamp` edge resolves in favor of the data.
/// * **Expiry consumes nothing.** A timed-out receive leaves the channel
///   untouched; a message sent afterwards is delivered intact to the next
///   matching receive.
async fn timeout_edge_battery<C: AsyncCommunicator>(comm: &C) {
    assert_eq!(comm.size(), WORLD);
    let me = comm.rank();

    // --- arm order 1: the message is already queued when the receive is
    // posted with an already-expired (zero) deadline: the message wins.
    if me == 1 {
        comm.send(&[0xAB], 0, Tag(70)).await.unwrap();
    }
    comm.barrier().await.unwrap();
    if me == 0 {
        let mut buf = [0u8; 1];
        let n = comm.recv_timeout(&mut buf, 1, Tag(70), Duration::ZERO).await.unwrap();
        assert_eq!((n, buf[0]), (1, 0xAB), "queued message must beat an expired deadline");
    }
    comm.barrier().await.unwrap();

    // --- arm order 2: the deadline expires on an empty channel; the late
    // message is not consumed by the failed receive.
    if me == 0 {
        let mut buf = [0u8; 1];
        let err = comm.recv_timeout(&mut buf, 1, Tag(71), Duration::ZERO).await.unwrap_err();
        assert_eq!(err, CommError::Timeout { peer: 1 });
    }
    comm.barrier().await.unwrap();
    if me == 1 {
        comm.send(&[0xCD], 0, Tag(71)).await.unwrap();
    } else if me == 0 {
        let mut buf = [0u8; 1];
        let n = comm.recv(&mut buf, 1, Tag(71)).await.unwrap();
        assert_eq!((n, buf[0]), (1, 0xCD), "expiry must not consume the late message");
    }
    comm.barrier().await.unwrap();
}

/// The shared-payload battery. Every exchange is pairwise (`me ^ 1`) or a
/// fused `sendrecv_shared`, so it is rendezvous-safe and runs verbatim on
/// every executor and under both simulator regimes.
async fn shared_battery<C: AsyncCommunicator>(comm: &C) {
    assert_eq!(comm.size(), WORLD);
    let me = comm.rank();
    let partner = me ^ 1;

    // --- snapshot semantics: `make_shared` captures the bytes at call
    // time, so mutating the source buffer after `send_shared` must be
    // unobservable at the receiver — the aliasing hazard zero-copy
    // forwarding would otherwise open. The mutation strictly precedes the
    // second send, so a backend that kept a live reference into `src`
    // would fail the Tag(81) assertion deterministically.
    if me.is_multiple_of(2) {
        let mut src: Vec<u8> = (0..48u8).map(|i| i.wrapping_mul(7) ^ me as u8).collect();
        let shared = comm.make_shared(&src);
        assert_eq!(shared.shares(), 1, "fresh snapshot must be sole owner");
        let extra = shared.clone();
        assert_eq!(shared.shares(), 2, "a clone is a refcount bump");
        drop(extra);
        comm.send_shared(&shared, partner, Tag(80)).await.unwrap();
        src.fill(0xFF); // sender-side mutation after the send
        comm.send_shared(&shared, partner, Tag(81)).await.unwrap();
    } else {
        let expect: Vec<u8> = (0..48u8).map(|i| i.wrapping_mul(7) ^ partner as u8).collect();
        // Oversized capacity behaves like an oversized receive buffer: the
        // envelope arrives at its true length.
        let env = comm.recv_owned(64, partner, Tag(80)).await.unwrap();
        assert_eq!(env.len(), 48);
        assert_eq!(&env[..], &expect[..]);
        let env = comm.recv_owned(48, partner, Tag(81)).await.unwrap();
        assert_eq!(
            &env[..],
            &expect[..],
            "source mutation after send_shared leaked into the envelope"
        );
    }
    comm.barrier().await.unwrap();

    // --- wire-format equivalence: a shared envelope is indistinguishable
    // from a plain or vectored transfer of the same bytes, in either
    // direction, including shared sub-view slices.
    let src: Vec<u8> = (0..32u8).map(|i| i.wrapping_add(9)).collect();
    if me.is_multiple_of(2) {
        let shared = comm.make_shared(&src);
        // shared send → scattered receive
        comm.send_shared(&shared.slice(4..10), partner, Tag(82)).await.unwrap();
        // shared send → plain receive
        comm.send_shared(&shared.slice(20..32), partner, Tag(83)).await.unwrap();
        // vectored send → owned receive
        comm.send_vectored(&src, &[IoSpan::new(24, 4), IoSpan::new(0, 3)], partner, Tag(84))
            .await
            .unwrap();
        // zero-byte shared envelopes are real messages
        comm.send_shared(&shared.slice(8..8), partner, Tag(85)).await.unwrap();
    } else {
        let mut scat = [0xEEu8; 8];
        let n = comm
            .recv_scattered(&mut scat, &[IoSpan::new(5, 3), IoSpan::new(0, 3)], partner, Tag(82))
            .await
            .unwrap();
        assert_eq!(n, 6);
        assert_eq!(scat[5..8], src[4..7]);
        assert_eq!(scat[..3], src[7..10]);
        let mut plain = [0u8; 12];
        assert_eq!(comm.recv(&mut plain, partner, Tag(83)).await.unwrap(), 12);
        assert_eq!(plain[..], src[20..32]);
        let env = comm.recv_owned(16, partner, Tag(84)).await.unwrap();
        assert_eq!(env.len(), 7);
        assert_eq!(env[..4], src[24..28]);
        assert_eq!(env[4..], src[..3]);
        let empty = comm.recv_owned(0, partner, Tag(85)).await.unwrap();
        assert_eq!(empty.len(), 0, "zero-byte shared envelope must deliver empty");
    }
    comm.barrier().await.unwrap();

    // --- truncation: an envelope longer than `capacity` is an error at
    // the receiver, exactly as for a too-small receive buffer. (Rendezvous
    // backends may surface the failure at the sender too; only the
    // receiver's error is pinned — same contract as the plain battery.)
    if me == 0 {
        let shared = comm.make_shared(&[7u8; 32]);
        let _ = comm.send_shared(&shared, 1, Tag(86)).await;
    } else if me == 1 {
        let err = comm.recv_owned(8, 0, Tag(86)).await.unwrap_err();
        assert_eq!(err, CommError::Truncation { capacity: 8, incoming: 32 });
    }
    comm.barrier().await.unwrap();

    // --- send_shared_to fan-out: one snapshot, refcount clones to a list
    // of children — the broadcast hot loop's shape.
    if me == 0 {
        let shared = comm.make_shared(&[0xC3; 24]);
        comm.send_shared_to(&[1, 2, 3], &shared, Tag(87)).await.unwrap();
        comm.send_shared_to(&[], &shared, Tag(87)).await.unwrap(); // empty list is a no-op
    } else if me <= 3 {
        let env = comm.recv_owned(24, 0, Tag(87)).await.unwrap();
        assert_eq!(&env[..], &[0xC3; 24], "fan-out clone corrupted");
    }
    comm.barrier().await.unwrap();

    // --- fused exchange around the ring, then forward the received
    // envelope itself: the allgather hold chain. Step two sends the step-one
    // envelope with no intervening copy, so the payload two hops left must
    // arrive intact — and the held clone must still read its own bytes
    // afterwards (forwarding must not invalidate the holder's view).
    let right = mpsim::ring_right(me, WORLD);
    let left = mpsim::ring_left(me, WORLD);
    let left2 = mpsim::ring_left(left, WORLD);
    let mine = comm.make_shared(&[me as u8; 8]);
    let env = comm.sendrecv_shared(&mine, right, Tag(88), 8, left, Tag(88)).await.unwrap();
    assert_eq!(&env[..], &[left as u8; 8], "ring step 1 delivered wrong payload");
    let env2 = comm.sendrecv_shared(&env, right, Tag(89), 8, left, Tag(89)).await.unwrap();
    assert_eq!(&env2[..], &[left2 as u8; 8], "forwarded envelope corrupted");
    assert_eq!(&env[..], &[left as u8; 8], "forwarding must not disturb the held view");
    comm.barrier().await.unwrap();
}

/// Decorator passthrough for the shared-payload surface: the copy-fallback
/// trait defaults must keep every wrapper correct — `SubComm` translates
/// ranks, `ReliableComm` frames each payload in its retransmission
/// protocol, `GuardedComm` bounds each receive with a deadline — even
/// though none of them implements a native zero-copy path. Requires an
/// eagerly-delivering transport (`GuardedComm` decomposes `sendrecv` and
/// `ReliableComm` pumps ACKs), like the fault battery.
async fn shared_decorator_battery<C: AsyncCommunicator>(comm: &C) {
    assert_eq!(comm.size(), WORLD);
    let me = comm.rank();

    // --- SubComm with reversed members: local rank r is parent rank
    // WORLD-1-r, so a pairwise exchange in local space crosses translated
    // parent ranks.
    let members: Vec<usize> = (0..WORLD).rev().collect();
    let sub = SubComm::new_async(comm, members).expect("every rank is a member");
    let lme = sub.rank();
    let lpartner = lme ^ 1;
    if lme.is_multiple_of(2) {
        let shared = sub.make_shared(&[lme as u8; 16]);
        sub.send_shared(&shared, lpartner, Tag(90)).await.unwrap();
    } else {
        let env = sub.recv_owned(16, lpartner, Tag(90)).await.unwrap();
        assert_eq!(&env[..], &[lpartner as u8; 16], "SubComm mistranslated a shared send");
    }
    let lright = mpsim::ring_right(lme, WORLD);
    let lleft = mpsim::ring_left(lme, WORLD);
    let mine = sub.make_shared(&[lme as u8; 4]);
    let env = sub.sendrecv_shared(&mine, lright, Tag(91), 4, lleft, Tag(91)).await.unwrap();
    assert_eq!(&env[..], &[lleft as u8; 4], "SubComm fused exchange broke");
    sub.barrier().await.unwrap();

    // --- ReliableComm: the fallback send travels inside the ACK protocol;
    // sequence numbers and retransmission state must frame it like any
    // plain payload.
    let retry = RetryConfig {
        base_timeout: Duration::from_millis(50),
        max_timeout: Duration::from_millis(200),
        max_attempts: 8,
    };
    let rc = ReliableComm::with_config(comm, retry);
    let partner = me ^ 1;
    if me.is_multiple_of(2) {
        let shared = rc.make_shared(&[0xA5; 12]);
        rc.send_shared(&shared, partner, Tag(92)).await.unwrap();
        let env = rc.recv_owned(12, partner, Tag(93)).await.unwrap();
        assert_eq!(&env[..], &[0x5A; 12]);
    } else {
        let env = rc.recv_owned(12, partner, Tag(92)).await.unwrap();
        assert_eq!(&env[..], &[0xA5; 12], "ReliableComm framing corrupted a shared payload");
        let shared = rc.make_shared(&[0x5A; 12]);
        rc.send_shared(&shared, partner, Tag(93)).await.unwrap();
    }
    comm.barrier().await.unwrap();

    // --- GuardedComm: deadline-bounded receives under the recovery layer;
    // the shared surface must flow through its timeout plumbing untouched.
    let guarded = GuardedComm::new(comm, Duration::from_secs(5));
    if me.is_multiple_of(2) {
        let shared = guarded.make_shared(&[0x3C; 20]);
        guarded.send_shared_to(&[partner], &shared, Tag(94)).await.unwrap();
    } else {
        let env = guarded.recv_owned(20, partner, Tag(94)).await.unwrap();
        assert_eq!(&env[..], &[0x3C; 20], "GuardedComm deadline plumbing corrupted a payload");
    }
    comm.barrier().await.unwrap();
}

#[test]
fn threaded_backend_conforms() {
    ThreadWorld::run(WORLD, |comm| complete_now(conformance_battery(&SyncComm::new(comm))));
}

#[test]
fn threaded_backend_vectored_conforms() {
    ThreadWorld::run(WORLD, |comm| complete_now(vectored_battery(&SyncComm::new(comm))));
}

#[test]
fn simulated_backend_vectored_conforms_rendezvous() {
    let model = NetworkModel::uniform(50.0, 1.0);
    SimWorld::run(model, Placement::new(4), WORLD, |comm| {
        complete_now(vectored_battery(&SyncComm::new(comm)))
    });
}

#[test]
fn simulated_backend_vectored_conforms_eager() {
    let mut model = NetworkModel::uniform(50.0, 1.0);
    model.eager_threshold = usize::MAX;
    SimWorld::run(model, Placement::new(2), WORLD, |comm| {
        complete_now(vectored_battery(&SyncComm::new(comm)))
    });
}

#[test]
fn threaded_backend_masks_seeded_faults() {
    let seed = battery_seed();
    ThreadWorld::run(WORLD, move |comm| complete_now(fault_battery(&SyncComm::new(comm), seed)));
}

#[test]
fn simulated_backend_masks_seeded_faults() {
    let seed = battery_seed();
    let mut model = NetworkModel::uniform(50.0, 1.0);
    model.eager_threshold = usize::MAX; // fault battery needs eager delivery
    SimWorld::run(model, Placement::new(2), WORLD, move |comm| {
        complete_now(fault_battery(&SyncComm::new(comm), seed))
    });
}

#[test]
fn simulated_backend_conforms_rendezvous() {
    // uniform model: rendezvous everywhere
    let model = NetworkModel::uniform(50.0, 1.0);
    SimWorld::run(model, Placement::new(4), WORLD, |comm| {
        complete_now(conformance_battery(&SyncComm::new(comm)))
    });
}

#[test]
fn simulated_backend_conforms_eager() {
    let mut model = NetworkModel::uniform(50.0, 1.0);
    model.eager_threshold = usize::MAX; // everything eager
    SimWorld::run(model, Placement::new(2), WORLD, |comm| {
        complete_now(conformance_battery(&SyncComm::new(comm)))
    });
}

#[test]
fn event_backend_conforms() {
    EventWorld::run(WORLD, |comm| async move { conformance_battery(&comm).await });
}

#[test]
fn event_backend_vectored_conforms() {
    EventWorld::run(WORLD, |comm| async move { vectored_battery(&comm).await });
}

#[test]
fn event_backend_masks_seeded_faults() {
    let seed = battery_seed();
    EventWorld::run(WORLD, move |comm| async move { fault_battery(&comm, seed).await });
}

#[test]
fn threaded_backend_shared_conforms() {
    ThreadWorld::run(WORLD, |comm| complete_now(shared_battery(&SyncComm::new(comm))));
}

#[test]
fn simulated_backend_shared_conforms_rendezvous() {
    let model = NetworkModel::uniform(50.0, 1.0);
    SimWorld::run(model, Placement::new(4), WORLD, |comm| {
        complete_now(shared_battery(&SyncComm::new(comm)))
    });
}

#[test]
fn simulated_backend_shared_conforms_eager() {
    let mut model = NetworkModel::uniform(50.0, 1.0);
    model.eager_threshold = usize::MAX;
    SimWorld::run(model, Placement::new(2), WORLD, |comm| {
        complete_now(shared_battery(&SyncComm::new(comm)))
    });
}

#[test]
fn event_backend_shared_conforms() {
    EventWorld::run(WORLD, |comm| async move { shared_battery(&comm).await });
}

#[test]
fn threaded_backend_shared_decorators_conform() {
    ThreadWorld::run(WORLD, |comm| complete_now(shared_decorator_battery(&SyncComm::new(comm))));
}

#[test]
fn simulated_backend_shared_decorators_conform() {
    let mut model = NetworkModel::uniform(50.0, 1.0);
    model.eager_threshold = usize::MAX; // GuardedComm/ReliableComm need eager delivery
    SimWorld::run(model, Placement::new(2), WORLD, |comm| {
        complete_now(shared_decorator_battery(&SyncComm::new(comm)))
    });
}

#[test]
fn event_backend_shared_decorators_conform() {
    EventWorld::run(WORLD, |comm| async move { shared_decorator_battery(&comm).await });
}

#[test]
fn threaded_backend_timeout_edges_conform() {
    ThreadWorld::run(WORLD, |comm| complete_now(timeout_edge_battery(&SyncComm::new(comm))));
}

#[test]
fn simulated_backend_timeout_edges_conform() {
    let mut model = NetworkModel::uniform(50.0, 1.0);
    model.eager_threshold = usize::MAX; // queued-wins needs eager delivery
    SimWorld::run(model, Placement::new(2), WORLD, |comm| {
        complete_now(timeout_edge_battery(&SyncComm::new(comm)))
    });
}

#[test]
fn event_backend_timeout_edges_conform() {
    EventWorld::run(WORLD, |comm| async move { timeout_edge_battery(&comm).await });
}

/// The true simultaneity case, only expressible on a virtual clock: the
/// receiver's deadline and the sender's send land on the *same* event-world
/// timestamp. The executor resolves the tie by task poll order (rank
/// order), and the mailbox-before-deadline rule makes both resolutions
/// principled:
///
/// * receiver polled first → its mailbox is still empty at the deadline
///   instant → `Timeout`, even though the message materializes at the same
///   timestamp;
/// * sender polled first → the message is queued by the time the expired
///   receiver is polled → delivered.
///
/// Both outcomes are pinned, with `now_ns` equality proving the
/// coincidence is exact — this is the determinism contract the chaos
/// search's replay-by-seed rests on.
#[test]
fn event_backend_deadline_equal_to_delivery_timestamp() {
    const EDGE: Duration = Duration::from_millis(5);
    for (sender, receiver, delivered) in [(1usize, 0usize, false), (0, 1, true)] {
        let out = EventWorld::run(2, |comm| async move {
            let me = comm.rank();
            let mut buf = [0u8; 1];
            let res = if me == sender {
                // Burn exactly EDGE of virtual time with a self-targeted
                // receive (self receives are exempt from exited-peer
                // detection, so this is a pure timer).
                comm.recv_timeout(&mut buf, me, Tag(99), EDGE).await.unwrap_err();
                comm.send(&[0x77], receiver, Tag(70)).await.unwrap();
                Ok(0)
            } else {
                comm.recv_timeout(&mut buf, sender, Tag(70), EDGE).await
            };
            // Keep both ranks in the world until the edge resolves, so the
            // receiver's verdict is about the deadline, not a peer exit.
            let at = comm.now_ns();
            comm.barrier().await.unwrap();
            (res, at, buf[0])
        });
        let (send_res, send_at, _) = &out.results[sender];
        let (recv_res, recv_at, payload) = &out.results[receiver];
        assert_eq!(send_res, &Ok(0));
        assert_eq!(send_at, recv_at, "send and deadline must share one timestamp");
        assert_eq!(*recv_at, EDGE.as_nanos() as u64);
        if delivered {
            assert_eq!((recv_res, *payload), (&Ok(1), 0x77), "queued-at-poll message must win");
        } else {
            assert_eq!(
                recv_res,
                &Err(CommError::Timeout { peer: sender }),
                "empty-at-poll deadline must expire"
            );
        }
    }
}
