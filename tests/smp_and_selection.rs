//! Cross-crate tests of the SMP-aware three-phase broadcast and of MPICH's
//! automatic selection, running on the simulated cluster.

use bcast_core::smp::{bcast_smp, NodeMap};
use bcast_core::verify::pattern;
use bcast_core::{bcast_auto, Algorithm, Thresholds};
use mpsim::Communicator;
use netsim::{presets, Level, SimWorld};

#[test]
fn smp_bcast_works_on_the_simulated_cluster() {
    let preset = presets::hornet();
    for &(np, nbytes, root) in &[(48usize, 65536usize, 0usize), (50, 4097, 30), (72, 999, 71)] {
        let model = preset.model_for(nbytes, np);
        let src = pattern(nbytes, 21);
        let nodes = NodeMap::new(preset.cores_per_node());
        let out = SimWorld::run(model, preset.placement(), np, |comm| {
            let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
            bcast_smp(comm, &mut buf, root, &nodes, Algorithm::ScatterRingTuned).unwrap();
            assert_eq!(buf, src, "rank {}", comm.rank());
        });
        assert!(out.traffic.is_balanced());
    }
}

#[test]
fn smp_bcast_moves_less_inter_node_data_than_flat_bcast() {
    // The whole point of multi-core awareness: only node leaders talk
    // across the network; everyone else stays on the node.
    let preset = presets::hornet();
    let (np, nbytes) = (72usize, 1 << 16);
    let placement = preset.placement();
    let nodes = NodeMap::new(preset.cores_per_node());
    let src = pattern(nbytes, 22);

    let inter_bytes = |smp: bool| {
        let model = preset.model_for(nbytes, np);
        let out = SimWorld::run(model, placement, np, |comm| {
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
            if smp {
                bcast_smp(comm, &mut buf, 0, &nodes, Algorithm::ScatterRingTuned).unwrap();
            } else {
                bcast_core::bcast_opt(comm, &mut buf, 0).unwrap();
            }
        });
        out.traffic.split_msgs(|a, b| placement.level(a, b) == Level::IntraNode).3
    };

    let flat = inter_bytes(false);
    let smp = inter_bytes(true);
    assert!(smp < flat, "SMP-aware bcast should cut inter-node bytes: smp={smp} flat={flat}");
}

#[test]
fn auto_selection_runs_every_regime_on_the_simulator() {
    let preset = presets::hornet();
    let th = Thresholds::default();
    for &(np, nbytes) in &[
        (24usize, 1024usize), // short → binomial
        (32, 65536),          // medium pof2 → recursive doubling
        (24, 65536),          // medium npof2 → ring (tuned)
        (32, 1 << 20),        // long pof2 → ring (tuned)
        (33, 1 << 20),        // long npof2 → ring (tuned)
    ] {
        for tuned in [false, true] {
            let model = preset.model_for(nbytes, np);
            let src = pattern(nbytes, 23);
            SimWorld::run(model, preset.placement(), np, |comm| {
                let mut buf = if comm.rank() == 1 { src.clone() } else { vec![0u8; nbytes] };
                bcast_auto(comm, &mut buf, 1, &th, tuned).unwrap();
                assert_eq!(buf, src);
            });
        }
    }
}

#[test]
fn tuned_auto_never_moves_more_messages() {
    let preset = presets::hornet();
    let th = Thresholds { short_msg: 512, long_msg: 4096, min_procs: 4 };
    for &(np, nbytes) in &[(9usize, 8192usize), (12, 600), (16, 600), (16, 8192)] {
        let mut counts = Vec::new();
        for tuned in [false, true] {
            let model = preset.model_for(nbytes, np);
            let src = pattern(nbytes, 24);
            let out = SimWorld::run(model, preset.placement(), np, |comm| {
                let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
                bcast_auto(comm, &mut buf, 0, &th, tuned).unwrap();
            });
            counts.push(out.traffic.total_msgs());
        }
        assert!(counts[1] <= counts[0], "np={np} nbytes={nbytes}: {counts:?}");
    }
}
