//! Closed-form bytes-copied accounting for the zero-copy broadcast paths.
//!
//! The wire counters (messages, bytes, envelopes) pin *what moves between
//! ranks*; `bytes_copied` pins *what moves through RAM on each rank*. The
//! shared-envelope fabric makes the latter a closed form too:
//!
//! * **Binomial, zero-copy**: the root stages its buffer into a pool rental
//!   once (`make_shared`, `nbytes`); every forward is a refcount clone; a
//!   non-root receives the envelope itself and pays exactly one landing
//!   copy into the user buffer. Every rank's bill is *exactly* `nbytes` —
//!   independent of its depth or fan-out in the tree.
//! * **Binomial, copy baseline** (`bcast_binomial_copy`): every hop pays a
//!   sender copy-in plus a receiver copy-out, so the world bill is
//!   `2·(P−1)·nbytes` and grows with the tree instead of the payload.
//! * **Scatter + ring (native, tuned, coalesced)**: at most `2·nbytes` per
//!   rank — the allgather's landing copies sum to ≤ `nbytes` and staging
//!   owned chunks for forwarding adds at most `nbytes` more. The tuned
//!   broadcast's shared-root path (`bcast_opt_shared_async`) stages one
//!   envelope for both phases, so the root's entire bill is one `nbytes`.
//! * **Scatter + recursive doubling**: ≤ `3·nbytes` per rank (the doubling
//!   exchange is a copying `sendrecv`, paying both directions).
//!
//! The same ceilings are enforced a second way through
//! `schedcheck::reconcile_traffic`, here driven by real `ThreadWorld` and
//! `EventWorld` outcomes — so a copy regression fails both the direct
//! assertions and the schedule reconciliation, on every executor.

use bcast_core::bcast::bcast_schedule;
use bcast_core::{
    bcast_binomial, bcast_binomial_copy, bcast_coalesced_event_world, bcast_event_world,
    bcast_with, Algorithm, CoalescePolicy,
};
use mpsim::{Communicator, ThreadWorld, WorldTraffic};
use schedcheck::{copy_ceiling_per_rank, reconcile_traffic};

fn pattern(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 131 + 7) as u8).collect()
}

/// Run `algorithm` on a `ThreadWorld` of `size` ranks and return the
/// traffic, with every delivered buffer verified first.
fn run_thread(size: usize, nbytes: usize, root: usize, algorithm: Algorithm) -> WorldTraffic {
    let src = pattern(nbytes);
    let out = ThreadWorld::run(size, |comm| {
        let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
        bcast_with(comm, &mut buf, root, algorithm).unwrap();
        assert_eq!(buf, src, "rank {} diverged", comm.rank());
    });
    out.traffic
}

#[test]
fn binomial_zero_copy_bill_is_exactly_nbytes_per_rank() {
    for &(size, root) in &[(8usize, 0usize), (8, 5), (11, 4)] {
        let nbytes = 512;
        let traffic = run_thread(size, nbytes, root, Algorithm::Binomial);
        for (rank, st) in traffic.per_rank.iter().enumerate() {
            assert_eq!(
                st.bytes_copied, nbytes as u64,
                "P={size} root={root} rank={rank}: binomial must pay exactly one \
                 staging (root) or landing (non-root) copy"
            );
        }
    }
}

#[test]
fn binomial_copy_baseline_pays_per_hop() {
    let (size, nbytes) = (8usize, 512usize);
    let src = pattern(nbytes);
    let out = ThreadWorld::run(size, |comm| {
        let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
        bcast_binomial_copy(comm, &mut buf, 0).unwrap();
        assert_eq!(buf, src, "rank {} diverged", comm.rank());
    });
    // P−1 transfers, each paying a sender copy-in and a receiver copy-out.
    let per_hop = (2 * (size - 1) * nbytes) as u64;
    assert_eq!(out.traffic.total_bytes_copied(), per_hop);

    // The zero-copy walk's world bill is P·nbytes — strictly below the
    // per-hop baseline for every P ≥ 3, and the gap is what the zero_copy
    // bench group measures as wall-clock.
    let src = pattern(nbytes);
    let zc = ThreadWorld::run(size, |comm| {
        let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
        bcast_binomial(comm, &mut buf, 0).unwrap();
    });
    assert_eq!(zc.traffic.total_bytes_copied(), (size * nbytes) as u64);
    assert!(zc.traffic.total_bytes_copied() < per_hop);
}

#[test]
fn scatter_ring_paths_stay_under_the_copy_ceiling_threadworld() {
    let nbytes = 1024;
    for &size in &[6usize, 8] {
        for (algorithm, name) in [
            (Algorithm::ScatterRingNative, "bcast/scatter_ring_native"),
            (Algorithm::ScatterRingTuned, "bcast/scatter_ring_tuned"),
        ] {
            let ceiling = copy_ceiling_per_rank(name, nbytes as u64)
                .expect("ring schedules must publish a copy ceiling");
            assert_eq!(ceiling, 2 * nbytes as u64);
            let traffic = run_thread(size, nbytes, 0, algorithm);
            for (rank, st) in traffic.per_rank.iter().enumerate() {
                assert!(
                    st.bytes_copied <= ceiling,
                    "{name} P={size} rank={rank}: {}B copied, ceiling {ceiling}B",
                    st.bytes_copied
                );
            }
        }
    }
    // Recursive doubling pays the copying sendrecv in both directions:
    // a looser 3·nbytes ceiling, still enforced (power-of-two world).
    let ceiling = copy_ceiling_per_rank("bcast/scatter_rd", nbytes as u64).unwrap();
    assert_eq!(ceiling, 3 * nbytes as u64);
    let traffic = run_thread(8, nbytes, 0, Algorithm::ScatterRdAllgather);
    for (rank, st) in traffic.per_rank.iter().enumerate() {
        assert!(
            st.bytes_copied <= ceiling,
            "scatter_rd rank={rank}: {}B copied, ceiling {ceiling}B",
            st.bytes_copied
        );
    }
}

#[test]
fn event_world_copy_ceiling_and_shared_root_pin() {
    let (p, nbytes) = (64usize, 1024usize);
    let ceiling = 2 * nbytes as u64;

    // Binomial on the event executor: exactly nbytes per rank, like the
    // threaded run — the accounting layer is executor-agnostic.
    let out = bcast_event_world(p, nbytes, 0, Algorithm::Binomial);
    for (rank, st) in out.traffic.per_rank.iter().enumerate() {
        assert_eq!(st.bytes_copied, nbytes as u64, "binomial rank={rank}");
    }

    for algorithm in [Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned] {
        let out = bcast_event_world(p, nbytes, 0, algorithm);
        for (rank, st) in out.traffic.per_rank.iter().enumerate() {
            assert!(
                st.bytes_copied <= ceiling,
                "{algorithm:?} rank={rank}: {}B copied, ceiling {ceiling}B",
                st.bytes_copied
            );
        }
    }

    // The tuned launch routes the root through `bcast_opt_shared_async`:
    // one staged envelope feeds both the scatter and the allgather, so the
    // root's whole copy bill is that single nbytes pass.
    let out = bcast_event_world(p, nbytes, 0, Algorithm::ScatterRingTuned);
    assert_eq!(
        out.traffic.per_rank[0].bytes_copied, nbytes as u64,
        "shared-root tuned broadcast must stage exactly once"
    );

    let out = bcast_coalesced_event_world(p, nbytes, 0, CoalescePolicy::unlimited());
    for (rank, st) in out.traffic.per_rank.iter().enumerate() {
        assert!(
            st.bytes_copied <= ceiling,
            "coalesced rank={rank}: {}B copied, ceiling {ceiling}B",
            st.bytes_copied
        );
    }
}

#[test]
fn reconciliation_enforces_copy_ceilings_on_both_executors() {
    let (p, nbytes) = (8usize, 256usize);
    for algorithm in [
        Algorithm::Binomial,
        Algorithm::ScatterRingNative,
        Algorithm::ScatterRingTuned,
        Algorithm::ScatterRdAllgather,
    ] {
        let sched = bcast_schedule(algorithm, p, nbytes, 0);
        let traffic = run_thread(p, nbytes, 0, algorithm);
        let rec = reconcile_traffic(&sched, &traffic);
        assert!(rec.is_clean(), "{algorithm:?} on ThreadWorld: {:?}", rec.errors);
        assert!(rec.executed_bytes_copied > 0, "{algorithm:?}: copies must be visible");

        let out = bcast_event_world(p, nbytes, 0, algorithm);
        let rec = reconcile_traffic(&sched, &out.traffic);
        assert!(rec.is_clean(), "{algorithm:?} on EventWorld: {:?}", rec.errors);
    }
}
