//! Performance-shape assertions on the simulated cluster — the qualitative
//! claims of the paper's evaluation, as tests. These use generous tolerances
//! (the contended simulator has bounded run-to-run jitter; see netsim's
//! fabric docs) and small iteration counts to stay fast.

use bcast_bench::{compare_sim, measure_sim};
use bcast_core::Algorithm;
use netsim::presets;

#[test]
fn tuned_at_least_matches_native_intra_node() {
    // Paper Fig. 6(a): np=16 on one node, long messages — tuned wins.
    let c = compare_sim(&presets::hornet(), 16, 1 << 20, 5);
    assert!(
        c.tuned.bandwidth_mbps >= c.native.bandwidth_mbps * 0.99,
        "tuned {:.0} vs native {:.0} MB/s",
        c.tuned.bandwidth_mbps,
        c.native.bandwidth_mbps
    );
    assert!(c.tuned.msgs_per_bcast < c.native.msgs_per_bcast);
}

#[test]
fn tuned_wins_clearly_for_medium_npof2() {
    // Paper Fig. 8 regime: np not a power of two, medium message.
    let c = compare_sim(&presets::hornet(), 33, 65536, 10);
    assert!(c.speedup() > 1.02, "expected a clear speedup, got {:.3}", c.speedup());
}

#[test]
fn fig7_small_message_speedup_decays_with_np() {
    // Paper Fig. 7, ms=12288: speedup is largest for small non-pof2 worlds
    // and decays as np grows.
    let s9 = compare_sim(&presets::hornet(), 9, 12288, 15).speedup();
    let s129 = compare_sim(&presets::hornet(), 129, 12288, 15).speedup();
    assert!(s9 > 1.2, "np=9 speedup too small: {s9:.3}");
    assert!(s129 > 0.95, "np=129 must not regress: {s129:.3}");
    assert!(s9 > s129 * 0.9, "decay shape violated: s9={s9:.3} s129={s129:.3}");
}

#[test]
fn bandwidth_grows_with_message_size_before_llc_pressure() {
    // Paper Fig. 8: "bandwidth increases steadily as the growth of message
    // sizes under conditions that have sufficient memory capacity".
    let preset = presets::hornet();
    let mut prev = 0.0;
    for nbytes in [16384usize, 65536, 262144, 1048576] {
        let m = measure_sim(&preset, Algorithm::ScatterRingTuned, 33, nbytes, 5);
        assert!(
            m.bandwidth_mbps > prev * 0.95,
            "bandwidth not growing at {nbytes}: {:.0} after {prev:.0}",
            m.bandwidth_mbps
        );
        prev = m.bandwidth_mbps;
    }
}

#[test]
fn llc_pressure_reduces_intra_node_bandwidth() {
    // Paper Fig. 6(a)/(c): bandwidth knees once per-node footprint spills L3.
    let preset = presets::hornet();
    let below = measure_sim(&preset, Algorithm::ScatterRingTuned, 16, 2 << 20, 3);
    let above = measure_sim(&preset, Algorithm::ScatterRingTuned, 16, 8 << 20, 3);
    assert!(
        above.bandwidth_mbps < below.bandwidth_mbps,
        "LLC knee missing: {:.0} !< {:.0}",
        above.bandwidth_mbps,
        below.bandwidth_mbps
    );
}

#[test]
fn binomial_beats_ring_for_short_messages() {
    // Why MPICH selects binomial below 12 KiB.
    let preset = presets::hornet();
    let binomial = measure_sim(&preset, Algorithm::Binomial, 24, 2048, 5);
    let ring = measure_sim(&preset, Algorithm::ScatterRingTuned, 24, 2048, 5);
    assert!(binomial.mean_ns < ring.mean_ns);
}

#[test]
fn ring_beats_binomial_for_long_messages() {
    // …and why it switches away for long ones.
    let preset = presets::hornet();
    let binomial = measure_sim(&preset, Algorithm::Binomial, 24, 1 << 20, 5);
    let ring = measure_sim(&preset, Algorithm::ScatterRingTuned, 24, 1 << 20, 5);
    assert!(ring.mean_ns < binomial.mean_ns);
}

#[test]
fn contention_is_what_converts_saved_messages_into_time() {
    // Ablation (DESIGN.md §8): on the ideal contention-free machine the two
    // rings are nearly tied; on the contended machine the tuned ring's
    // advantage is visibly larger.
    let ideal = compare_sim(&presets::ideal(24), 16, 1 << 20, 5);
    let real = compare_sim(&presets::hornet(), 16, 1 << 20, 5);
    let ideal_gain = ideal.speedup();
    let real_gain = real.speedup();
    assert!(
        real_gain > ideal_gain - 0.02,
        "contended gain {real_gain:.3} should not trail ideal gain {ideal_gain:.3}"
    );
    assert!((0.95..1.1).contains(&ideal_gain), "ideal machines see little effect: {ideal_gain:.3}");
}

#[test]
fn laki_preset_shows_same_trend() {
    // Paper §V: "the results from both Hornet and Laki basically deliver the
    // same bandwidth performance trend".
    let c = compare_sim(&presets::laki(), 16, 1 << 20, 5);
    assert!(c.tuned.bandwidth_mbps >= c.native.bandwidth_mbps * 0.98);
    let c = compare_sim(&presets::laki(), 9, 12288, 10);
    assert!(c.speedup() > 1.0, "laki small-message speedup: {:.3}", c.speedup());
}
