//! Integration tests for the extended collective repertoire (allgather
//! variants, scatter/gather, reductions, pipeline broadcast) running on the
//! simulated cluster — cross-crate coverage beyond the per-module unit tests.

use bcast_core::allgather::{allgather_auto, allgather_bruck, allgather_ring, AllgatherThresholds};
use bcast_core::pipeline::bcast_pipeline;
use bcast_core::reduce::{allreduce_rabenseifner, allreduce_rd, reduce_binomial};
use bcast_core::scatter_gather::{gather_binomial, scatter_binomial};
use mpsim::Communicator;
use netsim::{presets, SimWorld};

fn hornet_world<R: Send>(
    np: usize,
    nbytes_hint: usize,
    f: impl Fn(&netsim::SimComm) -> R + Sync,
) -> netsim::SimOutcome<R> {
    let preset = presets::hornet();
    SimWorld::run(preset.model_for(nbytes_hint, np), preset.placement(), np, f)
}

#[test]
fn allgather_variants_agree_on_the_simulator() {
    for &np in &[8usize, 30] {
        let block = 512usize;
        let out = hornet_world(np, block * np, |comm| {
            let me = comm.rank() as u8;
            let sendbuf = vec![me; block];
            let mut ring = vec![0u8; block * comm.size()];
            allgather_ring(comm, &sendbuf, &mut ring).unwrap();
            let mut bruck = vec![0u8; block * comm.size()];
            allgather_bruck(comm, &sendbuf, &mut bruck).unwrap();
            let mut auto = vec![0u8; block * comm.size()];
            allgather_auto(comm, &sendbuf, &mut auto, &AllgatherThresholds::default()).unwrap();
            assert_eq!(ring, bruck);
            assert_eq!(ring, auto);
            ring
        });
        let want: Vec<u8> = (0..np).flat_map(|r| vec![r as u8; 512]).collect();
        for buf in &out.results {
            assert_eq!(buf, &want, "np={np}");
        }
    }
}

#[test]
fn bruck_is_faster_than_ring_for_small_blocks_on_the_cluster() {
    // Why MPICH picks Bruck for short non-power-of-two allgathers:
    // ceil(log2 P) rounds instead of P−1.
    let np = 30;
    let block = 64usize;
    let time = |which: u8| {
        hornet_world(np, block * np, move |comm| {
            let sendbuf = vec![comm.rank() as u8; block];
            let mut recvbuf = vec![0u8; block * comm.size()];
            comm.barrier().unwrap();
            match which {
                0 => allgather_ring(comm, &sendbuf, &mut recvbuf).unwrap(),
                _ => allgather_bruck(comm, &sendbuf, &mut recvbuf).unwrap(),
            }
        })
        .makespan_ns
    };
    let ring = time(0);
    let bruck = time(1);
    assert!(bruck < ring, "bruck {bruck} !< ring {ring}");
}

#[test]
fn scatter_gather_round_trip_on_the_simulator() {
    let (np, block) = (50usize, 128usize);
    let payload: Vec<u8> = (0..np * block).map(|i| (i % 251) as u8).collect();
    let payload2 = payload.clone();
    let out = hornet_world(np, block, move |comm| {
        let sendbuf = if comm.rank() == 3 { payload2.clone() } else { Vec::new() };
        let mut mine = vec![0u8; block];
        scatter_binomial(comm, &sendbuf, &mut mine, 3).unwrap();
        // each rank doubles its block, then gather the results
        for b in &mut mine {
            *b = b.wrapping_mul(2);
        }
        let mut gathered =
            if comm.rank() == 3 { vec![0u8; block * comm.size()] } else { Vec::new() };
        gather_binomial(comm, &mine, &mut gathered, 3).unwrap();
        gathered
    });
    let want: Vec<u8> = payload.iter().map(|b| b.wrapping_mul(2)).collect();
    assert_eq!(out.results[3], want);
}

#[test]
fn alltoall_on_the_simulator() {
    use bcast_core::alltoall::{alltoall_bruck, alltoall_pairwise};
    for &np in &[8usize, 30] {
        let block = 256usize;
        let out = hornet_world(np, block * np, move |comm| {
            let me = comm.rank() as u8;
            let sendbuf: Vec<u8> = (0..comm.size())
                .flat_map(|d| (0..block).map(move |i| me ^ (d as u8) ^ (i as u8)))
                .collect();
            let mut a = vec![0u8; sendbuf.len()];
            alltoall_pairwise(comm, &sendbuf, &mut a).unwrap();
            let mut b = vec![0u8; sendbuf.len()];
            alltoall_bruck(comm, &sendbuf, &mut b).unwrap();
            assert_eq!(a, b);
            a
        });
        for (d, buf) in out.results.iter().enumerate() {
            for s in 0..np {
                assert!(buf[s * block..(s + 1) * block]
                    .iter()
                    .enumerate()
                    .all(|(i, &v)| v == (s as u8) ^ (d as u8) ^ (i as u8)));
            }
        }
    }
}

#[test]
fn reductions_on_the_simulator() {
    for &np in &[8usize, 13, 48] {
        let len = 100usize;
        let out = hornet_world(np, len * 8, move |comm| {
            let mine: Vec<u64> = (0..len).map(|i| (comm.rank() + i) as u64).collect();
            // reduce to root 2
            let mut at_root = if comm.rank() == 2 { vec![0u64; len] } else { vec![] };
            reduce_binomial(comm, &mine, &mut at_root, |a, b| a + b, 2).unwrap();
            // allreduce
            let mut everywhere = mine.clone();
            allreduce_rd(comm, &mut everywhere, |a, b| a + b).unwrap();
            (at_root, everywhere)
        });
        let want: Vec<u64> = (0..len).map(|i| (0..np).map(|r| (r + i) as u64).sum()).collect();
        assert_eq!(out.results[2].0, want, "reduce np={np}");
        for (rank, (_, all)) in out.results.iter().enumerate() {
            assert_eq!(all, &want, "allreduce np={np} rank={rank}");
        }
    }
}

#[test]
fn rabenseifner_beats_rd_for_long_vectors_on_the_cluster() {
    // The bandwidth argument behind reduce-scatter+allgather, measured in
    // simulated time rather than asserted from the formula.
    let np = 16;
    let len = 1 << 16;
    let time = |raben: bool| {
        hornet_world(np, len * 8, move |comm| {
            let mut buf: Vec<u64> = (0..len).map(|i| (comm.rank() + i) as u64).collect();
            comm.barrier().unwrap();
            if raben {
                allreduce_rabenseifner(comm, &mut buf, |a, b| a + b).unwrap();
            } else {
                allreduce_rd(comm, &mut buf, |a, b| a + b).unwrap();
            }
        })
        .makespan_ns
    };
    let rd = time(false);
    let raben = time(true);
    assert!(raben < rd, "rabenseifner {raben} !< rd {rd}");
}

#[test]
fn pipeline_bcast_on_the_simulator() {
    let (np, nbytes) = (24usize, 1 << 18);
    let src = bcast_core::verify::pattern(nbytes, 55);
    let src2 = src.clone();
    let out = hornet_world(np, nbytes, move |comm| {
        let mut buf = if comm.rank() == 0 { src2.clone() } else { vec![0u8; nbytes] };
        bcast_pipeline(comm, &mut buf, 0, 16 * 1024).unwrap();
        buf
    });
    for buf in &out.results {
        assert_eq!(buf, &src);
    }
}

#[test]
fn pipeline_vs_scatter_ring_tradeoff() {
    // Pipeline moves (P−1)·n total bytes (every byte crosses every link)
    // while the scatter-ring family moves ~2n per non-root rank; the two
    // trade synchronization structure for volume, so their times stay in
    // the same ballpark while their wire footprints differ hugely.
    let (np, nbytes) = (24usize, 1 << 20);
    let src = bcast_core::verify::pattern(nbytes, 56);
    let run = |pipeline: bool| {
        let src = src.clone();
        hornet_world(np, nbytes, move |comm| {
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
            comm.barrier().unwrap();
            if pipeline {
                bcast_pipeline(comm, &mut buf, 0, 32 * 1024).unwrap();
            } else {
                bcast_core::bcast_opt(comm, &mut buf, 0).unwrap();
            }
        })
    };
    let pipe = run(true);
    let tuned = run(false);
    // Any broadcast must deliver n bytes to each of the P−1 non-root ranks,
    // so both schemes move ≈ (P−1)·n total — the difference is structure
    // (chain of full-size segments vs ring of 1/P chunks), not volume.
    let floor = ((np - 1) * nbytes) as u64;
    for t in [pipe.traffic.total_bytes(), tuned.traffic.total_bytes()] {
        assert!((floor..floor + 2 * nbytes as u64).contains(&t), "volume {t} out of band");
    }
    // time: same ballpark (within 2× either way) on a single node where the
    // shared memory channel absorbs the extra volume at aggregate bandwidth
    let ratio = tuned.makespan_ns / pipe.makespan_ns;
    assert!(
        (0.5..2.0).contains(&ratio),
        "times should be comparable: tuned {} pipe {}",
        tuned.makespan_ns,
        pipe.makespan_ns
    );
}
