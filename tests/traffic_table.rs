//! Pin the paper's headline traffic numbers (Table 1 / §3 of "A
//! Bandwidth-Saving Optimization for MPI Broadcast Collective Operation"):
//! the native enclosed-ring allgather moves P·(P−1) transfers while the
//! tuned schedule moves P² − Σ own(i) — e.g. 44 vs 56 at P=8 and 75 vs 90
//! at P=10 — and the *measured* traffic of the real threaded runtime
//! matches the analytic counters exactly.

use bcast_core::traffic::{
    bcast_volume, native_ring_msgs, ring_saving_msgs, scatter_msgs, tuned_ring_msgs,
};
use bcast_core::{bcast_with, Algorithm};
use mpsim::{Communicator, ThreadWorld};

const WORLDS: [usize; 5] = [4, 8, 10, 16, 30];

/// Analytic table: the native enclosed ring is always P·(P−1); the tuned
/// counts reproduce the paper's examples.
#[test]
fn paper_table_analytic_counts() {
    for p in WORLDS {
        assert_eq!(native_ring_msgs(p), (p * (p - 1)) as u64, "native ring at P={p}");
        assert_eq!(
            tuned_ring_msgs(p) + ring_saving_msgs(p),
            native_ring_msgs(p),
            "saving must close the gap at P={p}"
        );
    }
    // The two worked examples the paper prints.
    assert_eq!(native_ring_msgs(8), 56);
    assert_eq!(tuned_ring_msgs(8), 44);
    assert_eq!(native_ring_msgs(10), 90);
    assert_eq!(tuned_ring_msgs(10), 75);
}

/// Measured table: broadcast on real threads and compare the runtime's
/// traffic counters against the analytic model, per world size and
/// algorithm. The total is scatter + ring-allgather messages.
#[test]
fn paper_table_measured_counts() {
    let nbytes = 4096;
    for p in WORLDS {
        for (algorithm, ring_msgs) in [
            (Algorithm::ScatterRingNative, native_ring_msgs(p)),
            (Algorithm::ScatterRingTuned, tuned_ring_msgs(p)),
        ] {
            let src = bcast_core::verify::pattern(nbytes, 71);
            let src2 = src.clone();
            let out = ThreadWorld::run(p, move |comm| {
                let mut buf = if comm.rank() == 0 { src2.clone() } else { vec![0u8; nbytes] };
                bcast_with(comm, &mut buf, 0, algorithm).unwrap();
                assert_eq!(buf, src2, "rank {} diverged at P={p}", comm.rank());
            });
            assert!(out.traffic.is_balanced(), "unbalanced counters at P={p}");
            let expect = scatter_msgs(nbytes, p) + ring_msgs;
            assert_eq!(
                out.traffic.total_msgs(),
                expect,
                "{algorithm:?} at P={p}: measured msgs != scatter + ring table entry"
            );
            let vol = bcast_volume(algorithm, nbytes, p);
            assert_eq!(out.traffic.total_msgs(), vol.msgs, "volume model drifted at P={p}");
            assert_eq!(out.traffic.total_bytes(), vol.bytes, "byte model drifted at P={p}");
        }
    }
}

/// Measured table on the discrete-event executor: the same broadcasts run
/// as cooperative tasks on one thread, and the measured counters must land
/// on the identical closed forms — the executor changes the scheduling, not
/// the traffic.
#[test]
fn paper_table_measured_counts_event_world() {
    let nbytes = 4096;
    for p in WORLDS {
        for (algorithm, ring_msgs) in [
            (Algorithm::ScatterRingNative, native_ring_msgs(p)),
            (Algorithm::ScatterRingTuned, tuned_ring_msgs(p)),
        ] {
            let out = bcast_core::bcast_event_world(p, nbytes, 0, algorithm);
            assert!(out.traffic.is_balanced(), "unbalanced counters at P={p}");
            let expect = scatter_msgs(nbytes, p) + ring_msgs;
            assert_eq!(
                out.traffic.total_msgs(),
                expect,
                "{algorithm:?} at P={p}: event-world msgs != scatter + ring table entry"
            );
            let vol = bcast_volume(algorithm, nbytes, p);
            assert_eq!(out.traffic.total_msgs(), vol.msgs, "volume model drifted at P={p}");
            assert_eq!(out.traffic.total_bytes(), vol.bytes, "byte model drifted at P={p}");
        }
    }
}

/// The saving the table promises is monotone in P and strictly positive
/// for every world in the table (P ≥ 3 per the paper).
#[test]
fn paper_table_saving_is_positive_and_growing() {
    let mut last = 0;
    for p in WORLDS {
        let saved = ring_saving_msgs(p);
        assert!(saved > 0, "no saving at P={p}");
        assert!(saved > last, "saving shrank at P={p}");
        last = saved;
    }
}
