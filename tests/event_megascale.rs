//! Cluster-scale broadcast sweeps on the discrete-event executor.
//!
//! The thread-per-rank executors top out at a few dozen ranks; the event
//! executor schedules ranks as cooperative futures on one thread, so the
//! paper's closed-form traffic model can be checked at `P = 256`, `1024`
//! and `4096` — world sizes where the tuned ring's saving is no longer a
//! table entry but millions of messages. Every run validates the delivered
//! payload on every rank (inside the launch helpers) and then pins the
//! measured message / byte / envelope counters to the analytic forms.
//!
//! The `P = 1024` and `P = 4096` sweeps move ~1M and ~16.8M messages per
//! algorithm, so they are `#[ignore]` by default and driven explicitly (in
//! release mode) by the `event-exec` CI lane:
//! `cargo test --release --test event_megascale -- --ignored`.

use bcast_core::coalesce::coalesced_envelope_count;
use bcast_core::traffic::{bcast_volume, scatter_msgs};
use bcast_core::{bcast_coalesced_event_world, bcast_event_world, Algorithm, CoalescePolicy};

/// The reactor-accounting invariants schedcheck's protocol models verify in
/// the abstract, asserted on every megascale sweep's concrete counters:
/// no mailbox lane spills, the wakeup/poll identity
/// `wakeups == spurious_polls + P` (each rank task completes on exactly one
/// `Ready` poll — dedup never double-enqueues, no wake is lost), and every
/// `Pending` poll attributable to a delivered message or a startup poll
/// (`spurious_polls ≤ msgs + p`). At these world sizes a ping-ponging
/// reactor would still deliver — only the counters betray it.
///
/// Alongside the reactor counters, every sweep pins the zero-copy budget:
/// no rank may memcpy more than `2·nbytes` of payload (staging owned chunks
/// for forwarding plus the landing copies into the user buffer — the
/// closed-form ceiling `schedcheck::copy_ceiling_per_rank` enforces during
/// reconciliation). At `P = 16384` a per-hop copy regression would multiply
/// RAM traffic by the scatter-tree depth; this assertion makes it fail the
/// sweep instead.
fn assert_reactor_invariants(out: &mpsim::WorldOutcome<()>, p: usize, msgs: u64, nbytes: usize) {
    let reactor = &out.reactor;
    assert_eq!(reactor.mailbox_spills, 0, "P={p}: collective traffic spilled a mailbox lane");
    assert_eq!(
        reactor.wakeups,
        reactor.spurious_polls + p as u64,
        "P={p}: wakeup/poll accounting identity broken"
    );
    assert!(
        reactor.spurious_polls <= msgs + p as u64,
        "P={p}: {} spurious polls exceed the {msgs} messages + {p} startup polls that could \
         legitimately cause them",
        reactor.spurious_polls
    );
    let ceiling = 2 * nbytes as u64;
    for (rank, st) in out.traffic.per_rank.iter().enumerate() {
        assert!(
            st.bytes_copied <= ceiling,
            "P={p} rank={rank}: {}B memcpy'd, above the {ceiling}B zero-copy budget",
            st.bytes_copied
        );
    }
}

/// Run both scatter-ring algorithms at world size `p` and pin the measured
/// counters to the closed forms.
fn sweep_scatter_ring(p: usize, nbytes: usize) {
    for algorithm in [Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned] {
        let out = bcast_event_world(p, nbytes, 0, algorithm);
        assert!(out.traffic.is_balanced(), "{algorithm:?} P={p}: unbalanced counters");
        let vol = bcast_volume(algorithm, nbytes, p);
        assert_eq!(out.traffic.total_msgs(), vol.msgs, "{algorithm:?} P={p}: msgs");
        assert_eq!(out.traffic.total_bytes(), vol.bytes, "{algorithm:?} P={p}: bytes");
        assert_reactor_invariants(&out, p, vol.msgs, nbytes);
    }
}

/// Run the coalescing broadcast at world size `p` and pin message, byte and
/// envelope counters: coalescing must not change what is moved, only how
/// many envelopes carry it.
fn sweep_coalesced(p: usize, nbytes: usize) {
    let out = bcast_coalesced_event_world(p, nbytes, 0, CoalescePolicy::unlimited());
    assert!(out.traffic.is_balanced(), "coalesced P={p}: unbalanced counters");
    let vol = bcast_volume(Algorithm::ScatterRingTuned, nbytes, p);
    assert_eq!(out.traffic.total_msgs(), vol.msgs, "coalesced P={p}: msgs");
    assert_eq!(out.traffic.total_bytes(), vol.bytes, "coalesced P={p}: bytes");
    let envelopes = coalesced_envelope_count(p) + scatter_msgs(nbytes, p);
    assert_eq!(out.traffic.total_envelopes(), envelopes, "coalesced P={p}: envelopes");
    assert_reactor_invariants(&out, p, vol.msgs, nbytes);
}

#[test]
fn megascale_p256() {
    // nbytes ≥ P keeps every chunk non-empty, so the closed forms count
    // every transfer the schedule emits.
    sweep_scatter_ring(256, 4096);
    sweep_coalesced(256, 4096);
}

#[test]
#[ignore = "~1M messages per algorithm; run in release via the event-exec CI lane"]
fn megascale_p1024() {
    sweep_scatter_ring(1024, 4096);
    sweep_coalesced(1024, 4096);
}

#[test]
#[ignore = "~16.8M messages per algorithm; run in release via the event-exec CI lane"]
fn megascale_p4096() {
    sweep_scatter_ring(4096, 8192);
    sweep_coalesced(4096, 8192);
}

#[test]
#[ignore = "~268M messages; run in release via the event-exec CI lane's dedicated phase"]
fn megascale_p16384() {
    // The largest sweep runs the paper's tuned ring only: at P = 16384 the
    // schedule moves P·(P-1) ≈ 268M one-byte chunks, so doubling up with the
    // native ring would buy no extra coverage for twice the wall clock. The
    // lane gives this test its own phase so its cost shows up as a separate
    // row in the CI timing table.
    let p = 16384;
    let nbytes = 16384; // one byte per chunk: every transfer stays non-empty
    let out = bcast_event_world(p, nbytes, 0, Algorithm::ScatterRingTuned);
    assert!(out.traffic.is_balanced(), "tuned P={p}: unbalanced counters");
    let vol = bcast_volume(Algorithm::ScatterRingTuned, nbytes, p);
    assert_eq!(out.traffic.total_msgs(), vol.msgs, "tuned P={p}: msgs");
    assert_eq!(out.traffic.total_bytes(), vol.bytes, "tuned P={p}: bytes");
    // The dense mailbox lanes must absorb the whole sweep without ever
    // falling back to the spill map, and the wake accounting must stay
    // exact through ~268M messages.
    assert_reactor_invariants(&out, p, vol.msgs, nbytes);
}
