//! `bcast` — run any broadcast algorithm of the workspace on either backend
//! from the command line and report correctness, traffic and bandwidth.
//!
//! ```console
//! $ bcast --backend sim --algo tuned --np 129 --nbytes 1048576 --iters 10
//! $ bcast --backend thread --algo native --np 10 --nbytes 4096
//! $ bcast --algo auto --np 33 --nbytes 65536        # MPICH dispatch
//! ```

use bcast_core::smp::{bcast_smp, NodeMap};
use bcast_core::verify::pattern;
use bcast_core::{bcast_auto, bcast_with, pipeline::bcast_pipeline, Algorithm, Thresholds};
use mpsim::{Communicator, ThreadWorld};
use netsim::{presets, SimWorld};

#[derive(Clone, Copy, PartialEq)]
enum Algo {
    Fixed(Algorithm),
    Auto { tuned: bool },
    Pipeline { segment: usize },
    Smp { inner: Algorithm },
}

fn parse_algo(name: &str, segment: usize) -> Algo {
    match name {
        "native" => Algo::Fixed(Algorithm::ScatterRingNative),
        "tuned" | "opt" => Algo::Fixed(Algorithm::ScatterRingTuned),
        "binomial" => Algo::Fixed(Algorithm::Binomial),
        "rd" => Algo::Fixed(Algorithm::ScatterRdAllgather),
        "auto" => Algo::Auto { tuned: true },
        "auto-native" => Algo::Auto { tuned: false },
        "pipeline" => Algo::Pipeline { segment },
        "smp" => Algo::Smp { inner: Algorithm::ScatterRingTuned },
        "smp-native" => Algo::Smp { inner: Algorithm::ScatterRingNative },
        other => {
            eprintln!("unknown --algo {other}; see --help");
            std::process::exit(2);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "bcast — broadcast runner\n\
         \n\
         options:\n\
           --backend thread|sim      executor (default sim)\n\
           --algo ALGO               native|tuned|binomial|rd|auto|auto-native|\n\
                                     pipeline|smp|smp-native (default tuned)\n\
           --np N                    ranks (default 16)\n\
           --nbytes B                message size (default 1048576)\n\
           --root R                  broadcast root (default 0)\n\
           --iters I                 repetitions (default 10)\n\
           --preset hornet|laki|ideal  simulated machine (default hornet)\n\
           --segment B               pipeline segment size (default 16384)\n\
           --cores-per-node C        node width for --algo smp on threads"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .map(|i| args.get(i + 1).unwrap_or_else(|| usage()).clone())
    };
    let backend = get("--backend").unwrap_or_else(|| "sim".into());
    let np: usize = get("--np").map_or(16, |v| v.parse().expect("--np N"));
    let nbytes: usize = get("--nbytes").map_or(1 << 20, |v| v.parse().expect("--nbytes B"));
    let root: usize = get("--root").map_or(0, |v| v.parse().expect("--root R"));
    let iters: usize = get("--iters").map_or(10, |v| v.parse().expect("--iters I"));
    let segment: usize = get("--segment").map_or(16384, |v| v.parse().expect("--segment B"));
    let algo = parse_algo(&get("--algo").unwrap_or_else(|| "tuned".into()), segment);
    let preset = match get("--preset").as_deref() {
        None | Some("hornet") => presets::hornet(),
        Some("laki") => presets::laki(),
        Some("ideal") => presets::ideal(24),
        Some(o) => {
            eprintln!("unknown preset {o}");
            std::process::exit(2)
        }
    };
    let cores: usize =
        get("--cores-per-node").map_or(preset.cores_per_node(), |v| v.parse().unwrap());
    assert!(root < np, "--root must be below --np");

    let src = pattern(nbytes, 0xC11);
    let th = Thresholds::default();
    let nodes = NodeMap::new(cores);
    let run_one = |comm: &dyn DynComm, buf: &mut Vec<u8>| match algo {
        Algo::Fixed(a) => bcast_with(comm, buf, root, a).unwrap(),
        Algo::Auto { tuned } => bcast_auto(comm, buf, root, &th, tuned).unwrap(),
        Algo::Smp { inner } => bcast_smp(comm, buf, root, &nodes, inner).unwrap(),
        Algo::Pipeline { .. } => unreachable!("pipeline handled per backend"),
    };

    // Pipeline needs the NonBlocking trait, which is backend-specific.
    match backend.as_str() {
        "thread" => {
            let out = ThreadWorld::run(np, |comm| {
                let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
                comm.barrier().unwrap();
                for _ in 0..iters {
                    if let Algo::Pipeline { segment } = algo {
                        bcast_pipeline(comm, &mut buf, root, segment).unwrap();
                    } else {
                        run_one(comm, &mut buf);
                    }
                }
                buf == src
            });
            report(
                "thread (wall clock)",
                out.results.iter().all(|&ok| ok),
                &out.traffic,
                out.elapsed.as_nanos() as f64,
                nbytes,
                iters,
            );
        }
        "sim" => {
            let model = preset.model_for(nbytes, np);
            let out = SimWorld::run(model, preset.placement(), np, |comm| {
                let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
                comm.barrier().unwrap();
                let t0 = comm.vtime();
                for _ in 0..iters {
                    if let Algo::Pipeline { segment } = algo {
                        bcast_pipeline(comm, &mut buf, root, segment).unwrap();
                    } else {
                        run_one(comm, &mut buf);
                    }
                }
                comm.barrier().unwrap();
                (buf == src, comm.vtime() - t0)
            });
            let elapsed = out.results.iter().map(|&(_, t)| t).fold(0.0, f64::max);
            report(
                &format!("sim ({})", preset.name),
                out.results.iter().all(|&(ok, _)| ok),
                &out.traffic,
                elapsed,
                nbytes,
                iters,
            );
        }
        other => {
            eprintln!("unknown backend {other}");
            std::process::exit(2)
        }
    }
}

/// Object-safe alias so the dispatch closure works for both backends.
trait DynComm: Communicator {}
impl<T: Communicator + ?Sized> DynComm for T {}

fn report(
    backend: &str,
    correct: bool,
    traffic: &mpsim::WorldTraffic,
    elapsed_ns: f64,
    nbytes: usize,
    iters: usize,
) {
    let per_bcast = elapsed_ns / iters as f64;
    println!("backend:        {backend}");
    println!("correct:        {}", if correct { "yes (all ranks verified)" } else { "NO" });
    println!("messages/bcast: {:.0}", traffic.total_msgs() as f64 / iters as f64);
    println!(
        "bytes/bcast:    {:.2} MiB",
        traffic.total_bytes() as f64 / iters as f64 / (1 << 20) as f64
    );
    println!("time/bcast:     {:.1} us", per_bcast / 1000.0);
    println!("bandwidth:      {:.1} MB/s", nbytes as f64 / (1 << 20) as f64 / (per_bcast * 1e-9));
    if !correct {
        std::process::exit(1);
    }
}
