//! # bcast-opt — umbrella crate for the broadcast-optimization reproduction
//!
//! Reproduction of *"A Bandwidth-saving Optimization for MPI Broadcast
//! Collective Operation"* (Zhou, Marjanovic, Niethammer, Gracia — ICPP 2015).
//!
//! This crate re-exports the three layers of the workspace and hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`):
//!
//! * [`mpsim`] — the MPI-like point-to-point substrate (threaded executor,
//!   traffic counters, sub-communicators),
//! * [`netsim`] — the virtual-time cluster simulator standing in for the
//!   paper's Cray XC40,
//! * [`core`] (crate `bcast-core`) — the broadcast algorithms: MPICH3's
//!   native scatter-ring-allgather, the paper's tuned variant, the binomial
//!   and recursive-doubling paths, the selection logic, the SMP-aware
//!   three-phase scheme, and the analytic traffic model.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results of every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bcast_core as core;
pub use mpsim;
pub use netsim;

/// Convenience: run one broadcast of `nbytes` from `root` on a simulated
/// machine preset and return the makespan in nanoseconds.
///
/// This is the measurement primitive the examples build on; the benchmark
/// harness in `crates/bench` has a more complete version with barriers and
/// repetitions (matching the paper's methodology).
pub fn simulate_bcast_once(
    preset: &netsim::MachinePreset,
    algorithm: bcast_core::Algorithm,
    size: usize,
    nbytes: usize,
    root: usize,
) -> f64 {
    let model = preset.model_for(nbytes, size);
    let src = bcast_core::verify::pattern(nbytes, 1);
    let out = netsim::SimWorld::run(model, preset.placement(), size, |comm| {
        use mpsim::Communicator;
        let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
        bcast_core::bcast_with(comm, &mut buf, root, algorithm).unwrap();
        assert_eq!(buf, src);
    });
    out.makespan_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_bcast_once_runs() {
        let t = simulate_bcast_once(
            &netsim::presets::hornet(),
            bcast_core::Algorithm::ScatterRingTuned,
            16,
            1 << 19,
            0,
        );
        assert!(t > 0.0);
    }
}
