//! Property test: the degraded broadcast schedules the self-healing layer
//! re-derives stay sound along *random multi-epoch casualty chains*.
//!
//! The CI sweep (`schedcheck` binary, phase 5) proves single-epoch
//! degradation over a fixed casualty grid; recovery, however, re-derives
//! the schedule after *every* epoch of a cascade, each time over a
//! further-shrunken survivor set with a possibly-succeeded root. This
//! harness drives that exact state trajectory — kill a random member,
//! re-elect the lowest survivor as root, re-derive, repeat while at least
//! two ranks live — and at every epoch demands the full static verdict:
//!
//! * matched, deadlock-free under both eager and rendezvous semantics,
//!   full buffer coverage on every survivor ([`schedcheck::check`]);
//! * planned traffic identical to the closed-form model at the shrunken
//!   world size (the bandwidth theorem survives arbitrary degradation);
//! * dead ranks completely silent — no ops, no obligations.
//!
//! Failures shrink to a minimal `(p, picks)` chain and replay from the
//! printed `TESTKIT_SEED`.

use bcast_core::{degraded_bcast_schedule, traffic, Algorithm};
use schedcheck::{check, Semantics};
use testkit::prop::{self, usize_range, vec_of};

/// Algorithms whose degraded schedules recovery actually emits.
const ALGORITHMS: [Algorithm; 3] =
    [Algorithm::Binomial, Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned];

/// Interpret one generated case: start from a full world of `p` ranks and
/// fold each pick into "kill the `pick % live`-th survivor", stopping while
/// at least two ranks remain. Returns the member set after every epoch.
fn casualty_chain(p: usize, picks: &[usize]) -> Vec<Vec<usize>> {
    let mut members: Vec<usize> = (0..p).collect();
    let mut epochs = Vec::new();
    for &pick in picks {
        if members.len() <= 2 {
            break;
        }
        members.remove(pick % members.len());
        epochs.push(members.clone());
    }
    epochs
}

#[test]
fn degraded_schedules_stay_sound_along_casualty_chains() {
    let strategy = (usize_range(4..13), vec_of(usize_range(0..997), 1..5));
    prop::check(
        "degraded_schedules_stay_sound_along_casualty_chains",
        prop::Config::cases(48),
        &strategy,
        |(p, picks)| {
            for members in casualty_chain(*p, picks) {
                // Root succession: recovery falls back to the lowest
                // payload-holding survivor; the chain's worst case is the
                // lowest survivor outright.
                let root = members[0];
                let dead: Vec<usize> = (0..*p).filter(|r| !members.contains(r)).collect();
                for alg in ALGORITHMS {
                    for nbytes in [17usize, 64 * *p] {
                        let sched = degraded_bcast_schedule(alg, *p, nbytes, &members, root);

                        let (msgs, bytes) = sched.planned_volume();
                        let model = traffic::bcast_volume(alg, nbytes, members.len());
                        if (msgs, bytes) != (model.msgs, model.bytes) {
                            return Err(format!(
                                "{} p={p} dead={dead:?} nbytes={nbytes}: IR volume \
                                 ({msgs} msgs, {bytes} B) != closed form at P'={} \
                                 ({} msgs, {} B)",
                                alg.schedule_name(),
                                members.len(),
                                model.msgs,
                                model.bytes
                            ));
                        }

                        for sem in Semantics::ALL {
                            let rep = check(&sched, sem);
                            if !rep.is_clean() {
                                return Err(format!(
                                    "{} p={p} dead={dead:?} nbytes={nbytes} {sem}: {:?}",
                                    alg.schedule_name(),
                                    rep.errors
                                ));
                            }
                        }

                        for &d in &dead {
                            if !sched.ranks[d].ops.is_empty() || !sched.ranks[d].required.is_empty()
                            {
                                return Err(format!(
                                    "{} p={p}: dead rank {d} still has ops or obligations",
                                    alg.schedule_name()
                                ));
                            }
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

/// The chain interpreter itself is total and monotone: every epoch strictly
/// shrinks the membership and never below two survivors.
#[test]
fn casualty_chain_interpreter_is_monotone() {
    let chain = casualty_chain(6, &[0, 0, 0, 0, 0, 0, 0, 0]);
    let mut prev = 6;
    for members in &chain {
        assert!(members.len() >= 2);
        assert_eq!(members.len(), prev - 1);
        prev = members.len();
    }
    assert_eq!(chain.last().map(Vec::len), Some(2));
}
