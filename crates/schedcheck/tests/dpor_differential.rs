//! Differential oracle: the sleep-set DPOR explorer against the exhaustive
//! explorer, on every pre-existing protocol model (fast-sync mutex, condvar
//! rendezvous, mailbox notify-skip) plus their mutants.
//!
//! The contract is twofold: identical verdicts everywhere (including the
//! *kind* of failure — a reduction that turns a deadlock into an invariant
//! trip would be lying about the bug), and strictly fewer distinct states
//! wherever the model has any commuting pair to exploit, with the reduction
//! factor printed so regressions in the reduction are visible in test
//! output (`--nocapture`).

use schedcheck::models::{CondvarModel, FastMutexModel, MailboxModel};
use schedcheck::{explore, explore_dpor, Model, Stats, DEFAULT_MAX_STATES};

/// Collapse an exploration outcome to its verdict kind: the explorers may
/// exhibit different counterexample *states* (a reduction is free to find a
/// different representative of the same failing class), but the property
/// that failed must be the same.
fn verdict_kind(r: &Result<Stats, String>) -> &'static str {
    match r {
        Ok(_) => "clean",
        Err(e) if e.starts_with("deadlock") => "deadlock",
        Err(e) if e.starts_with("invariant violated") => "invariant",
        Err(e) if e.starts_with("terminal state rejected") => "terminal",
        Err(_) => "other",
    }
}

/// Run both explorers and demand identical verdicts. On clean models,
/// demand `strict`ly fewer DPOR states (never more, in any case) and return
/// the reduction factor.
fn differential<M: Model>(name: &str, model: &M, strict: bool) -> Option<f64> {
    let full = explore(model, DEFAULT_MAX_STATES);
    let dpor = explore_dpor(model, DEFAULT_MAX_STATES);
    assert_eq!(
        verdict_kind(&full),
        verdict_kind(&dpor),
        "{name}: verdicts diverge\nexhaustive: {full:?}\ndpor: {dpor:?}"
    );
    if let (Ok(f), Ok(d)) = (&full, &dpor) {
        if strict {
            assert!(
                d.states < f.states,
                "{name}: DPOR must visit strictly fewer states (exhaustive {}, dpor {})",
                f.states,
                d.states
            );
        } else {
            assert!(
                d.states <= f.states,
                "{name}: DPOR visited more states than exhaustive ({} vs {})",
                d.states,
                f.states
            );
        }
        let factor = f.states as f64 / d.states as f64;
        println!(
            "{name}: exhaustive {} states / dpor {} states = {factor:.2}x reduction \
             ({} vs {} transitions)",
            f.states, d.states, f.transitions, d.transitions
        );
        Some(factor)
    } else {
        println!("{name}: both explorers agree on verdict [{}]", verdict_kind(&full));
        None
    }
}

#[test]
fn fast_mutex_clean_models_agree_and_reduce() {
    // t=2 s=1 is the one config with nothing to reduce: every step of both
    // threads touches the lock word, so no pair commutes anywhere and a
    // sound reduction must walk the whole graph. Equality is the correct
    // answer there; every larger config has commuting tails to collapse.
    differential(
        "fast-mutex t=2 s=1",
        &FastMutexModel { threads: 2, sections: 1, skip_recheck: false, park_timeout: true },
        false,
    );
    for (threads, sections) in [(2, 2), (3, 1), (3, 2)] {
        differential(
            &format!("fast-mutex t={threads} s={sections}"),
            &FastMutexModel { threads, sections, skip_recheck: false, park_timeout: true },
            true,
        );
    }
}

#[test]
fn fast_mutex_mutants_agree() {
    // Three threads + bare park: the stale-LIFO lost wakeup PR 3 found.
    differential(
        "fast-mutex bare-park t=3",
        &FastMutexModel { threads: 3, sections: 1, skip_recheck: false, park_timeout: false },
        true,
    );
    // No registration recheck: the classic register/release race.
    differential(
        "fast-mutex skip-recheck",
        &FastMutexModel { threads: 2, sections: 1, skip_recheck: true, park_timeout: false },
        true,
    );
}

#[test]
fn condvar_models_agree_and_reduce() {
    for consumers in 1..=2 {
        differential(&format!("condvar c={consumers}"), &CondvarModel { consumers }, true);
    }
}

#[test]
fn mailbox_notify_skip_agrees_and_reduces_5x() {
    for senders in 1..=3 {
        differential(
            &format!("mailbox s={senders}"),
            &MailboxModel { senders, broken_skip: false },
            true,
        );
    }
    let factor =
        differential("mailbox s=4", &MailboxModel { senders: 4, broken_skip: false }, true)
            .expect("clean model");
    assert!(
        factor >= 5.0,
        "acceptance criterion: >= 5x fewer states on the mailbox notify-skip model, got {factor:.2}x"
    );
}

#[test]
fn mailbox_broken_skip_agrees() {
    differential("mailbox broken-skip", &MailboxModel { senders: 1, broken_skip: true }, true);
}
