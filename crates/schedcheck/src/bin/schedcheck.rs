//! Static schedule sweep: every registered collective × P ∈ {2..32} ×
//! payload sizes × roots × both send semantics, plus the paper's ring
//! theorems, a mutation drill proving the checker has teeth, and the
//! degraded schedules the self-healing broadcast re-derives over survivor
//! subsets after a crash.
//!
//! Exits nonzero (with per-instance diagnostics) on any failure. `--quick`
//! restricts the world-size grid for local smoke runs; CI runs the full
//! sweep.
//!
//! `schedcheck explore-reactor [--max-states N]` runs the other half of the
//! crate instead: the interleaving explorer over every protocol model —
//! the fast-sync mutex, condvar rendezvous and sharded-mailbox legacy
//! models plus the four megascale-reactor models (run-queue dedup,
//! external-waker side queue, lane-mailbox routing, timer-wheel
//! generations). Each model is explored exhaustively *and* with DPOR, the
//! verdicts are required to agree, per-model state counts and reduction
//! factors are printed, and a seeded mutation drill injects a known
//! lost-wakeup / stale-handle bug into each reactor model and demands both
//! explorers catch it. `--max-states` bounds the per-model state budget.

use bcast_core::bcast::{bcast_schedule, bcast_tuned_schedule_with};
use bcast_core::{all_sources, degraded_bcast_schedule, step_flag, traffic, Algorithm};
use schedcheck::models::{
    CondvarModel, ExternalWakerModel, FastMutexModel, LaneMailboxModel, MailboxModel,
    RunQueueModel, TimerWheelModel,
};
use schedcheck::{check, explore, explore_dpor, Model, Semantics, DEFAULT_MAX_STATES};

/// One failed instance, for the final report.
struct Failure {
    what: String,
    details: Vec<String>,
}

/// Exploration totals for the `explore-reactor` summary line.
#[derive(Default)]
struct ExploreTotals {
    models: usize,
    exhaustive_states: usize,
    dpor_states: usize,
}

/// Run one clean model under both explorers: verdicts must both be clean
/// and DPOR must never visit more states than exhaustive.
fn differential<M: Model>(
    name: &str,
    model: &M,
    max_states: usize,
    totals: &mut ExploreTotals,
    failures: &mut Vec<Failure>,
) {
    let full = explore(model, max_states);
    let dpor = explore_dpor(model, max_states);
    match (&full, &dpor) {
        (Ok(f), Ok(d)) => {
            totals.models += 1;
            totals.exhaustive_states += f.states;
            totals.dpor_states += d.states;
            println!(
                "  {name}: exhaustive {} states / dpor {} = {:.2}x reduction",
                f.states,
                d.states,
                f.states as f64 / d.states as f64
            );
            if d.states > f.states {
                failures.push(Failure {
                    what: format!("explore {name}"),
                    details: vec![format!(
                        "DPOR visited more states than exhaustive ({} vs {})",
                        d.states, f.states
                    )],
                });
            }
        }
        _ => failures.push(Failure {
            what: format!("explore {name}"),
            details: vec![format!("exhaustive: {full:?}"), format!("dpor: {dpor:?}")],
        }),
    }
}

/// Run one mutant under both explorers: both must fail, with the expected
/// substring in the diagnostic. Returns whether the mutant was caught.
fn drill<M: Model>(
    name: &str,
    model: &M,
    expect: &str,
    max_states: usize,
    failures: &mut Vec<Failure>,
) -> bool {
    let mut caught = true;
    for (how, res) in
        [("exhaustive", explore(model, max_states)), ("dpor", explore_dpor(model, max_states))]
    {
        match res {
            Err(e) if e.contains(expect) => {}
            other => {
                caught = false;
                failures.push(Failure {
                    what: format!("mutation {name} [{how}]"),
                    details: vec![format!("expected a '{expect}' diagnostic, got {other:?}")],
                });
            }
        }
    }
    caught
}

/// The `explore-reactor` subcommand.
fn explore_reactor(max_states: usize) -> ! {
    let mut failures: Vec<Failure> = Vec::new();
    let mut totals = ExploreTotals::default();

    // ---- Phase 1: clean protocol models, exhaustive vs DPOR --------------
    println!("phase 1: protocol models, exhaustive vs DPOR (budget {max_states} states)");
    for (threads, sections) in [(2, 1), (2, 2), (3, 1), (3, 2)] {
        differential(
            &format!("fast-mutex t={threads} s={sections}"),
            &FastMutexModel { threads, sections, skip_recheck: false, park_timeout: true },
            max_states,
            &mut totals,
            &mut failures,
        );
    }
    for consumers in 1..=2 {
        differential(
            &format!("condvar c={consumers}"),
            &CondvarModel { consumers },
            max_states,
            &mut totals,
            &mut failures,
        );
    }
    for senders in 1..=4 {
        differential(
            &format!("mailbox s={senders}"),
            &MailboxModel { senders, broken_skip: false },
            max_states,
            &mut totals,
            &mut failures,
        );
    }
    for senders in 1..=3 {
        for crasher in [false, true] {
            differential(
                &format!("reactor-run-queue s={senders} crasher={crasher}"),
                &RunQueueModel { senders, crasher, clear_after_poll: false, skip_exit_wake: false },
                max_states,
                &mut totals,
                &mut failures,
            );
        }
    }
    for wakes in 1..=3 {
        differential(
            &format!("reactor-external-waker w={wakes}"),
            &ExternalWakerModel { wakes, skip_drain: false, drop_drained: false },
            max_states,
            &mut totals,
            &mut failures,
        );
    }
    differential(
        "reactor-lane-mailbox",
        &LaneMailboxModel { drop_wild: false, skip_spill_count: false },
        max_states,
        &mut totals,
        &mut failures,
    );
    for (delta_a, delta_b) in [(10, 20), (10, 100), (63, 64)] {
        differential(
            &format!("reactor-timer-wheel a={delta_a} b={delta_b}"),
            &TimerWheelModel { delta_a, delta_b, no_generation: false },
            max_states,
            &mut totals,
            &mut failures,
        );
    }
    println!(
        "phase 1: {} models clean; {} exhaustive states vs {} DPOR states ({:.2}x overall)",
        totals.models,
        totals.exhaustive_states,
        totals.dpor_states,
        totals.exhaustive_states as f64 / totals.dpor_states.max(1) as f64
    );

    // ---- Phase 2: seeded mutation drill ----------------------------------
    // One known lost-wakeup / stale-handle / accounting bug per knob; a
    // model checker that passes mutants is vacuous.
    let mut drilled = 0usize;
    drilled += usize::from(drill(
        "run-queue clear-after-poll",
        &RunQueueModel {
            senders: 2,
            crasher: false,
            clear_after_poll: true,
            skip_exit_wake: false,
        },
        "deadlock",
        max_states,
        &mut failures,
    ));
    drilled += usize::from(drill(
        "run-queue skip-exit-wake",
        &RunQueueModel { senders: 1, crasher: true, clear_after_poll: false, skip_exit_wake: true },
        "deadlock",
        max_states,
        &mut failures,
    ));
    drilled += usize::from(drill(
        "external-waker skip-drain",
        &ExternalWakerModel { wakes: 1, skip_drain: true, drop_drained: false },
        "deadlock",
        max_states,
        &mut failures,
    ));
    drilled += usize::from(drill(
        "external-waker drop-drained",
        &ExternalWakerModel { wakes: 1, skip_drain: false, drop_drained: true },
        "deadlock",
        max_states,
        &mut failures,
    ));
    drilled += usize::from(drill(
        "lane-mailbox drop-wild",
        &LaneMailboxModel { drop_wild: true, skip_spill_count: false },
        "deadlock",
        max_states,
        &mut failures,
    ));
    drilled += usize::from(drill(
        "lane-mailbox skip-spill-count",
        &LaneMailboxModel { drop_wild: false, skip_spill_count: true },
        "terminal state rejected",
        max_states,
        &mut failures,
    ));
    drilled += usize::from(drill(
        "timer-wheel no-generation",
        &TimerWheelModel { delta_a: 10, delta_b: 20, no_generation: true },
        "deadlock",
        max_states,
        &mut failures,
    ));
    drilled += usize::from(drill(
        "mailbox broken-skip",
        &MailboxModel { senders: 1, broken_skip: true },
        "deadlock",
        max_states,
        &mut failures,
    ));
    println!("phase 2: {drilled}/8 seeded mutants caught by both explorers");

    if failures.is_empty() {
        println!("schedcheck explore-reactor: all clear");
        std::process::exit(0);
    }
    eprintln!("schedcheck explore-reactor: {} failure(s)", failures.len());
    for f in &failures {
        eprintln!("FAIL {}", f.what);
        for d in &f.details {
            eprintln!("     {d}");
        }
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).is_some_and(|a| a == "explore-reactor") {
        let max_states = match args.iter().position(|a| a == "--max-states") {
            Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(n) => n,
                None => {
                    eprintln!("schedcheck: --max-states needs an integer argument");
                    std::process::exit(2);
                }
            },
            None => DEFAULT_MAX_STATES,
        };
        explore_reactor(max_states);
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let ps: Vec<usize> = if quick { vec![2, 3, 4, 8, 13, 16, 32] } else { (2..=32).collect() };

    let mut checks = 0usize;
    let mut failures: Vec<Failure> = Vec::new();

    // ---- Phase 1: full matrix of static analyses -------------------------
    let sources = all_sources();
    for &p in &ps {
        for src in &sources {
            if !src.supports(p) {
                continue;
            }
            for nbytes in [1usize, 17, 64 * p] {
                for root in [0, p - 1] {
                    let sched = src.schedule(p, nbytes, root);
                    for sem in Semantics::ALL {
                        checks += 1;
                        let rep = check(&sched, sem);
                        if !rep.is_clean() {
                            failures.push(Failure {
                                what: format!(
                                    "{} p={p} nbytes={nbytes} root={root} {sem}",
                                    src.name()
                                ),
                                details: rep.errors.clone(),
                            });
                        }
                    }
                }
            }
        }
    }
    println!("phase 1: {checks} schedule instances analysed");

    // ---- Phase 2: traffic reconciliation against closed forms ------------
    let algorithms = [
        Algorithm::Binomial,
        Algorithm::ScatterRdAllgather,
        Algorithm::ScatterRingNative,
        Algorithm::ScatterRingTuned,
    ];
    let mut reconciled = 0usize;
    for &p in &ps {
        for alg in algorithms {
            if alg == Algorithm::ScatterRdAllgather && !mpsim::is_pof2(p) {
                continue;
            }
            for nbytes in [1usize, 17, 64 * p] {
                let sched = bcast_schedule(alg, p, nbytes, 0);
                let (msgs, bytes) = sched.planned_volume();
                let model = traffic::bcast_volume(alg, nbytes, p);
                reconciled += 1;
                if (msgs, bytes) != (model.msgs, model.bytes) {
                    failures.push(Failure {
                        what: format!("traffic {} p={p} nbytes={nbytes}", alg.schedule_name()),
                        details: vec![format!(
                            "IR volume ({msgs} msgs, {bytes} B) != closed form ({} msgs, {} B)",
                            model.msgs, model.bytes
                        )],
                    });
                }
            }
        }
    }
    println!("phase 2: {reconciled} IR volumes reconciled with traffic closed forms");

    // ---- Phase 3: the paper's theorems as redundancy checks --------------
    // The tuned ring must be redundancy-free at every size; the native
    // ring's redundancy must equal the closed-form saving — byte-exact for
    // every size, message-exact when every scatter chunk is non-empty.
    let mut theorems = 0usize;
    for &p in &ps {
        for nbytes in [1usize, 17, 64 * p] {
            let tuned = check(
                &bcast_schedule(Algorithm::ScatterRingTuned, p, nbytes, 0),
                Semantics::Rendezvous,
            );
            let native = check(
                &bcast_schedule(Algorithm::ScatterRingNative, p, nbytes, 0),
                Semantics::Rendezvous,
            );
            theorems += 1;
            if tuned.redundant_msgs != 0 || tuned.redundant_bytes != 0 {
                failures.push(Failure {
                    what: format!("theorem tuned-redundancy-free p={p} nbytes={nbytes}"),
                    details: vec![format!(
                        "tuned ring has {} redundant msgs / {} redundant bytes",
                        tuned.redundant_msgs, tuned.redundant_bytes
                    )],
                });
            }
            let byte_saving =
                traffic::native_ring_bytes(nbytes, p) - traffic::tuned_ring_bytes(nbytes, p);
            if native.redundant_bytes != byte_saving {
                failures.push(Failure {
                    what: format!("theorem byte-saving p={p} nbytes={nbytes}"),
                    details: vec![format!(
                        "native redundant bytes {} != closed-form saving {byte_saving}",
                        native.redundant_bytes
                    )],
                });
            }
            // The message-count theorem needs every scatter chunk non-empty
            // (zero-length ring hops carry no payload, so the executor does
            // not count them as redundant *messages*); the byte theorem
            // above is exact at every size.
            let layout = bcast_core::ChunkLayout::new(nbytes, p);
            let all_chunks_nonempty = (0..p).all(|r| layout.count(r) > 0);
            if all_chunks_nonempty && native.redundant_msgs != traffic::ring_saving_msgs(p) {
                failures.push(Failure {
                    what: format!("theorem msg-saving p={p} nbytes={nbytes}"),
                    details: vec![format!(
                        "native redundant msgs {} != ring_saving_msgs {}",
                        native.redundant_msgs,
                        traffic::ring_saving_msgs(p)
                    )],
                });
            }
        }
    }
    println!("phase 3: {theorems} sizes checked against the paper's saving theorems");

    // ---- Phase 4: mutation drill -----------------------------------------
    // Seed an off-by-one into the tuned ring's (step, flag) pruning and
    // demand the analyses reject every mutant with a rank-level diagnostic.
    // A checker that passes mutants is vacuous.
    let mut mutants = 0usize;
    for &p in &ps {
        if !quick && ![3, 4, 8, 9, 16, 32].contains(&p) {
            continue;
        }
        let nbytes = 64 * p;
        let correct = bcast_schedule(Algorithm::ScatterRingTuned, p, nbytes, 0);
        for delta in [1usize, 2] {
            let sched = bcast_tuned_schedule_with(p, nbytes, 0, |rel, size| {
                let (step, flag) = step_flag(rel, size);
                (step + delta, flag)
            });
            if sched == correct {
                // Degenerate pruning window (e.g. p=2): the off-by-one
                // changes nothing, so there is no mutant to catch.
                continue;
            }
            mutants += 1;
            let caught = Semantics::ALL.iter().any(|&sem| {
                let rep = check(&sched, sem);
                !rep.is_clean() && rep.errors.iter().any(|e| e.contains("rank"))
            });
            if !caught {
                failures.push(Failure {
                    what: format!("mutation step_flag+{delta} p={p}"),
                    details: vec!["off-by-one in (step, flag) pruning was NOT detected".into()],
                });
            }
        }
    }
    println!("phase 4: {mutants} seeded step_flag mutants drilled");

    // ---- Phase 5: degraded (post-crash) schedules ------------------------
    // The self-healing broadcast re-derives its schedule over the survivor
    // subset after a crash. Prove the regenerated ring is still sound:
    // matched, deadlock-free under both semantics, full coverage on every
    // survivor, no ops or obligations on the dead ranks, and traffic equal
    // to the closed form at the shrunken world size.
    let degraded_algorithms =
        [Algorithm::Binomial, Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned];
    let mut degraded = 0usize;
    for &p in &ps {
        if p < 3 {
            continue; // need at least 2 survivors
        }
        // One dead rank (first / middle / last) and, when possible, a pair.
        let mut casualty_sets: Vec<Vec<usize>> = vec![vec![1 % p], vec![p / 2], vec![p - 1]];
        if p >= 4 {
            casualty_sets.push(vec![1, p - 1]);
        }
        for dead in &casualty_sets {
            let members: Vec<usize> = (0..p).filter(|r| !dead.contains(r)).collect();
            let root = members[0];
            for alg in degraded_algorithms {
                for nbytes in [17usize, 64 * p] {
                    let sched = degraded_bcast_schedule(alg, p, nbytes, &members, root);
                    let (msgs, bytes) = sched.planned_volume();
                    let model = traffic::bcast_volume(alg, nbytes, members.len());
                    if (msgs, bytes) != (model.msgs, model.bytes) {
                        failures.push(Failure {
                            what: format!(
                                "degraded traffic {} p={p} dead={dead:?} nbytes={nbytes}",
                                alg.schedule_name()
                            ),
                            details: vec![format!(
                                "IR volume ({msgs} msgs, {bytes} B) != closed form at P'={} ({} msgs, {} B)",
                                members.len(),
                                model.msgs,
                                model.bytes
                            )],
                        });
                    }
                    for sem in Semantics::ALL {
                        degraded += 1;
                        let rep = check(&sched, sem);
                        if !rep.is_clean() {
                            failures.push(Failure {
                                what: format!(
                                    "degraded {} p={p} dead={dead:?} nbytes={nbytes} {sem}",
                                    alg.schedule_name()
                                ),
                                details: rep.errors.clone(),
                            });
                        }
                    }
                    for &d in dead {
                        if !sched.ranks[d].ops.is_empty() || !sched.ranks[d].required.is_empty() {
                            failures.push(Failure {
                                what: format!(
                                    "degraded {} p={p} dead={dead:?}",
                                    alg.schedule_name()
                                ),
                                details: vec![format!(
                                    "dead rank {d} still has {} op(s) / {} requirement(s)",
                                    sched.ranks[d].ops.len(),
                                    sched.ranks[d].required.len()
                                )],
                            });
                        }
                    }
                }
            }
        }
    }
    println!("phase 5: {degraded} degraded survivor-subset schedules analysed");

    // ---- Verdict ---------------------------------------------------------
    if failures.is_empty() {
        println!("schedcheck: all clear ({} world sizes, {} sources)", ps.len(), sources.len());
        return;
    }
    eprintln!("schedcheck: {} failure(s)", failures.len());
    for f in &failures {
        eprintln!("FAIL {}", f.what);
        for d in &f.details {
            eprintln!("     {d}");
        }
    }
    std::process::exit(1);
}
