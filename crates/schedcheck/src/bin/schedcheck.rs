//! Static schedule sweep: every registered collective × P ∈ {2..32} ×
//! payload sizes × roots × both send semantics, plus the paper's ring
//! theorems, a mutation drill proving the checker has teeth, and the
//! degraded schedules the self-healing broadcast re-derives over survivor
//! subsets after a crash.
//!
//! Exits nonzero (with per-instance diagnostics) on any failure. `--quick`
//! restricts the world-size grid for local smoke runs; CI runs the full
//! sweep.

use bcast_core::bcast::{bcast_schedule, bcast_tuned_schedule_with};
use bcast_core::{all_sources, degraded_bcast_schedule, step_flag, traffic, Algorithm};
use schedcheck::{check, Semantics};

/// One failed instance, for the final report.
struct Failure {
    what: String,
    details: Vec<String>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ps: Vec<usize> = if quick { vec![2, 3, 4, 8, 13, 16, 32] } else { (2..=32).collect() };

    let mut checks = 0usize;
    let mut failures: Vec<Failure> = Vec::new();

    // ---- Phase 1: full matrix of static analyses -------------------------
    let sources = all_sources();
    for &p in &ps {
        for src in &sources {
            if !src.supports(p) {
                continue;
            }
            for nbytes in [1usize, 17, 64 * p] {
                for root in [0, p - 1] {
                    let sched = src.schedule(p, nbytes, root);
                    for sem in Semantics::ALL {
                        checks += 1;
                        let rep = check(&sched, sem);
                        if !rep.is_clean() {
                            failures.push(Failure {
                                what: format!(
                                    "{} p={p} nbytes={nbytes} root={root} {sem}",
                                    src.name()
                                ),
                                details: rep.errors.clone(),
                            });
                        }
                    }
                }
            }
        }
    }
    println!("phase 1: {checks} schedule instances analysed");

    // ---- Phase 2: traffic reconciliation against closed forms ------------
    let algorithms = [
        Algorithm::Binomial,
        Algorithm::ScatterRdAllgather,
        Algorithm::ScatterRingNative,
        Algorithm::ScatterRingTuned,
    ];
    let mut reconciled = 0usize;
    for &p in &ps {
        for alg in algorithms {
            if alg == Algorithm::ScatterRdAllgather && !mpsim::is_pof2(p) {
                continue;
            }
            for nbytes in [1usize, 17, 64 * p] {
                let sched = bcast_schedule(alg, p, nbytes, 0);
                let (msgs, bytes) = sched.planned_volume();
                let model = traffic::bcast_volume(alg, nbytes, p);
                reconciled += 1;
                if (msgs, bytes) != (model.msgs, model.bytes) {
                    failures.push(Failure {
                        what: format!("traffic {} p={p} nbytes={nbytes}", alg.schedule_name()),
                        details: vec![format!(
                            "IR volume ({msgs} msgs, {bytes} B) != closed form ({} msgs, {} B)",
                            model.msgs, model.bytes
                        )],
                    });
                }
            }
        }
    }
    println!("phase 2: {reconciled} IR volumes reconciled with traffic closed forms");

    // ---- Phase 3: the paper's theorems as redundancy checks --------------
    // The tuned ring must be redundancy-free at every size; the native
    // ring's redundancy must equal the closed-form saving — byte-exact for
    // every size, message-exact when every scatter chunk is non-empty.
    let mut theorems = 0usize;
    for &p in &ps {
        for nbytes in [1usize, 17, 64 * p] {
            let tuned = check(
                &bcast_schedule(Algorithm::ScatterRingTuned, p, nbytes, 0),
                Semantics::Rendezvous,
            );
            let native = check(
                &bcast_schedule(Algorithm::ScatterRingNative, p, nbytes, 0),
                Semantics::Rendezvous,
            );
            theorems += 1;
            if tuned.redundant_msgs != 0 || tuned.redundant_bytes != 0 {
                failures.push(Failure {
                    what: format!("theorem tuned-redundancy-free p={p} nbytes={nbytes}"),
                    details: vec![format!(
                        "tuned ring has {} redundant msgs / {} redundant bytes",
                        tuned.redundant_msgs, tuned.redundant_bytes
                    )],
                });
            }
            let byte_saving =
                traffic::native_ring_bytes(nbytes, p) - traffic::tuned_ring_bytes(nbytes, p);
            if native.redundant_bytes != byte_saving {
                failures.push(Failure {
                    what: format!("theorem byte-saving p={p} nbytes={nbytes}"),
                    details: vec![format!(
                        "native redundant bytes {} != closed-form saving {byte_saving}",
                        native.redundant_bytes
                    )],
                });
            }
            // The message-count theorem needs every scatter chunk non-empty
            // (zero-length ring hops carry no payload, so the executor does
            // not count them as redundant *messages*); the byte theorem
            // above is exact at every size.
            let layout = bcast_core::ChunkLayout::new(nbytes, p);
            let all_chunks_nonempty = (0..p).all(|r| layout.count(r) > 0);
            if all_chunks_nonempty && native.redundant_msgs != traffic::ring_saving_msgs(p) {
                failures.push(Failure {
                    what: format!("theorem msg-saving p={p} nbytes={nbytes}"),
                    details: vec![format!(
                        "native redundant msgs {} != ring_saving_msgs {}",
                        native.redundant_msgs,
                        traffic::ring_saving_msgs(p)
                    )],
                });
            }
        }
    }
    println!("phase 3: {theorems} sizes checked against the paper's saving theorems");

    // ---- Phase 4: mutation drill -----------------------------------------
    // Seed an off-by-one into the tuned ring's (step, flag) pruning and
    // demand the analyses reject every mutant with a rank-level diagnostic.
    // A checker that passes mutants is vacuous.
    let mut mutants = 0usize;
    for &p in &ps {
        if !quick && ![3, 4, 8, 9, 16, 32].contains(&p) {
            continue;
        }
        let nbytes = 64 * p;
        let correct = bcast_schedule(Algorithm::ScatterRingTuned, p, nbytes, 0);
        for delta in [1usize, 2] {
            let sched = bcast_tuned_schedule_with(p, nbytes, 0, |rel, size| {
                let (step, flag) = step_flag(rel, size);
                (step + delta, flag)
            });
            if sched == correct {
                // Degenerate pruning window (e.g. p=2): the off-by-one
                // changes nothing, so there is no mutant to catch.
                continue;
            }
            mutants += 1;
            let caught = Semantics::ALL.iter().any(|&sem| {
                let rep = check(&sched, sem);
                !rep.is_clean() && rep.errors.iter().any(|e| e.contains("rank"))
            });
            if !caught {
                failures.push(Failure {
                    what: format!("mutation step_flag+{delta} p={p}"),
                    details: vec!["off-by-one in (step, flag) pruning was NOT detected".into()],
                });
            }
        }
    }
    println!("phase 4: {mutants} seeded step_flag mutants drilled");

    // ---- Phase 5: degraded (post-crash) schedules ------------------------
    // The self-healing broadcast re-derives its schedule over the survivor
    // subset after a crash. Prove the regenerated ring is still sound:
    // matched, deadlock-free under both semantics, full coverage on every
    // survivor, no ops or obligations on the dead ranks, and traffic equal
    // to the closed form at the shrunken world size.
    let degraded_algorithms =
        [Algorithm::Binomial, Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned];
    let mut degraded = 0usize;
    for &p in &ps {
        if p < 3 {
            continue; // need at least 2 survivors
        }
        // One dead rank (first / middle / last) and, when possible, a pair.
        let mut casualty_sets: Vec<Vec<usize>> = vec![vec![1 % p], vec![p / 2], vec![p - 1]];
        if p >= 4 {
            casualty_sets.push(vec![1, p - 1]);
        }
        for dead in &casualty_sets {
            let members: Vec<usize> = (0..p).filter(|r| !dead.contains(r)).collect();
            let root = members[0];
            for alg in degraded_algorithms {
                for nbytes in [17usize, 64 * p] {
                    let sched = degraded_bcast_schedule(alg, p, nbytes, &members, root);
                    let (msgs, bytes) = sched.planned_volume();
                    let model = traffic::bcast_volume(alg, nbytes, members.len());
                    if (msgs, bytes) != (model.msgs, model.bytes) {
                        failures.push(Failure {
                            what: format!(
                                "degraded traffic {} p={p} dead={dead:?} nbytes={nbytes}",
                                alg.schedule_name()
                            ),
                            details: vec![format!(
                                "IR volume ({msgs} msgs, {bytes} B) != closed form at P'={} ({} msgs, {} B)",
                                members.len(),
                                model.msgs,
                                model.bytes
                            )],
                        });
                    }
                    for sem in Semantics::ALL {
                        degraded += 1;
                        let rep = check(&sched, sem);
                        if !rep.is_clean() {
                            failures.push(Failure {
                                what: format!(
                                    "degraded {} p={p} dead={dead:?} nbytes={nbytes} {sem}",
                                    alg.schedule_name()
                                ),
                                details: rep.errors.clone(),
                            });
                        }
                    }
                    for &d in dead {
                        if !sched.ranks[d].ops.is_empty() || !sched.ranks[d].required.is_empty() {
                            failures.push(Failure {
                                what: format!(
                                    "degraded {} p={p} dead={dead:?}",
                                    alg.schedule_name()
                                ),
                                details: vec![format!(
                                    "dead rank {d} still has {} op(s) / {} requirement(s)",
                                    sched.ranks[d].ops.len(),
                                    sched.ranks[d].required.len()
                                )],
                            });
                        }
                    }
                }
            }
        }
    }
    println!("phase 5: {degraded} degraded survivor-subset schedules analysed");

    // ---- Verdict ---------------------------------------------------------
    if failures.is_empty() {
        println!("schedcheck: all clear ({} world sizes, {} sources)", ps.len(), sources.len());
        return;
    }
    eprintln!("schedcheck: {} failure(s)", failures.len());
    for f in &failures {
        eprintln!("FAIL {}", f.what);
        for d in &f.details {
            eprintln!("     {d}");
        }
    }
    std::process::exit(1);
}
