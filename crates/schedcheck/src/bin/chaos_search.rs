//! `chaos-search` — budgeted adversarial fault-plan search over the
//! self-healing broadcast, as a CI phase.
//!
//! Modes:
//!
//! * `chaos-search --budget N` (default): coverage-guided search over the
//!   production recovery path. Any invariant violation is shrunk to a
//!   minimal spec, printed with a replayable seed line, and fails the run.
//! * `chaos-search --drill --budget N`: plants each seeded recovery
//!   regression ([`bcast_core::RecoveryDrill`]) in turn and demands the
//!   search find it, shrink it, and reproduce the identical minimal spec
//!   from the same seed — "3/3 seeded recovery mutants caught".
//! * `chaos-search --replay --budget N`: re-run a reported finding; reads
//!   the seed from `TESTKIT_SEED` (or `--seed`). The search is a pure
//!   function of `(seed, budget, drill)`, so replay *is* re-execution.
//!
//! `--seed 0xHEX` overrides the master seed in any mode; the `TESTKIT_SEED`
//! environment variable (the same knob the property tests print) takes
//! precedence over the built-in default but yields to `--seed`.

use std::process::ExitCode;

use bcast_core::RecoveryDrill;
use schedcheck::chaos::{
    branch_names, run_drill, search, SearchConfig, SearchReport, DEFAULT_SEARCH_SEED,
};

struct Args {
    budget: u32,
    seed: u64,
    drill: bool,
    replay: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { budget: 200, seed: env_seed(), drill: false, replay: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                args.budget = v.parse().map_err(|_| format!("bad --budget {v:?}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = parse_seed(&v).ok_or(format!("bad --seed {v:?}"))?;
            }
            "--drill" => args.drill = true,
            "--replay" => args.replay = true,
            "--help" | "-h" => {
                return Err("usage: chaos-search [--budget N] [--seed 0xHEX] [--drill] [--replay]"
                    .to_owned())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => raw.parse().ok(),
    }
}

fn env_seed() -> u64 {
    std::env::var("TESTKIT_SEED").ok().and_then(|v| parse_seed(&v)).unwrap_or(DEFAULT_SEARCH_SEED)
}

fn print_report(report: &SearchReport, args: &Args) {
    println!(
        "chaos-search: {} specs executed, corpus {}, {} distinct signatures",
        report.executed, report.corpus, report.signatures
    );
    println!("  recovery branches reached: {}", branch_names(report.branch_union).join(", "));
    if let Some(f) = &report.failure {
        println!("  VIOLATION at iteration {}:", f.iteration);
        println!("    found:  {:?}", f.found);
        println!("    shrunk: {:?}", f.shrunk);
        println!("    error:  {}", f.error);
        println!(
            "    replay: TESTKIT_SEED={:#018x} cargo run --release -p schedcheck \
             --bin chaos-search -- --replay --budget {}",
            args.seed, args.budget
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.drill {
        let results = run_drill(args.budget, args.seed);
        let mut caught = 0;
        for r in &results {
            match (&r.failure, r.replayed) {
                (Some(f), true) => {
                    caught += 1;
                    println!(
                        "drill '{}': caught at iteration {}, shrunk to {:?}, replay OK",
                        r.knob, f.iteration, f.shrunk
                    );
                    println!("  error: {}", f.error);
                }
                (Some(f), false) => println!(
                    "drill '{}': caught ({}) but did NOT replay deterministically",
                    r.knob, f.error
                ),
                (None, _) => println!("drill '{}': ESCAPED the search", r.knob),
            }
        }
        println!("chaos-search drill: {caught}/{} seeded recovery mutants caught", results.len());
        return if caught == results.len() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if args.replay {
        println!("chaos-search: replaying search with seed {:#018x}", args.seed);
    }
    let report =
        search(&SearchConfig { budget: args.budget, seed: args.seed, drill: RecoveryDrill::NONE });
    print_report(&report, &args);
    if report.failure.is_some() {
        ExitCode::FAILURE
    } else {
        println!("  no invariant violations (seed {:#018x})", args.seed);
        ExitCode::SUCCESS
    }
}
