//! Repo-convention linter: walks `crates/**/*.rs` and applies the rules in
//! [`schedcheck::lint`] — raw `std::sync` lock primitives outside the sync
//! layer, `.unwrap()`/`.expect()` in library code, undocumented `unsafe`,
//! `let _ =` discarding a communication call's `Result`, per-chunk
//! `comm.send(` loops in broadcast hot-path files, wall-clock reads and
//! `HashMap`s inside the event executor, cancel-unsafe shapes in the
//! async communication layer (unregistered `Poll::Pending`, `RefCell`
//! borrows across suspension points, send effects inside `poll` bodies),
//! and `.unwrap()`/`.expect()` on communication results inside the
//! self-healing recovery modules. Prints every hit and exits nonzero if
//! any are found.
//!
//! Run from the repository root (the directory containing `crates/`).

use std::fs;
use std::path::{Path, PathBuf};

use schedcheck::lint;

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("repolint: cannot read {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    let root = Path::new("crates");
    if !root.is_dir() {
        eprintln!("repolint: no crates/ here — run from the repository root");
        std::process::exit(2);
    }
    let mut files = Vec::new();
    collect_rs(root, &mut files);
    files.sort();

    let mut hits = Vec::new();
    for path in &files {
        let content = match fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("repolint: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        let rel = path.to_string_lossy().replace('\\', "/");
        hits.extend(lint::check_file(&rel, &content));
    }

    if hits.is_empty() {
        println!("repolint: {} files clean", files.len());
        return;
    }
    for h in &hits {
        eprintln!("{h}");
    }
    eprintln!("repolint: {} violation(s) in {} files scanned", hits.len(), files.len());
    std::process::exit(1);
}
