//! Schedule-mutation helpers for negative testing.
//!
//! Each helper corrupts one op of a [`Schedule`] in a way that mimics a real
//! implementation bug — a swapped neighbor, a truncated chunk, a dropped or
//! doubled transfer, a tag mismatch. Negative tests apply a mutation to a
//! known-good schedule and assert that [`crate::analysis::check`] rejects it
//! with a diagnostic naming the offending rank and step, proving the
//! analyses have teeth rather than vacuously passing.

use bcast_core::{Loc, Schedule};
use mpsim::{Rank, Tag};

/// Redirect the send half of `sched.ranks[rank].ops[step]` to `new_peer`
/// (a swapped-neighbor bug, e.g. sending right instead of left in a ring).
///
/// Panics if the op has no send half — mutating a nonexistent transfer would
/// make the negative test vacuous.
pub fn redirect_send(sched: &mut Schedule, rank: Rank, step: usize, new_peer: Rank) {
    let send = sched.ranks[rank].ops[step]
        .send
        .as_mut()
        .unwrap_or_else(|| panic!("rank {rank} step {step} has no send half to redirect"));
    send.peer = new_peer;
}

/// Truncate the send half of `sched.ranks[rank].ops[step]` to `new_len`
/// bytes (an off-by-one / short-chunk bug). Panics if the op has no send
/// half or `new_len` exceeds the current length.
pub fn truncate_send(sched: &mut Schedule, rank: Rank, step: usize, new_len: usize) {
    let send = sched.ranks[rank].ops[step]
        .send
        .as_mut()
        .unwrap_or_else(|| panic!("rank {rank} step {step} has no send half to truncate"));
    send.loc = match &send.loc {
        Loc::Buf(r) => {
            assert!(new_len <= r.len(), "truncation must shrink the transfer");
            Loc::Buf(r.start..r.start + new_len)
        }
        Loc::Private(n) => {
            assert!(new_len <= *n, "truncation must shrink the transfer");
            Loc::Private(new_len)
        }
    };
}

/// Remove `sched.ranks[rank].ops[step]` entirely (a skipped transfer).
pub fn drop_op(sched: &mut Schedule, rank: Rank, step: usize) {
    sched.ranks[rank].ops.remove(step);
}

/// Duplicate `sched.ranks[rank].ops[step]` immediately after itself
/// (a doubled transfer, e.g. a loop running one iteration too many).
pub fn duplicate_op(sched: &mut Schedule, rank: Rank, step: usize) {
    let op = sched.ranks[rank].ops[step].clone();
    sched.ranks[rank].ops.insert(step + 1, op);
}

/// Retag both halves of `sched.ranks[rank].ops[step]` (a tag-mismatch bug:
/// the op still fires but no longer matches its intended partner).
pub fn retag(sched: &mut Schedule, rank: Rank, step: usize, new_tag: Tag) {
    let op = &mut sched.ranks[rank].ops[step];
    assert!(
        op.send.is_some() || op.recv.is_some(),
        "rank {rank} step {step} has no halves to retag"
    );
    if let Some(s) = &mut op.send {
        s.tag = new_tag;
    }
    if let Some(r) = &mut op.recv {
        r.tag = new_tag;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{check, Semantics};

    fn ping() -> Schedule {
        let mut s = Schedule::new("ping", 3, 4);
        s.ranks[0].mark_valid(0..4);
        s.ranks[0].send("x", 1, Tag(1), Loc::Buf(0..4));
        s.ranks[1].recv("x", 0, Tag(1), Loc::Buf(0..4));
        s.ranks[1].require(0..4);
        s
    }

    #[test]
    fn redirect_breaks_matching() {
        let mut s = ping();
        redirect_send(&mut s, 0, 0, 2);
        let rep = check(&s, Semantics::Eager);
        assert!(!rep.is_clean());
        assert!(rep.errors.iter().any(|e| e.contains("rank")), "{:?}", rep.errors);
    }

    #[test]
    fn truncate_breaks_coverage() {
        let mut s = ping();
        truncate_send(&mut s, 0, 0, 3);
        let rep = check(&s, Semantics::Eager);
        assert!(rep.errors.iter().any(|e| e.contains("coverage")), "{:?}", rep.errors);
    }

    #[test]
    fn drop_strands_the_receiver() {
        let mut s = ping();
        drop_op(&mut s, 0, 0);
        let rep = check(&s, Semantics::Eager);
        assert!(rep.errors.iter().any(|e| e.contains("deadlock")), "{:?}", rep.errors);
    }

    #[test]
    fn duplicate_orphans_a_send() {
        let mut s = ping();
        duplicate_op(&mut s, 0, 0);
        let rep = check(&s, Semantics::Eager);
        assert!(rep.errors.iter().any(|e| e.contains("orphaned send")), "{:?}", rep.errors);
    }

    #[test]
    fn retag_breaks_the_rendezvous() {
        let mut s = ping();
        retag(&mut s, 0, 0, Tag(0x7F));
        let rep = check(&s, Semantics::Rendezvous);
        assert!(!rep.is_clean(), "{:?}", rep.errors);
    }
}
