//! Static analyses over the symbolic schedule IR.
//!
//! The centerpiece is an *abstract executor*: it runs a
//! [`Schedule`](bcast_core::schedule::Schedule) without moving payload bytes,
//! advancing every rank through its op list under a chosen message-passing
//! semantics and recording what a real run would have done. On top of one
//! abstract execution it derives every check the `schedcheck` CLI reports:
//!
//! * **Matching** — every send half is consumed by exactly one receive and
//!   vice versa; leftovers are reported as orphans with rank/step.
//! * **Deadlock freedom** — if the system reaches a state where unfinished
//!   ranks exist but none can advance, a wait-for graph is built and the
//!   blocking cycle (or the terminated peer a rank waits on) is reported.
//! * **Coverage** — per-rank byte validity: sends of never-received bytes
//!   are flagged, required bytes left invalid are flagged, and writes to
//!   already-valid bytes are *counted* as redundancy (not an error — the
//!   native ring's redundancy **is** the paper's bandwidth saving).
//! * **Traffic** — per-rank delivered message/byte counters, reconciled by
//!   callers against [`bcast_core::traffic`] closed forms and instrumented
//!   `ThreadWorld`/`netsim` runs.
//!
//! ## Semantics
//!
//! Under [`Semantics::Eager`] a send half completes the moment it is posted
//! (buffered by the transport); under [`Semantics::Rendezvous`] a blocking
//! send half completes only when the matching receive consumes it — the
//! stricter regime in which a ring exchange written as `send; recv` instead
//! of `sendrecv` deadlocks. Nonblocking sends (`isend`) never gate progress
//! in either mode. Matching is FIFO per `(src, dst, tag)` channel, MPI's
//! non-overtaking rule, exactly like [`mpsim`]'s mailbox.

use std::collections::{BTreeMap, HashMap, VecDeque};

use bcast_core::schedule::{Loc, Schedule};
use mpsim::{Rank, Tag};

/// Message-progress semantics for the abstract execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Sends complete immediately (transport buffers the payload).
    Eager,
    /// Blocking sends complete only when the matching receive arrives.
    Rendezvous,
}

impl Semantics {
    /// Both semantics, in checking order.
    pub const ALL: [Semantics; 2] = [Semantics::Eager, Semantics::Rendezvous];
}

impl std::fmt::Display for Semantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Semantics::Eager => "eager",
            Semantics::Rendezvous => "rendezvous",
        })
    }
}

/// Per-rank delivered traffic observed by the abstract executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankTraffic {
    /// Messages sent (every posted send half, including zero-byte ones).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received (matched receive halves).
    pub msgs_recvd: u64,
    /// Payload bytes received.
    pub bytes_recvd: u64,
}

/// Result of checking one schedule under one semantics.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedule name.
    pub name: String,
    /// World size.
    pub p: usize,
    /// Semantics the schedule was executed under.
    pub semantics: Semantics,
    /// Violations, each naming the offending rank and step.
    pub errors: Vec<String>,
    /// Per-rank delivered traffic.
    pub traffic: Vec<RankTraffic>,
    /// Receives whose (non-empty) written extent was entirely valid already —
    /// for the native scatter-ring broadcast this equals the closed-form
    /// message saving of the paper's tuned ring.
    pub redundant_msgs: u64,
    /// Bytes written over already-valid bytes.
    pub redundant_bytes: u64,
}

impl Report {
    /// No violations found.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Total delivered `(messages, bytes)` summed at the senders.
    pub fn sent_volume(&self) -> (u64, u64) {
        let msgs = self.traffic.iter().map(|t| t.msgs_sent).sum();
        let bytes = self.traffic.iter().map(|t| t.bytes_sent).sum();
        (msgs, bytes)
    }
}

/// Reconciliation of an instrumented run against the planned volume of the
/// schedule IR it claims to implement.
///
/// The schedule plans *logical* transfers: one send half per chunk movement.
/// A runtime may refine those (sub-chunk spans raise the logical message
/// count) and may coalesce several of them into one physical envelope — but
/// it must move **exactly** the planned bytes. The checked contract:
///
/// * `executed_bytes == planned_bytes` — coalescing saves envelopes, never
///   payload; any deviation means the run and the IR disagree on the
///   algorithm.
/// * `executed_msgs >= planned_msgs` — splitting a chunk into sub-spans only
///   refines the plan; a run can never do *fewer* logical transfers than it
///   planned.
/// * `executed_envelopes <= planned_msgs` — an envelope carries at least one
///   planned transfer, so coalescing can only lower the transmission count.
/// * `executed_envelopes <= executed_msgs` and globally balanced counters —
///   invariants of the [`mpsim`] accounting layer.
/// * per-rank `bytes_copied <= copy ceiling` — for the broadcast schedules
///   with a known zero-copy payload flow ([`copy_ceiling_per_rank`]), no
///   rank may memcpy more than the closed-form budget; a regression to
///   per-hop copying shows up here even though wire traffic is unchanged.
#[derive(Debug, Clone)]
pub struct Reconciliation {
    /// Send halves in the schedule IR.
    pub planned_msgs: u64,
    /// Payload bytes summed over the IR's send halves.
    pub planned_bytes: u64,
    /// Logical messages the run recorded (spans count individually).
    pub executed_msgs: u64,
    /// Payload bytes the run moved.
    pub executed_bytes: u64,
    /// Physical transmissions the run paid for.
    pub executed_envelopes: u64,
    /// Rank-local memcpy bytes the run recorded, summed over ranks.
    pub executed_bytes_copied: u64,
    /// Violations of the contract above, human-readable.
    pub errors: Vec<String>,
}

impl Reconciliation {
    /// No violations found.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Envelopes saved relative to the plan — the coalescing win.
    pub fn envelopes_saved(&self) -> u64 {
        self.planned_msgs.saturating_sub(self.executed_envelopes)
    }
}

/// Closed-form memcpy budget, in bytes per rank, of a broadcast schedule's
/// zero-copy payload flow — `None` when the schedule has no pinned budget.
///
/// * Binomial and the scatter-ring broadcasts (native, tuned, and their
///   coalesced refinements, which reconcile against the tuned IR): a rank
///   stages its payload at most once and lands every received envelope at
///   most once, so `2 · nbytes` bounds every rank — the root of the
///   scatter-ring paths meets it exactly (an `nbytes` staging pass plus the
///   ring's landing copies).
/// * Scatter + recursive-doubling: the RD exchange is a copying
///   `sendrecv` on both halves (up to `2 · nbytes` alone), on top of the
///   zero-copy scatter's ≤ `nbytes` — ceiling `3 · nbytes`.
pub fn copy_ceiling_per_rank(schedule_name: &str, nbytes: u64) -> Option<u64> {
    match schedule_name {
        "bcast/binomial" | "bcast/scatter_ring_native" | "bcast/scatter_ring_tuned" => {
            Some(2 * nbytes)
        }
        "bcast/scatter_rd" => Some(3 * nbytes),
        _ => None,
    }
}

/// Reconcile an instrumented (possibly coalesced) execution against
/// `schedule`'s planned volume. See [`Reconciliation`] for the contract.
///
/// Executor-agnostic: the counters of a `ThreadWorld`, `SimWorld`, or
/// `EventWorld` outcome all reconcile through the same entry point — the
/// accounting layer is shared, so a schedule that reconciles on one
/// executor must reconcile identically on the others.
pub fn reconcile_traffic(schedule: &Schedule, traffic: &mpsim::WorldTraffic) -> Reconciliation {
    let (planned_msgs, planned_bytes) = schedule.planned_volume();
    let executed_msgs = traffic.total_msgs();
    let executed_bytes = traffic.total_bytes();
    let executed_envelopes = traffic.total_envelopes();
    let mut errors = Vec::new();

    if traffic.per_rank.len() != schedule.p {
        errors.push(format!(
            "world-size: schedule plans {} ranks but the run recorded {}",
            schedule.p,
            traffic.per_rank.len()
        ));
    }
    if executed_bytes != planned_bytes {
        errors.push(format!(
            "bytes: schedule plans exactly {planned_bytes}B but the run moved {executed_bytes}B \
             (coalescing may drop envelopes, never bytes)"
        ));
    }
    if executed_msgs < planned_msgs {
        errors.push(format!(
            "messages: run recorded {executed_msgs} logical messages, fewer than the {planned_msgs} \
             planned (sub-chunk splitting may only refine the plan)"
        ));
    }
    if executed_envelopes > planned_msgs {
        errors.push(format!(
            "envelopes: run paid {executed_envelopes} transmissions, more than the {planned_msgs} \
             planned sends (coalescing may only lower the envelope count)"
        ));
    }
    if executed_envelopes > executed_msgs {
        errors.push(format!(
            "envelopes: {executed_envelopes} envelopes exceed {executed_msgs} logical messages \
             (accounting invariant violated)"
        ));
    }
    if !traffic.is_balanced() {
        errors.push("balance: global sent/received counters disagree".to_string());
    }
    if let Some(ceiling) = copy_ceiling_per_rank(
        &schedule.name,
        schedule.ranks.first().map_or(0, |r| r.buf_len as u64),
    ) {
        for (rank, stats) in traffic.per_rank.iter().enumerate() {
            if stats.bytes_copied > ceiling {
                errors.push(format!(
                    "copies: rank {rank} memcpy'd {}B, above the {ceiling}B zero-copy budget of \
                     {} (wire traffic can be right while the payload path regressed to per-hop \
                     copying)",
                    stats.bytes_copied, schedule.name
                ));
            }
        }
    }

    Reconciliation {
        planned_msgs,
        planned_bytes,
        executed_msgs,
        executed_bytes,
        executed_envelopes,
        executed_bytes_copied: traffic.total_bytes_copied(),
        errors,
    }
}

/// An in-flight (posted) send half.
struct PostedSend {
    id: u64,
    src: Rank,
    src_step: usize,
    len: usize,
    /// Completes the sender's op immediately (eager or `isend`).
    fire_and_forget: bool,
}

/// Mutable per-rank execution state.
struct RankState {
    pc: usize,
    /// Current op's send half has been posted.
    posted: bool,
    /// Current op's send half has completed (or there is none).
    send_done: bool,
    /// Current op's recv half has completed (or there is none).
    recv_done: bool,
    /// Id of the posted rendezvous send awaiting consumption.
    pending_send: Option<u64>,
    /// Byte validity of the tracked destination buffer.
    valid: Vec<bool>,
    traffic: RankTraffic,
}

impl RankState {
    fn reset_op(&mut self) {
        self.posted = false;
        self.send_done = false;
        self.recv_done = false;
        self.pending_send = None;
    }
}

/// Execute `schedule` abstractly under `semantics` and report every violation.
pub fn check(schedule: &Schedule, semantics: Semantics) -> Report {
    let p = schedule.p;
    let mut report = Report {
        name: schedule.name.clone(),
        p,
        semantics,
        errors: Vec::new(),
        traffic: vec![RankTraffic::default(); p],
        redundant_msgs: 0,
        redundant_bytes: 0,
    };

    static_matching(schedule, &mut report.errors);

    let mut ranks: Vec<RankState> = schedule
        .ranks
        .iter()
        .map(|rs| {
            let mut valid = vec![false; rs.buf_len];
            for r in &rs.valid {
                valid[r.clone()].fill(true);
            }
            RankState {
                pc: 0,
                posted: false,
                send_done: false,
                recv_done: false,
                pending_send: None,
                valid,
                traffic: RankTraffic::default(),
            }
        })
        .collect();

    // FIFO channels of posted sends per (src, dst, tag); `consumed` marks
    // rendezvous sends whose receiver has taken them.
    let mut channels: HashMap<(Rank, Rank, Tag), VecDeque<PostedSend>> = HashMap::new();
    let mut consumed: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut next_id = 0u64;

    // Round-robin to fixpoint: each pass tries to advance every rank as far
    // as it can; stop when a full pass makes no progress.
    loop {
        let mut progressed = false;
        for rank in 0..p {
            while advance(
                schedule,
                rank,
                semantics,
                &mut ranks,
                &mut channels,
                &mut consumed,
                &mut next_id,
                &mut report,
            ) {
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Deadlock: unfinished ranks that can no longer advance.
    let stuck: Vec<Rank> = (0..p).filter(|&r| ranks[r].pc < schedule.ranks[r].ops.len()).collect();
    if !stuck.is_empty() {
        report.errors.push(describe_deadlock(schedule, &ranks, &stuck, &consumed));
    }

    // Orphans: posted sends nobody consumed.
    let mut orphans: Vec<&PostedSend> = channels.values().flatten().collect();
    orphans.sort_by_key(|o| (o.src, o.src_step));
    for o in orphans {
        report.errors.push(format!(
            "orphaned send: rank {} step {} ({}) was never received",
            o.src,
            o.src_step,
            schedule.ranks[o.src].ops[o.src_step].describe()
        ));
    }

    // Coverage: every required byte must be valid at the end.
    for (rank, state) in ranks.iter().enumerate() {
        for req in &schedule.ranks[rank].required {
            let mut missing: Option<(usize, usize)> = None;
            for b in req.clone() {
                if !state.valid[b] {
                    missing = Some(match missing {
                        None => (b, b + 1),
                        Some((s, _)) => (s, b + 1),
                    });
                }
            }
            if let Some((s, e)) = missing {
                report
                    .errors
                    .push(format!("coverage: rank {rank} required bytes {s}..{e} never written"));
            }
        }
    }

    for (slot, state) in report.traffic.iter_mut().zip(&ranks) {
        *slot = state.traffic;
    }
    report
}

/// Order-free matching census: per `(src, dst, tag)` channel the number of
/// send halves must equal the number of receive halves.
fn static_matching(schedule: &Schedule, errors: &mut Vec<String>) {
    let mut sends: BTreeMap<(Rank, Rank, u32), u64> = BTreeMap::new();
    let mut recvs: BTreeMap<(Rank, Rank, u32), u64> = BTreeMap::new();
    for (rank, rs) in schedule.ranks.iter().enumerate() {
        for op in &rs.ops {
            if let Some(s) = &op.send {
                *sends.entry((rank, s.peer, s.tag.0)).or_default() += 1;
            }
            if let Some(r) = &op.recv {
                *recvs.entry((r.peer, rank, r.tag.0)).or_default() += 1;
            }
        }
    }
    let keys: std::collections::BTreeSet<_> = sends.keys().chain(recvs.keys()).copied().collect();
    for key in keys {
        let (s, r) = (sends.get(&key).copied().unwrap_or(0), recvs.get(&key).copied().unwrap_or(0));
        if s != r {
            let (src, dst, tag) = key;
            errors.push(format!(
                "matching: channel rank {src} -> rank {dst} tag {tag:#x} has {s} send(s) but {r} recv(s)"
            ));
        }
    }
}

/// Try to make one step of progress on `rank`; returns whether anything moved.
#[allow(clippy::too_many_arguments)]
fn advance(
    schedule: &Schedule,
    rank: Rank,
    semantics: Semantics,
    ranks: &mut [RankState],
    channels: &mut HashMap<(Rank, Rank, Tag), VecDeque<PostedSend>>,
    consumed: &mut std::collections::HashSet<u64>,
    next_id: &mut u64,
    report: &mut Report,
) -> bool {
    let rs = &schedule.ranks[rank];
    if ranks[rank].pc >= rs.ops.len() {
        return false;
    }
    let step = ranks[rank].pc;
    let op = &rs.ops[step];
    let mut moved = false;

    // Post the send half (once), checking source validity.
    if !ranks[rank].posted {
        ranks[rank].posted = true;
        moved = true;
        match &op.send {
            None => ranks[rank].send_done = true,
            Some(s) => {
                if let Loc::Buf(range) = &s.loc {
                    if let Some(b) = range.clone().find(|&b| !ranks[rank].valid[b]) {
                        report.errors.push(format!(
                            "invalid-send: rank {rank} step {step} sends byte {b} before it is valid ({})",
                            op.describe()
                        ));
                    }
                }
                let id = *next_id;
                *next_id += 1;
                let fire_and_forget = s.nonblocking || semantics == Semantics::Eager;
                channels.entry((rank, s.peer, s.tag)).or_default().push_back(PostedSend {
                    id,
                    src: rank,
                    src_step: step,
                    len: s.loc.len(),
                    fire_and_forget,
                });
                ranks[rank].traffic.msgs_sent += 1;
                ranks[rank].traffic.bytes_sent += s.loc.len() as u64;
                if fire_and_forget {
                    ranks[rank].send_done = true;
                } else {
                    ranks[rank].pending_send = Some(id);
                }
            }
        }
        if op.recv.is_none() {
            ranks[rank].recv_done = true;
        }
    }

    // Try to complete the recv half.
    if !ranks[rank].recv_done {
        let r = op.recv.as_ref().expect("recv_done is false only with a recv half");
        let key = (r.peer, rank, r.tag);
        if let Some(queue) = channels.get_mut(&key) {
            if let Some(msg) = queue.pop_front() {
                if !msg.fire_and_forget {
                    consumed.insert(msg.id);
                }
                if msg.len > r.dst.len() {
                    report.errors.push(format!(
                        "overflow: rank {rank} step {step} receives {}B into capacity {}B ({})",
                        msg.len,
                        r.dst.len(),
                        op.describe()
                    ));
                }
                if let Loc::Buf(range) = &r.dst {
                    let end = (range.start + msg.len).min(range.end).min(ranks[rank].valid.len());
                    let written = range.start..end;
                    if !written.is_empty() && written.clone().all(|b| ranks[rank].valid[b]) {
                        report.redundant_msgs += 1;
                    }
                    for b in written {
                        if ranks[rank].valid[b] {
                            report.redundant_bytes += 1;
                        } else {
                            ranks[rank].valid[b] = true;
                        }
                    }
                }
                ranks[rank].traffic.msgs_recvd += 1;
                ranks[rank].traffic.bytes_recvd += msg.len as u64;
                ranks[rank].recv_done = true;
                moved = true;
                if queue.is_empty() {
                    channels.remove(&key);
                }
            }
        }
    }

    // A rendezvous send completes when the receiver consumes it.
    if !ranks[rank].send_done {
        if let Some(id) = ranks[rank].pending_send {
            if consumed.remove(&id) {
                ranks[rank].send_done = true;
                ranks[rank].pending_send = None;
                moved = true;
            }
        }
    }

    if ranks[rank].send_done && ranks[rank].recv_done {
        ranks[rank].pc += 1;
        ranks[rank].reset_op();
        return true;
    }
    moved
}

/// Describe the stuck state: walk the wait-for graph from the lowest stuck
/// rank; either a cycle (true deadlock) or a chain ending at a terminated
/// peer (unmatched operation).
fn describe_deadlock(
    schedule: &Schedule,
    ranks: &[RankState],
    stuck: &[Rank],
    _consumed: &std::collections::HashSet<u64>,
) -> String {
    // Each stuck rank waits on exactly one peer per incomplete half; prefer
    // the recv's peer (waiting for data), else the send's peer (waiting for
    // a rendezvous consumer).
    let waits_on = |r: Rank| -> Option<(Rank, String)> {
        let st = &ranks[r];
        let op = &schedule.ranks[r].ops[st.pc];
        let desc = format!("rank {} step {} {}", r, st.pc, op.describe());
        if !st.recv_done {
            if let Some(recv) = &op.recv {
                return Some((recv.peer, desc));
            }
        }
        if !st.send_done {
            if let Some(send) = &op.send {
                return Some((send.peer, desc));
            }
        }
        None
    };

    let is_stuck = |r: Rank| stuck.contains(&r);
    let start = stuck[0];
    let mut chain: Vec<Rank> = vec![start];
    let mut lines: Vec<String> = Vec::new();
    let mut cur = start;
    loop {
        let Some((peer, desc)) = waits_on(cur) else {
            lines.push(format!("rank {cur} stuck with no pending half (internal error)"));
            break;
        };
        lines.push(format!("{desc} waits on rank {peer}"));
        if !is_stuck(peer) {
            lines.push(format!(
                "rank {peer} has terminated: the operation above can never complete"
            ));
            break;
        }
        if let Some(pos) = chain.iter().position(|&c| c == peer) {
            let cycle: Vec<String> = chain[pos..].iter().map(|c| format!("rank {c}")).collect();
            lines.push(format!("cycle: {} -> rank {peer}", cycle.join(" -> ")));
            break;
        }
        chain.push(peer);
        cur = peer;
    }
    format!("deadlock ({} of {} ranks stuck): {}", stuck.len(), schedule.p, lines.join("; "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_core::schedule::Loc;
    use mpsim::Tag;

    fn two_rank_ping() -> Schedule {
        let mut s = Schedule::new("ping", 2, 4);
        s.ranks[0].mark_valid(0..4);
        s.ranks[0].send("x", 1, Tag(1), Loc::Buf(0..4));
        s.ranks[1].recv("x", 0, Tag(1), Loc::Buf(0..4));
        s.ranks[1].require(0..4);
        s
    }

    #[test]
    fn clean_ping_passes_both_semantics() {
        for sem in Semantics::ALL {
            let r = check(&two_rank_ping(), sem);
            assert!(r.is_clean(), "{sem}: {:?}", r.errors);
            assert_eq!(r.sent_volume(), (1, 4));
            assert_eq!(r.traffic[1].bytes_recvd, 4);
        }
    }

    #[test]
    fn head_to_head_blocking_sends_deadlock_only_under_rendezvous() {
        // rank 0: send then recv; rank 1: send then recv — classic unsafe
        // exchange: fine if the transport buffers, deadlock if not.
        let mut s = Schedule::new("unsafe-exchange", 2, 1);
        s.ranks[0].mark_valid(0..1);
        s.ranks[1].mark_valid(0..1);
        s.ranks[0].send("x", 1, Tag(1), Loc::Private(1));
        s.ranks[0].recv("x", 1, Tag(1), Loc::Private(1));
        s.ranks[1].send("x", 0, Tag(1), Loc::Private(1));
        s.ranks[1].recv("x", 0, Tag(1), Loc::Private(1));
        assert!(check(&s, Semantics::Eager).is_clean());
        let r = check(&s, Semantics::Rendezvous);
        assert!(!r.is_clean());
        assert!(
            r.errors[0].contains("deadlock") && r.errors[0].contains("cycle"),
            "{:?}",
            r.errors
        );
    }

    #[test]
    fn sendrecv_exchange_is_safe_under_rendezvous() {
        let mut s = Schedule::new("exchange", 2, 1);
        s.ranks[0].sendrecv("x", 1, Tag(1), Loc::Private(1), 1, Tag(1), Loc::Private(1));
        s.ranks[1].sendrecv("x", 0, Tag(1), Loc::Private(1), 0, Tag(1), Loc::Private(1));
        assert!(check(&s, Semantics::Rendezvous).is_clean());
    }

    #[test]
    fn orphaned_send_is_reported_with_rank_and_step() {
        let mut s = Schedule::new("orphan", 2, 0);
        s.ranks[0].send("x", 1, Tag(1), Loc::Private(8));
        let r = check(&s, Semantics::Eager);
        assert!(r.errors.iter().any(|e| e.contains("matching")), "{:?}", r.errors);
        assert!(
            r.errors.iter().any(|e| e.contains("orphaned send") && e.contains("rank 0 step 0")),
            "{:?}",
            r.errors
        );
    }

    #[test]
    fn unmatched_recv_names_the_terminated_peer() {
        let mut s = Schedule::new("norecv", 2, 0);
        s.ranks[1].recv("x", 0, Tag(1), Loc::Private(8));
        let r = check(&s, Semantics::Eager);
        assert!(
            r.errors.iter().any(|e| e.contains("deadlock") && e.contains("terminated")),
            "{:?}",
            r.errors
        );
    }

    #[test]
    fn overflow_and_invalid_send_are_reported() {
        let mut s = Schedule::new("bad", 2, 4);
        // rank 0 sends 4 bytes it never received
        s.ranks[0].send("x", 1, Tag(1), Loc::Buf(0..4));
        s.ranks[1].recv("x", 0, Tag(1), Loc::Buf(0..2)); // capacity 2 < 4
        let r = check(&s, Semantics::Eager);
        assert!(r.errors.iter().any(|e| e.contains("invalid-send") && e.contains("rank 0 step 0")));
        assert!(r.errors.iter().any(|e| e.contains("overflow") && e.contains("rank 1 step 0")));
    }

    #[test]
    fn missing_coverage_is_reported() {
        let mut s = Schedule::new("gap", 2, 8);
        s.ranks[0].mark_valid(0..8);
        s.ranks[0].send("x", 1, Tag(1), Loc::Buf(0..4));
        s.ranks[1].recv("x", 0, Tag(1), Loc::Buf(0..4));
        s.ranks[1].require(0..8); // bytes 4..8 never arrive
        let r = check(&s, Semantics::Eager);
        assert!(
            r.errors.iter().any(|e| e.contains("coverage") && e.contains("rank 1")),
            "{:?}",
            r.errors
        );
    }

    #[test]
    fn redundant_rewrites_are_counted_not_flagged() {
        let mut s = Schedule::new("dup", 2, 4);
        s.ranks[0].mark_valid(0..4);
        s.ranks[1].mark_valid(0..4); // receiver already has the bytes
        s.ranks[0].send("x", 1, Tag(1), Loc::Buf(0..4));
        s.ranks[1].recv("x", 0, Tag(1), Loc::Buf(0..4));
        let r = check(&s, Semantics::Eager);
        assert!(r.is_clean(), "{:?}", r.errors);
        assert_eq!(r.redundant_msgs, 1);
        assert_eq!(r.redundant_bytes, 4);
    }

    #[test]
    fn reconcile_coalesced_run_against_tuned_schedule() {
        use bcast_core::bcast::bcast_schedule;
        use bcast_core::{bcast_opt_coalesced, traffic, Algorithm, CoalescePolicy};
        use mpsim::{Communicator, ThreadWorld};

        for (p, scatter_msgs) in [(8usize, 7u64), (10, 9)] {
            let nbytes = 16 * p;
            let sched = bcast_schedule(Algorithm::ScatterRingTuned, p, nbytes, 0);
            // The IR plans the paper's closed-form transfer counts exactly:
            // 44 + 7 at P = 8, 75 + 9 at P = 10.
            let (planned_msgs, _) = sched.planned_volume();
            assert_eq!(planned_msgs, traffic::tuned_ring_msgs(p) + scatter_msgs);

            let src: Vec<u8> = (0..nbytes).map(|i| (i % 251) as u8).collect();
            let msg = src.clone();
            let out = ThreadWorld::run(p, move |comm| {
                let mut buf = if comm.rank() == 0 { msg.clone() } else { vec![0u8; msg.len()] };
                bcast_opt_coalesced(comm, &mut buf, 0, &CoalescePolicy::unlimited()).unwrap();
                buf
            });
            assert!(out.results.iter().all(|b| b == &src));

            let rec = reconcile_traffic(&sched, &out.traffic);
            assert!(rec.is_clean(), "P={p}: {:?}", rec.errors);
            // Whole-chunk coalescing keeps the logical plan intact…
            assert_eq!(rec.executed_msgs, planned_msgs);
            assert_eq!(rec.executed_bytes, rec.planned_bytes);
            // …and only the envelope count drops (44 → 36, 75 → 65).
            assert_eq!(
                rec.executed_envelopes,
                bcast_core::coalesced_envelope_count(p) + scatter_msgs
            );
            assert!(rec.envelopes_saved() > 0);
        }
    }

    #[test]
    fn reconcile_event_world_runs_against_schedules() {
        use bcast_core::bcast::bcast_schedule;
        use bcast_core::{
            bcast_coalesced_event_world, bcast_event_world, Algorithm, CoalescePolicy,
        };

        for p in [8usize, 10] {
            let nbytes = 16 * p;
            // Plain scatter-ring runs on the event executor implement their
            // IR one planned transfer per envelope.
            for algorithm in [Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned] {
                let sched = bcast_schedule(algorithm, p, nbytes, 0);
                let out = bcast_event_world(p, nbytes, 0, algorithm);
                let rec = reconcile_traffic(&sched, &out.traffic);
                assert!(rec.is_clean(), "{algorithm:?} P={p}: {:?}", rec.errors);
                assert_eq!(rec.executed_msgs, rec.planned_msgs);
                assert_eq!(rec.envelopes_saved(), 0);
            }
            // The coalesced event-world run moves the tuned IR's exact bytes
            // in fewer envelopes — same win as on the threaded executor.
            let sched = bcast_schedule(Algorithm::ScatterRingTuned, p, nbytes, 0);
            let out = bcast_coalesced_event_world(p, nbytes, 0, CoalescePolicy::unlimited());
            let rec = reconcile_traffic(&sched, &out.traffic);
            assert!(rec.is_clean(), "coalesced P={p}: {:?}", rec.errors);
            assert_eq!(rec.executed_bytes, rec.planned_bytes);
            assert!(rec.envelopes_saved() > 0);
        }
    }

    #[test]
    fn reconcile_rejects_mismatched_algorithm_and_refuses_extra_envelopes() {
        use bcast_core::bcast::bcast_schedule;
        use bcast_core::{bcast_native, Algorithm};
        use mpsim::{Communicator, ThreadWorld};

        let p = 8;
        let nbytes = 16 * p;
        let tuned = bcast_schedule(Algorithm::ScatterRingTuned, p, nbytes, 0);
        let src: Vec<u8> = (0..nbytes).map(|i| (i % 13) as u8).collect();
        let msg = src.clone();
        let out = ThreadWorld::run(p, move |comm| {
            let mut buf = if comm.rank() == 0 { msg.clone() } else { vec![0u8; msg.len()] };
            bcast_native(comm, &mut buf, 0).unwrap();
            buf
        });
        // The native (enclosed) ring moves more bytes and more envelopes than
        // the tuned IR plans — both violations must surface.
        let rec = reconcile_traffic(&tuned, &out.traffic);
        assert!(!rec.is_clean());
        assert!(rec.errors.iter().any(|e| e.starts_with("bytes:")), "{:?}", rec.errors);
        assert!(rec.errors.iter().any(|e| e.starts_with("envelopes:")), "{:?}", rec.errors);

        // Against its own IR the native run reconciles cleanly.
        let native = bcast_schedule(Algorithm::ScatterRingNative, p, nbytes, 0);
        let rec = reconcile_traffic(&native, &out.traffic);
        assert!(rec.is_clean(), "{:?}", rec.errors);
        assert_eq!(rec.envelopes_saved(), 0);
    }

    #[test]
    fn reconcile_flags_copy_regressions() {
        use bcast_core::bcast::bcast_schedule;
        use bcast_core::{bcast_binomial, bcast_binomial_copy, Algorithm};
        use mpsim::{Communicator, ThreadWorld};

        let p = 8;
        let nbytes = 128;
        let sched = bcast_schedule(Algorithm::Binomial, p, nbytes, 0);
        let src: Vec<u8> = (0..nbytes).map(|i| (i % 7) as u8).collect();

        // The zero-copy walk stays within the 2·nbytes/rank budget…
        let msg = src.clone();
        let out = ThreadWorld::run(p, move |comm| {
            let mut buf = if comm.rank() == 0 { msg.clone() } else { vec![0u8; msg.len()] };
            bcast_binomial(comm, &mut buf, 0).unwrap();
        });
        let rec = reconcile_traffic(&sched, &out.traffic);
        assert!(rec.is_clean(), "{:?}", rec.errors);
        assert!(rec.executed_bytes_copied > 0);

        // …while the per-hop copy baseline blows it on the root (a copy-in
        // per child send) with byte-identical wire traffic.
        let msg = src.clone();
        let out = ThreadWorld::run(p, move |comm| {
            let mut buf = if comm.rank() == 0 { msg.clone() } else { vec![0u8; msg.len()] };
            bcast_binomial_copy(comm, &mut buf, 0).unwrap();
        });
        let rec = reconcile_traffic(&sched, &out.traffic);
        assert!(rec.errors.iter().any(|e| e.starts_with("copies:")), "{:?}", rec.errors);
        assert_eq!(rec.executed_bytes, rec.planned_bytes, "wire traffic must still match");
    }

    #[test]
    fn reconcile_flags_world_size_mismatch() {
        let sched = two_rank_ping();
        let traffic = mpsim::WorldTraffic::new(vec![Default::default(); 3]);
        let rec = reconcile_traffic(&sched, &traffic);
        assert!(rec.errors.iter().any(|e| e.starts_with("world-size:")), "{:?}", rec.errors);
    }

    #[test]
    fn fifo_per_channel_is_respected() {
        // Two messages on one channel; capacities distinguish them: if the
        // second overtook the first, the 8B message would overflow cap 4.
        let mut s = Schedule::new("fifo", 2, 0);
        s.ranks[0].send("x", 1, Tag(1), Loc::Private(4));
        s.ranks[0].send("x", 1, Tag(1), Loc::Private(8));
        s.ranks[1].recv("x", 0, Tag(1), Loc::Private(4));
        s.ranks[1].recv("x", 0, Tag(1), Loc::Private(8));
        for sem in Semantics::ALL {
            assert!(check(&s, sem).is_clean());
        }
    }
}
