//! Repo-convention lint rules behind the `repolint` binary.
//!
//! Ten rules, each a pure function over `(relative path, file content)` so
//! they are unit-testable without touching the filesystem:
//!
//! 1. [`check_raw_sync`] — raw `std::sync::{Mutex, Condvar, RwLock}` are
//!    allowed only inside `mpsim`'s sync layer (`crates/mpsim/src/sync*.rs`).
//!    Everything else must go through `mpsim::sync` so the `fast-sync`
//!    feature swap (and the schedcheck interleaving models) actually cover
//!    the primitives in use. Atomics and `Arc` are fine.
//! 2. [`check_panics`] — no `.unwrap(` / `.expect(` in *library* code of
//!    `core`, `mpsim`, `netsim` (bins, tests and `#[cfg(test)]` modules are
//!    exempt). Fallible paths must return [`mpsim::CommError`]-style errors.
//!    Deliberate exceptions carry a `// lint: allow(panic)` marker on the
//!    same or the preceding line.
//! 3. [`check_unsafe`] — every `unsafe` block or fn in any crate must have a
//!    `// SAFETY:` comment within the three preceding lines (or on the same
//!    line). Crates without any unsafe carry `#![forbid(unsafe_code)]`.
//! 4. [`check_ignored_comm_result`] — library code must never discard the
//!    `Result` of a communication call with `let _ = …send/recv/…`. Since
//!    the fault layer landed, those results carry timeout and peer-failure
//!    signals; dropping one silently turns a detectable crash back into a
//!    hang. Deliberate exceptions (e.g. best-effort acks to a dead peer)
//!    must match on the error instead, or carry a
//!    `// lint: allow(ignored-comm-result)` marker.
//! 5. [`check_per_chunk_send`] — broadcast hot-path files in `crates/core`
//!    must not issue plain `comm.send(` calls inside a loop: since the
//!    vectored fabric landed, per-chunk send loops to one destination pay an
//!    envelope per iteration that `send_vectored` would coalesce into one.
//!    Deliberate loops (the binomial scatter fans out to a *different* child
//!    per iteration; the plain tuned ring is the uncoalesced baseline by
//!    definition) carry a `// lint: allow(per-chunk-send)` marker.
//! 6. [`check_real_time`] — the discrete-event executor
//!    (`crates/mpsim/src/event_*.rs` — the reactor and every module split
//!    out of it, currently `event_comm`, `event_mailbox`, `event_timer`)
//!    must never read real time or sleep: `std::thread::sleep`,
//!    `Instant::now`, and `SystemTime` would leak wall-clock nondeterminism
//!    into a world whose whole contract is that fault delays and timeouts
//!    are deterministic virtual-clock events. A deliberate exception
//!    carries a `// lint: allow(real-time)` marker.
//! 7. [`check_event_mailbox_hashmap`] — no `HashMap` in the event-executor
//!    modules: message matching is the reactor's hottest loop, and the
//!    dense lane structures replaced hashed lookups there on purpose. The
//!    only sanctioned use is the wild-tag spill fallback inside
//!    `event_mailbox.rs`, marked `// lint: allow(mailbox-spill)`.
//! 8. [`check_cancel_safety`] — cancel-safety in the async communication
//!    layer (`crates/mpsim/src/event_*.rs`, `crates/mpsim/src/acomm.rs`).
//!    Three shapes of the same bug class the reactor models in
//!    `schedcheck::models` verify the protocols against: producing
//!    `Poll::Pending` with no wake registration in reach (a lost wakeup in
//!    source form), holding a `RefCell` borrow across a suspension point
//!    (re-entrant poll panics), and mutating shared send-state inside a
//!    `poll` body (a cancelled-and-retried operation replays the side
//!    effect — sends must happen eagerly, before the future exists).
//!    Deliberate exceptions carry a `// lint: allow(cancel-safety)` marker.
//! 9. [`check_recovery_unwrap`] — no `.unwrap(` / `.expect(` on the result
//!    of a communication call inside the self-healing recovery modules
//!    (`crates/core/src/recovery.rs`, `recovery_async.rs`). A `CommError`
//!    there *is* the input the layer exists to handle — a peer death or
//!    timeout must feed the heartbeat/agreement machinery, never abort the
//!    process. Rule 2's generic `allow(panic)` waiver deliberately does not
//!    apply; the only escape hatch is `// lint: allow(recovery-unwrap)`.
//! 10. [`check_bcast_hot_copy`] — no unaccounted payload copies in the
//!     broadcast hot-path modules (rule 5's file set plus `binomial.rs`).
//!     Since the zero-copy envelope flow landed, forwarded payloads travel
//!     as refcounted [`mpsim::SharedBuf`] views; a `copy_from_slice(` /
//!     `rent_copy(` / `.to_vec()` creeping back in silently re-taxes every
//!     hop while leaving wire traffic — and every wire-traffic test —
//!     unchanged. The sanctioned shape is the *accounted landing copy*: a
//!     copy with a `note_copy(` call within the following two lines, which
//!     the `bytes_copied` ceilings then police at run time. Anything else
//!     needs a `// lint: allow(bcast-hot-copy)` marker.

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintHit {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Short rule name (`raw-sync`, `panic`, `unsafe-safety`).
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for LintHit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.excerpt)
    }
}

/// Strip a line comment (`// …`) for matching purposes. Good enough for this
/// codebase: no string literal here contains `//` followed by lint triggers.
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn hit(path: &str, idx: usize, rule: &'static str, line: &str) -> LintHit {
    LintHit { file: path.to_string(), line: idx + 1, rule, excerpt: line.trim().to_string() }
}

/// Files allowed to name raw `std::sync` lock primitives: the sync layer
/// itself (facade + both backends).
fn is_sync_layer(path: &str) -> bool {
    path.starts_with("crates/mpsim/src/sync") && path.ends_with(".rs")
}

/// Rule 1: raw `std::sync::{Mutex, Condvar, RwLock}` outside the sync layer.
pub fn check_raw_sync(path: &str, content: &str) -> Vec<LintHit> {
    if is_sync_layer(path) {
        return Vec::new();
    }
    let mut hits = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let code = code_part(line);
        // Match `std::sync::Mutex` directly and `std::sync::{…Mutex…}`
        // import groups; `std::sync::atomic` / `Arc` / `mpsc` are fine.
        for (start, _) in code.match_indices("std::sync::") {
            let rest = &code[start + "std::sync::".len()..];
            let names = ["Mutex", "Condvar", "RwLock"];
            let direct = names.iter().any(|n| rest.starts_with(n));
            let grouped = rest.starts_with('{') && {
                let group = &rest[..rest.find('}').map_or(rest.len(), |e| e + 1)];
                names.iter().any(|n| group.contains(n))
            };
            if direct || grouped {
                hits.push(hit(path, i, "raw-sync", line));
                break;
            }
        }
    }
    hits
}

/// Whether `path` is library (non-bin, non-test) source of a panic-free crate.
fn is_panic_free_lib(path: &str) -> bool {
    let lib = ["crates/core/src/", "crates/mpsim/src/", "crates/netsim/src/"];
    lib.iter().any(|p| path.starts_with(p))
        && path.ends_with(".rs")
        && !path.contains("/bin/")
        && !path.contains("/tests/")
}

/// Rule 2: `.unwrap(` / `.expect(` in library code. Content at or after the
/// first `#[cfg(test)]` is exempt (test modules sit at the bottom of each
/// file in this repo); `.unwrap_or(…)`, `.unwrap_or_else(…)`, `.expect_err(`
/// do not match. A `// lint: allow(panic)` marker on the same or the
/// preceding line waives a deliberate, documented panic.
pub fn check_panics(path: &str, content: &str) -> Vec<LintHit> {
    if !is_panic_free_lib(path) {
        return Vec::new();
    }
    let body = match content.find("#[cfg(test)]") {
        Some(i) => &content[..i],
        None => content,
    };
    let mut hits = Vec::new();
    let mut prev: &str = "";
    for (i, line) in body.lines().enumerate() {
        let code = code_part(line);
        let bare = |needle: &str, follow_ok: &[&str]| {
            code.match_indices(needle).any(|(at, _)| {
                let rest = &code[at + needle.len()..];
                !follow_ok.iter().any(|f| rest.starts_with(f))
            })
        };
        // `.unwrap(` must not be `.unwrap_or(` etc. — the needle includes
        // the open paren, so suffixed method names never match.
        let panics = bare(".unwrap(", &[]) || bare(".expect(", &[]);
        let allowed = line.contains("lint: allow(panic)") || prev.contains("lint: allow(panic)");
        if panics && !allowed {
            hits.push(hit(path, i, "panic", line));
        }
        prev = line;
    }
    hits
}

/// Rule 3: every `unsafe` keyword (block or fn) needs a `// SAFETY:` comment
/// on the same line or within the three preceding lines. The forbid
/// attribute's `unsafe_code` token does not match (the keyword must be
/// followed by whitespace or `{`).
pub fn check_unsafe(path: &str, content: &str) -> Vec<LintHit> {
    if !path.starts_with("crates/") || !path.ends_with(".rs") {
        return Vec::new();
    }
    let lines: Vec<&str> = content.lines().collect();
    let mut hits = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = code_part(line);
        let is_unsafe = code.match_indices("unsafe").any(|(at, _)| {
            let boundary_before =
                at == 0 || !code[..at].ends_with(|c: char| c.is_alphanumeric() || c == '_');
            let rest = &code[at + "unsafe".len()..];
            let keyword =
                rest.starts_with(char::is_whitespace) || rest.starts_with('{') || rest.is_empty();
            boundary_before && keyword
        });
        if !is_unsafe {
            continue;
        }
        let lo = i.saturating_sub(3);
        let documented =
            line.contains("SAFETY:") || lines[lo..i].iter().any(|l| l.contains("SAFETY:"));
        if !documented {
            hits.push(hit(path, i, "unsafe-safety", line));
        }
    }
    hits
}

/// Rule 4: `let _ = …` discarding the `Result` of a communication call
/// (`send`, `recv`, `sendrecv`, `recv_timeout`, `barrier`) in library code.
/// Test modules are exempt (same scoping as [`check_panics`]); a deliberate
/// best-effort call carries `// lint: allow(ignored-comm-result)` on the
/// same or the preceding line.
pub fn check_ignored_comm_result(path: &str, content: &str) -> Vec<LintHit> {
    if !is_panic_free_lib(path) {
        return Vec::new();
    }
    let body = match content.find("#[cfg(test)]") {
        Some(i) => &content[..i],
        None => content,
    };
    const CALLS: [&str; 5] = [".send(", ".recv(", ".sendrecv(", ".recv_timeout(", ".barrier("];
    let mut hits = Vec::new();
    let mut prev: &str = "";
    for (i, line) in body.lines().enumerate() {
        let code = code_part(line);
        let discarded = code
            .find("let _ =")
            .map(|at| &code[at..])
            .is_some_and(|rest| CALLS.iter().any(|c| rest.contains(c)));
        let allowed = line.contains("lint: allow(ignored-comm-result)")
            || prev.contains("lint: allow(ignored-comm-result)");
        if discarded && !allowed {
            hits.push(hit(path, i, "ignored-comm-result", line));
        }
        prev = line;
    }
    hits
}

/// Broadcast hot-path files: the scatter-ring pipeline the paper tunes and
/// its coalescing layer. Everything here is on the envelope-count critical
/// path, so per-chunk send loops are held to the vectored-fabric standard.
fn is_bcast_hot_path(path: &str) -> bool {
    const HOT: [&str; 5] = [
        "crates/core/src/scatter.rs",
        "crates/core/src/ring.rs",
        "crates/core/src/ring_tuned.rs",
        "crates/core/src/coalesce.rs",
        "crates/core/src/bcast.rs",
    ];
    HOT.contains(&path)
}

/// Rule 5: a plain `comm.send(` inside any loop body of a broadcast hot-path
/// file. Tracks brace depth line-by-line (rustfmt puts the loop's `{` on the
/// header line everywhere in this repo); test modules are exempt (same
/// scoping as [`check_panics`]). A `// lint: allow(per-chunk-send)` marker
/// on the same or the preceding line waives a documented, deliberate loop.
pub fn check_per_chunk_send(path: &str, content: &str) -> Vec<LintHit> {
    if !is_bcast_hot_path(path) {
        return Vec::new();
    }
    let body = match content.find("#[cfg(test)]") {
        Some(i) => &content[..i],
        None => content,
    };
    let mut hits = Vec::new();
    let mut depth = 0isize;
    // Brace depths at which a loop body opened; non-empty ⇒ inside a loop.
    let mut loop_depths: Vec<isize> = Vec::new();
    let mut prev: &str = "";
    for (i, line) in body.lines().enumerate() {
        let code = code_part(line);
        let trimmed = code.trim_start();
        let header = trimmed.starts_with("for ")
            || trimmed.starts_with("while ")
            || trimmed.starts_with("loop ")
            || trimmed == "loop";
        if header && code.contains('{') {
            loop_depths.push(depth + 1);
        }
        let in_loop = !loop_depths.is_empty();
        let allowed = line.contains("lint: allow(per-chunk-send)")
            || prev.contains("lint: allow(per-chunk-send)");
        if in_loop && code.contains("comm.send(") && !allowed {
            hits.push(hit(path, i, "per-chunk-send", line));
        }
        depth += code.matches('{').count() as isize - code.matches('}').count() as isize;
        while loop_depths.last().is_some_and(|&d| depth < d) {
            loop_depths.pop();
        }
        prev = line;
    }
    hits
}

/// Rule 6: real-time primitives inside the discrete-event executor. The
/// event executor's contract is virtual-clock purity — every delay and
/// timeout is an event timestamp, so the same world replays identically on
/// every machine. Reading a wall clock (`Instant::now`, `SystemTime`) or
/// sleeping (`std::thread::sleep`) inside `crates/mpsim/src/event_*.rs`
/// breaks that replay guarantee. Test modules are exempt (same scoping as
/// [`check_panics`]); a deliberate exception carries a
/// `// lint: allow(real-time)` marker on the same or the preceding line.
pub fn check_real_time(path: &str, content: &str) -> Vec<LintHit> {
    let in_event_executor = path.starts_with("crates/mpsim/src/event_") && path.ends_with(".rs");
    if !in_event_executor {
        return Vec::new();
    }
    let body = match content.find("#[cfg(test)]") {
        Some(i) => &content[..i],
        None => content,
    };
    const REAL_TIME: [&str; 4] = ["thread::sleep", "Instant::now", "SystemTime", "Instant :: now"];
    let mut hits = Vec::new();
    let mut prev: &str = "";
    for (i, line) in body.lines().enumerate() {
        let code = code_part(line);
        let real = REAL_TIME.iter().any(|n| code.contains(n));
        let allowed =
            line.contains("lint: allow(real-time)") || prev.contains("lint: allow(real-time)");
        if real && !allowed {
            hits.push(hit(path, i, "real-time", line));
        }
        prev = line;
    }
    hits
}

/// Rule 7: `HashMap` anywhere in the event-executor modules
/// (`crates/mpsim/src/event_*.rs`). The lane mailbox and timing wheel
/// exist precisely so the reactor's match/arm hot loops cost indexed loads
/// instead of hashing; a hash map creeping back in silently re-taxes every
/// message. The wild-tag spill fallback is the one sanctioned use and
/// carries a `// lint: allow(mailbox-spill)` marker on the same or the
/// preceding line. Test modules are exempt (same scoping as
/// [`check_panics`]).
pub fn check_event_mailbox_hashmap(path: &str, content: &str) -> Vec<LintHit> {
    let in_event_executor = path.starts_with("crates/mpsim/src/event_") && path.ends_with(".rs");
    if !in_event_executor {
        return Vec::new();
    }
    let body = match content.find("#[cfg(test)]") {
        Some(i) => &content[..i],
        None => content,
    };
    let mut hits = Vec::new();
    let mut prev: &str = "";
    for (i, line) in body.lines().enumerate() {
        let code = code_part(line);
        let allowed = line.contains("lint: allow(mailbox-spill)")
            || prev.contains("lint: allow(mailbox-spill)");
        if code.contains("HashMap") && !allowed {
            hits.push(hit(path, i, "event-mailbox-hashmap", line));
        }
        prev = line;
    }
    hits
}

/// Rule 8: cancel-safety in the async communication layer — the event
/// executor modules plus the sync↔async bridge, where every future must
/// survive being dropped between polls (a timed-out receive, an abandoned
/// barrier). Three line-level shapes, one rule name, one waiver:
///
/// * **Unregistered park.** A line that *produces* `Poll::Pending` (not a
///   `Poll::Pending =>` match pattern) with no wake-registration token on
///   the same line or the eight preceding lines. Registration tokens:
///   `sched.push(` (self-requeue), `watch(` (exit watch), `arm_timer(`,
///   `barrier_parked` (barrier park flag), `.poll(` (delegation — the inner
///   future registered), and `waker(`. A pending return with none of these
///   in reach is a task the reactor has no reason to ever run again.
/// * **Borrow across a suspension point.** `.borrow(`/`.borrow_mut(` on the
///   same line as `.await` or `.poll(`: the `RefCell` guard lives across
///   the suspension, and the next poll of anything touching the same cell
///   panics — the reactor's single-threaded aliasing discipline is borrows
///   scoped strictly between suspension points.
/// * **Send effect inside `poll`.** `send_now(` / `push_envelope(` /
///   `record_send(` / `rent_copy(` / `rent_gather(` inside a `fn poll(`
///   body (tracked by brace depth, as in [`check_per_chunk_send`]). The
///   eager-send discipline puts the irrevocable side effect *before* the
///   future exists, so cancellation can never replay it; a send issued
///   from `poll` re-fires on every retry of a dropped-and-rebuilt future.
///
/// Test modules are exempt (same scoping as [`check_panics`]); a deliberate
/// exception carries `// lint: allow(cancel-safety)` on the same or the
/// preceding line.
pub fn check_cancel_safety(path: &str, content: &str) -> Vec<LintHit> {
    let in_scope = (path.starts_with("crates/mpsim/src/event_")
        || path == "crates/mpsim/src/acomm.rs")
        && path.ends_with(".rs");
    if !in_scope {
        return Vec::new();
    }
    let body = match content.find("#[cfg(test)]") {
        Some(i) => &content[..i],
        None => content,
    };
    const REGISTRATION: [&str; 6] =
        ["sched.push(", "watch(", "arm_timer(", "barrier_parked", ".poll(", "waker("];
    const SEND_EFFECTS: [&str; 5] =
        ["send_now(", "push_envelope(", "record_send(", "rent_copy(", "rent_gather("];
    let lines: Vec<&str> = body.lines().collect();
    let mut hits = Vec::new();
    let mut depth = 0isize;
    // Brace depths at which a `fn poll(` body opened; non-empty ⇒ inside one.
    let mut poll_depths: Vec<isize> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = code_part(line);
        if code.contains("fn poll(") && code.contains('{') {
            poll_depths.push(depth + 1);
        }
        let allowed = line.contains("lint: allow(cancel-safety)")
            || (i > 0 && lines[i - 1].contains("lint: allow(cancel-safety)"));
        let produces_pending = code
            .match_indices("Poll::Pending")
            .any(|(at, _)| !code[at + "Poll::Pending".len()..].trim_start().starts_with("=>"));
        let unregistered = produces_pending && {
            let lo = i.saturating_sub(8);
            !lines[lo..=i].iter().any(|l| {
                let c = code_part(l);
                REGISTRATION.iter().any(|t| c.contains(t))
            })
        };
        let borrow_across_suspend = (code.contains(".borrow(") || code.contains(".borrow_mut("))
            && (code.contains(".await") || code.contains(".poll("));
        let send_in_poll = !poll_depths.is_empty() && SEND_EFFECTS.iter().any(|t| code.contains(t));
        if (unregistered || borrow_across_suspend || send_in_poll) && !allowed {
            hits.push(hit(path, i, "cancel-safety", line));
        }
        depth += code.matches('{').count() as isize - code.matches('}').count() as isize;
        while poll_depths.last().is_some_and(|&d| depth < d) {
            poll_depths.pop();
        }
    }
    hits
}

/// The self-healing recovery paths: the modules whose whole purpose is to
/// *survive* `CommError`s, so panicking on one defeats the layer.
fn is_recovery_path(path: &str) -> bool {
    matches!(path, "crates/core/src/recovery.rs" | "crates/core/src/recovery_async.rs")
}

/// Rule 9: `.unwrap(` / `.expect(` on the `Result` of a communication call
/// inside the recovery modules (`crates/core/src/recovery.rs`,
/// `recovery_async.rs`). Rule 2 already bans bare panics in library code,
/// but its `// lint: allow(panic)` waiver is too blunt here: a waived
/// unwrap of a *`CommError`* in recovery code turns the exact failure the
/// layer exists to absorb (a peer death, a timeout) into a process abort —
/// precisely the outcome self-healing is supposed to prevent. Detection
/// spans rustfmt-broken statements, so a chained `.await\n.unwrap()` on the
/// following line still matches. Test modules are exempt; the only escape
/// hatch is an explicit `// lint: allow(recovery-unwrap)` marker on the
/// same or the preceding line, which deliberately does *not* accept the
/// generic panic waiver.
pub fn check_recovery_unwrap(path: &str, content: &str) -> Vec<LintHit> {
    if !is_recovery_path(path) {
        return Vec::new();
    }
    let body = match content.find("#[cfg(test)]") {
        Some(i) => &content[..i],
        None => content,
    };
    const CALLS: [&str; 5] = [".send(", ".recv(", ".sendrecv(", ".recv_timeout(", ".barrier("];
    let mut hits = Vec::new();
    let mut prev: &str = "";
    // True while the current multi-line statement has already named a
    // communication call; reset at each statement terminator.
    let mut stmt_has_comm = false;
    for (i, line) in body.lines().enumerate() {
        let code = code_part(line);
        if CALLS.iter().any(|c| code.contains(c)) {
            stmt_has_comm = true;
        }
        // The needles carry the open paren, so `.unwrap_or(` / `.expect_err(`
        // and friends never match.
        let panics = code.contains(".unwrap(") || code.contains(".expect(");
        let allowed = line.contains("lint: allow(recovery-unwrap)")
            || prev.contains("lint: allow(recovery-unwrap)");
        if panics && stmt_has_comm && !allowed {
            hits.push(hit(path, i, "recovery-unwrap", line));
        }
        if code.contains(';') {
            stmt_has_comm = false;
        }
        prev = line;
    }
    hits
}

/// Rule 10: unaccounted payload copies in the broadcast hot path — rule 5's
/// file set plus `binomial.rs` (the whole-buffer tree walk has no send loop
/// but the same zero-copy contract). A copy primitive (`copy_from_slice(`,
/// `rent_copy(`, `.to_vec()`) is sanctioned only as an *accounted landing
/// copy*, recognisable by a `note_copy(` call on the same or the following
/// two lines; the runtime `bytes_copied` ceilings then bound how often that
/// shape may execute. Test modules are exempt (same scoping as
/// [`check_panics`]); a deliberate exception carries a
/// `// lint: allow(bcast-hot-copy)` marker on the same or the preceding
/// line.
pub fn check_bcast_hot_copy(path: &str, content: &str) -> Vec<LintHit> {
    if !is_bcast_hot_path(path) && path != "crates/core/src/binomial.rs" {
        return Vec::new();
    }
    let body = match content.find("#[cfg(test)]") {
        Some(i) => &content[..i],
        None => content,
    };
    const COPIES: [&str; 3] = ["copy_from_slice(", "rent_copy(", ".to_vec()"];
    let lines: Vec<&str> = body.lines().collect();
    let mut hits = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = code_part(line);
        if !COPIES.iter().any(|c| code.contains(c)) {
            continue;
        }
        let allowed = line.contains("lint: allow(bcast-hot-copy)")
            || (i > 0 && lines[i - 1].contains("lint: allow(bcast-hot-copy)"));
        let hi = (i + 3).min(lines.len());
        let accounted = lines[i..hi].iter().any(|l| code_part(l).contains("note_copy("));
        if !allowed && !accounted {
            hits.push(hit(path, i, "bcast-hot-copy", line));
        }
    }
    hits
}

/// Run every rule over one file.
pub fn check_file(path: &str, content: &str) -> Vec<LintHit> {
    // The linter's own source holds the trigger patterns as string
    // literals and test fixtures; the rules are line-based, not parsed,
    // so the one file that *defines* them is exempt.
    if path == "crates/schedcheck/src/lint.rs" {
        return Vec::new();
    }
    let mut hits = check_raw_sync(path, content);
    hits.extend(check_panics(path, content));
    hits.extend(check_unsafe(path, content));
    hits.extend(check_ignored_comm_result(path, content));
    hits.extend(check_per_chunk_send(path, content));
    hits.extend(check_real_time(path, content));
    hits.extend(check_event_mailbox_hashmap(path, content));
    hits.extend(check_cancel_safety(path, content));
    hits.extend(check_recovery_unwrap(path, content));
    hits.extend(check_bcast_hot_copy(path, content));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_sync_flagged_outside_sync_layer() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(check_raw_sync("crates/core/src/x.rs", src).len(), 1);
        assert!(check_raw_sync("crates/mpsim/src/sync_fast.rs", src).is_empty());
        assert!(check_raw_sync("crates/mpsim/src/sync_std.rs", src).is_empty());
    }

    #[test]
    fn raw_sync_matches_import_groups_only_for_locks() {
        let grouped = "use std::sync::{Arc, Mutex};\n";
        assert_eq!(check_raw_sync("crates/core/src/x.rs", grouped).len(), 1);
        let fine = "use std::sync::Arc;\nuse std::sync::atomic::AtomicU32;\n\
                    use std::sync::{Arc, mpsc};\n";
        assert!(check_raw_sync("crates/core/src/x.rs", fine).is_empty());
        let comment = "// std::sync::Mutex is banned here\n";
        assert!(check_raw_sync("crates/core/src/x.rs", comment).is_empty());
    }

    #[test]
    fn panic_rule_scoping() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(check_panics("crates/core/src/x.rs", src).len(), 1);
        assert!(check_panics("crates/bench/src/x.rs", src).is_empty());
        assert!(check_panics("crates/core/src/bin/tool.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_exemptions() {
        let fallback = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.expect_err(\"e\"); }\n";
        assert!(check_panics("crates/core/src/x.rs", fallback).is_empty());
        let in_tests = "fn f() {}\n#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }\n";
        assert!(check_panics("crates/core/src/x.rs", in_tests).is_empty());
        let marked = "// lint: allow(panic) — length checked above\nlet v = x.unwrap();\n";
        assert!(check_panics("crates/core/src/x.rs", marked).is_empty());
        let same_line = "let v = x.unwrap(); // lint: allow(panic) — infallible\n";
        assert!(check_panics("crates/core/src/x.rs", same_line).is_empty());
        let expect = "fn f() { x.expect(\"boom\"); }\n";
        assert_eq!(check_panics("crates/core/src/x.rs", expect).len(), 1);
    }

    #[test]
    fn ignored_comm_result_rule() {
        let bad = "fn f() { let _ = comm.send(&buf, 1, Tag(0)); }\n";
        assert_eq!(check_ignored_comm_result("crates/core/src/x.rs", bad).len(), 1);
        let bad_recv = "let _ = comm.recv_timeout(&mut b, 0, Tag(1), t);\n";
        assert_eq!(check_ignored_comm_result("crates/mpsim/src/x.rs", bad_recv).len(), 1);
        // explicit handling, bench/bin code and test modules are fine
        let handled = "match comm.send(&buf, 1, Tag(0)) { Ok(()) | Err(_) => {} }\n";
        assert!(check_ignored_comm_result("crates/core/src/x.rs", handled).is_empty());
        assert!(check_ignored_comm_result("crates/bench/src/x.rs", bad).is_empty());
        let in_tests = "fn f() {}\n#[cfg(test)]\nmod t { fn g() { let _ = c.recv(b, 0, t); } }\n";
        assert!(check_ignored_comm_result("crates/core/src/x.rs", in_tests).is_empty());
        // unrelated discards don't match
        let unrelated = "let _ = guard.lock();\n";
        assert!(check_ignored_comm_result("crates/core/src/x.rs", unrelated).is_empty());
        let waived = "// lint: allow(ignored-comm-result) — best-effort wakeup\n\
                      let _ = comm.send(&[], 1, Tag(0));\n";
        assert!(check_ignored_comm_result("crates/core/src/x.rs", waived).is_empty());
    }

    #[test]
    fn per_chunk_send_rule_scoping_and_waiver() {
        let looped =
            "fn f() {\n    for i in 1..size {\n        comm.send(&buf[r], right, T)?;\n    }\n}\n";
        assert_eq!(check_per_chunk_send("crates/core/src/ring_tuned.rs", looped).len(), 1);
        // Only the broadcast hot path is held to the vectored standard.
        assert!(check_per_chunk_send("crates/core/src/reduce.rs", looped).is_empty());
        assert!(check_per_chunk_send("crates/mpsim/src/thread_comm.rs", looped).is_empty());
        let waived = "fn f() {\n    while mask > 0 {\n        \
                      // lint: allow(per-chunk-send) — distinct child per step\n        \
                      comm.send(&buf[r], dst, T)?;\n    }\n}\n";
        assert!(check_per_chunk_send("crates/core/src/scatter.rs", waived).is_empty());
    }

    #[test]
    fn per_chunk_send_outside_loops_and_in_tests_is_fine() {
        let straight = "fn f() {\n    comm.send(&buf, right, T)?;\n}\n";
        assert!(check_per_chunk_send("crates/core/src/ring_tuned.rs", straight).is_empty());
        // After a loop closes, a send at function depth no longer matches.
        let after = "fn f() {\n    for i in 0..n {\n        work();\n    }\n    \
                     comm.send(&buf, right, T)?;\n}\n";
        assert!(check_per_chunk_send("crates/core/src/ring_tuned.rs", after).is_empty());
        let in_tests =
            "fn f() {}\n#[cfg(test)]\nmod t {\n    fn g() {\n        for i in 0..2 {\n            \
             comm.send(&b, 1, T).unwrap();\n        }\n    }\n}\n";
        assert!(check_per_chunk_send("crates/core/src/ring_tuned.rs", in_tests).is_empty());
        // Vectored calls are the fix, not a violation.
        let vectored = "fn f() {\n    for u in units {\n        \
                        comm.send_vectored(buf, &u, right, T)?;\n    }\n}\n";
        assert!(check_per_chunk_send("crates/core/src/coalesce.rs", vectored).is_empty());
    }

    #[test]
    fn real_time_rule_scoping_and_waiver() {
        let sleepy = "fn f() { std::thread::sleep(Duration::from_millis(1)); }\n";
        assert_eq!(check_real_time("crates/mpsim/src/event_comm.rs", sleepy).len(), 1);
        let instant = "let t0 = std::time::Instant::now();\n";
        assert_eq!(check_real_time("crates/mpsim/src/event_comm.rs", instant).len(), 1);
        let systime = "let wall = std::time::SystemTime::now();\n";
        assert_eq!(check_real_time("crates/mpsim/src/event_reactor.rs", systime).len(), 1);
        // Only the event executor is held to virtual-clock purity.
        assert!(check_real_time("crates/mpsim/src/thread_comm.rs", sleepy).is_empty());
        assert!(check_real_time("crates/mpsim/src/reliable.rs", instant).is_empty());
        // Comments, test modules, and marked lines are exempt.
        let comment = "// Instant::now is banned here\n";
        assert!(check_real_time("crates/mpsim/src/event_comm.rs", comment).is_empty());
        let in_tests = "fn f() {}\n#[cfg(test)]\nmod t { fn g() { \
                        let t = std::time::Instant::now(); } }\n";
        assert!(check_real_time("crates/mpsim/src/event_comm.rs", in_tests).is_empty());
        let waived = "// lint: allow(real-time) — diagnostics only, never scheduling\n\
                      let t0 = std::time::Instant::now();\n";
        assert!(check_real_time("crates/mpsim/src/event_comm.rs", waived).is_empty());
    }

    #[test]
    fn real_time_rule_covers_split_event_modules() {
        // The refactor split the reactor into event_comm / event_mailbox /
        // event_timer; the prefix glob must hold all of them (and any
        // future sibling) to virtual-clock purity.
        let instant = "let t0 = std::time::Instant::now();\n";
        for file in ["event_comm.rs", "event_mailbox.rs", "event_timer.rs", "event_future.rs"] {
            let path = format!("crates/mpsim/src/{file}");
            assert_eq!(check_real_time(&path, instant).len(), 1, "{path}");
        }
    }

    #[test]
    fn event_mailbox_hashmap_rule() {
        let bad = "use std::collections::HashMap;\n";
        for file in ["event_comm.rs", "event_mailbox.rs", "event_timer.rs"] {
            let path = format!("crates/mpsim/src/{file}");
            assert_eq!(check_event_mailbox_hashmap(&path, bad).len(), 1, "{path}");
        }
        // Outside the event executor, hash maps are nobody's business here.
        assert!(check_event_mailbox_hashmap("crates/mpsim/src/mailbox.rs", bad).is_empty());
        assert!(check_event_mailbox_hashmap("crates/core/src/bcast.rs", bad).is_empty());
        // The spill fallback is sanctioned when marked, same or previous line.
        let waived = "// lint: allow(mailbox-spill) — wild tags only\n\
                      spill: Option<Box<HashMap<u32, VecDeque<Envelope>>>>,\n";
        assert!(check_event_mailbox_hashmap("crates/mpsim/src/event_mailbox.rs", waived).is_empty());
        let same_line = "let m: HashMap<u32, u32>; // lint: allow(mailbox-spill)\n";
        assert!(
            check_event_mailbox_hashmap("crates/mpsim/src/event_mailbox.rs", same_line).is_empty()
        );
        // Comments and test modules are exempt.
        let comment = "// HashMap is banned on this path\n";
        assert!(check_event_mailbox_hashmap("crates/mpsim/src/event_comm.rs", comment).is_empty());
        let in_tests = "fn f() {}\n#[cfg(test)]\nmod t { use std::collections::HashMap; }\n";
        assert!(check_event_mailbox_hashmap("crates/mpsim/src/event_comm.rs", in_tests).is_empty());
    }

    #[test]
    fn cancel_safety_flags_unregistered_pending() {
        let bare = "fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {\n    \
                    if self.done { return Poll::Ready(()); }\n    \
                    Poll::Pending\n}\n";
        assert_eq!(check_cancel_safety("crates/mpsim/src/event_comm.rs", bare).len(), 1);
        assert_eq!(check_cancel_safety("crates/mpsim/src/acomm.rs", bare).len(), 1);
        // Only the async communication layer is in scope.
        assert!(check_cancel_safety("crates/mpsim/src/thread_comm.rs", bare).is_empty());
        assert!(check_cancel_safety("crates/core/src/bcast.rs", bare).is_empty());
    }

    #[test]
    fn cancel_safety_accepts_registered_pending() {
        // Each registration token within the eight-line window waives the
        // pending return: self-requeue, exit watch, barrier park flag,
        // timer arm, and delegation to an inner poll.
        for reg in [
            "shared.sched.push(me);",
            "shared.watch(me, this.src);",
            "shared.barrier_parked[me].set(true);",
            "this.timer = Some(shared.arm_timer(deadline_ns, me));",
            "match Pin::new(&mut this.inner).poll(cx) {",
        ] {
            let src = format!("fn f() {{\n    {reg}\n    return Poll::Pending;\n}}\n");
            assert!(
                check_cancel_safety("crates/mpsim/src/event_comm.rs", &src).is_empty(),
                "{reg}"
            );
        }
        // A match *pattern* consumes a Pending, it does not produce one.
        let arm = "match fut.poll(cx) {\n    Poll::Pending => spurious += 1,\n}\n";
        assert!(check_cancel_safety("crates/mpsim/src/event_comm.rs", arm).is_empty());
        // ... but a registration nine lines away is out of reach.
        let far = format!(
            "fn f() {{\n    shared.sched.push(me);\n{}    Poll::Pending\n}}\n",
            "\n".repeat(8)
        );
        assert_eq!(check_cancel_safety("crates/mpsim/src/event_comm.rs", &far).len(), 1);
    }

    #[test]
    fn cancel_safety_flags_borrow_across_suspension() {
        let held = "let env = self.mailboxes[me].borrow_mut().pop_future(src).await;\n";
        assert_eq!(check_cancel_safety("crates/mpsim/src/event_comm.rs", held).len(), 1);
        let polled = "let r = self.run.borrow_mut().front_mut().poll(cx);\n";
        assert_eq!(check_cancel_safety("crates/mpsim/src/event_comm.rs", polled).len(), 1);
        // A borrow scoped between suspension points is the discipline.
        let scoped = "let task = self.run.borrow_mut().pop_front()?;\n";
        assert!(check_cancel_safety("crates/mpsim/src/event_comm.rs", scoped).is_empty());
    }

    #[test]
    fn cancel_safety_flags_send_effects_inside_poll() {
        let in_poll = "fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {\n    \
                       self.comm.send_now(buf, dest, tag)?;\n    Poll::Ready(())\n}\n";
        assert_eq!(check_cancel_safety("crates/mpsim/src/event_comm.rs", in_poll).len(), 1);
        // The eager-send discipline: the same effect before the future
        // exists (outside any poll body) is exactly what the rule demands.
        let eager = "fn send(&self, buf: &[u8]) -> Result<()> {\n    \
                     self.send_now(buf, dest, tag)\n}\n\
                     fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {\n    \
                     Poll::Ready(())\n}\n";
        assert!(check_cancel_safety("crates/mpsim/src/event_comm.rs", eager).is_empty());
        // After the poll body closes, effects at file depth no longer match.
        let after = "fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {\n    \
                     Poll::Ready(())\n}\n\
                     fn flush(&self) { self.shared.push_envelope(d, s, t, env); }\n";
        assert!(check_cancel_safety("crates/mpsim/src/event_comm.rs", after).is_empty());
    }

    #[test]
    fn cancel_safety_waiver_and_test_scoping() {
        let waived_prev = "fn f() {\n    \
                           // lint: allow(cancel-safety) — woken by the drain loop\n    \
                           Poll::Pending\n}\n";
        assert!(check_cancel_safety("crates/mpsim/src/event_comm.rs", waived_prev).is_empty());
        let waived_same =
            "fn f() { Poll::Pending } // lint: allow(cancel-safety) — external waker\n";
        assert!(check_cancel_safety("crates/mpsim/src/event_comm.rs", waived_same).is_empty());
        // The waiver is line-scoped: it does not bless a later violation.
        let not_blanket = "fn f() {\n    \
                           // lint: allow(cancel-safety) — woken by the drain loop\n    \
                           Poll::Pending\n}\n\
                           fn g() {\n    Poll::Pending\n}\n";
        assert_eq!(check_cancel_safety("crates/mpsim/src/event_comm.rs", not_blanket).len(), 1);
        // Test modules are exempt, same scoping as the panic rule.
        let in_tests = "fn f() {}\n#[cfg(test)]\nmod t {\n    fn poll_never() -> Poll<()> { \
                        Poll::Pending }\n}\n";
        assert!(check_cancel_safety("crates/mpsim/src/acomm.rs", in_tests).is_empty());
    }

    #[test]
    fn unsafe_rule() {
        let bare = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        assert_eq!(check_unsafe("crates/mpsim/src/x.rs", bare).len(), 1);
        let documented = "// SAFETY: guarded by the bounds check above.\n\
                          fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        assert!(check_unsafe("crates/mpsim/src/x.rs", documented).is_empty());
        let forbid = "#![forbid(unsafe_code)]\n";
        assert!(check_unsafe("crates/core/src/lib.rs", forbid).is_empty());
    }

    #[test]
    fn recovery_unwrap_flags_comm_results_in_recovery_files_only() {
        let bad = "fn f() { comm.recv(&mut buf, peer, Tag(3)).unwrap(); }\n";
        assert_eq!(check_recovery_unwrap("crates/core/src/recovery.rs", bad).len(), 1);
        assert_eq!(check_recovery_unwrap("crates/core/src/recovery_async.rs", bad).len(), 1);
        // Other files — even other core modules — are rule 2's territory.
        assert!(check_recovery_unwrap("crates/core/src/bcast.rs", bad).is_empty());
        let expect = "let n = comm.recv_timeout(&mut b, p, Tag(1), t).expect(\"peer\");\n";
        assert_eq!(check_recovery_unwrap("crates/core/src/recovery.rs", expect).len(), 1);
        // Non-comm unwraps in recovery files are also rule 2's territory.
        let non_comm = "fn f() { members.iter().position(|&m| m == me).unwrap(); }\n";
        assert!(check_recovery_unwrap("crates/core/src/recovery.rs", non_comm).is_empty());
        // Error-tolerant combinators are the sanctioned shape.
        let tolerant = "let _ = comm.send(&buf, peer, Tag(3)).map_err(|_| ());\n\
                        if comm.barrier().is_err() { return; }\n";
        assert!(check_recovery_unwrap("crates/core/src/recovery.rs", tolerant).is_empty());
    }

    #[test]
    fn recovery_unwrap_spans_rustfmt_broken_statements() {
        // rustfmt splits long chains: the comm call and the unwrap land on
        // different lines of one statement.
        let split = "let healed = self.comm.sendrecv(&out, peer, Tag(2), &mut inb, peer, Tag(2))\n\
                     .await\n\
                     .unwrap();\n";
        let hits = check_recovery_unwrap("crates/core/src/recovery_async.rs", split);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
        // The statement terminator resets the tracking: an unwrap in the
        // *next* statement is not contaminated by the previous comm call.
        let reset = "comm.barrier()?;\nlet r = report.decode().unwrap();\n";
        assert!(check_recovery_unwrap("crates/core/src/recovery.rs", reset).is_empty());
    }

    #[test]
    fn bcast_hot_copy_flags_unaccounted_copies() {
        let bare = "fn f() {\n    buf[disp..disp + n].copy_from_slice(&env);\n}\n";
        for file in ["binomial.rs", "scatter.rs", "ring.rs", "ring_tuned.rs", "coalesce.rs"] {
            let path = format!("crates/core/src/{file}");
            assert_eq!(check_bcast_hot_copy(&path, bare).len(), 1, "{path}");
        }
        let rented = "let env = pool.rent_copy(buf);\n";
        assert_eq!(check_bcast_hot_copy("crates/core/src/ring.rs", rented).len(), 1);
        let vecced = "let staged = comm_buf.to_vec();\n";
        assert_eq!(check_bcast_hot_copy("crates/core/src/bcast.rs", vecced).len(), 1);
        // Only the broadcast hot path is held to the zero-copy contract.
        assert!(check_bcast_hot_copy("crates/core/src/rd_allgather.rs", bare).is_empty());
        assert!(check_bcast_hot_copy("crates/mpsim/src/thread_comm.rs", rented).is_empty());
    }

    #[test]
    fn bcast_hot_copy_accepts_accounted_landing_copies_and_waivers() {
        // The sanctioned shape: one landing copy, accounted on the spot.
        let accounted = "fn f() {\n    buf[..env.len()].copy_from_slice(&env);\n    \
                         comm.note_copy(env.len());\n}\n";
        assert!(check_bcast_hot_copy("crates/core/src/binomial.rs", accounted).is_empty());
        // note_copy three lines later is out of the two-line window.
        let late = "fn f() {\n    buf.copy_from_slice(&env);\n    a();\n    b();\n    \
                    comm.note_copy(env.len());\n}\n";
        assert_eq!(check_bcast_hot_copy("crates/core/src/binomial.rs", late).len(), 1);
        // Explicit waiver, same or preceding line.
        let waived = "// lint: allow(bcast-hot-copy) — differential copy baseline\n\
                      buf.copy_from_slice(&env);\n";
        assert!(check_bcast_hot_copy("crates/core/src/ring.rs", waived).is_empty());
        let same_line = "buf.copy_from_slice(&env); // lint: allow(bcast-hot-copy) — baseline\n";
        assert!(check_bcast_hot_copy("crates/core/src/ring.rs", same_line).is_empty());
        // Comments and test modules are exempt.
        let comment = "// copy_from_slice( is banned on this path\n";
        assert!(check_bcast_hot_copy("crates/core/src/ring.rs", comment).is_empty());
        let in_tests = "fn f() {}\n#[cfg(test)]\nmod t { fn g() { buf.copy_from_slice(&src); } }\n";
        assert!(check_bcast_hot_copy("crates/core/src/ring.rs", in_tests).is_empty());
    }

    #[test]
    fn recovery_unwrap_waiver_and_test_scoping() {
        // Only the dedicated marker waives — the generic panic waiver is
        // deliberately insufficient here.
        let generic = "// lint: allow(panic) — startup only\n\
                       comm.barrier().unwrap();\n";
        assert_eq!(check_recovery_unwrap("crates/core/src/recovery.rs", generic).len(), 1);
        let dedicated = "// lint: allow(recovery-unwrap) — pre-agreement bootstrap barrier\n\
                         comm.barrier().unwrap();\n";
        assert!(check_recovery_unwrap("crates/core/src/recovery.rs", dedicated).is_empty());
        let same_line = "comm.barrier().unwrap(); // lint: allow(recovery-unwrap) — bootstrap\n";
        assert!(check_recovery_unwrap("crates/core/src/recovery.rs", same_line).is_empty());
        let in_tests = "fn f() {}\n#[cfg(test)]\nmod t { fn g() { comm.barrier().unwrap(); } }\n";
        assert!(check_recovery_unwrap("crates/core/src/recovery.rs", in_tests).is_empty());
    }
}
