//! `chaossearch` — coverage-guided adversarial fault-plan search over the
//! self-healing broadcast.
//!
//! Where [`crate::explore`] enumerates *schedules* of a fixed
//! communication pattern, this module searches the space of *fault plans*:
//! which ranks fail-stop, at which operation counts, and which link fault
//! rates (drop / duplicate / delay) the network injects. Every candidate
//! [`ChaosSpec`] is executed for real on the discrete-event executor
//! ([`mpsim::EventWorld`]) with the plan applied through a
//! [`netsim::FaultyComm`], and the completed launch is judged by the
//! recovery invariant oracle
//! ([`bcast_core::check_recovery_outcome`]): survivor-set sandwich,
//! byte-identical payload, epoch budget, liveness, per-link traffic
//! conservation, and the virtual-clock recovery-time bound.
//!
//! # Coverage signal
//!
//! The search is greybox, not blind. Each run is folded into a
//! [`Signature`] — the union of [`bcast_core::recovery::branch`] bits hit
//! by any rank, the deepest epoch count and root-succession chain, a death
//! tally, an outcome-class mask and a log₂ traffic bucket. A mutant whose
//! signature was never seen before joins the corpus and seeds further
//! mutation; one that only re-treads known behavior is discarded. Branch
//! bits are recorded by the recovery loop itself, so "interesting" means
//! *the recovery state machine did something new*, not merely "the plan
//! looks different".
//!
//! # Shrinking and replay
//!
//! A violating spec is minimized with [`testkit::prop`]'s greedy shrinker
//! — the exact machinery the property tests use — by wrapping the spec in
//! a constant [`Strategy`] whose `shrink` proposes structurally simpler
//! plans (fewer crashes, clean links, smaller worlds, earlier crash
//! points). The whole search is a pure function of `(seed, budget, drill)`
//! — specs carry their own payload/plan seeds and the executor clock is
//! virtual — so replaying a finding is just re-running the search with the
//! printed seed (`TESTKIT_SEED=… chaos-search --replay`).
//!
//! # The drill
//!
//! [`run_drill`] proves the harness has teeth: each [`RecoveryDrill`] knob
//! re-introduces a known recovery bug (forged payload reports, a pinned
//! dead root, a starved epoch budget), and the search must find a
//! violating plan, shrink it, and reproduce the same minimal spec from the
//! same seed — the recovery analogue of the schedcheck model-mutation
//! drill.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use bcast_core::{
    check_recovery_outcome, recovery::branch, self_healing_rank_task, Algorithm, RankRun,
    RecoveryConfig, RecoveryDrill, RecoverySpec,
};
use mpsim::{CommError, EventWorld, Rank, ReliableComm, RetryConfig, WorldTraffic};
use netsim::{FaultPlan, FaultyComm, LinkFaults};
use testkit::prop::{self, Strategy};
use testkit::rng::{Rng, SplitMix64};

/// Default master seed of the search (overridden by `TESTKIT_SEED` or
/// `--seed` in the CLI).
pub const DEFAULT_SEARCH_SEED: u64 = 0xC4A0_5EA2_C5EE_D001;

/// Upper bound on planned crashes per spec — enough for a depth-3 cascade
/// with a rank to spare, small enough to keep the epoch budget (and thus
/// each run) bounded.
pub const MAX_CRASHES: usize = 4;

/// Per-fault-kind cap on link fault rates, in ppm. Beyond ~20% the
/// reliable layer's retry budget is routinely exhausted and every run
/// collapses into the same all-timeout signature — noise, not coverage.
pub const MAX_FAULT_PPM: u32 = 200_000;

// ---------------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------------

/// One candidate fault plan plus the launch it applies to — everything a
/// run needs, so a spec alone replays a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpec {
    /// World size.
    pub p: usize,
    /// Payload length in bytes.
    pub nbytes: usize,
    /// Caller-designated root.
    pub root: Rank,
    /// Broadcast algorithm under recovery.
    pub algorithm: Algorithm,
    /// Planned fail-stops as `(rank, after_ops)`, sorted by rank, at most
    /// one per rank.
    pub crashes: Vec<(Rank, u64)>,
    /// Fault rates applied to every link.
    pub faults: LinkFaults,
    /// Seed of the [`FaultPlan`]'s per-message fault lottery and of the
    /// payload pattern.
    pub plan_seed: u64,
}

impl ChaosSpec {
    /// Whether the network delivers every message exactly once (crashes
    /// may still be planned). Liveness is only guaranteed — and only
    /// checked — on lossless specs; under message loss a live rank may be
    /// falsely suspected and excluded, which the oracle must tolerate.
    pub fn lossless(&self) -> bool {
        self.faults.total() == 0
    }

    /// The ranks planned to fail-stop, sorted.
    pub fn victims(&self) -> Vec<Rank> {
        self.crashes.iter().map(|&(r, _)| r).collect()
    }

    /// The [`FaultPlan`] this spec describes.
    pub fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new(self.plan_seed).with_default(self.faults);
        for &(rank, after) in &self.crashes {
            plan = plan.with_crash(rank, after);
        }
        plan
    }

    /// The recovery configuration the run is judged against: a virtual
    /// 40 ms step and exactly the epoch budget that guarantees liveness
    /// for the planned cascade (each crash may burn two epochs, plus one
    /// clean attempt).
    pub fn cfg(&self) -> RecoveryConfig {
        RecoveryConfig {
            step_timeout: Duration::from_millis(40),
            max_epochs: 2 * self.crashes.len() as u32 + 1,
            // The reliable layer's sendrecv must be decomposed so each
            // half is individually deadline-bounded.
            bounded_sendrecv: !self.lossless(),
        }
    }

    /// The deterministic payload staged on the root.
    pub fn payload(&self) -> Vec<u8> {
        let mut rng = SplitMix64::new(self.plan_seed ^ 0x9E37_79B9_7F4A_7C15);
        (0..self.nbytes).map(|_| rng.next_u64() as u8).collect()
    }

    /// Canonicalize after mutation: ranks in range, at most one crash per
    /// rank (sorted), fault rates capped.
    fn normalize(&mut self) {
        self.root %= self.p;
        self.crashes.retain(|&(r, _)| r < self.p);
        self.crashes.sort_unstable();
        self.crashes.dedup_by_key(|&mut (r, _)| r);
        self.crashes.truncate(MAX_CRASHES);
        self.faults.drop_ppm = self.faults.drop_ppm.min(MAX_FAULT_PPM);
        self.faults.dup_ppm = self.faults.dup_ppm.min(MAX_FAULT_PPM);
        self.faults.delay_ppm = self.faults.delay_ppm.min(MAX_FAULT_PPM);
    }
}

/// The corpus the search starts from: a fault-free baseline, a mid-ring
/// crash (stall + exclusion), a root crash one send into a binomial
/// distribution (payload survives in the subtree → root succession), and a
/// lossy-link plan. Between them they reach every recovery branch the
/// drill knobs subvert, so mutants of interest are nearby.
pub fn seed_corpus(seed: u64) -> Vec<ChaosSpec> {
    let base = ChaosSpec {
        p: 8,
        nbytes: 256,
        root: 0,
        algorithm: Algorithm::ScatterRingTuned,
        crashes: Vec::new(),
        faults: LinkFaults::NONE,
        plan_seed: seed ^ 0x5EED,
    };
    vec![
        base.clone(),
        ChaosSpec { crashes: vec![(5, 9)], ..base.clone() },
        ChaosSpec { algorithm: Algorithm::Binomial, crashes: vec![(0, 1)], ..base.clone() },
        ChaosSpec {
            faults: LinkFaults { drop_ppm: 60_000, dup_ppm: 10_000, delay_ppm: 10_000 },
            ..base
        },
    ]
}

// ---------------------------------------------------------------------------
// Execution + oracle
// ---------------------------------------------------------------------------

/// Coverage signature of one run — two runs with equal signatures drove
/// the recovery machine through the same qualitative behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Signature {
    /// Union of [`branch`] bits over all ranks.
    pub branches: u32,
    /// Deepest per-rank epoch count.
    pub epochs: u32,
    /// Longest root-succession chain.
    pub succession: u32,
    /// log₂ bucket of total deaths observed across ranks.
    pub deaths: u32,
    /// Outcome classes present: bit 0 `Ok`, bit 1 `PeerFailed`, bit 2
    /// `Timeout`, bit 3 anything else.
    pub outcomes: u8,
    /// log₂ bucket of total messages moved.
    pub msgs: u32,
}

/// Everything one executed spec yields: the oracle's verdict and the
/// coverage signature.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// First violated invariant (or caught panic), if any.
    pub violation: Option<String>,
    /// Coverage signature of the run.
    pub signature: Signature,
}

fn log2_bucket(n: u64) -> u32 {
    64 - n.leading_zeros()
}

fn signature_of(runs: &[RankRun], traffic: &WorldTraffic) -> Signature {
    let mut sig =
        Signature { branches: 0, epochs: 0, succession: 0, deaths: 0, outcomes: 0, msgs: 0 };
    let mut deaths = 0u64;
    for run in runs {
        sig.branches |= run.trace.branches;
        sig.epochs = sig.epochs.max(run.trace.epochs_entered);
        sig.succession = sig.succession.max(run.trace.succession_depth);
        deaths += run.trace.deaths_observed as u64;
        sig.outcomes |= match &run.result {
            Ok(_) => 1,
            Err(CommError::PeerFailed { .. }) => 2,
            Err(CommError::Timeout { .. }) => 4,
            Err(_) => 8,
        };
    }
    sig.deaths = log2_bucket(deaths);
    sig.msgs = log2_bucket(traffic.total_msgs());
    sig
}

/// Execute one spec on the event executor and judge it.
///
/// The communicator stack is assembled per the spec: every rank wraps the
/// executor's communicator in a [`FaultyComm`]; when the spec has lossy
/// links a [`ReliableComm`] (ack + retransmit) rides in between, because
/// raw recovery assumes fail-stop ranks, not a lossy network. Planned
/// victims are the spec's crash set; on lossy specs, ranks that were
/// falsely suspected (excluded by a timeout verdict) are added to the
/// tolerated set before judging, since false suspicion is permitted there.
///
/// A panic anywhere in the launch (executor deadlock, a drill-broken
/// schedule) is caught and reported as a violation — the search treats
/// "the world blew up" exactly like "an invariant failed".
pub fn run_spec(spec: &ChaosSpec, drill: &RecoveryDrill) -> ChaosRun {
    let plan = spec.plan();
    let cfg = spec.cfg();
    let src = spec.payload();
    let retry = RetryConfig {
        base_timeout: Duration::from_millis(5),
        max_timeout: Duration::from_millis(40),
        max_attempts: 12,
    };
    let launch = catch_unwind(AssertUnwindSafe(|| {
        let out = EventWorld::run(spec.p, |comm| {
            let plan = plan.clone();
            let src = src.clone();
            let drill = *drill;
            async move {
                let faulty = FaultyComm::new(&comm, plan);
                if spec.lossless() {
                    self_healing_rank_task(&faulty, &src, spec.root, spec.algorithm, &cfg, &drill)
                        .await
                } else {
                    let reliable = ReliableComm::with_config(&faulty, retry);
                    self_healing_rank_task(&reliable, &src, spec.root, spec.algorithm, &cfg, &drill)
                        .await
                }
            }
        });
        (out.results, out.traffic, out.elapsed)
    }));
    let (runs, traffic, elapsed) = match launch {
        Ok(t) => t,
        Err(payload) => {
            let msg = panic_text(payload.as_ref());
            return ChaosRun {
                violation: Some(format!("launch panicked: {msg}")),
                signature: Signature {
                    branches: 0,
                    epochs: 0,
                    succession: 0,
                    deaths: 0,
                    outcomes: 8,
                    msgs: 0,
                },
            };
        }
    };

    let mut victims = spec.victims();
    if !spec.lossless() {
        // False suspicion under loss: any rank that ended in an error is
        // tolerated as if planned; the safety invariants still apply.
        for (rank, run) in runs.iter().enumerate() {
            if run.result.is_err() && !victims.contains(&rank) {
                victims.push(rank);
            }
        }
        victims.sort_unstable();
    }
    let rspec = RecoverySpec {
        src: &src,
        root: spec.root,
        cfg,
        planned_victims: &victims,
        lossy_links: !spec.lossless(),
    };
    ChaosRun {
        violation: check_recovery_outcome(&rspec, &runs, &traffic, elapsed).err(),
        signature: signature_of(&runs, &traffic),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string payload>".to_owned()
    }
}

// ---------------------------------------------------------------------------
// Mutation
// ---------------------------------------------------------------------------

/// Derive one mutant of `base` (one or two random edits, then
/// canonicalized). Pure in `rng`, so the whole search replays from its
/// seed.
pub fn mutate(base: &ChaosSpec, rng: &mut SplitMix64) -> ChaosSpec {
    let mut spec = base.clone();
    let edits = 1 + rng.gen_range_u64(0, 2);
    for _ in 0..edits {
        match rng.gen_range_u64(0, 8) {
            0 => {
                // Plant (or re-plant) a crash at a fresh point.
                let rank = rng.gen_range_u64(0, spec.p as u64) as Rank;
                let after = rng.gen_range_u64(0, 8 * spec.p as u64);
                spec.crashes.retain(|&(r, _)| r != rank);
                spec.crashes.push((rank, after));
            }
            1 => {
                if !spec.crashes.is_empty() {
                    let i = rng.gen_range_u64(0, spec.crashes.len() as u64) as usize;
                    spec.crashes.remove(i);
                }
            }
            2 => {
                if !spec.crashes.is_empty() {
                    let i = rng.gen_range_u64(0, spec.crashes.len() as u64) as usize;
                    let (_, after) = spec.crashes[i];
                    spec.crashes[i].1 = match rng.gen_range_u64(0, 4) {
                        0 => after / 2,
                        1 => after * 2 + 1,
                        2 => after + spec.p as u64,
                        _ => after.saturating_sub(spec.p as u64),
                    };
                }
            }
            3 => {
                if !spec.crashes.is_empty() {
                    let i = rng.gen_range_u64(0, spec.crashes.len() as u64) as usize;
                    spec.crashes[i].0 = rng.gen_range_u64(0, spec.p as u64) as Rank;
                }
            }
            4 => {
                let rate = [0u32, 20_000, 60_000, 150_000][rng.gen_range_u64(0, 4) as usize];
                match rng.gen_range_u64(0, 3) {
                    0 => spec.faults.drop_ppm = rate,
                    1 => spec.faults.dup_ppm = rate,
                    _ => spec.faults.delay_ppm = rate,
                }
            }
            5 => {
                spec.p = rng.gen_range_u64(4, 11) as usize;
                spec.algorithm = if rng.gen_range_u64(0, 2) == 0 {
                    Algorithm::Binomial
                } else {
                    Algorithm::ScatterRingTuned
                };
            }
            6 => {
                spec.root = rng.gen_range_u64(0, spec.p as u64) as Rank;
                spec.nbytes = [64usize, 256, 768][rng.gen_range_u64(0, 3) as usize];
            }
            _ => spec.plan_seed = rng.next_u64(),
        }
    }
    spec.normalize();
    spec
}

// ---------------------------------------------------------------------------
// Shrinking (via testkit's greedy shrinker)
// ---------------------------------------------------------------------------

/// Structurally simpler variants of `spec`, simplest first — the shrink
/// relation the greedy minimizer walks.
pub fn shrink_candidates(spec: &ChaosSpec) -> Vec<ChaosSpec> {
    let mut out = Vec::new();
    for i in 0..spec.crashes.len() {
        let mut s = spec.clone();
        s.crashes.remove(i);
        out.push(s);
    }
    if spec.faults.total() != 0 {
        out.push(ChaosSpec { faults: LinkFaults::NONE, ..spec.clone() });
    }
    let interesting: BTreeSet<Rank> = spec.victims().into_iter().chain([spec.root]).collect();
    let floor = interesting.iter().max().map_or(4, |&r| (r + 1).max(4));
    for p in [4, spec.p / 2, spec.p - 1] {
        if p >= floor && p < spec.p {
            out.push(ChaosSpec { p, ..spec.clone() });
        }
    }
    for i in 0..spec.crashes.len() {
        if spec.crashes[i].1 > 0 {
            let mut s = spec.clone();
            s.crashes[i].1 /= 2;
            out.push(s);
        }
    }
    if spec.nbytes > 64 {
        out.push(ChaosSpec { nbytes: (spec.nbytes / 2).max(64), ..spec.clone() });
    }
    out
}

/// A constant strategy rooted at one failing spec: `generate` replays the
/// spec itself, `shrink` proposes [`shrink_candidates`]. Plugging this
/// into [`prop::run_seed`] reuses testkit's greedy adopt-first-failure
/// shrinker verbatim.
struct SpecStrategy {
    origin: ChaosSpec,
}

impl Strategy for SpecStrategy {
    type Value = ChaosSpec;

    fn generate(&self, _rng: &mut testkit::rng::Xoshiro256StarStar) -> ChaosSpec {
        self.origin.clone()
    }

    fn shrink(&self, value: &ChaosSpec) -> Vec<ChaosSpec> {
        shrink_candidates(value)
    }
}

/// Minimize a violating spec with testkit's greedy shrinker and return
/// `(shrunk spec, its violation)`.
///
/// The property records every failing candidate it sees; the greedy
/// shrinker only ever *adopts* failing candidates and ends on the last one
/// adopted, so the final recording is exactly the minimal spec (the
/// origin's own initial evaluation seeds the recording, covering the
/// already-minimal case).
pub fn shrink_violation(
    spec: &ChaosSpec,
    drill: &RecoveryDrill,
    error: String,
) -> (ChaosSpec, String) {
    let last_fail: RefCell<(ChaosSpec, String)> = RefCell::new((spec.clone(), error));
    let strategy = SpecStrategy { origin: spec.clone() };
    let property = |candidate: &ChaosSpec| -> prop::PropResult {
        match run_spec(candidate, drill).violation {
            Some(e) => {
                *last_fail.borrow_mut() = (candidate.clone(), e.clone());
                Err(e)
            }
            None => Ok(()),
        }
    };
    // The seed is irrelevant: the strategy generates a constant.
    let _ = prop::run_seed(0, &strategy, &property);
    last_fail.into_inner()
}

// ---------------------------------------------------------------------------
// The search loop
// ---------------------------------------------------------------------------

/// Search parameters.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// How many specs to execute before declaring the space clean.
    pub budget: u32,
    /// Master seed; the search is a pure function of `(seed, budget,
    /// drill)`.
    pub seed: u64,
    /// Deliberate-regression knobs under test ([`RecoveryDrill::NONE`]
    /// for the real regression gate).
    pub drill: RecoveryDrill,
}

/// A violation the search found, before and after shrinking.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The spec as first found.
    pub found: ChaosSpec,
    /// The spec after greedy minimization.
    pub shrunk: ChaosSpec,
    /// The shrunk spec's violated invariant.
    pub error: String,
    /// Which execution (0-based) hit it.
    pub iteration: u32,
}

/// What a finished search saw.
#[derive(Debug)]
pub struct SearchReport {
    /// Specs executed (≤ budget; the search stops at the first violation).
    pub executed: u32,
    /// Corpus size at the end (seeds + signature-novel mutants).
    pub corpus: usize,
    /// Distinct coverage signatures observed.
    pub signatures: usize,
    /// Union of recovery branch bits over every run.
    pub branch_union: u32,
    /// The first violation, shrunk — `None` means the space is clean.
    pub failure: Option<ChaosFailure>,
}

/// Run the coverage-guided search: execute the seed corpus, then mutate
/// signature-novel corpus members until the budget is spent or a spec
/// violates the recovery invariants (which is then shrunk and returned).
pub fn search(cfg: &SearchConfig) -> SearchReport {
    let _quiet = QuietPanics::engage();
    let seeds = seed_corpus(cfg.seed);
    let mut rng = SplitMix64::new(cfg.seed);
    let mut corpus: Vec<ChaosSpec> = Vec::new();
    let mut signatures: BTreeSet<Signature> = BTreeSet::new();
    let mut branch_union = 0u32;
    let mut executed = 0u32;

    for i in 0..cfg.budget {
        let spec = if (i as usize) < seeds.len() {
            seeds[i as usize].clone()
        } else {
            let pick = rng.gen_range_u64(0, corpus.len().max(1) as u64) as usize;
            let base = corpus.get(pick).cloned().unwrap_or_else(|| seeds[0].clone());
            mutate(&base, &mut rng)
        };
        let run = run_spec(&spec, &cfg.drill);
        executed += 1;
        branch_union |= run.signature.branches;
        if let Some(error) = run.violation {
            let (shrunk, error) = shrink_violation(&spec, &cfg.drill, error);
            return SearchReport {
                executed,
                corpus: corpus.len(),
                signatures: signatures.len(),
                branch_union,
                failure: Some(ChaosFailure { found: spec, shrunk, error, iteration: i }),
            };
        }
        if signatures.insert(run.signature) {
            corpus.push(spec);
        }
    }
    SearchReport {
        executed,
        corpus: corpus.len(),
        signatures: signatures.len(),
        branch_union,
        failure: None,
    }
}

/// Silence the default panic hook for the duration of a search: violating
/// runs legitimately panic inside `catch_unwind` (drill-broken schedules,
/// executor deadlock detection) and would otherwise spray backtraces over
/// the report. Restores the previous hook on drop.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

struct QuietPanics {
    prev: Option<PanicHook>,
}

impl QuietPanics {
    fn engage() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics { prev: Some(prev) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

// ---------------------------------------------------------------------------
// The drill
// ---------------------------------------------------------------------------

/// The named deliberate regressions the drill plants, one knob at a time.
pub fn drill_knobs() -> [(&'static str, RecoveryDrill); 3] {
    [
        ("claim-full-payload", RecoveryDrill { claim_full_payload: true, ..RecoveryDrill::NONE }),
        (
            "skip-root-succession",
            RecoveryDrill { skip_root_succession: true, ..RecoveryDrill::NONE },
        ),
        (
            "clamp-epoch-budget",
            RecoveryDrill { clamp_epoch_budget: Some(1), ..RecoveryDrill::NONE },
        ),
    ]
}

/// One knob's drill verdict.
#[derive(Debug)]
pub struct DrillResult {
    /// Knob name.
    pub knob: &'static str,
    /// The finding, if the search caught the regression.
    pub failure: Option<ChaosFailure>,
    /// Whether re-running the search from the same seed reproduced the
    /// same shrunk spec — the replay contract.
    pub replayed: bool,
}

impl DrillResult {
    /// Caught, shrunk, and deterministically replayed.
    pub fn passed(&self) -> bool {
        self.failure.is_some() && self.replayed
    }
}

/// For every drill knob: run the search with the regression planted,
/// require a violation, and prove the replay contract by re-running the
/// search from the same seed and comparing the shrunk specs.
pub fn run_drill(budget: u32, seed: u64) -> Vec<DrillResult> {
    drill_knobs()
        .into_iter()
        .map(|(knob, drill)| {
            let cfg = SearchConfig { budget, seed, drill };
            let failure = search(&cfg).failure;
            let replayed = match &failure {
                None => false,
                Some(f) => search(&cfg)
                    .failure
                    .is_some_and(|again| again.shrunk == f.shrunk && again.error == f.error),
            };
            DrillResult { knob, failure, replayed }
        })
        .collect()
}

/// Human-readable names of the [`branch`] bits set in `bits`.
pub fn branch_names(bits: u32) -> Vec<&'static str> {
    [
        (branch::CLEAN_ATTEMPT, "clean-attempt"),
        (branch::STALLED_ATTEMPT, "stalled-attempt"),
        (branch::HEALED_ALL, "healed-all"),
        (branch::HEALED_SURVIVORS, "healed-survivors"),
        (branch::DEATH_OBSERVED, "death-observed"),
        (branch::ROOT_SUCCESSION, "root-succession"),
        (branch::PAYLOAD_LOST, "payload-lost"),
        (branch::EPOCH_BUDGET_EXHAUSTED, "epoch-budget-exhausted"),
        (branch::SELF_CRASH, "self-crash"),
        (branch::GARBLED_REPORT, "garbled-report"),
    ]
    .into_iter()
    .filter(|&(bit, _)| bits & bit != 0)
    .map(|(_, name)| name)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seed corpus itself is clean: every seed spec satisfies the
    /// recovery invariants without any drill.
    #[test]
    fn seed_corpus_is_clean() {
        for spec in seed_corpus(DEFAULT_SEARCH_SEED) {
            let run = run_spec(&spec, &RecoveryDrill::NONE);
            assert_eq!(run.violation, None, "seed spec violated: {spec:?}");
        }
    }

    /// A short undirected search over the production recovery path finds
    /// nothing — the regression gate in miniature.
    #[test]
    fn short_search_is_clean_without_drill() {
        let cfg =
            SearchConfig { budget: 24, seed: DEFAULT_SEARCH_SEED, drill: RecoveryDrill::NONE };
        let report = search(&cfg);
        assert!(report.failure.is_none(), "clean search found: {:?}", report.failure);
        assert_eq!(report.executed, 24);
        // The corpus grew beyond the 4 seeds: mutation found new behavior.
        assert!(report.signatures >= 4, "only {} signatures", report.signatures);
        assert!(report.branch_union & branch::DEATH_OBSERVED != 0);
        assert!(report.branch_union & branch::HEALED_SURVIVORS != 0);
    }

    /// Every drill knob is caught, shrunk, and replays deterministically —
    /// 3/3 seeded recovery mutants.
    #[test]
    fn drill_catches_all_three_knobs() {
        let results = run_drill(16, DEFAULT_SEARCH_SEED);
        for r in &results {
            assert!(
                r.passed(),
                "drill knob '{}' escaped: failure={:?} replayed={}",
                r.knob,
                r.failure,
                r.replayed
            );
        }
        assert_eq!(results.len(), 3);
    }

    /// The search is a pure function of its config: same seed, same
    /// report shape.
    #[test]
    fn search_is_deterministic_in_its_seed() {
        let cfg = SearchConfig { budget: 12, seed: 0xD5EE_D001, drill: RecoveryDrill::NONE };
        let a = search(&cfg);
        let b = search(&cfg);
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.corpus, b.corpus);
        assert_eq!(a.signatures, b.signatures);
        assert_eq!(a.branch_union, b.branch_union);
    }

    /// Shrinking a planted violation reaches a structurally minimal spec:
    /// the claim-full-payload drill needs only a single crash, and the
    /// shrunk plan still fails with the byte-divergence invariant.
    #[test]
    fn shrinker_minimizes_a_planted_violation() {
        let drill = RecoveryDrill { claim_full_payload: true, ..RecoveryDrill::NONE };
        // An over-decorated spec: extra crash, lossy links, big payload.
        let spec = ChaosSpec {
            p: 8,
            nbytes: 768,
            root: 0,
            algorithm: Algorithm::ScatterRingTuned,
            crashes: vec![(3, 60), (5, 9)],
            faults: LinkFaults { drop_ppm: 20_000, dup_ppm: 0, delay_ppm: 0 },
            plan_seed: 0xBADD_5EED,
        };
        let run = run_spec(&spec, &drill);
        let error = run.violation.expect("drill spec must violate");
        let (shrunk, final_error) = shrink_violation(&spec, &drill, error);
        assert!(shrunk.crashes.len() <= 1, "shrunk kept {:?}", shrunk.crashes);
        assert_eq!(shrunk.faults, LinkFaults::NONE, "shrunk kept lossy links");
        assert!(shrunk.nbytes <= 256, "shrunk kept nbytes={}", shrunk.nbytes);
        assert!(!final_error.is_empty());
        // And the shrunk spec replays its violation standalone.
        assert_eq!(run_spec(&shrunk, &drill).violation, Some(final_error));
    }

    /// Mutation never leaves the legal spec space.
    #[test]
    fn mutants_stay_normalized() {
        let mut rng = SplitMix64::new(0xF00D);
        let mut spec = seed_corpus(0xF00D).remove(1);
        for _ in 0..500 {
            spec = mutate(&spec, &mut rng);
            assert!((4..=10).contains(&spec.p));
            assert!(spec.root < spec.p);
            assert!(spec.crashes.len() <= MAX_CRASHES);
            assert!(spec.crashes.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(spec.crashes.iter().all(|&(r, _)| r < spec.p));
            assert!(spec.faults.total() <= 3 * MAX_FAULT_PPM);
        }
    }
}
