//! Interleaving exploration for small concurrent protocols — an in-tree,
//! zero-dependency take on loom-style model checking, in two gears.
//!
//! A [`Model`] describes a handful of threads, each a deterministic program
//! whose only nondeterminism is the scheduler: in any state, any enabled
//! thread may take the next atomic step.
//!
//! * [`explore`] enumerates *every* reachable interleaving by depth-first
//!   search with visited-state deduplication, checking a safety invariant
//!   in every state, detecting deadlocks (no thread enabled, not all done),
//!   and validating an acceptance predicate in every terminal state.
//! * [`explore_dpor`] is a sleep-set dynamic partial-order-reduction
//!   explorer (Flanagan–Godefroid backtrack sets plus Godefroid sleep sets)
//!   with state hashing. Dependence between transitions is decided
//!   *dynamically* by a commutation probe — two enabled steps are
//!   independent exactly when executing them in either order reaches the
//!   same state and neither disables the other — so no model has to
//!   declare a dependency relation. A wake that enables a parked thread is
//!   conservatively dependent (the probe sees the enabledness change),
//!   which is precisely what preserves every deadlock. Subtrees already
//!   fully explored from a state under an equal-or-smaller sleep set are
//!   pruned via a hash cache; on such a prune, every thread that executed
//!   anywhere in the cached subtree is conservatively re-raised as a
//!   backtrack point along the whole current stack, which keeps the
//!   cross-prefix races the cache would otherwise hide.
//!
//! DPOR visits a (often dramatically) smaller set of states and makes the
//! reactor protocol models tractable; the exhaustive mode stays as the
//! differential oracle — `explore_reactor_ci` in the `schedcheck` binary
//! and the `dpor_differential` integration test run both on every model
//! and demand identical verdicts.
//!
//! The protocols under test ([`crate::models`]) call the *same* decision
//! functions ([`mpsim::proto`], `mpsim::event_mailbox::bucket_route`,
//! `mpsim::event_timer`) the deployed runtime executes, so a verdict here
//! speaks about the shipped code's protocol, not a transcription.

use std::collections::{HashMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;

/// Outcome of offering a step to one thread.
pub enum Step<S> {
    /// The thread cannot move in this state (parked without a token,
    /// waiting on a lock, …). Not an error: some other thread must move.
    Blocked,
    /// The thread took one atomic step, yielding a successor state.
    Next(S),
}

/// A small concurrent protocol with a finite, enumerable state space.
pub trait Model {
    /// Global protocol state: shared memory plus every thread's location.
    type State: Clone + Hash + Eq + Debug;

    /// Initial state.
    fn initial(&self) -> Self::State;

    /// Number of threads.
    fn threads(&self) -> usize;

    /// Whether thread `tid` has run to completion in `s`.
    fn is_done(&self, s: &Self::State, tid: usize) -> bool;

    /// Offer thread `tid` one atomic step from `s`. Must be deterministic:
    /// all nondeterminism belongs to the scheduler choice of `tid`.
    fn step(&self, s: &Self::State, tid: usize) -> Step<Self::State>;

    /// Safety invariant, checked in every reachable state.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// Terminal-state acceptance, checked whenever every thread is done.
    fn accept(&self, s: &Self::State) -> Result<(), String>;
}

/// Exploration statistics of a successful run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including ones leading to already-visited states).
    pub transitions: usize,
    /// Terminal states reached.
    pub terminals: usize,
}

/// Hard cap on distinct states; exceeding it is an error (the model is not
/// as finite as believed), never a silent truncation.
pub const DEFAULT_MAX_STATES: usize = 1 << 20;

/// Exhaustively explore every interleaving of `model`.
///
/// Returns statistics on success; on failure returns a description of the
/// violated property together with the offending state. A `max_states`
/// overflow reports the partial [`Stats`] (states visited, transitions,
/// frontier depth) so the caller can see how far the search got.
pub fn explore<M: Model>(model: &M, max_states: usize) -> Result<Stats, String> {
    let mut stats = Stats::default();
    let mut seen: HashSet<M::State> = HashSet::new();
    let mut stack: Vec<M::State> = Vec::new();

    let initial = model.initial();
    seen.insert(initial.clone());
    stack.push(initial);
    stats.states = 1;

    while let Some(state) = stack.pop() {
        model
            .invariant(&state)
            .map_err(|e| format!("invariant violated: {e}\nstate: {state:?}"))?;

        let mut any_enabled = false;
        let mut all_done = true;
        for tid in 0..model.threads() {
            if model.is_done(&state, tid) {
                continue;
            }
            all_done = false;
            match model.step(&state, tid) {
                Step::Blocked => {}
                Step::Next(next) => {
                    any_enabled = true;
                    stats.transitions += 1;
                    if seen.insert(next.clone()) {
                        stats.states += 1;
                        if stats.states > max_states {
                            return Err(cap_error(max_states, &stats, stack.len() + 1));
                        }
                        stack.push(next);
                    }
                }
            }
        }

        if all_done {
            stats.terminals += 1;
            model
                .accept(&state)
                .map_err(|e| format!("terminal state rejected: {e}\nstate: {state:?}"))?;
        } else if !any_enabled {
            let blocked: Vec<usize> =
                (0..model.threads()).filter(|&t| !model.is_done(&state, t)).collect();
            return Err(format!(
                "deadlock: threads {blocked:?} blocked with no enabled step\nstate: {state:?}"
            ));
        }
    }
    Ok(stats)
}

/// The `max_states` error, carrying the partial [`Stats`] instead of
/// discarding them: how far the search got is exactly what one needs to
/// decide whether the model is unbounded or the budget merely too small.
fn cap_error(max_states: usize, stats: &Stats, frontier_depth: usize) -> String {
    format!(
        "state-space cap exceeded ({max_states} states): model is not finite enough \
         (visited {} states, {} transitions, frontier depth {frontier_depth})",
        stats.states, stats.transitions
    )
}

/// Iterate the set bits of a `u64` thread mask as thread ids.
fn bits(mask: u64) -> impl Iterator<Item = usize> {
    std::iter::successors((mask != 0).then_some(mask), |&m| {
        let m = m & (m - 1);
        (m != 0).then_some(m)
    })
    .map(|m| m.trailing_zeros() as usize)
}

/// One DFS frame of the DPOR search: a state, its per-thread successors,
/// and the Flanagan–Godefroid bookkeeping (backtrack, explored, sleep sets
/// as thread bitmasks).
struct DporFrame<S> {
    state: S,
    /// `succ[t]` = state after thread `t` steps, for enabled `t`.
    succ: Vec<Option<S>>,
    /// Enabled threads at `state`.
    enabled: u64,
    /// Sleep set on entry: threads whose subtrees are covered elsewhere.
    sleep: u64,
    /// Threads requested for exploration from this state.
    backtrack: u64,
    /// Threads already executed from this state.
    explored: u64,
    /// The arm currently being explored (the transition that produced the
    /// frame above this one).
    chosen: Option<usize>,
    /// Threads that executed anywhere in this frame's (partial) subtree.
    subtree: u64,
}

/// Do thread `p`'s and thread `q`'s current steps commute at `state`?
/// Both must be enabled (`succ_*` are their successors); they are
/// independent iff each stays enabled after the other and both orders land
/// in the same state. Any disagreement — including one disabling the other,
/// i.e. every wake/park interaction — is conservatively dependent.
fn commutes<M: Model>(model: &M, succ_p: &M::State, succ_q: &M::State, p: usize, q: usize) -> bool {
    let Step::Next(pq) = model.step(succ_p, q) else { return false };
    let Step::Next(qp) = model.step(succ_q, p) else { return false };
    pq == qp
}

/// Explore `model` with sleep-set DPOR; same verdict contract as
/// [`explore`] (same error prefixes, same `max_states` semantics over
/// *distinct hashed states*), typically visiting far fewer states.
///
/// Soundness notes, in this repo's terms: deadlocks and terminal verdicts
/// are preserved because the commutation probe over-approximates dependence
/// (anything that changes another thread's enabledness or does not commute
/// is dependent, and a same-thread pair always is). Invariants are checked
/// on every state this search reaches; the exhaustive oracle — kept
/// deliberately, and run against this explorer in CI — covers the
/// interleaving-interior states a reduction is allowed to skip. Supports at
/// most 64 threads (thread sets are bitmasks).
pub fn explore_dpor<M: Model>(model: &M, max_states: usize) -> Result<Stats, String> {
    let nt = model.threads();
    assert!(nt <= 64, "explore_dpor supports at most 64 threads");

    let mut stats = Stats::default();
    // Distinct states reached (the `states` stat and the cap), NOT a prune
    // set: DPOR must re-enter a state arrived at with a smaller sleep set.
    let mut seen: HashSet<M::State> = HashSet::new();
    // Fully explored subtrees: state -> (sleep set it was explored under,
    // threads that executed anywhere below). A later arrival with a sleep
    // superset is covered by the cached subtree.
    let mut done: HashMap<M::State, Vec<(u64, u64)>> = HashMap::new();
    let mut frames: Vec<DporFrame<M::State>> = Vec::new();
    // Transition guard: DPOR is stateless over traces, so a model whose
    // reduced trace tree dwarfs its state graph must fail loudly, not hang.
    let max_transitions = max_states.saturating_mul(64);

    // Arrive at `state` (reached under `sleep`); either push a frame or
    // resolve it as a leaf (terminal / covered / pruned), crediting the
    // parent's subtree. Returns Err on a property violation.
    #[allow(clippy::too_many_arguments)] // local fn threading the search's whole mutable context
    fn arrive<M: Model>(
        model: &M,
        frames: &mut Vec<DporFrame<M::State>>,
        seen: &mut HashSet<M::State>,
        done: &mut HashMap<M::State, Vec<(u64, u64)>>,
        stats: &mut Stats,
        max_states: usize,
        state: M::State,
        sleep: u64,
    ) -> Result<(), String> {
        let nt = model.threads();
        // Credit the parent for this arm plus a covered subtree's threads.
        fn leaf(frames: &mut [DporFrame<impl Clone>], extra: u64) {
            if let Some(parent) = frames.last_mut() {
                if let Some(arm) = parent.chosen.take() {
                    parent.subtree |= (1u64 << arm) | extra;
                }
            }
        }

        if seen.insert(state.clone()) {
            stats.states += 1;
            if stats.states > max_states {
                return Err(cap_error(max_states, stats, frames.len() + 1));
            }
            model
                .invariant(&state)
                .map_err(|e| format!("invariant violated: {e}\nstate: {state:?}"))?;
        }

        let mut succ: Vec<Option<M::State>> = vec![None; nt];
        let mut enabled = 0u64;
        let mut live = 0u64;
        for (t, slot) in succ.iter_mut().enumerate() {
            if model.is_done(&state, t) {
                continue;
            }
            live |= 1u64 << t;
            if let Step::Next(n) = model.step(&state, t) {
                *slot = Some(n);
                enabled |= 1u64 << t;
            }
        }
        let all_done = live == 0;

        if all_done {
            stats.terminals += 1;
            model
                .accept(&state)
                .map_err(|e| format!("terminal state rejected: {e}\nstate: {state:?}"))?;
            leaf(frames, 0);
            return Ok(());
        }
        if enabled == 0 {
            let blocked: Vec<usize> = (0..nt).filter(|&t| !model.is_done(&state, t)).collect();
            return Err(format!(
                "deadlock: threads {blocked:?} blocked with no enabled step\nstate: {state:?}"
            ));
        }

        // Flanagan–Godefroid backtrack propagation: for every *live* thread
        // `p` — enabled or currently blocked; classical DPOR scans disabled
        // processes too, and that is load-bearing — walk the stack top-down
        // for the last transition dependent with `p`'s pending step and
        // request a reversal there. The scan examines the suffix since `p`
        // last executed (a frame whose chosen thread *is* `p` ends it:
        // same-thread pairs are always dependent, and `p`'s program counter
        // is constant above that point), classifying each frame `j` with
        // chosen thread `q` by what `q` did to `p`:
        //
        // * `p` enabled before and after `q`: run the commutation probe;
        //   a refuted swap is a race — request `p` at `j` and stop.
        // * `q` flipped `p`'s enabledness: dependent by definition. If `p`
        //   was enabled at `j` (q *disabled* it — an acquire stealing the
        //   lock `p` wanted), request `p` there; if `p` was disabled (q
        //   *enabled* it — a release/wake), `p` cannot run at `j`, so
        //   request everything enabled there, the classical fallback.
        //   Stop either way: the flip happened at `j`, and any deeper race
        //   was recorded by the arrival scans below (each arrival scans
        //   every live thread, so no flip goes unexamined).
        // * `p` disabled on both sides of `q`: `q` provably did not touch
        //   `p`'s enabledness; keep scanning for the frame that parked `p`.
        //
        // The scan runs on *every* arrival — including ones about to be
        // pruned by the subtree cache or the sleep set below — so a pruned
        // node still publishes its pending races against the current
        // (possibly different) prefix before vanishing. That is what keeps
        // the cache sound: the threads a cached subtree executed are a
        // subset of the live threads here, and their first steps in the
        // subtree are exactly the pending steps this scan races.
        let top = frames.len();
        for p in bits(live) {
            for j in (0..top).rev() {
                // lint: allow(panic) — every stack frame below an arrival has a chosen arm.
                let q = frames[j].chosen.expect("stack frame without a chosen arm");
                if q == p {
                    frames[j].backtrack |= 1u64 << p;
                    break;
                }
                let en_before = frames[j].enabled & (1u64 << p) != 0;
                let en_after =
                    if j + 1 < top { frames[j + 1].enabled } else { enabled } & (1u64 << p) != 0;
                match (en_before, en_after) {
                    (false, false) => continue,
                    (true, false) => {
                        frames[j].backtrack |= 1u64 << p;
                        break;
                    }
                    (false, true) => {
                        frames[j].backtrack |= frames[j].enabled;
                        break;
                    }
                    (true, true) => {
                        let dependent = !commutes(
                            model,
                            frames[j].succ[p].as_ref().expect("enabled thread has a successor"),
                            if j + 1 < top { &frames[j + 1].state } else { &state },
                            p,
                            q,
                        );
                        if dependent {
                            frames[j].backtrack |= 1u64 << p;
                            break;
                        }
                    }
                }
            }
        }

        // Covered by an already-explored subtree under a smaller-or-equal
        // sleep set? Prune; the scan above already raced every live
        // thread's pending step against the current prefix.
        if let Some(entries) = done.get(&state) {
            if let Some(&(_, tids)) = entries.iter().find(|&&(z, _)| z & !sleep == 0) {
                leaf(frames, tids);
                return Ok(());
            }
        }

        // Revisit of a state still on the stack (a cycle): prune with a
        // full conservative flood. Finite acyclic models never hit this;
        // it exists so a cyclic model terminates instead of diverging.
        if frames.iter().any(|f| f.state == state) {
            for f in frames.iter_mut() {
                f.backtrack |= f.enabled;
            }
            leaf(frames, if nt == 64 { u64::MAX } else { (1u64 << nt) - 1 });
            return Ok(());
        }

        // Every enabled thread is asleep: the whole subtree is covered by
        // siblings already explored from an ancestor.
        if enabled & !sleep == 0 {
            leaf(frames, 0);
            return Ok(());
        }

        // Seed with one awake enabled thread; dependency analysis from the
        // subtree will request the rest as needed.
        let seedable = enabled & !sleep;
        let seed = seedable.trailing_zeros() as usize;
        frames.push(DporFrame {
            state,
            succ,
            enabled,
            sleep,
            backtrack: 1u64 << seed,
            explored: 0,
            chosen: None,
            subtree: 0,
        });
        Ok(())
    }

    arrive(model, &mut frames, &mut seen, &mut done, &mut stats, max_states, model.initial(), 0)?;

    while let Some(top) = frames.last() {
        let avail = top.backtrack & !top.explored & !top.sleep;
        let Some(t) = bits(avail).next() else {
            // Frame fully explored: cache its subtree and credit the parent.
            // lint: allow(panic) — the loop guard just proved non-emptiness.
            let f = frames.pop().expect("non-empty stack");
            if f.explored != 0 {
                done.entry(f.state).or_default().push((f.sleep, f.subtree));
            }
            if let Some(parent) = frames.last_mut() {
                if let Some(arm) = parent.chosen.take() {
                    parent.subtree |= (1u64 << arm) | f.subtree;
                }
            }
            continue;
        };

        // Child sleep set: siblings already explored (and inherited
        // sleepers) stay asleep below `t` exactly when they commute with
        // `t` here — their reorderings with `t` are covered.
        let child = {
            let top = frames.last_mut().expect("non-empty stack");
            top.explored |= 1u64 << t;
            top.chosen = Some(t);
            top.succ[t].clone().expect("backtracked thread is enabled")
        };
        let top = frames.last().expect("non-empty stack");
        let mut sleep_next = 0u64;
        let candidates = (top.sleep | top.explored) & top.enabled & !(1u64 << t);
        for r in bits(candidates) {
            if commutes(
                model,
                top.succ[r].as_ref().expect("sleeping thread is enabled"),
                top.succ[t].as_ref().expect("chosen thread is enabled"),
                r,
                t,
            ) {
                sleep_next |= 1u64 << r;
            }
        }

        stats.transitions += 1;
        if stats.transitions > max_transitions {
            return Err(format!(
                "state-space cap exceeded (transition budget {max_transitions}): \
                 reduced trace tree is not finite enough \
                 (visited {} states, {} transitions, frontier depth {})",
                stats.states,
                stats.transitions,
                frames.len()
            ));
        }
        arrive(
            model,
            &mut frames,
            &mut seen,
            &mut done,
            &mut stats,
            max_states,
            child,
            sleep_next,
        )?;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a shared counter twice each with atomic
    /// fetch-add steps: no interleaving can lose an update.
    struct AtomicCounter;

    #[derive(Clone, Hash, PartialEq, Eq, Debug)]
    struct CState {
        counter: u8,
        remaining: [u8; 2],
    }

    impl Model for AtomicCounter {
        type State = CState;
        fn initial(&self) -> CState {
            CState { counter: 0, remaining: [2, 2] }
        }
        fn threads(&self) -> usize {
            2
        }
        fn is_done(&self, s: &CState, tid: usize) -> bool {
            s.remaining[tid] == 0
        }
        fn step(&self, s: &CState, tid: usize) -> Step<CState> {
            let mut n = s.clone();
            n.counter += 1;
            n.remaining[tid] -= 1;
            Step::Next(n)
        }
        fn invariant(&self, s: &CState) -> Result<(), String> {
            if s.counter <= 4 {
                Ok(())
            } else {
                Err(format!("counter overshot: {}", s.counter))
            }
        }
        fn accept(&self, s: &CState) -> Result<(), String> {
            if s.counter == 4 {
                Ok(())
            } else {
                Err(format!("lost update: counter {}", s.counter))
            }
        }
    }

    /// A torn read-modify-write (load and store as separate steps) CAN lose
    /// an update — the explorer must find the bad terminal state.
    struct TornCounter;

    #[derive(Clone, Hash, PartialEq, Eq, Debug)]
    struct TState {
        counter: u8,
        loaded: [Option<u8>; 2],
        remaining: [u8; 2],
    }

    impl Model for TornCounter {
        type State = TState;
        fn initial(&self) -> TState {
            TState { counter: 0, loaded: [None, None], remaining: [1, 1] }
        }
        fn threads(&self) -> usize {
            2
        }
        fn is_done(&self, s: &TState, tid: usize) -> bool {
            s.remaining[tid] == 0
        }
        fn step(&self, s: &TState, tid: usize) -> Step<TState> {
            let mut n = s.clone();
            match s.loaded[tid] {
                None => n.loaded[tid] = Some(s.counter),
                Some(v) => {
                    n.counter = v + 1;
                    n.loaded[tid] = None;
                    n.remaining[tid] -= 1;
                }
            }
            Step::Next(n)
        }
        fn invariant(&self, _s: &TState) -> Result<(), String> {
            Ok(())
        }
        fn accept(&self, s: &TState) -> Result<(), String> {
            if s.counter == 2 {
                Ok(())
            } else {
                Err(format!("lost update: counter {}", s.counter))
            }
        }
    }

    /// Two threads touching disjoint counters: everything commutes, so DPOR
    /// should explore essentially one interleaving.
    struct DisjointCounters;

    #[derive(Clone, Hash, PartialEq, Eq, Debug)]
    struct DState {
        counters: [u8; 2],
    }

    impl Model for DisjointCounters {
        type State = DState;
        fn initial(&self) -> DState {
            DState { counters: [0, 0] }
        }
        fn threads(&self) -> usize {
            2
        }
        fn is_done(&self, s: &DState, tid: usize) -> bool {
            s.counters[tid] == 3
        }
        fn step(&self, s: &DState, tid: usize) -> Step<DState> {
            let mut n = s.clone();
            n.counters[tid] += 1;
            Step::Next(n)
        }
        fn invariant(&self, _s: &DState) -> Result<(), String> {
            Ok(())
        }
        fn accept(&self, s: &DState) -> Result<(), String> {
            if s.counters == [3, 3] {
                Ok(())
            } else {
                Err(format!("bad terminal: {s:?}"))
            }
        }
    }

    #[test]
    fn atomic_counter_is_clean() {
        let stats = explore(&AtomicCounter, DEFAULT_MAX_STATES).unwrap();
        assert!(stats.states > 1 && stats.terminals >= 1);
    }

    #[test]
    fn torn_counter_race_is_found() {
        let err = explore(&TornCounter, DEFAULT_MAX_STATES).unwrap_err();
        assert!(err.contains("lost update"), "{err}");
    }

    #[test]
    fn state_cap_is_a_hard_error_with_partial_stats() {
        let err = explore(&AtomicCounter, 2).unwrap_err();
        assert!(err.contains("cap"), "{err}");
        assert!(err.contains("visited") && err.contains("frontier depth"), "{err}");
        let err = explore_dpor(&AtomicCounter, 2).unwrap_err();
        assert!(err.contains("cap"), "{err}");
        assert!(err.contains("visited") && err.contains("frontier depth"), "{err}");
    }

    #[test]
    fn dpor_matches_exhaustive_verdicts_on_the_counter_models() {
        let stats = explore_dpor(&AtomicCounter, DEFAULT_MAX_STATES).unwrap();
        assert!(stats.terminals >= 1);
        let err = explore_dpor(&TornCounter, DEFAULT_MAX_STATES).unwrap_err();
        assert!(err.contains("lost update"), "{err}");
    }

    #[test]
    fn dpor_collapses_independent_threads() {
        let full = explore(&DisjointCounters, DEFAULT_MAX_STATES).unwrap();
        let reduced = explore_dpor(&DisjointCounters, DEFAULT_MAX_STATES).unwrap();
        // Exhaustive walks the full 4x4 grid of counter values; DPOR needs
        // one maximal trace (plus sleep-set stubs), far fewer states.
        assert_eq!(full.states, 16);
        assert!(
            reduced.states < full.states / 2,
            "DPOR should collapse a fully independent model: {reduced:?} vs {full:?}"
        );
        assert_eq!(reduced.terminals, 1, "one Mazurkiewicz class, one terminal visit");
    }

    #[test]
    fn bit_iteration_order_and_bounds() {
        assert_eq!(bits(0).count(), 0);
        assert_eq!(bits(0b1011).collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(bits(1u64 << 63).collect::<Vec<_>>(), vec![63]);
    }
}
