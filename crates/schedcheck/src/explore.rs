//! Exhaustive interleaving exploration for small concurrent protocols —
//! an in-tree, zero-dependency take on loom-style model checking.
//!
//! A [`Model`] describes a handful of threads, each a deterministic program
//! whose only nondeterminism is the scheduler: in any state, any enabled
//! thread may take the next atomic step. [`explore`] enumerates *every*
//! reachable interleaving by depth-first search with visited-state
//! deduplication, checking a safety invariant in every state, detecting
//! deadlocks (no thread enabled, not all done), and validating an acceptance
//! predicate in every terminal state.
//!
//! The protocols under test ([`crate::models`]) call the *same* decision
//! functions ([`mpsim::proto`]) the deployed runtime executes, so a verdict
//! here speaks about the shipped code's protocol, not a transcription.

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;

/// Outcome of offering a step to one thread.
pub enum Step<S> {
    /// The thread cannot move in this state (parked without a token,
    /// waiting on a lock, …). Not an error: some other thread must move.
    Blocked,
    /// The thread took one atomic step, yielding a successor state.
    Next(S),
}

/// A small concurrent protocol with a finite, enumerable state space.
pub trait Model {
    /// Global protocol state: shared memory plus every thread's location.
    type State: Clone + Hash + Eq + Debug;

    /// Initial state.
    fn initial(&self) -> Self::State;

    /// Number of threads.
    fn threads(&self) -> usize;

    /// Whether thread `tid` has run to completion in `s`.
    fn is_done(&self, s: &Self::State, tid: usize) -> bool;

    /// Offer thread `tid` one atomic step from `s`. Must be deterministic:
    /// all nondeterminism belongs to the scheduler choice of `tid`.
    fn step(&self, s: &Self::State, tid: usize) -> Step<Self::State>;

    /// Safety invariant, checked in every reachable state.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// Terminal-state acceptance, checked whenever every thread is done.
    fn accept(&self, s: &Self::State) -> Result<(), String>;
}

/// Exploration statistics of a successful run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including ones leading to already-visited states).
    pub transitions: usize,
    /// Terminal states reached.
    pub terminals: usize,
}

/// Hard cap on distinct states; exceeding it is an error (the model is not
/// as finite as believed), never a silent truncation.
pub const DEFAULT_MAX_STATES: usize = 1 << 20;

/// Exhaustively explore every interleaving of `model`.
///
/// Returns statistics on success; on failure returns a description of the
/// violated property together with the offending state.
pub fn explore<M: Model>(model: &M, max_states: usize) -> Result<Stats, String> {
    let mut stats = Stats::default();
    let mut seen: HashSet<M::State> = HashSet::new();
    let mut stack: Vec<M::State> = Vec::new();

    let initial = model.initial();
    seen.insert(initial.clone());
    stack.push(initial);
    stats.states = 1;

    while let Some(state) = stack.pop() {
        model
            .invariant(&state)
            .map_err(|e| format!("invariant violated: {e}\nstate: {state:?}"))?;

        let mut any_enabled = false;
        let mut all_done = true;
        for tid in 0..model.threads() {
            if model.is_done(&state, tid) {
                continue;
            }
            all_done = false;
            match model.step(&state, tid) {
                Step::Blocked => {}
                Step::Next(next) => {
                    any_enabled = true;
                    stats.transitions += 1;
                    if seen.insert(next.clone()) {
                        stats.states += 1;
                        if stats.states > max_states {
                            return Err(format!(
                                "state-space cap exceeded ({max_states} states): model is not finite enough"
                            ));
                        }
                        stack.push(next);
                    }
                }
            }
        }

        if all_done {
            stats.terminals += 1;
            model
                .accept(&state)
                .map_err(|e| format!("terminal state rejected: {e}\nstate: {state:?}"))?;
        } else if !any_enabled {
            let blocked: Vec<usize> =
                (0..model.threads()).filter(|&t| !model.is_done(&state, t)).collect();
            return Err(format!(
                "deadlock: threads {blocked:?} blocked with no enabled step\nstate: {state:?}"
            ));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a shared counter twice each with atomic
    /// fetch-add steps: no interleaving can lose an update.
    struct AtomicCounter;

    #[derive(Clone, Hash, PartialEq, Eq, Debug)]
    struct CState {
        counter: u8,
        remaining: [u8; 2],
    }

    impl Model for AtomicCounter {
        type State = CState;
        fn initial(&self) -> CState {
            CState { counter: 0, remaining: [2, 2] }
        }
        fn threads(&self) -> usize {
            2
        }
        fn is_done(&self, s: &CState, tid: usize) -> bool {
            s.remaining[tid] == 0
        }
        fn step(&self, s: &CState, tid: usize) -> Step<CState> {
            let mut n = s.clone();
            n.counter += 1;
            n.remaining[tid] -= 1;
            Step::Next(n)
        }
        fn invariant(&self, s: &CState) -> Result<(), String> {
            if s.counter <= 4 {
                Ok(())
            } else {
                Err(format!("counter overshot: {}", s.counter))
            }
        }
        fn accept(&self, s: &CState) -> Result<(), String> {
            if s.counter == 4 {
                Ok(())
            } else {
                Err(format!("lost update: counter {}", s.counter))
            }
        }
    }

    /// A torn read-modify-write (load and store as separate steps) CAN lose
    /// an update — the explorer must find the bad terminal state.
    struct TornCounter;

    #[derive(Clone, Hash, PartialEq, Eq, Debug)]
    struct TState {
        counter: u8,
        loaded: [Option<u8>; 2],
        remaining: [u8; 2],
    }

    impl Model for TornCounter {
        type State = TState;
        fn initial(&self) -> TState {
            TState { counter: 0, loaded: [None, None], remaining: [1, 1] }
        }
        fn threads(&self) -> usize {
            2
        }
        fn is_done(&self, s: &TState, tid: usize) -> bool {
            s.remaining[tid] == 0
        }
        fn step(&self, s: &TState, tid: usize) -> Step<TState> {
            let mut n = s.clone();
            match s.loaded[tid] {
                None => n.loaded[tid] = Some(s.counter),
                Some(v) => {
                    n.counter = v + 1;
                    n.loaded[tid] = None;
                    n.remaining[tid] -= 1;
                }
            }
            Step::Next(n)
        }
        fn invariant(&self, _s: &TState) -> Result<(), String> {
            Ok(())
        }
        fn accept(&self, s: &TState) -> Result<(), String> {
            if s.counter == 2 {
                Ok(())
            } else {
                Err(format!("lost update: counter {}", s.counter))
            }
        }
    }

    #[test]
    fn atomic_counter_is_clean() {
        let stats = explore(&AtomicCounter, DEFAULT_MAX_STATES).unwrap();
        assert!(stats.states > 1 && stats.terminals >= 1);
    }

    #[test]
    fn torn_counter_race_is_found() {
        let err = explore(&TornCounter, DEFAULT_MAX_STATES).unwrap_err();
        assert!(err.contains("lost update"), "{err}");
    }

    #[test]
    fn state_cap_is_a_hard_error() {
        let err = explore(&AtomicCounter, 2).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }
}
