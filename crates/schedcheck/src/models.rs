//! Interleaving models of the runtime's sync-layer protocols.
//!
//! Each model drives the *deployed* decision functions from [`mpsim::proto`]
//! at its decision points, so exploring the model exercises the very
//! predicates compiled into the runtime:
//!
//! * [`FastMutexModel`] — the `fast-sync` spin-then-park mutex: word-sized
//!   state machine (`UNLOCKED`/`LOCKED`/`CONTENDED`), a LIFO parked-waiter
//!   registry, park/unpark with token semantics, and the post-registration
//!   recheck that closes the register/release race. Bounded spinning is
//!   elided (a spin retry revisits the same decision the model already
//!   branches on); the `skip_recheck` knob removes the recheck to prove the
//!   explorer catches the lost-wakeup deadlock the recheck exists for.
//! * [`CondvarModel`] — producer/consumer rendezvous over the fast-sync
//!   condvar protocol: register-before-release waiters, flag-based wakeup.
//! * [`MailboxModel`] — the sharded-mailbox push/notify-skip protocol:
//!   receivers count themselves in `waiters` under the slot lock before
//!   sleeping, senders consult [`mpsim::proto::push_should_notify`] to skip
//!   the wakeup syscall on uncontended pushes. The `broken_skip` knob makes
//!   the sender require *two* waiters, reintroducing the lost wakeup the
//!   under-lock counting prevents.
//!
//! The second group models the megascale event reactor (`mpsim::event_*`),
//! one model per protocol the reactor's hot path leans on:
//!
//! * [`RunQueueModel`] — the `Cell`-dedup run queue plus targeted exit
//!   wakes, driving [`mpsim::proto::wake_should_enqueue`] and
//!   [`mpsim::proto::exit_wakes_watch`]. Its `clear_after_poll` knob moves
//!   the dedup-flag clear from pop time to after the poll (losing
//!   budget-exhausted self-requeues) and `skip_exit_wake` drops the exit
//!   notification to a parked watcher; both deadlock under the explorer.
//! * [`ExternalWakerModel`] — the mutex-protected side queue `Waker`s push
//!   into, drained once per reactor idle transition. Knobs: `skip_drain`
//!   parks without consulting the side queue, `drop_drained` empties it
//!   without scheduling — both are the dropped-wake bugs the drain loop
//!   exists to prevent.
//! * [`LaneMailboxModel`] — the inline-bucket/spill routing of
//!   [`mpsim::LaneMailbox`], driving [`mpsim::event_mailbox::bucket_route`]
//!   over a scripted wild-tag workload. Proves the spill counter accounts
//!   for exactly the envelopes routed past the inline buckets and that no
//!   envelope is lost across the inline/spill boundary; knobs `drop_wild`
//!   (lose spilled envelopes) and `skip_spill_count` (mute the counter) are
//!   caught as a deadlock / rejected terminal respectively.
//! * [`TimerWheelModel`] — arm/fire/cancel over a recycled timer slab with
//!   generation-counted handles, driving
//!   [`mpsim::event_timer::handle_is_live`] and asserting
//!   [`mpsim::TimerWheel::place`]'s slot-distance precondition in every
//!   reachable state. Its `no_generation` knob matches handles on slab
//!   index alone, letting a stale cancel kill a recycled entry — the
//!   deadlock generation counting exists to prevent.

use mpsim::event_mailbox::{bucket_route, BucketRoute};
use mpsim::proto::{
    exit_wakes_watch, push_should_notify, release_needs_wake, slow_path_acquired,
    wake_should_enqueue, CONTENDED, LOCKED, UNLOCKED, WATCH_NONE,
};
use mpsim::TimerWheel;

use crate::explore::{Model, Step};

// ---------------------------------------------------------------------------
// Fast-sync mutex
// ---------------------------------------------------------------------------

/// Per-thread location in the mutex protocol.
#[derive(Clone, Copy, Hash, PartialEq, Eq, Debug)]
enum MLoc {
    /// Before a lock attempt (or between critical sections).
    Idle,
    /// In the slow path, about to `swap(CONTENDED)`.
    SlowSwap,
    /// About to push itself onto the parked registry.
    Register,
    /// Registered; about to re-`swap(CONTENDED)` (the race-closing recheck).
    Recheck,
    /// About to park: consumes a pending token or blocks.
    Park,
    /// Inside the critical section.
    Critical,
}

/// State of [`FastMutexModel`].
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
pub struct MutexState {
    /// The lock word (`UNLOCKED`/`LOCKED`/`CONTENDED`).
    word: u32,
    /// Parked-waiter registry; `unlock` pops the most recent (LIFO `Vec`).
    registry: Vec<u8>,
    /// Per-thread unpark token (set by `unpark`, consumed by `park`).
    token: Vec<bool>,
    /// Per-thread program location.
    loc: Vec<MLoc>,
    /// Critical sections left per thread.
    remaining: Vec<u8>,
}

/// Exhaustive model of the `fast-sync` mutex acquire/release protocol.
pub struct FastMutexModel {
    /// Thread count.
    pub threads: usize,
    /// Lock/unlock cycles per thread.
    pub sections: u8,
    /// Mutation: skip the post-registration recheck. The protocol then has
    /// a reachable lost-wakeup deadlock which [`crate::explore::explore`]
    /// must find (negative test).
    pub skip_recheck: bool,
    /// Model the deployed `park_timeout` instead of a bare `park`. The
    /// timeout is modeled as firing only once the system is otherwise
    /// quiesced (every other live thread parked without a token): earlier
    /// firings just re-run acquire transitions already explored from other
    /// states, and modeling them would make the registry — and hence the
    /// state space — unbounded through retry loops. With a bare `park`
    /// (`false`), three threads have a reachable lost wakeup: an unlock can
    /// pop a *stale* LIFO registry entry (left behind by a recheck-acquire)
    /// and deliver the token to a thread that already finished, stranding
    /// the genuinely parked one. The explorer found that window; this knob
    /// verifies the deployed rescue closes it.
    pub park_timeout: bool,
}

impl FastMutexModel {
    /// Whether every live thread other than `tid` is parked without a
    /// pending token — the condition under which a real `park_timeout`
    /// firing is the only source of progress.
    fn quiesced_except(&self, s: &MutexState, tid: usize) -> bool {
        (0..self.threads).all(|t| {
            t == tid
                || (s.remaining[t] == 0 && s.loc[t] == MLoc::Idle)
                || (s.loc[t] == MLoc::Park && !s.token[t])
        })
    }
}

impl Model for FastMutexModel {
    type State = MutexState;

    fn initial(&self) -> MutexState {
        MutexState {
            word: UNLOCKED,
            registry: Vec::new(),
            token: vec![false; self.threads],
            loc: vec![MLoc::Idle; self.threads],
            remaining: vec![self.sections; self.threads],
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn is_done(&self, s: &MutexState, tid: usize) -> bool {
        s.remaining[tid] == 0 && s.loc[tid] == MLoc::Idle
    }

    fn step(&self, s: &MutexState, tid: usize) -> Step<MutexState> {
        let mut n = s.clone();
        match s.loc[tid] {
            MLoc::Idle => {
                // Fast path: CAS(UNLOCKED -> LOCKED); on failure enter the
                // slow path (the bounded spin retries this same branch).
                if s.word == UNLOCKED {
                    n.word = LOCKED;
                    n.loc[tid] = MLoc::Critical;
                } else {
                    n.loc[tid] = MLoc::SlowSwap;
                }
            }
            MLoc::SlowSwap => {
                let prev = s.word;
                n.word = CONTENDED;
                n.loc[tid] = if slow_path_acquired(prev) { MLoc::Critical } else { MLoc::Register };
            }
            MLoc::Register => {
                n.registry.push(tid as u8);
                n.loc[tid] = if self.skip_recheck { MLoc::Park } else { MLoc::Recheck };
            }
            MLoc::Recheck => {
                // Same swap as SlowSwap; acquiring here leaves our stale
                // registry entry behind (the real code does too — a later
                // pop yields a spurious unpark, which park loops tolerate).
                let prev = s.word;
                n.word = CONTENDED;
                n.loc[tid] = if slow_path_acquired(prev) { MLoc::Critical } else { MLoc::Park };
            }
            MLoc::Park => {
                // park() with token semantics: a pending unpark token makes
                // park return immediately; otherwise the thread blocks here
                // until some unlock unparks it — or, in the deployed lock,
                // until park_timeout fires (rescue-only, see `park_timeout`).
                if s.token[tid] {
                    n.token[tid] = false;
                    n.loc[tid] = MLoc::SlowSwap;
                } else if self.park_timeout && self.quiesced_except(s, tid) {
                    n.loc[tid] = MLoc::SlowSwap;
                } else {
                    return Step::Blocked;
                }
            }
            MLoc::Critical => {
                // unlock(): swap(UNLOCKED), wake one parked waiter only if
                // contention was observed.
                let prev = s.word;
                n.word = UNLOCKED;
                if release_needs_wake(prev) {
                    if let Some(t) = n.registry.pop() {
                        n.token[t as usize] = true;
                    }
                }
                n.remaining[tid] -= 1;
                n.loc[tid] = MLoc::Idle;
            }
        }
        Step::Next(n)
    }

    fn invariant(&self, s: &MutexState) -> Result<(), String> {
        let holders = s.loc.iter().filter(|&&l| l == MLoc::Critical).count();
        if holders > 1 {
            return Err(format!(
                "mutual exclusion violated: {holders} threads in the critical section"
            ));
        }
        if holders == 1 && s.word == UNLOCKED {
            return Err("critical section entered while the lock word is UNLOCKED".into());
        }
        Ok(())
    }

    fn accept(&self, s: &MutexState) -> Result<(), String> {
        if s.word != UNLOCKED {
            return Err(format!("lock word {} left at termination", s.word));
        }
        // Stale registry entries are legal (recheck-acquire leaves them; the
        // matching unpark is spurious), but leftover *tokens* on undone work
        // are not possible here since all threads completed their sections.
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fast-sync condvar (producer/consumer)
// ---------------------------------------------------------------------------

/// Per-thread location in the condvar model. The first `consumers` threads
/// consume one item each; the last thread produces all items.
#[derive(Clone, Copy, Hash, PartialEq, Eq, Debug)]
enum CLoc {
    /// Acquiring the (abstract, one-step) slot mutex.
    Lock,
    /// Holding the mutex, checking the predicate.
    Check,
    /// Registered; about to release the mutex (register-before-release).
    Unlock,
    /// Waiting for its notify flag.
    WaitFlag,
    /// Producer: holding the mutex, about to increment and release.
    Produce,
    /// Producer: about to `notify_one`.
    Notify,
    /// Finished.
    Done,
}

/// State of [`CondvarModel`].
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
pub struct CondvarState {
    /// Abstract mutex: holder tid or `None` (acquire/release are single
    /// atomic steps; the mutex internals are checked by [`FastMutexModel`]).
    holder: Option<u8>,
    /// Items available (the predicate).
    items: u8,
    /// Condvar waiter registry (LIFO, like the `SpinList` `Vec::pop`).
    waiters: Vec<u8>,
    /// Per-thread notified flag.
    flag: Vec<bool>,
    /// Per-thread location.
    loc: Vec<CLoc>,
    /// Items the producer still has to produce.
    to_produce: u8,
}

/// Producer/consumer rendezvous over the fast-sync condvar protocol:
/// `consumers` threads each take one item, one producer produces that many,
/// notifying once per item.
pub struct CondvarModel {
    /// Number of consumer threads (the producer is thread `consumers`).
    pub consumers: usize,
}

impl CondvarModel {
    fn producer(&self) -> usize {
        self.consumers
    }
}

impl Model for CondvarModel {
    type State = CondvarState;

    fn initial(&self) -> CondvarState {
        let n = self.consumers + 1;
        let mut loc = vec![CLoc::Lock; n];
        loc[self.producer()] = CLoc::Lock;
        CondvarState {
            holder: None,
            items: 0,
            waiters: Vec::new(),
            flag: vec![false; n],
            loc,
            to_produce: self.consumers as u8,
        }
    }

    fn threads(&self) -> usize {
        self.consumers + 1
    }

    fn is_done(&self, s: &CondvarState, tid: usize) -> bool {
        s.loc[tid] == CLoc::Done
    }

    fn step(&self, s: &CondvarState, tid: usize) -> Step<CondvarState> {
        let mut n = s.clone();
        let producer = self.producer();
        match s.loc[tid] {
            CLoc::Lock => {
                if s.holder.is_some() {
                    return Step::Blocked;
                }
                n.holder = Some(tid as u8);
                n.loc[tid] = if tid == producer { CLoc::Produce } else { CLoc::Check };
            }
            CLoc::Check => {
                if s.items > 0 {
                    n.items -= 1;
                    n.holder = None;
                    n.loc[tid] = CLoc::Done;
                } else {
                    // wait(): register while still holding the lock…
                    n.waiters.push(tid as u8);
                    n.flag[tid] = false;
                    n.loc[tid] = CLoc::Unlock;
                }
            }
            CLoc::Unlock => {
                // …then release and sleep on the flag.
                n.holder = None;
                n.loc[tid] = CLoc::WaitFlag;
            }
            CLoc::WaitFlag => {
                if !s.flag[tid] {
                    return Step::Blocked;
                }
                n.loc[tid] = CLoc::Lock;
            }
            CLoc::Produce => {
                n.items += 1;
                n.to_produce -= 1;
                n.holder = None;
                n.loc[tid] = CLoc::Notify;
            }
            CLoc::Notify => {
                // notify_one(): pop one registered waiter, set its flag.
                if let Some(w) = n.waiters.pop() {
                    n.flag[w as usize] = true;
                }
                n.loc[tid] = if s.to_produce == 0 { CLoc::Done } else { CLoc::Lock };
            }
            CLoc::Done => unreachable!("done threads are never stepped"),
        }
        Step::Next(n)
    }

    fn invariant(&self, s: &CondvarState) -> Result<(), String> {
        if s.items as usize > self.consumers {
            return Err(format!("overproduced: {} items", s.items));
        }
        Ok(())
    }

    fn accept(&self, s: &CondvarState) -> Result<(), String> {
        if s.items != 0 {
            return Err(format!("{} items never consumed", s.items));
        }
        if s.holder.is_some() {
            return Err("mutex still held at termination".into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Mailbox push / notify-skip
// ---------------------------------------------------------------------------

/// Per-thread location in the mailbox model. Threads `0..senders` push one
/// message each; thread `senders` is the receiving rank popping `senders`
/// messages.
#[derive(Clone, Copy, Hash, PartialEq, Eq, Debug)]
enum BLoc {
    /// Acquiring the slot lock.
    Lock,
    /// Sender: holding the lock, about to push + read `waiters`.
    Push,
    /// Sender: released the lock, about to notify (wake decision made).
    MaybeNotify,
    /// Receiver: holding the lock, checking the queue.
    CheckQueue,
    /// Receiver: counted in `waiters`, registered; about to release.
    Unlock,
    /// Receiver: sleeping on its flag.
    WaitFlag,
    /// Receiver: woke up; reacquiring the lock to decrement `waiters`.
    Relock,
    /// Finished.
    Done,
}

/// State of [`MailboxModel`].
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
pub struct MailboxState {
    /// Abstract slot lock: holder tid or `None`.
    holder: Option<u8>,
    /// Queued messages in the slot.
    queue: u8,
    /// Receivers counted as blocked (the notify-skip predicate's input).
    waiters: u8,
    /// Condvar registry (receiver tids).
    registered: Vec<u8>,
    /// Per-thread notified flag.
    flag: Vec<bool>,
    /// Sender's wake decision, made under the lock, applied after release.
    wake: Vec<bool>,
    /// Per-thread location.
    loc: Vec<BLoc>,
    /// Messages the receiver still has to pop.
    to_pop: u8,
}

/// The sharded-mailbox push/notify-skip protocol: `senders` one-shot pushers
/// against one receiver popping `senders` messages from the same slot.
pub struct MailboxModel {
    /// Number of sender threads (the receiver is thread `senders`).
    pub senders: usize,
    /// Mutation: the sender skips the notify unless *two* waiters are
    /// counted — reintroducing the lost wakeup that counting `waiters`
    /// under the slot lock prevents. The explorer must find the deadlock.
    pub broken_skip: bool,
}

impl MailboxModel {
    fn receiver(&self) -> usize {
        self.senders
    }
}

impl Model for MailboxModel {
    type State = MailboxState;

    fn initial(&self) -> MailboxState {
        let n = self.senders + 1;
        MailboxState {
            holder: None,
            queue: 0,
            waiters: 0,
            registered: Vec::new(),
            flag: vec![false; n],
            wake: vec![false; n],
            loc: vec![BLoc::Lock; n],
            to_pop: self.senders as u8,
        }
    }

    fn threads(&self) -> usize {
        self.senders + 1
    }

    fn is_done(&self, s: &MailboxState, tid: usize) -> bool {
        s.loc[tid] == BLoc::Done
    }

    fn step(&self, s: &MailboxState, tid: usize) -> Step<MailboxState> {
        let mut n = s.clone();
        let receiver = self.receiver();
        match s.loc[tid] {
            BLoc::Lock => {
                if s.holder.is_some() {
                    return Step::Blocked;
                }
                n.holder = Some(tid as u8);
                n.loc[tid] = if tid == receiver { BLoc::CheckQueue } else { BLoc::Push };
            }
            BLoc::Push => {
                // push(): enqueue, then read the waiter count under the lock
                // — the decision the runtime delegates to proto::push_should_notify.
                n.queue += 1;
                n.wake[tid] = if self.broken_skip {
                    s.waiters > 1
                } else {
                    push_should_notify(s.waiters as usize)
                };
                n.holder = None;
                n.loc[tid] = BLoc::MaybeNotify;
            }
            BLoc::MaybeNotify => {
                // notify_all() after releasing the lock, only if the
                // under-lock read said someone was blocked.
                if s.wake[tid] {
                    for w in n.registered.drain(..) {
                        n.flag[w as usize] = true;
                    }
                }
                n.loc[tid] = BLoc::Done;
            }
            BLoc::CheckQueue => {
                if s.queue > 0 {
                    n.queue -= 1;
                    n.to_pop -= 1;
                    n.holder = None;
                    n.loc[tid] = if n.to_pop == 0 { BLoc::Done } else { BLoc::Lock };
                } else {
                    // pop_blocking(): count ourselves, register, and only
                    // then release — all under the slot lock.
                    n.waiters += 1;
                    n.registered.push(tid as u8);
                    n.flag[tid] = false;
                    n.loc[tid] = BLoc::Unlock;
                }
            }
            BLoc::Unlock => {
                n.holder = None;
                n.loc[tid] = BLoc::WaitFlag;
            }
            BLoc::WaitFlag => {
                if !s.flag[tid] {
                    return Step::Blocked;
                }
                n.loc[tid] = BLoc::Relock;
            }
            BLoc::Relock => {
                if s.holder.is_some() {
                    return Step::Blocked;
                }
                n.holder = Some(tid as u8);
                n.waiters -= 1;
                n.loc[tid] = BLoc::CheckQueue;
            }
            BLoc::Done => unreachable!("done threads are never stepped"),
        }
        Step::Next(n)
    }

    fn invariant(&self, s: &MailboxState) -> Result<(), String> {
        if s.queue as usize > self.senders {
            return Err(format!("queue overflow: {}", s.queue));
        }
        if s.waiters > 1 {
            return Err(format!("waiter count {} with a single receiver", s.waiters));
        }
        Ok(())
    }

    fn accept(&self, s: &MailboxState) -> Result<(), String> {
        if s.queue != 0 {
            return Err(format!("{} messages left undelivered", s.queue));
        }
        if s.waiters != 0 {
            return Err(format!("waiter count {} at termination", s.waiters));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Event reactor: run queue dedup + targeted exit wakes
// ---------------------------------------------------------------------------

/// State of [`RunQueueModel`].
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
pub struct RunQueueState {
    /// The receiver task's dedup flag ≡ run-queue membership (the queue
    /// only ever holds this one task).
    queued: bool,
    /// Delivered, unconsumed messages in the receiver's mailbox.
    msgs: u8,
    /// Messages the receiver has consumed.
    consumed: u8,
    /// The receiver's targeted-wake registration (`WATCH_NONE` or the
    /// crasher's rank).
    watching: usize,
    /// Whether the crasher rank has exited.
    crasher_exited: bool,
    /// Receiver ran to completion.
    r_done: bool,
    /// Per-sender completion.
    sender_done: Vec<bool>,
    /// Crasher thread completion.
    crasher_done: bool,
}

/// The event reactor's run-queue protocol: `senders` threads deliver one
/// message each to a single receiver task (mailbox push + dedup-flagged
/// wake), a reactor thread pops and polls it with a 1-message poll budget
/// (so a poll with backlog must self-requeue), and optionally a crasher
/// rank exits that the receiver — once its messages are in — parks a
/// targeted watch on. Wake decisions are the deployed
/// [`mpsim::proto::wake_should_enqueue`] / [`mpsim::proto::exit_wakes_watch`].
pub struct RunQueueModel {
    /// Message-delivering threads.
    pub senders: usize,
    /// Add a crasher rank the receiver must observe exiting (via a
    /// targeted watch) after consuming all messages.
    pub crasher: bool,
    /// Mutation: clear the dedup flag after the poll returns instead of at
    /// pop time. A budget-exhausted self-requeue during the poll then sees
    /// the flag still set, is deduplicated away, and the clear erases the
    /// task's last wake — the reactor idles over a non-empty mailbox.
    pub clear_after_poll: bool,
    /// Mutation: `rank_exited` skips waking watchers — a receiver parked on
    /// the crasher waits forever.
    pub skip_exit_wake: bool,
}

impl RunQueueModel {
    /// Thread id of the crasher (when enabled); doubles as its rank.
    fn crasher_tid(&self) -> usize {
        self.senders
    }
}

impl Model for RunQueueModel {
    type State = RunQueueState;

    fn initial(&self) -> RunQueueState {
        RunQueueState {
            // The reactor seeds every task into the run queue at startup.
            queued: true,
            msgs: 0,
            consumed: 0,
            watching: WATCH_NONE,
            crasher_exited: false,
            r_done: false,
            sender_done: vec![false; self.senders],
            crasher_done: !self.crasher,
        }
    }

    fn threads(&self) -> usize {
        self.senders + usize::from(self.crasher) + 1
    }

    fn is_done(&self, s: &RunQueueState, tid: usize) -> bool {
        if tid < self.senders {
            s.sender_done[tid]
        } else if self.crasher && tid == self.crasher_tid() {
            s.crasher_done
        } else {
            s.r_done
        }
    }

    fn step(&self, s: &RunQueueState, tid: usize) -> Step<RunQueueState> {
        let mut n = s.clone();
        if tid < self.senders {
            // push_envelope: mailbox push, then a dedup-flagged direct wake.
            n.msgs += 1;
            if wake_should_enqueue(s.queued) {
                n.queued = true;
            }
            n.sender_done[tid] = true;
            return Step::Next(n);
        }
        if self.crasher && tid == self.crasher_tid() {
            // rank_exited: record the exit, wake tasks watching this rank.
            n.crasher_exited = true;
            n.crasher_done = true;
            if !self.skip_exit_wake
                && exit_wakes_watch(s.watching, self.crasher_tid())
                && wake_should_enqueue(s.queued)
            {
                n.queued = true;
            }
            return Step::Next(n);
        }
        // Reactor turn: pop + poll, one atomic transition (the reactor is
        // single-threaded; wakes racing a poll come from other transitions).
        if !s.queued {
            return Step::Blocked;
        }
        n.queued = false; // deployed behavior: flag cleared at pop
        if s.msgs > 0 {
            n.msgs -= 1;
            n.consumed += 1;
        }
        if n.consumed as usize == self.senders && (!self.crasher || s.crasher_exited) {
            n.r_done = true;
        } else if n.msgs > 0 {
            // Poll budget exhausted with backlog: self-requeue through the
            // same wake path. Under the mutation the flag is still set here
            // (cleared only after the poll), so the wake deduplicates away.
            let flag_seen = self.clear_after_poll;
            if wake_should_enqueue(flag_seen) {
                n.queued = true;
            }
        } else if n.consumed as usize == self.senders && self.crasher && !s.crasher_exited {
            // All messages in; park a targeted watch on the crasher.
            n.watching = self.crasher_tid();
        }
        Step::Next(n)
    }

    fn invariant(&self, s: &RunQueueState) -> Result<(), String> {
        let pushed = s.sender_done.iter().filter(|d| **d).count();
        if s.msgs as usize + s.consumed as usize != pushed {
            return Err(format!(
                "message conservation broken: {} pending + {} consumed != {pushed} pushed",
                s.msgs, s.consumed
            ));
        }
        Ok(())
    }

    fn accept(&self, s: &RunQueueState) -> Result<(), String> {
        if s.msgs != 0 {
            return Err(format!("{} messages left undelivered", s.msgs));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Event reactor: external-waker side queue
// ---------------------------------------------------------------------------

/// State of [`ExternalWakerModel`].
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
pub struct ExternalWakerState {
    /// Entries in the mutex-protected side queue (all for the one task).
    side: u8,
    /// The task's dedup flag ≡ run-queue membership.
    queued: bool,
    /// Wake-work units published (one per waker thread).
    work: u8,
    /// Work units the task has observed.
    consumed: u8,
    /// Task ran to completion.
    r_done: bool,
    /// Per-waker completion.
    waker_done: Vec<bool>,
}

/// The reactor's external-wake protocol: `Waker`s invoked off the reactor
/// thread append to a mutexed side queue; the reactor, finding its run
/// queue empty, drains the side queue through the dedup-flagged
/// [`mpsim::proto::wake_should_enqueue`] push before it may park. The model
/// proves no wake is dropped between a drain and the idle declaration: the
/// park condition (run queue empty ∧ side queue empty) is re-evaluated
/// against every interleaved external push.
pub struct ExternalWakerModel {
    /// External waker threads, each publishing one work unit + one wake.
    pub wakes: usize,
    /// Mutation: park without consulting the side queue.
    pub skip_drain: bool,
    /// Mutation: drain the side queue but discard the entries instead of
    /// scheduling them.
    pub drop_drained: bool,
}

impl Model for ExternalWakerModel {
    type State = ExternalWakerState;

    fn initial(&self) -> ExternalWakerState {
        ExternalWakerState {
            side: 0,
            queued: true, // startup seed, as in the reactor
            work: 0,
            consumed: 0,
            r_done: false,
            waker_done: vec![false; self.wakes],
        }
    }

    fn threads(&self) -> usize {
        self.wakes + 1
    }

    fn is_done(&self, s: &ExternalWakerState, tid: usize) -> bool {
        if tid < self.wakes {
            s.waker_done[tid]
        } else {
            s.r_done
        }
    }

    fn step(&self, s: &ExternalWakerState, tid: usize) -> Step<ExternalWakerState> {
        let mut n = s.clone();
        if tid < self.wakes {
            // TaskWaker::wake — publish work, then push onto the side
            // queue (never the run queue: wakers run off-thread).
            n.work += 1;
            n.side += 1;
            n.waker_done[tid] = true;
            return Step::Next(n);
        }
        // Reactor turn.
        if s.queued {
            // Poll: consume all published work this turn.
            n.queued = false;
            n.consumed += s.work;
            n.work = 0;
            if n.consumed as usize >= self.wakes {
                n.r_done = true;
            }
            return Step::Next(n);
        }
        if s.side > 0 && !self.skip_drain {
            // drain_external: move every side entry through the dedup push.
            for _ in 0..s.side {
                if !self.drop_drained && wake_should_enqueue(n.queued) {
                    n.queued = true;
                }
            }
            n.side = 0;
            return Step::Next(n);
        }
        // Run queue empty, side queue empty (or unread, under the
        // mutations): the reactor parks. A later external push re-enables
        // the drain transition — unless the mutation never looks.
        Step::Blocked
    }

    fn invariant(&self, s: &ExternalWakerState) -> Result<(), String> {
        if s.consumed as usize > self.wakes {
            return Err(format!("consumed {} of {} wakes", s.consumed, self.wakes));
        }
        Ok(())
    }

    fn accept(&self, s: &ExternalWakerState) -> Result<(), String> {
        // Side entries may outlive the task (a wake for a completed task is
        // drained and skipped in the reactor), but work must not.
        if s.work != 0 {
            return Err(format!("{} published wakes never observed", s.work));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Event reactor: lane-mailbox inline/spill routing
// ---------------------------------------------------------------------------

/// Scripted push tags for [`LaneMailboxModel`]: four distinct tags claim
/// every inline bucket, then a repeated wild tag and a fresh one exercise
/// the spill map (payload = push index).
const LANE_PUSH_TAGS: [u32; 7] = [0, 1, 2, 3, 9, 9, 5];
/// Scripted pop order, by push index: interleaves inline and spill lookups
/// and keeps per-tag FIFO (push 4 before push 5, both tag 9).
const LANE_POP_ORDER: [usize; 7] = [4, 0, 6, 1, 5, 2, 3];
/// Pushes the script routes to the spill map (indices 4, 5, 6).
const LANE_EXPECTED_SPILLS: u8 = 3;

/// State of [`LaneMailboxModel`].
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
pub struct LaneMailboxState {
    /// Inline buckets in claim order: `(tag, queued payloads)`. Buckets
    /// fill in first-seen-tag order and never free, as in the real lane.
    inline: Vec<(u32, Vec<u8>)>,
    /// Spill map in insertion order: `(tag, queued payloads)`.
    spill: Vec<(u32, Vec<u8>)>,
    /// Envelopes routed to the spill map (the `mailbox_spills` counter).
    spills: u8,
    /// Next push script index.
    s_idx: u8,
    /// Next pop script index.
    r_idx: u8,
    /// A pop returned the wrong payload (FIFO or routing violation).
    mismatch: bool,
}

/// The [`mpsim::LaneMailbox`] inline-bucket/spill protocol: a sender pushes
/// the scripted wild-tag workload while a receiver pops it back in an
/// interleaved order, every routing decision made by the deployed
/// [`mpsim::event_mailbox::bucket_route`]. Explores all push/pop
/// interleavings and proves per-tag FIFO across the inline/spill boundary
/// plus exact spill accounting.
pub struct LaneMailboxModel {
    /// Mutation: spill-routed envelopes are dropped instead of stored — the
    /// receiver waits for them forever.
    pub drop_wild: bool,
    /// Mutation: spill-routed envelopes skip the spill counter — the
    /// terminal state under-reports and is rejected.
    pub skip_spill_count: bool,
}

impl Model for LaneMailboxModel {
    type State = LaneMailboxState;

    fn initial(&self) -> LaneMailboxState {
        LaneMailboxState {
            inline: Vec::new(),
            spill: Vec::new(),
            spills: 0,
            s_idx: 0,
            r_idx: 0,
            mismatch: false,
        }
    }

    fn threads(&self) -> usize {
        2
    }

    fn is_done(&self, s: &LaneMailboxState, tid: usize) -> bool {
        if tid == 0 {
            s.s_idx as usize == LANE_PUSH_TAGS.len()
        } else {
            s.r_idx as usize == LANE_POP_ORDER.len()
        }
    }

    fn step(&self, s: &LaneMailboxState, tid: usize) -> Step<LaneMailboxState> {
        let mut n = s.clone();
        let tags: Vec<u32> = s.inline.iter().map(|(t, _)| *t).collect();
        if tid == 0 {
            // LaneMailbox::push with the deployed routing decision.
            let tag = LANE_PUSH_TAGS[s.s_idx as usize];
            let payload = s.s_idx;
            match bucket_route(&tags, tag) {
                BucketRoute::Existing(i) => n.inline[i].1.push(payload),
                BucketRoute::NewInline => n.inline.push((tag, vec![payload])),
                BucketRoute::Spill => {
                    if !self.skip_spill_count {
                        n.spills += 1;
                    }
                    if !self.drop_wild {
                        match n.spill.iter_mut().find(|(t, _)| *t == tag) {
                            Some((_, q)) => q.push(payload),
                            None => n.spill.push((tag, vec![payload])),
                        }
                    }
                }
            }
            n.s_idx += 1;
            return Step::Next(n);
        }
        // LaneMailbox::pop, blocking until the expected envelope arrives.
        let want = LANE_POP_ORDER[s.r_idx as usize];
        let tag = LANE_PUSH_TAGS[want];
        let got = match bucket_route(&tags, tag) {
            BucketRoute::Existing(i) => {
                if n.inline[i].1.is_empty() {
                    None
                } else {
                    Some(n.inline[i].1.remove(0))
                }
            }
            // A pop routed NewInline finds nothing inline; only the spill
            // map could hold the tag — mirroring the real pop's fallthrough.
            BucketRoute::NewInline | BucketRoute::Spill => n
                .spill
                .iter_mut()
                .find(|(t, q)| *t == tag && !q.is_empty())
                .map(|(_, q)| q.remove(0)),
        };
        match got {
            None => Step::Blocked,
            Some(payload) => {
                if payload as usize != want {
                    n.mismatch = true;
                }
                n.r_idx += 1;
                Step::Next(n)
            }
        }
    }

    fn invariant(&self, s: &LaneMailboxState) -> Result<(), String> {
        if s.mismatch {
            return Err("pop returned an out-of-order or misrouted envelope".into());
        }
        if s.inline.len() > mpsim::event_mailbox::INLINE_TAGS {
            return Err(format!("{} inline buckets claimed", s.inline.len()));
        }
        Ok(())
    }

    fn accept(&self, s: &LaneMailboxState) -> Result<(), String> {
        if s.spills != LANE_EXPECTED_SPILLS {
            return Err(format!(
                "spill counter {} does not account for the {LANE_EXPECTED_SPILLS} wild envelopes",
                s.spills
            ));
        }
        if s.inline.iter().any(|(_, q)| !q.is_empty()) || s.spill.iter().any(|(_, q)| !q.is_empty())
        {
            return Err("envelopes left queued at termination".into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Event reactor: timer wheel generations
// ---------------------------------------------------------------------------

/// One slab slot in [`TimerWheelModel`]'s abstract wheel.
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
struct TimerSlot {
    gen: u32,
    armed: bool,
    deadline: u64,
    seq: u8,
    owner: u8,
}

/// Per-thread location in the timer model.
#[derive(Clone, Copy, Hash, PartialEq, Eq, Debug)]
enum TLoc {
    /// About to arm a timer.
    Arm,
    /// Waiting for the armed timer to fire.
    WaitFire,
    /// Task A only: about to cancel its (already fired, hence stale)
    /// handle — the half-polled-future-drop pattern.
    CancelStale,
    /// Finished.
    Done,
}

/// State of [`TimerWheelModel`].
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
pub struct TimerWheelState {
    /// The entry slab; freed slots are recycled lowest-index-first with a
    /// generation bump, as in the real wheel's free list.
    slots: Vec<TimerSlot>,
    /// Task A's handle `(idx, gen)` from its arm, kept past the fire.
    handle_a: Option<(u8, u32)>,
    /// Virtual clock.
    now: u64,
    /// Last popped `(deadline, seq)`, for the ordering invariant.
    last_pop: Option<(u64, u8)>,
    /// Global arming sequence.
    next_seq: u8,
    /// Per-task fired flag (the reactor's wake).
    fired: [bool; 2],
    /// Task program counters: A, B.
    loc: [TLoc; 2],
}

/// The [`mpsim::TimerWheel`] handle-generation protocol: task A arms a
/// short timer, waits for it to fire, then cancels its stale handle (as a
/// dropped receive future does); task B arms a longer timer that may
/// recycle A's freed slab slot; the reactor pops due timers in
/// `(deadline, seq)` order and advances the clock. Cancel liveness is the
/// deployed [`mpsim::event_timer::handle_is_live`], and every reachable
/// state asserts [`mpsim::TimerWheel::place`]'s slot-distance precondition
/// for each armed entry.
pub struct TimerWheelModel {
    /// A's relative deadline.
    pub delta_a: u64,
    /// B's relative deadline.
    pub delta_b: u64,
    /// Mutation: cancel matches on slab index alone (no generation check) —
    /// A's stale cancel can kill B's recycled entry, stranding B.
    pub no_generation: bool,
}

impl TimerWheelModel {
    const REACTOR: usize = 2;

    /// Arm a timer into the slab, recycling the lowest freed slot (free
    /// list order is immaterial with two tasks) with a generation bump at
    /// release time — matching `TimerWheel::release`.
    fn arm(s: &mut TimerWheelState, owner: u8, deadline: u64) -> (u8, u32) {
        let seq = s.next_seq;
        s.next_seq += 1;
        if let Some(i) = s.slots.iter().position(|e| !e.armed) {
            let e = &mut s.slots[i];
            e.armed = true;
            e.deadline = deadline;
            e.seq = seq;
            e.owner = owner;
            (i as u8, e.gen)
        } else {
            s.slots.push(TimerSlot { gen: 0, armed: true, deadline, seq, owner });
            ((s.slots.len() - 1) as u8, 0)
        }
    }
}

impl Model for TimerWheelModel {
    type State = TimerWheelState;

    fn initial(&self) -> TimerWheelState {
        TimerWheelState {
            slots: Vec::new(),
            handle_a: None,
            now: 0,
            last_pop: None,
            next_seq: 0,
            fired: [false, false],
            loc: [TLoc::Arm, TLoc::Arm],
        }
    }

    fn threads(&self) -> usize {
        3
    }

    fn is_done(&self, s: &TimerWheelState, tid: usize) -> bool {
        if tid == Self::REACTOR {
            s.loc == [TLoc::Done, TLoc::Done]
        } else {
            s.loc[tid] == TLoc::Done
        }
    }

    fn step(&self, s: &TimerWheelState, tid: usize) -> Step<TimerWheelState> {
        let mut n = s.clone();
        if tid == Self::REACTOR {
            // pop_next + clock advance + wake, one idle transition.
            let Some(best) = s
                .slots
                .iter()
                .enumerate()
                .filter(|(_, e)| e.armed)
                .min_by_key(|(_, e)| (e.deadline, e.seq))
                .map(|(i, _)| i)
            else {
                return Step::Blocked;
            };
            let (deadline, seq, owner) = {
                let e = &mut n.slots[best];
                e.armed = false;
                e.gen = e.gen.wrapping_add(1); // release: stale out handles
                (e.deadline, e.seq, e.owner)
            };
            n.last_pop = Some((deadline, seq));
            if deadline > n.now {
                n.now = deadline;
            }
            n.fired[owner as usize] = true;
            return Step::Next(n);
        }
        match s.loc[tid] {
            TLoc::Arm => {
                let delta = if tid == 0 { self.delta_a } else { self.delta_b };
                let handle = Self::arm(&mut n, tid as u8, s.now + delta);
                if tid == 0 {
                    n.handle_a = Some(handle);
                }
                n.loc[tid] = TLoc::WaitFire;
            }
            TLoc::WaitFire => {
                if !s.fired[tid] {
                    return Step::Blocked;
                }
                n.loc[tid] = if tid == 0 { TLoc::CancelStale } else { TLoc::Done };
            }
            TLoc::CancelStale => {
                // TimerWheel::cancel with the deployed liveness decision.
                // lint: allow(panic) — loc CancelStale implies A armed.
                let (idx, gen) = s.handle_a.expect("A cancels only after arming");
                let e = &mut n.slots[idx as usize];
                let live = if self.no_generation {
                    e.armed
                } else {
                    mpsim::event_timer::handle_is_live(e.gen, e.armed, gen)
                };
                if live {
                    e.armed = false;
                    e.gen = e.gen.wrapping_add(1);
                }
                n.loc[0] = TLoc::Done;
            }
            TLoc::Done => unreachable!("done threads are never stepped"),
        }
        Step::Next(n)
    }

    fn invariant(&self, s: &TimerWheelState) -> Result<(), String> {
        for e in s.slots.iter().filter(|e| e.armed) {
            if e.deadline < s.now {
                return Err(format!(
                    "clock {} passed armed deadline {} — the wheel's scan precondition",
                    s.now, e.deadline
                ));
            }
            // The deployed placement function must put the entry within 64
            // slots of the clock's digit at its level (module docs theorem).
            let (level, _slot) = TimerWheel::place(s.now, e.deadline);
            let dist = (e.deadline >> (6 * level as u32)) - (s.now >> (6 * level as u32));
            if dist >= 64 {
                return Err(format!(
                    "entry at deadline {} sits {dist} slots past the clock at level {level}",
                    e.deadline
                ));
            }
        }
        if let Some(last) = s.last_pop {
            for e in s.slots.iter().filter(|e| e.armed) {
                if (e.deadline, e.seq) < last {
                    return Err(format!(
                        "armed ({}, {}) sorts before the last pop {last:?}: out-of-order pop",
                        e.deadline, e.seq
                    ));
                }
            }
        }
        Ok(())
    }

    fn accept(&self, s: &TimerWheelState) -> Result<(), String> {
        if s.slots.iter().any(|e| e.armed) {
            return Err("armed timers left at termination".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, explore_dpor, DEFAULT_MAX_STATES};

    #[test]
    fn fast_mutex_two_threads_bare_park_exhaustive() {
        // Two threads never leave a *stale* entry above a live one in the
        // LIFO registry, so even a bare park (no timeout) is deadlock-free.
        let stats = explore(
            &FastMutexModel { threads: 2, sections: 2, skip_recheck: false, park_timeout: false },
            DEFAULT_MAX_STATES,
        )
        .unwrap();
        assert!(stats.states > 50, "suspiciously small exploration: {stats:?}");
    }

    #[test]
    fn fast_mutex_bare_park_three_threads_has_the_lost_wakeup_window() {
        // Discovered by this explorer: with three threads and a bare park,
        // an unlock can pop a stale LIFO registry entry (left behind by a
        // recheck-acquire) and hand the token to a thread that already
        // finished, stranding the genuinely parked waiter. This is the
        // precise reason sync_fast uses park_timeout rather than park.
        let err = explore(
            &FastMutexModel { threads: 3, sections: 1, skip_recheck: false, park_timeout: false },
            DEFAULT_MAX_STATES,
        )
        .unwrap_err();
        assert!(err.contains("deadlock") && err.contains("Park"), "{err}");
    }

    #[test]
    fn fast_mutex_park_timeout_three_threads_exhaustive() {
        // The deployed protocol: park_timeout rescues every lost-wakeup
        // window. Exhaustive over three threads, two sections each.
        for sections in 1..=2 {
            explore(
                &FastMutexModel { threads: 3, sections, skip_recheck: false, park_timeout: true },
                DEFAULT_MAX_STATES,
            )
            .unwrap();
        }
    }

    #[test]
    fn fast_mutex_without_recheck_loses_a_wakeup() {
        // Registration without the recheck: an unlock that raced past the
        // registration leaves the waiter parked forever. The explorer must
        // exhibit the deadlock — this is the race the recheck swap closes.
        // (Bare park: with park_timeout the recheck is a latency
        // optimization; with park it is a correctness requirement.)
        let err = explore(
            &FastMutexModel { threads: 2, sections: 1, skip_recheck: true, park_timeout: false },
            DEFAULT_MAX_STATES,
        )
        .unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }

    #[test]
    fn condvar_rendezvous_exhaustive() {
        for consumers in 1..=2 {
            explore(&CondvarModel { consumers }, DEFAULT_MAX_STATES).unwrap();
        }
    }

    #[test]
    fn mailbox_notify_skip_is_sound() {
        for senders in 1..=2 {
            explore(&MailboxModel { senders, broken_skip: false }, DEFAULT_MAX_STATES).unwrap();
        }
    }

    #[test]
    fn mailbox_broken_skip_deadlocks() {
        let err = explore(&MailboxModel { senders: 1, broken_skip: true }, DEFAULT_MAX_STATES)
            .unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }

    // -- reactor run queue --------------------------------------------------

    fn run_queue(senders: usize, crasher: bool) -> RunQueueModel {
        RunQueueModel { senders, crasher, clear_after_poll: false, skip_exit_wake: false }
    }

    #[test]
    fn run_queue_dedup_is_sound() {
        for senders in 1..=3 {
            for crasher in [false, true] {
                explore(&run_queue(senders, crasher), DEFAULT_MAX_STATES).unwrap();
                explore_dpor(&run_queue(senders, crasher), DEFAULT_MAX_STATES).unwrap();
            }
        }
    }

    #[test]
    fn run_queue_clear_after_poll_loses_the_self_requeue() {
        // Two messages land before the first poll; the poll's budget-
        // exhausted self-requeue is deduplicated against its own stale
        // flag, and the trailing clear erases the task's only wake.
        let m = RunQueueModel {
            senders: 2,
            crasher: false,
            clear_after_poll: true,
            skip_exit_wake: false,
        };
        for run in [explore(&m, DEFAULT_MAX_STATES), explore_dpor(&m, DEFAULT_MAX_STATES)] {
            let err = run.unwrap_err();
            assert!(err.contains("deadlock"), "{err}");
        }
    }

    #[test]
    fn run_queue_skip_exit_wake_strands_the_watcher() {
        // The receiver consumes its message, parks a targeted watch on the
        // crasher — and the crasher's exit never wakes it.
        let m = RunQueueModel {
            senders: 1,
            crasher: true,
            clear_after_poll: false,
            skip_exit_wake: true,
        };
        for run in [explore(&m, DEFAULT_MAX_STATES), explore_dpor(&m, DEFAULT_MAX_STATES)] {
            let err = run.unwrap_err();
            assert!(err.contains("deadlock"), "{err}");
        }
    }

    // -- external waker side queue ------------------------------------------

    #[test]
    fn external_waker_drain_is_sound() {
        for wakes in 1..=3 {
            let m = ExternalWakerModel { wakes, skip_drain: false, drop_drained: false };
            explore(&m, DEFAULT_MAX_STATES).unwrap();
            explore_dpor(&m, DEFAULT_MAX_STATES).unwrap();
        }
    }

    #[test]
    fn external_waker_mutants_drop_the_wake() {
        // Either mutation leaves the published work unobserved: the park
        // condition stops seeing (or stops honoring) the side queue.
        for (skip_drain, drop_drained) in [(true, false), (false, true)] {
            let m = ExternalWakerModel { wakes: 1, skip_drain, drop_drained };
            for run in [explore(&m, DEFAULT_MAX_STATES), explore_dpor(&m, DEFAULT_MAX_STATES)] {
                let err = run.unwrap_err();
                assert!(err.contains("deadlock"), "{err}");
            }
        }
    }

    // -- lane mailbox inline/spill -------------------------------------------

    #[test]
    fn lane_mailbox_routing_is_sound() {
        let m = LaneMailboxModel { drop_wild: false, skip_spill_count: false };
        explore(&m, DEFAULT_MAX_STATES).unwrap();
        explore_dpor(&m, DEFAULT_MAX_STATES).unwrap();
    }

    #[test]
    fn lane_mailbox_drop_wild_strands_the_receiver() {
        let m = LaneMailboxModel { drop_wild: true, skip_spill_count: false };
        for run in [explore(&m, DEFAULT_MAX_STATES), explore_dpor(&m, DEFAULT_MAX_STATES)] {
            let err = run.unwrap_err();
            assert!(err.contains("deadlock"), "{err}");
        }
    }

    #[test]
    fn lane_mailbox_skip_spill_count_rejected_at_terminal() {
        let m = LaneMailboxModel { drop_wild: false, skip_spill_count: true };
        for run in [explore(&m, DEFAULT_MAX_STATES), explore_dpor(&m, DEFAULT_MAX_STATES)] {
            let err = run.unwrap_err();
            assert!(err.contains("terminal state rejected") && err.contains("spill"), "{err}");
        }
    }

    // -- timer wheel generations ---------------------------------------------

    #[test]
    fn timer_wheel_generations_are_sound() {
        // Deadlines at different wheel levels (10 < 64 ≤ 100) so the place()
        // precondition is exercised across a level boundary.
        for (delta_a, delta_b) in [(10, 20), (10, 100), (63, 64)] {
            let m = TimerWheelModel { delta_a, delta_b, no_generation: false };
            explore(&m, DEFAULT_MAX_STATES).unwrap();
            explore_dpor(&m, DEFAULT_MAX_STATES).unwrap();
        }
    }

    #[test]
    fn timer_wheel_no_generation_fires_a_stale_handle() {
        // A's fired slot is recycled by B's arm before A's stale cancel
        // lands; without the generation check the cancel kills B's live
        // entry and B waits forever.
        let m = TimerWheelModel { delta_a: 10, delta_b: 20, no_generation: true };
        for run in [explore(&m, DEFAULT_MAX_STATES), explore_dpor(&m, DEFAULT_MAX_STATES)] {
            let err = run.unwrap_err();
            assert!(err.contains("deadlock"), "{err}");
        }
    }
}
