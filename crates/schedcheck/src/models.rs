//! Interleaving models of the runtime's sync-layer protocols.
//!
//! Each model drives the *deployed* decision functions from [`mpsim::proto`]
//! at its decision points, so exploring the model exercises the very
//! predicates compiled into the runtime:
//!
//! * [`FastMutexModel`] — the `fast-sync` spin-then-park mutex: word-sized
//!   state machine (`UNLOCKED`/`LOCKED`/`CONTENDED`), a LIFO parked-waiter
//!   registry, park/unpark with token semantics, and the post-registration
//!   recheck that closes the register/release race. Bounded spinning is
//!   elided (a spin retry revisits the same decision the model already
//!   branches on); the `skip_recheck` knob removes the recheck to prove the
//!   explorer catches the lost-wakeup deadlock the recheck exists for.
//! * [`CondvarModel`] — producer/consumer rendezvous over the fast-sync
//!   condvar protocol: register-before-release waiters, flag-based wakeup.
//! * [`MailboxModel`] — the sharded-mailbox push/notify-skip protocol:
//!   receivers count themselves in `waiters` under the slot lock before
//!   sleeping, senders consult [`mpsim::proto::push_should_notify`] to skip
//!   the wakeup syscall on uncontended pushes. The `broken_skip` knob makes
//!   the sender require *two* waiters, reintroducing the lost wakeup the
//!   under-lock counting prevents.

use mpsim::proto::{
    push_should_notify, release_needs_wake, slow_path_acquired, CONTENDED, LOCKED, UNLOCKED,
};

use crate::explore::{Model, Step};

// ---------------------------------------------------------------------------
// Fast-sync mutex
// ---------------------------------------------------------------------------

/// Per-thread location in the mutex protocol.
#[derive(Clone, Copy, Hash, PartialEq, Eq, Debug)]
enum MLoc {
    /// Before a lock attempt (or between critical sections).
    Idle,
    /// In the slow path, about to `swap(CONTENDED)`.
    SlowSwap,
    /// About to push itself onto the parked registry.
    Register,
    /// Registered; about to re-`swap(CONTENDED)` (the race-closing recheck).
    Recheck,
    /// About to park: consumes a pending token or blocks.
    Park,
    /// Inside the critical section.
    Critical,
}

/// State of [`FastMutexModel`].
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
pub struct MutexState {
    /// The lock word (`UNLOCKED`/`LOCKED`/`CONTENDED`).
    word: u32,
    /// Parked-waiter registry; `unlock` pops the most recent (LIFO `Vec`).
    registry: Vec<u8>,
    /// Per-thread unpark token (set by `unpark`, consumed by `park`).
    token: Vec<bool>,
    /// Per-thread program location.
    loc: Vec<MLoc>,
    /// Critical sections left per thread.
    remaining: Vec<u8>,
}

/// Exhaustive model of the `fast-sync` mutex acquire/release protocol.
pub struct FastMutexModel {
    /// Thread count.
    pub threads: usize,
    /// Lock/unlock cycles per thread.
    pub sections: u8,
    /// Mutation: skip the post-registration recheck. The protocol then has
    /// a reachable lost-wakeup deadlock which [`crate::explore::explore`]
    /// must find (negative test).
    pub skip_recheck: bool,
    /// Model the deployed `park_timeout` instead of a bare `park`. The
    /// timeout is modeled as firing only once the system is otherwise
    /// quiesced (every other live thread parked without a token): earlier
    /// firings just re-run acquire transitions already explored from other
    /// states, and modeling them would make the registry — and hence the
    /// state space — unbounded through retry loops. With a bare `park`
    /// (`false`), three threads have a reachable lost wakeup: an unlock can
    /// pop a *stale* LIFO registry entry (left behind by a recheck-acquire)
    /// and deliver the token to a thread that already finished, stranding
    /// the genuinely parked one. The explorer found that window; this knob
    /// verifies the deployed rescue closes it.
    pub park_timeout: bool,
}

impl FastMutexModel {
    /// Whether every live thread other than `tid` is parked without a
    /// pending token — the condition under which a real `park_timeout`
    /// firing is the only source of progress.
    fn quiesced_except(&self, s: &MutexState, tid: usize) -> bool {
        (0..self.threads).all(|t| {
            t == tid
                || (s.remaining[t] == 0 && s.loc[t] == MLoc::Idle)
                || (s.loc[t] == MLoc::Park && !s.token[t])
        })
    }
}

impl Model for FastMutexModel {
    type State = MutexState;

    fn initial(&self) -> MutexState {
        MutexState {
            word: UNLOCKED,
            registry: Vec::new(),
            token: vec![false; self.threads],
            loc: vec![MLoc::Idle; self.threads],
            remaining: vec![self.sections; self.threads],
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn is_done(&self, s: &MutexState, tid: usize) -> bool {
        s.remaining[tid] == 0 && s.loc[tid] == MLoc::Idle
    }

    fn step(&self, s: &MutexState, tid: usize) -> Step<MutexState> {
        let mut n = s.clone();
        match s.loc[tid] {
            MLoc::Idle => {
                // Fast path: CAS(UNLOCKED -> LOCKED); on failure enter the
                // slow path (the bounded spin retries this same branch).
                if s.word == UNLOCKED {
                    n.word = LOCKED;
                    n.loc[tid] = MLoc::Critical;
                } else {
                    n.loc[tid] = MLoc::SlowSwap;
                }
            }
            MLoc::SlowSwap => {
                let prev = s.word;
                n.word = CONTENDED;
                n.loc[tid] = if slow_path_acquired(prev) { MLoc::Critical } else { MLoc::Register };
            }
            MLoc::Register => {
                n.registry.push(tid as u8);
                n.loc[tid] = if self.skip_recheck { MLoc::Park } else { MLoc::Recheck };
            }
            MLoc::Recheck => {
                // Same swap as SlowSwap; acquiring here leaves our stale
                // registry entry behind (the real code does too — a later
                // pop yields a spurious unpark, which park loops tolerate).
                let prev = s.word;
                n.word = CONTENDED;
                n.loc[tid] = if slow_path_acquired(prev) { MLoc::Critical } else { MLoc::Park };
            }
            MLoc::Park => {
                // park() with token semantics: a pending unpark token makes
                // park return immediately; otherwise the thread blocks here
                // until some unlock unparks it — or, in the deployed lock,
                // until park_timeout fires (rescue-only, see `park_timeout`).
                if s.token[tid] {
                    n.token[tid] = false;
                    n.loc[tid] = MLoc::SlowSwap;
                } else if self.park_timeout && self.quiesced_except(s, tid) {
                    n.loc[tid] = MLoc::SlowSwap;
                } else {
                    return Step::Blocked;
                }
            }
            MLoc::Critical => {
                // unlock(): swap(UNLOCKED), wake one parked waiter only if
                // contention was observed.
                let prev = s.word;
                n.word = UNLOCKED;
                if release_needs_wake(prev) {
                    if let Some(t) = n.registry.pop() {
                        n.token[t as usize] = true;
                    }
                }
                n.remaining[tid] -= 1;
                n.loc[tid] = MLoc::Idle;
            }
        }
        Step::Next(n)
    }

    fn invariant(&self, s: &MutexState) -> Result<(), String> {
        let holders = s.loc.iter().filter(|&&l| l == MLoc::Critical).count();
        if holders > 1 {
            return Err(format!(
                "mutual exclusion violated: {holders} threads in the critical section"
            ));
        }
        if holders == 1 && s.word == UNLOCKED {
            return Err("critical section entered while the lock word is UNLOCKED".into());
        }
        Ok(())
    }

    fn accept(&self, s: &MutexState) -> Result<(), String> {
        if s.word != UNLOCKED {
            return Err(format!("lock word {} left at termination", s.word));
        }
        // Stale registry entries are legal (recheck-acquire leaves them; the
        // matching unpark is spurious), but leftover *tokens* on undone work
        // are not possible here since all threads completed their sections.
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fast-sync condvar (producer/consumer)
// ---------------------------------------------------------------------------

/// Per-thread location in the condvar model. The first `consumers` threads
/// consume one item each; the last thread produces all items.
#[derive(Clone, Copy, Hash, PartialEq, Eq, Debug)]
enum CLoc {
    /// Acquiring the (abstract, one-step) slot mutex.
    Lock,
    /// Holding the mutex, checking the predicate.
    Check,
    /// Registered; about to release the mutex (register-before-release).
    Unlock,
    /// Waiting for its notify flag.
    WaitFlag,
    /// Producer: holding the mutex, about to increment and release.
    Produce,
    /// Producer: about to `notify_one`.
    Notify,
    /// Finished.
    Done,
}

/// State of [`CondvarModel`].
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
pub struct CondvarState {
    /// Abstract mutex: holder tid or `None` (acquire/release are single
    /// atomic steps; the mutex internals are checked by [`FastMutexModel`]).
    holder: Option<u8>,
    /// Items available (the predicate).
    items: u8,
    /// Condvar waiter registry (LIFO, like the `SpinList` `Vec::pop`).
    waiters: Vec<u8>,
    /// Per-thread notified flag.
    flag: Vec<bool>,
    /// Per-thread location.
    loc: Vec<CLoc>,
    /// Items the producer still has to produce.
    to_produce: u8,
}

/// Producer/consumer rendezvous over the fast-sync condvar protocol:
/// `consumers` threads each take one item, one producer produces that many,
/// notifying once per item.
pub struct CondvarModel {
    /// Number of consumer threads (the producer is thread `consumers`).
    pub consumers: usize,
}

impl CondvarModel {
    fn producer(&self) -> usize {
        self.consumers
    }
}

impl Model for CondvarModel {
    type State = CondvarState;

    fn initial(&self) -> CondvarState {
        let n = self.consumers + 1;
        let mut loc = vec![CLoc::Lock; n];
        loc[self.producer()] = CLoc::Lock;
        CondvarState {
            holder: None,
            items: 0,
            waiters: Vec::new(),
            flag: vec![false; n],
            loc,
            to_produce: self.consumers as u8,
        }
    }

    fn threads(&self) -> usize {
        self.consumers + 1
    }

    fn is_done(&self, s: &CondvarState, tid: usize) -> bool {
        s.loc[tid] == CLoc::Done
    }

    fn step(&self, s: &CondvarState, tid: usize) -> Step<CondvarState> {
        let mut n = s.clone();
        let producer = self.producer();
        match s.loc[tid] {
            CLoc::Lock => {
                if s.holder.is_some() {
                    return Step::Blocked;
                }
                n.holder = Some(tid as u8);
                n.loc[tid] = if tid == producer { CLoc::Produce } else { CLoc::Check };
            }
            CLoc::Check => {
                if s.items > 0 {
                    n.items -= 1;
                    n.holder = None;
                    n.loc[tid] = CLoc::Done;
                } else {
                    // wait(): register while still holding the lock…
                    n.waiters.push(tid as u8);
                    n.flag[tid] = false;
                    n.loc[tid] = CLoc::Unlock;
                }
            }
            CLoc::Unlock => {
                // …then release and sleep on the flag.
                n.holder = None;
                n.loc[tid] = CLoc::WaitFlag;
            }
            CLoc::WaitFlag => {
                if !s.flag[tid] {
                    return Step::Blocked;
                }
                n.loc[tid] = CLoc::Lock;
            }
            CLoc::Produce => {
                n.items += 1;
                n.to_produce -= 1;
                n.holder = None;
                n.loc[tid] = CLoc::Notify;
            }
            CLoc::Notify => {
                // notify_one(): pop one registered waiter, set its flag.
                if let Some(w) = n.waiters.pop() {
                    n.flag[w as usize] = true;
                }
                n.loc[tid] = if s.to_produce == 0 { CLoc::Done } else { CLoc::Lock };
            }
            CLoc::Done => unreachable!("done threads are never stepped"),
        }
        Step::Next(n)
    }

    fn invariant(&self, s: &CondvarState) -> Result<(), String> {
        if s.items as usize > self.consumers {
            return Err(format!("overproduced: {} items", s.items));
        }
        Ok(())
    }

    fn accept(&self, s: &CondvarState) -> Result<(), String> {
        if s.items != 0 {
            return Err(format!("{} items never consumed", s.items));
        }
        if s.holder.is_some() {
            return Err("mutex still held at termination".into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Mailbox push / notify-skip
// ---------------------------------------------------------------------------

/// Per-thread location in the mailbox model. Threads `0..senders` push one
/// message each; thread `senders` is the receiving rank popping `senders`
/// messages.
#[derive(Clone, Copy, Hash, PartialEq, Eq, Debug)]
enum BLoc {
    /// Acquiring the slot lock.
    Lock,
    /// Sender: holding the lock, about to push + read `waiters`.
    Push,
    /// Sender: released the lock, about to notify (wake decision made).
    MaybeNotify,
    /// Receiver: holding the lock, checking the queue.
    CheckQueue,
    /// Receiver: counted in `waiters`, registered; about to release.
    Unlock,
    /// Receiver: sleeping on its flag.
    WaitFlag,
    /// Receiver: woke up; reacquiring the lock to decrement `waiters`.
    Relock,
    /// Finished.
    Done,
}

/// State of [`MailboxModel`].
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
pub struct MailboxState {
    /// Abstract slot lock: holder tid or `None`.
    holder: Option<u8>,
    /// Queued messages in the slot.
    queue: u8,
    /// Receivers counted as blocked (the notify-skip predicate's input).
    waiters: u8,
    /// Condvar registry (receiver tids).
    registered: Vec<u8>,
    /// Per-thread notified flag.
    flag: Vec<bool>,
    /// Sender's wake decision, made under the lock, applied after release.
    wake: Vec<bool>,
    /// Per-thread location.
    loc: Vec<BLoc>,
    /// Messages the receiver still has to pop.
    to_pop: u8,
}

/// The sharded-mailbox push/notify-skip protocol: `senders` one-shot pushers
/// against one receiver popping `senders` messages from the same slot.
pub struct MailboxModel {
    /// Number of sender threads (the receiver is thread `senders`).
    pub senders: usize,
    /// Mutation: the sender skips the notify unless *two* waiters are
    /// counted — reintroducing the lost wakeup that counting `waiters`
    /// under the slot lock prevents. The explorer must find the deadlock.
    pub broken_skip: bool,
}

impl MailboxModel {
    fn receiver(&self) -> usize {
        self.senders
    }
}

impl Model for MailboxModel {
    type State = MailboxState;

    fn initial(&self) -> MailboxState {
        let n = self.senders + 1;
        MailboxState {
            holder: None,
            queue: 0,
            waiters: 0,
            registered: Vec::new(),
            flag: vec![false; n],
            wake: vec![false; n],
            loc: vec![BLoc::Lock; n],
            to_pop: self.senders as u8,
        }
    }

    fn threads(&self) -> usize {
        self.senders + 1
    }

    fn is_done(&self, s: &MailboxState, tid: usize) -> bool {
        s.loc[tid] == BLoc::Done
    }

    fn step(&self, s: &MailboxState, tid: usize) -> Step<MailboxState> {
        let mut n = s.clone();
        let receiver = self.receiver();
        match s.loc[tid] {
            BLoc::Lock => {
                if s.holder.is_some() {
                    return Step::Blocked;
                }
                n.holder = Some(tid as u8);
                n.loc[tid] = if tid == receiver { BLoc::CheckQueue } else { BLoc::Push };
            }
            BLoc::Push => {
                // push(): enqueue, then read the waiter count under the lock
                // — the decision the runtime delegates to proto::push_should_notify.
                n.queue += 1;
                n.wake[tid] = if self.broken_skip {
                    s.waiters > 1
                } else {
                    push_should_notify(s.waiters as usize)
                };
                n.holder = None;
                n.loc[tid] = BLoc::MaybeNotify;
            }
            BLoc::MaybeNotify => {
                // notify_all() after releasing the lock, only if the
                // under-lock read said someone was blocked.
                if s.wake[tid] {
                    for w in n.registered.drain(..) {
                        n.flag[w as usize] = true;
                    }
                }
                n.loc[tid] = BLoc::Done;
            }
            BLoc::CheckQueue => {
                if s.queue > 0 {
                    n.queue -= 1;
                    n.to_pop -= 1;
                    n.holder = None;
                    n.loc[tid] = if n.to_pop == 0 { BLoc::Done } else { BLoc::Lock };
                } else {
                    // pop_blocking(): count ourselves, register, and only
                    // then release — all under the slot lock.
                    n.waiters += 1;
                    n.registered.push(tid as u8);
                    n.flag[tid] = false;
                    n.loc[tid] = BLoc::Unlock;
                }
            }
            BLoc::Unlock => {
                n.holder = None;
                n.loc[tid] = BLoc::WaitFlag;
            }
            BLoc::WaitFlag => {
                if !s.flag[tid] {
                    return Step::Blocked;
                }
                n.loc[tid] = BLoc::Relock;
            }
            BLoc::Relock => {
                if s.holder.is_some() {
                    return Step::Blocked;
                }
                n.holder = Some(tid as u8);
                n.waiters -= 1;
                n.loc[tid] = BLoc::CheckQueue;
            }
            BLoc::Done => unreachable!("done threads are never stepped"),
        }
        Step::Next(n)
    }

    fn invariant(&self, s: &MailboxState) -> Result<(), String> {
        if s.queue as usize > self.senders {
            return Err(format!("queue overflow: {}", s.queue));
        }
        if s.waiters > 1 {
            return Err(format!("waiter count {} with a single receiver", s.waiters));
        }
        Ok(())
    }

    fn accept(&self, s: &MailboxState) -> Result<(), String> {
        if s.queue != 0 {
            return Err(format!("{} messages left undelivered", s.queue));
        }
        if s.waiters != 0 {
            return Err(format!("waiter count {} at termination", s.waiters));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, DEFAULT_MAX_STATES};

    #[test]
    fn fast_mutex_two_threads_bare_park_exhaustive() {
        // Two threads never leave a *stale* entry above a live one in the
        // LIFO registry, so even a bare park (no timeout) is deadlock-free.
        let stats = explore(
            &FastMutexModel { threads: 2, sections: 2, skip_recheck: false, park_timeout: false },
            DEFAULT_MAX_STATES,
        )
        .unwrap();
        assert!(stats.states > 50, "suspiciously small exploration: {stats:?}");
    }

    #[test]
    fn fast_mutex_bare_park_three_threads_has_the_lost_wakeup_window() {
        // Discovered by this explorer: with three threads and a bare park,
        // an unlock can pop a stale LIFO registry entry (left behind by a
        // recheck-acquire) and hand the token to a thread that already
        // finished, stranding the genuinely parked waiter. This is the
        // precise reason sync_fast uses park_timeout rather than park.
        let err = explore(
            &FastMutexModel { threads: 3, sections: 1, skip_recheck: false, park_timeout: false },
            DEFAULT_MAX_STATES,
        )
        .unwrap_err();
        assert!(err.contains("deadlock") && err.contains("Park"), "{err}");
    }

    #[test]
    fn fast_mutex_park_timeout_three_threads_exhaustive() {
        // The deployed protocol: park_timeout rescues every lost-wakeup
        // window. Exhaustive over three threads, two sections each.
        for sections in 1..=2 {
            explore(
                &FastMutexModel { threads: 3, sections, skip_recheck: false, park_timeout: true },
                DEFAULT_MAX_STATES,
            )
            .unwrap();
        }
    }

    #[test]
    fn fast_mutex_without_recheck_loses_a_wakeup() {
        // Registration without the recheck: an unlock that raced past the
        // registration leaves the waiter parked forever. The explorer must
        // exhibit the deadlock — this is the race the recheck swap closes.
        // (Bare park: with park_timeout the recheck is a latency
        // optimization; with park it is a correctness requirement.)
        let err = explore(
            &FastMutexModel { threads: 2, sections: 1, skip_recheck: true, park_timeout: false },
            DEFAULT_MAX_STATES,
        )
        .unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }

    #[test]
    fn condvar_rendezvous_exhaustive() {
        for consumers in 1..=2 {
            explore(&CondvarModel { consumers }, DEFAULT_MAX_STATES).unwrap();
        }
    }

    #[test]
    fn mailbox_notify_skip_is_sound() {
        for senders in 1..=2 {
            explore(&MailboxModel { senders, broken_skip: false }, DEFAULT_MAX_STATES).unwrap();
        }
    }

    #[test]
    fn mailbox_broken_skip_deadlocks() {
        let err = explore(&MailboxModel { senders: 1, broken_skip: true }, DEFAULT_MAX_STATES)
            .unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }
}
