//! # schedcheck — static verification of communication schedules and sync protocols
//!
//! Two verifiers over the repo's collective algorithms, both fully offline:
//!
//! 1. **Schedule checking** ([`analysis`]): every collective in `bcast-core`
//!    emits its symbolic communication schedule ([`bcast_core::Schedule`])
//!    via [`bcast_core::ScheduleSource`] — per rank, per step: peer,
//!    direction, tag, byte ranges — without moving any data. An abstract
//!    executor then proves, per `(algorithm, P, nbytes, root, semantics)`
//!    instance: send/recv matching (no orphaned or duplicated operations),
//!    deadlock freedom under both *eager* and *rendezvous* send semantics,
//!    buffer coverage (every required byte written), and traffic totals that
//!    reconcile with the closed-form models in `bcast_core::traffic` and
//!    with instrumented runtime counters. Redundant transfers — writes to
//!    already-valid bytes, the very quantity the paper's tuned ring
//!    eliminates — are *counted*, so the saving is checked as a theorem
//!    rather than observed in a benchmark.
//! 2. **Interleaving exploration** ([`explore`], [`models`]): a
//!    zero-dependency loom-style model checker with two engines over the
//!    same [`Model`] trait — an exhaustive explorer and a sleep-set DPOR
//!    explorer ([`explore_dpor`]) with state hashing, kept honest against
//!    each other by a differential test suite (identical verdicts, DPOR
//!    never more states). Seven protocol models: the `fast-sync`
//!    mutex/condvar, the sharded-mailbox notify-skip predicate, and the
//!    four megascale-reactor protocols (run-queue dedup + targeted exit
//!    wakes, external-waker side queue, lane-mailbox inline/spill routing,
//!    timer-wheel handle generations). Every model calls the deployed
//!    decision functions — [`mpsim::proto`],
//!    [`mpsim::event_mailbox::bucket_route`],
//!    [`mpsim::event_timer::handle_is_live`],
//!    [`mpsim::TimerWheel::place`] — and mutation knobs (clear the dedup
//!    flag after the poll, skip the exit wake, skip the side-queue drain,
//!    drop wild-tag envelopes, cancel without the generation check) prove
//!    both explorers find the lost-wakeup and stale-handle bugs those code
//!    paths exist to prevent.
//!
//! A third verifier is *dynamic*: [`chaos`] is a coverage-guided
//! adversarial search over fault plans for the self-healing broadcast.
//! Candidate plans (fail-stop ranks with operation-count crash clocks,
//! plus drop/duplicate/delay link rates) execute for real on
//! [`mpsim::EventWorld`]'s virtual clock through [`netsim::FaultyComm`],
//! are judged by the recovery invariant oracle in `bcast_core`, and are
//! bred by signature novelty (recovery branch bits, epoch depth,
//! succession depth). Violations shrink to minimal reproducers through
//! `testkit`'s greedy shrinker and replay from the printed seed; the
//! `chaos-search` binary budgets the search as its own CI phase, and its
//! `--drill` mode proves the harness catches all three seeded recovery
//! regressions ([`bcast_core::RecoveryDrill`]).
//!
//! [`mutate`] provides schedule-mutation helpers used by negative tests to
//! prove the analyses reject corrupted schedules with actionable, rank/step
//! diagnostics. [`lint`] hosts the repo-convention lint rules behind the
//! `repolint` binary.
//!
//! The `schedcheck` binary sweeps P ∈ {2..32} × every registered algorithm ×
//! both semantics in CI — including the degraded broadcast schedules that
//! `bcast_core::recovery` re-derives over survivor subsets after a crash —
//! and its `explore-reactor` subcommand runs every protocol model under
//! both explorers plus the seeded mutation drill as its own CI phase;
//! `repolint` enforces source-level conventions (no raw `std::sync`
//! primitives outside the sync layer, no `.unwrap()`/`.expect()` in library
//! code, `// SAFETY:` on every `unsafe`, no `let _ =` on the `Result` of a
//! communication call, no per-chunk `comm.send(` loops in the broadcast hot
//! path now that the vectored fabric coalesces them, no wall-clock reads or
//! `HashMap`s inside the event executor, no cancel-unsafe shapes —
//! unregistered `Poll::Pending`, borrows across suspension points, send
//! effects inside `poll` — in the async communication layer, and no
//! `.unwrap()`/`.expect()` on communication results inside the
//! self-healing recovery modules, where a `CommError` is the input the
//! layer exists to absorb).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod chaos;
pub mod explore;
pub mod lint;
pub mod models;
pub mod mutate;

pub use analysis::{
    check, copy_ceiling_per_rank, reconcile_traffic, Reconciliation, Report, Semantics,
};
pub use explore::{explore, explore_dpor, Model, Stats, Step, DEFAULT_MAX_STATES};
