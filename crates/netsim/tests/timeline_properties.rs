//! Property-based tests of the reservation [`netsim::Timeline`] — the
//! component the simulator's determinism story rests on.

use netsim::Timeline;
use proptest::prelude::*;

/// Replay a claim sequence and return each claim's granted start.
fn replay(claims: &[(f64, f64)]) -> (Vec<f64>, Timeline) {
    let mut t = Timeline::new();
    let starts = claims.iter().map(|&(ready, dur)| t.claim(ready, dur)).collect();
    (starts, t)
}

fn claim_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec(
        (0.0f64..10_000.0, 0.0f64..500.0).prop_map(|(r, d)| (r, d)),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A claim never starts before its ready time.
    #[test]
    fn claims_respect_ready_time(claims in claim_strategy()) {
        let (starts, _) = replay(&claims);
        for ((ready, _), start) in claims.iter().zip(&starts) {
            prop_assert!(start + 1e-9 >= *ready, "start {start} before ready {ready}");
        }
    }

    /// Granted intervals are pairwise disjoint (no double-booking).
    #[test]
    fn granted_intervals_never_overlap(claims in claim_strategy()) {
        let (starts, _) = replay(&claims);
        let mut intervals: Vec<(f64, f64)> = claims
            .iter()
            .zip(&starts)
            .filter(|((_, d), _)| *d > 0.0)
            .map(|((_, d), s)| (*s, *s + *d))
            .collect();
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in intervals.windows(2) {
            prop_assert!(
                w[0].1 <= w[1].0 + 1e-9,
                "overlap: {:?} then {:?}", w[0], w[1]
            );
        }
    }

    /// Zero-duration claims are granted at their ready time and book nothing.
    #[test]
    fn zero_duration_claims_are_free(ready in 0.0f64..1000.0) {
        let mut t = Timeline::new();
        t.book(0.0, 2000.0);
        prop_assert_eq!(t.next_fit(ready, 0.0), ready);
        let frags = t.fragments();
        t.book(ready, 0.0);
        prop_assert_eq!(t.fragments(), frags);
    }

    /// Work conservation: total granted busy time equals total requested
    /// duration, and the last interval ends no later than the serial sum
    /// past the latest ready time (no artificial idling).
    #[test]
    fn no_artificial_idling(claims in claim_strategy()) {
        let (starts, _) = replay(&claims);
        let total: f64 = claims.iter().map(|&(_, d)| d).sum();
        let max_ready = claims.iter().map(|&(r, _)| r).fold(0.0, f64::max);
        for ((_, d), s) in claims.iter().zip(&starts) {
            prop_assert!(
                s + d <= max_ready + total + 1e-6,
                "grant ends at {} beyond conservative bound {}",
                s + d,
                max_ready + total
            );
        }
    }

    /// Order insensitivity for claims whose granted windows do not contend:
    /// claims at well-separated ready times get identical grants regardless
    /// of submission order.
    #[test]
    fn disjoint_claims_are_order_insensitive(
        seeds in proptest::collection::vec((0u32..1000, 1.0f64..9.0), 1..20),
    ) {
        // space ready times at least 10 apart with durations < 10
        let claims: Vec<(f64, f64)> =
            seeds.iter().map(|&(slot, d)| (slot as f64 * 10.0, d)).collect();
        let mut dedup = claims.clone();
        dedup.sort_by(|a, b| a.0.total_cmp(&b.0));
        dedup.dedup_by(|a, b| a.0 == b.0);
        let (starts_sorted, _) = replay(&dedup);
        let mut rev = dedup.clone();
        rev.reverse();
        let (starts_rev, _) = replay(&rev);
        let mut rev_back = starts_rev;
        rev_back.reverse();
        prop_assert_eq!(starts_sorted, rev_back);
    }

    /// Prune never changes future grants.
    #[test]
    fn prune_preserves_future_behaviour(
        claims in claim_strategy(),
        horizon in 0.0f64..5000.0,
        probe in 5000.0f64..20_000.0,
    ) {
        let (_, mut a) = replay(&claims);
        let b_fit_before = a.next_fit(probe, 100.0);
        a.prune_before(horizon.min(probe));
        prop_assert_eq!(a.next_fit(probe, 100.0), b_fit_before);
    }
}
