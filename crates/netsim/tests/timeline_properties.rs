//! Property-based tests of the reservation [`netsim::Timeline`] — the
//! component the simulator's determinism story rests on. Randomized by the
//! in-tree `testkit` harness.

use netsim::Timeline;
use testkit::prop::{self, Config, Strategy};
use testkit::Xoshiro256StarStar;

/// Replay a claim sequence and return each claim's granted start.
fn replay(claims: &[(f64, f64)]) -> (Vec<f64>, Timeline) {
    let mut t = Timeline::new();
    let starts = claims.iter().map(|&(ready, dur)| t.claim(ready, dur)).collect();
    (starts, t)
}

fn claim_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::vec_of((prop::f64_range(0.0..10_000.0), prop::f64_range(0.0..500.0)), 0..60)
}

/// A claim never starts before its ready time.
#[test]
fn claims_respect_ready_time() {
    prop::check(
        "claims_respect_ready_time",
        Config::cases(128),
        &claim_strategy(),
        |claims: &Vec<(f64, f64)>| {
            let (starts, _) = replay(claims);
            for ((ready, _), start) in claims.iter().zip(&starts) {
                if start + 1e-9 < *ready {
                    return Err(format!("start {start} before ready {ready}"));
                }
            }
            Ok(())
        },
    );
}

/// Granted intervals are pairwise disjoint (no double-booking).
#[test]
fn granted_intervals_never_overlap() {
    prop::check(
        "granted_intervals_never_overlap",
        Config::cases(128),
        &claim_strategy(),
        |claims: &Vec<(f64, f64)>| {
            let (starts, _) = replay(claims);
            let mut intervals: Vec<(f64, f64)> = claims
                .iter()
                .zip(&starts)
                .filter(|((_, d), _)| *d > 0.0)
                .map(|((_, d), s)| (*s, *s + *d))
                .collect();
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                if w[0].1 > w[1].0 + 1e-9 {
                    return Err(format!("overlap: {:?} then {:?}", w[0], w[1]));
                }
            }
            Ok(())
        },
    );
}

/// Zero-duration claims are granted at their ready time and book nothing.
#[test]
fn zero_duration_claims_are_free() {
    prop::check(
        "zero_duration_claims_are_free",
        Config::cases(128),
        &prop::f64_range(0.0..1000.0),
        |&ready| {
            let mut t = Timeline::new();
            t.book(0.0, 2000.0);
            if t.next_fit(ready, 0.0) != ready {
                return Err(format!("zero-duration claim displaced from {ready}"));
            }
            let frags = t.fragments();
            t.book(ready, 0.0);
            if t.fragments() != frags {
                return Err("zero-duration booking changed the timeline".into());
            }
            Ok(())
        },
    );
}

/// Work conservation: total granted busy time equals total requested
/// duration, and the last interval ends no later than the serial sum
/// past the latest ready time (no artificial idling).
#[test]
fn no_artificial_idling() {
    prop::check(
        "no_artificial_idling",
        Config::cases(128),
        &claim_strategy(),
        |claims: &Vec<(f64, f64)>| {
            let (starts, _) = replay(claims);
            let total: f64 = claims.iter().map(|&(_, d)| d).sum();
            let max_ready = claims.iter().map(|&(r, _)| r).fold(0.0, f64::max);
            for ((_, d), s) in claims.iter().zip(&starts) {
                if s + d > max_ready + total + 1e-6 {
                    return Err(format!(
                        "grant ends at {} beyond conservative bound {}",
                        s + d,
                        max_ready + total
                    ));
                }
            }
            Ok(())
        },
    );
}

/// Order insensitivity for claims whose granted windows do not contend:
/// claims at well-separated ready times get identical grants regardless
/// of submission order.
#[test]
fn disjoint_claims_are_order_insensitive() {
    prop::check(
        "disjoint_claims_are_order_insensitive",
        Config::cases(128),
        &prop::vec_of((prop::u32_range(0..1000), prop::f64_range(1.0..9.0)), 1..20),
        |seeds: &Vec<(u32, f64)>| {
            // space ready times at least 10 apart with durations < 10
            let claims: Vec<(f64, f64)> =
                seeds.iter().map(|&(slot, d)| (slot as f64 * 10.0, d)).collect();
            let mut dedup = claims.clone();
            dedup.sort_by(|a, b| a.0.total_cmp(&b.0));
            dedup.dedup_by(|a, b| a.0 == b.0);
            let (starts_sorted, _) = replay(&dedup);
            let mut rev = dedup.clone();
            rev.reverse();
            let (starts_rev, _) = replay(&rev);
            let mut rev_back = starts_rev;
            rev_back.reverse();
            if starts_sorted != rev_back {
                return Err("grants depend on submission order".into());
            }
            Ok(())
        },
    );
}

/// Prune never changes future grants.
#[test]
fn prune_preserves_future_behaviour() {
    prop::check(
        "prune_preserves_future_behaviour",
        Config::cases(128),
        &(claim_strategy(), prop::f64_range(0.0..5000.0), prop::f64_range(5000.0..20_000.0)),
        |(claims, horizon, probe): &(Vec<(f64, f64)>, f64, f64)| {
            let (_, mut a) = replay(claims);
            let fit_before = a.next_fit(*probe, 100.0);
            a.prune_before(horizon.min(*probe));
            if a.next_fit(*probe, 100.0) != fit_before {
                return Err("prune changed a future grant".into());
            }
            Ok(())
        },
    );
}

/// The testkit strategies driving these tests are themselves deterministic
/// per seed (the replay contract the whole suite relies on).
#[test]
fn claim_strategy_is_deterministic_per_seed() {
    let s = claim_strategy();
    let a = s.generate(&mut Xoshiro256StarStar::new(0xDEAD));
    let b = s.generate(&mut Xoshiro256StarStar::new(0xDEAD));
    assert_eq!(a, b);
}
