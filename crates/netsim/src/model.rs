//! The network cost model: Hockney (α–β) parameters per communication level,
//! eager/rendezvous protocol selection, and optional resource contention.
//!
//! A point-to-point transfer of `s` bytes costs `α + s·β` on an idle path,
//! with `(α, β)` depending on whether the endpoints share a node. On top of
//! that the simulator models the two scarcity mechanisms the paper's
//! Section IV argues the tuned algorithm relieves:
//!
//! * **inter-node**: each node's NIC injects (and ejects) one message at a
//!   time — concurrent senders on a node queue behind each other
//!   ("the growing number of outgoing inter-node messages will increase the
//!   burden of network routing");
//! * **intra-node**: point-to-point within a node is a memory copy through a
//!   shared memory system — and an *eager* receive pays a second copy out of
//!   the early-arrival buffer ("cpu-interference and buffer memory
//!   allocation").

use crate::topology::Level;

/// α–β cost pair for one communication level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelCosts {
    /// Per-message latency in nanoseconds.
    pub alpha_ns: f64,
    /// Per-byte serialization time in nanoseconds (1/bandwidth).
    pub beta_ns_per_byte: f64,
}

impl LevelCosts {
    /// Idle-path Hockney cost of an `s`-byte message.
    pub fn hockney_ns(&self, bytes: usize) -> f64 {
        self.alpha_ns + bytes as f64 * self.beta_ns_per_byte
    }

    /// Serialization-only duration (`s·β`).
    pub fn serialize_ns(&self, bytes: usize) -> f64 {
        bytes as f64 * self.beta_ns_per_byte
    }
}

/// Complete model configuration for a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Intra-node (shared-memory) costs.
    pub intra: LevelCosts,
    /// Inter-node (interconnect) costs.
    pub inter: LevelCosts,
    /// Messages with payloads *strictly below* this many bytes use the eager
    /// protocol; the rest rendezvous. (Cray MPI on Aries defaults to 8 KiB.)
    pub eager_threshold: usize,
    /// Extra latency a rendezvous handshake adds before data can flow.
    pub rendezvous_handshake_ns: f64,
    /// Model the second copy an eager receive performs out of the
    /// early-arrival buffer (always intra-level β at the receiver).
    pub eager_unpack_copy: bool,
    /// Serialize concurrent transfers through per-node NIC (inter) and
    /// memory-channel (intra) resources. Disabling gives the pure,
    /// contention-free Hockney model (useful for closed-form validation).
    pub contention: bool,
    /// Effective concurrency of a node's memory system: `k` concurrent
    /// copies each see the per-stream β, while the *shared* channel is only
    /// occupied for `s·β/k` per copy (aggregate bandwidth = k × per-stream).
    /// A NIC, by contrast, truly serializes (`k = 1` behaviour). Must be ≥ 1.
    pub mem_channels: f64,
    /// Latency charged per dissemination round of a barrier.
    pub barrier_alpha_ns: f64,
    /// CPU overhead a rank pays to issue a send (LogGP's *o*): serial on the
    /// rank's own timeline, independent of message size. This is the "host
    /// processing" cost the paper's Section IV argues the tuned algorithm
    /// alleviates by issuing fewer messages.
    pub o_send_ns: f64,
    /// CPU overhead a rank pays to complete a receive (LogGP's *o*).
    pub o_recv_ns: f64,
    /// Optional shared-backbone serialization for inter-node traffic: every
    /// inter-node message also occupies a single cluster-wide channel for
    /// `bytes × backbone_beta_ns_per_byte`. `0.0` disables it (the default
    /// presets: a Dragonfly's global bandwidth far exceeds a few nodes'
    /// injection rates). Enable it in ablations to study fabrics whose
    /// bisection, not the NICs, is the scarce resource.
    pub backbone_beta_ns_per_byte: f64,
    /// Flow-control credits per directed `(source, destination)` channel:
    /// at most this many eager messages may sit unmatched at the receiver;
    /// further eager sends stall until a receive consumes one (mirroring
    /// MPICH/GNI mailbox credits). Prevents an unthrottled sender from
    /// racing arbitrarily far ahead of its consumers.
    pub eager_credits: usize,
}

/// Protocol chosen for a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Fire-and-forget: sender completes after injecting; data waits in the
    /// receiver's early-arrival buffer.
    Eager,
    /// Handshake first: data moves only once both sides have arrived;
    /// single-copy delivery.
    Rendezvous,
}

impl NetworkModel {
    /// Costs for a level.
    pub fn costs(&self, level: Level) -> LevelCosts {
        match level {
            Level::IntraNode => self.intra,
            Level::InterNode => self.inter,
        }
    }

    /// Protocol for a payload size.
    pub fn protocol(&self, bytes: usize) -> Protocol {
        if bytes < self.eager_threshold {
            Protocol::Eager
        } else {
            Protocol::Rendezvous
        }
    }

    /// A contention-free baseline with identical costs on both levels —
    /// handy for unit tests that want closed-form predictable times.
    pub fn uniform(alpha_ns: f64, beta_ns_per_byte: f64) -> Self {
        let c = LevelCosts { alpha_ns, beta_ns_per_byte };
        NetworkModel {
            intra: c,
            inter: c,
            eager_threshold: 0, // everything rendezvous: fully synchronous
            rendezvous_handshake_ns: 0.0,
            eager_unpack_copy: false,
            contention: false,
            mem_channels: 1.0,
            barrier_alpha_ns: alpha_ns,
            o_send_ns: 0.0,
            o_recv_ns: 0.0,
            eager_credits: usize::MAX,
            backbone_beta_ns_per_byte: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hockney_arithmetic() {
        let c = LevelCosts { alpha_ns: 1000.0, beta_ns_per_byte: 0.5 };
        assert_eq!(c.hockney_ns(0), 1000.0);
        assert_eq!(c.hockney_ns(2000), 2000.0);
        assert_eq!(c.serialize_ns(10), 5.0);
    }

    #[test]
    fn protocol_threshold() {
        let mut m = NetworkModel::uniform(100.0, 1.0);
        m.eager_threshold = 8192;
        assert_eq!(m.protocol(0), Protocol::Eager);
        assert_eq!(m.protocol(8191), Protocol::Eager);
        assert_eq!(m.protocol(8192), Protocol::Rendezvous);
    }

    #[test]
    fn uniform_model_is_symmetric() {
        let m = NetworkModel::uniform(10.0, 2.0);
        assert_eq!(m.costs(Level::IntraNode), m.costs(Level::InterNode));
        assert_eq!(m.protocol(1), Protocol::Rendezvous); // threshold 0
    }
}
