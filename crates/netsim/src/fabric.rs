//! The virtual-time matching engine.
//!
//! Every simulated rank runs on its own OS thread and carries a *virtual
//! clock*. Point-to-point operations post **offers** into the fabric; when a
//! send offer meets its matching receive offer, the fabric computes the
//! transfer's completion times from the [`NetworkModel`] and the per-node
//! resource timelines, advances the involved clocks, and wakes the blocked
//! threads. Blocking MPI semantics make each rank's timeline a chain of such
//! rendezvous, so no global event queue is needed.
//!
//! Matching is exact on `(source, destination, tag)` with FIFO order per
//! triple (MPI's non-overtaking rule), identical to the threaded backend.
//!
//! ## Determinism
//!
//! Shared resources (NIC ports, memory channels) are booked with
//! earliest-gap reservations ([`crate::resources::Timeline`]), so the
//! computed schedule does not depend on the wall-clock order in which OS
//! threads commit their matches, except when two transfers request the same
//! gap at the same virtual time — where either serialization order is
//! physically plausible and the makespan difference is bounded by one
//! transfer. Without contention the simulation is exactly deterministic.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use mpsim::pool::{BufferPool, Payload, PoolStats, PooledBuf};
use mpsim::sync::{Condvar, Mutex};

use mpsim::{CommError, Rank, Result, Tag};

use crate::events::TransferEvent;
use crate::model::{NetworkModel, Protocol};
use crate::resources::Timeline;
use crate::topology::{Level, Placement};

/// Virtual time in nanoseconds.
pub type SimTime = f64;

/// A one-shot completion slot with its own wakeup channel.
struct Cell<T> {
    state: Mutex<Option<Result<T>>>,
    cv: Condvar,
}

impl<T> Cell<T> {
    fn new() -> Arc<Self> {
        Arc::new(Cell { state: Mutex::new(None), cv: Condvar::new() })
    }

    fn fill(&self, value: Result<T>) {
        let mut st = self.state.lock();
        debug_assert!(st.is_none(), "completion cell filled twice");
        *st = Some(value);
        self.cv.notify_all();
    }

    /// Fill only if still empty (used by teardown racing a normal fill).
    fn fill_if_empty(&self, value: Result<T>) {
        let mut st = self.state.lock();
        if st.is_none() {
            *st = Some(value);
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Result<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(v) = st.take() {
                return v;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Wait until the cell fills or `deadline` (wall clock) passes; `None`
    /// means the deadline expired with the cell still empty.
    fn wait_deadline(&self, deadline: std::time::Instant) -> Option<Result<T>> {
        let mut st = self.state.lock();
        loop {
            if let Some(v) = st.take() {
                return Some(v);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.cv.wait_timeout(&mut st, deadline - now);
        }
    }
}

/// Handle a rank waits on for a posted send; yields the sender's new virtual time.
pub struct SendHandle {
    cell: Arc<Cell<SimTime>>,
}

/// Handle a rank waits on for a posted receive; yields payload + new virtual time.
pub struct RecvHandle {
    cell: Arc<Cell<(Payload, SimTime)>>,
}

struct SendOffer {
    data: Payload,
    sender_vtime: SimTime,
    /// For eager sends: when the last byte reaches the destination side of
    /// the wire (the receive side still claims ejection/unpack resources).
    eager_wire_arrival: Option<SimTime>,
    done: Arc<Cell<SimTime>>,
}

struct RecvOffer {
    capacity: usize,
    receiver_vtime: SimTime,
    done: Arc<Cell<(Payload, SimTime)>>,
}

#[derive(Default)]
struct Queues {
    sends: VecDeque<SendOffer>,
    recvs: VecDeque<RecvOffer>,
}

/// An eager send stalled on flow-control credits, not yet injected.
struct DeferredSend {
    tag: Tag,
    data: Payload,
    ready: SimTime,
    done: Arc<Cell<SimTime>>,
}

struct State {
    chan: HashMap<(Rank, Rank, Tag), Queues>,
    /// Per-node NIC injection timeline (inter-node sends).
    nic_tx: Vec<Timeline>,
    /// Per-node NIC ejection timeline (inter-node receives).
    nic_rx: Vec<Timeline>,
    /// Per-node memory-channel timeline (intra-node copies).
    mem: Vec<Timeline>,
    /// Cluster-wide backbone timeline (inter-node, when the model enables it).
    backbone: Timeline,
    /// Injected-but-unmatched eager messages per directed channel.
    outstanding: HashMap<(Rank, Rank), usize>,
    /// Eager sends stalled on credits, FIFO per directed channel.
    deferred: HashMap<(Rank, Rank), VecDeque<DeferredSend>>,
    /// Ranks whose closures have returned: they will never post again.
    /// Operations that can only complete with their participation fail with
    /// [`CommError::PeerFailed`] instead of blocking forever.
    done: Vec<bool>,
    stopped: bool,
}

/// The shared matching engine for one simulated world.
pub struct Fabric {
    model: NetworkModel,
    placement: Placement,
    state: Mutex<State>,
    /// Payload buffers for in-flight messages, recycled on delivery.
    pool: Arc<BufferPool>,
    /// Optional per-transfer event log (see [`crate::events`]).
    trace: Option<Mutex<Vec<TransferEvent>>>,
}

impl Fabric {
    /// Build a fabric for `size` ranks under `placement` and `model`.
    pub fn new(model: NetworkModel, placement: Placement, size: usize) -> Self {
        Self::with_trace(model, placement, size, false)
    }

    /// Like [`new`](Self::new), optionally recording every transfer.
    pub fn with_trace(
        model: NetworkModel,
        placement: Placement,
        size: usize,
        traced: bool,
    ) -> Self {
        assert!(model.mem_channels >= 1.0, "mem_channels must be >= 1");
        let nodes = placement.node_count(size.max(1));
        Fabric {
            model,
            placement,
            pool: BufferPool::new(),
            trace: traced.then(|| Mutex::new(Vec::new())),
            state: Mutex::new(State {
                chan: HashMap::new(),
                nic_tx: vec![Timeline::new(); nodes],
                nic_rx: vec![Timeline::new(); nodes],
                mem: vec![Timeline::new(); nodes],
                backbone: Timeline::new(),
                outstanding: HashMap::new(),
                deferred: HashMap::new(),
                done: vec![false; size],
                stopped: false,
            }),
        }
    }

    /// The model this fabric simulates.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// Drain the recorded transfer events (empty when tracing is off).
    pub fn take_trace(&self) -> Vec<TransferEvent> {
        self.trace.as_ref().map_or_else(Vec::new, |t| std::mem::take(&mut t.lock()))
    }

    /// The placement this fabric simulates.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Snapshot of the fabric's payload-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Fail all pending and future operations (world teardown).
    pub fn stop(&self) {
        let mut st = self.state.lock();
        st.stopped = true;
        for q in st.chan.values_mut() {
            for s in q.sends.drain(..) {
                s.done.fill_if_empty(Err(CommError::WorldStopped));
            }
            for r in q.recvs.drain(..) {
                r.done.fill_if_empty(Err(CommError::WorldStopped));
            }
        }
        for q in st.deferred.values_mut() {
            for d in q.drain(..) {
                d.done.fill_if_empty(Err(CommError::WorldStopped));
            }
        }
    }

    /// Post a send of `data` from `src` (at virtual time `now`) to `dst`.
    pub fn post_send(
        &self,
        src: Rank,
        dst: Rank,
        tag: Tag,
        data: &[u8],
        now: SimTime,
    ) -> Result<SendHandle> {
        self.post_send_buf(src, dst, tag, self.pool.rent_copy(data).into(), now)
    }

    /// Assemble a multi-segment payload into one pooled envelope, gathered
    /// straight from the caller's segments (the vectored-send front half of
    /// [`post_send_buf`](Self::post_send_buf)).
    pub fn gather_payload<'a, I>(&self, total: usize, parts: I) -> PooledBuf
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        self.pool.rent_gather(total, parts)
    }

    /// Post a send whose payload envelope the caller already assembled
    /// (via [`gather_payload`](Self::gather_payload), any [`PooledBuf`],
    /// or a refcount clone of a shared envelope) — the vectored and
    /// zero-copy paths' single-envelope injection.
    pub fn post_send_buf(
        &self,
        src: Rank,
        dst: Rank,
        tag: Tag,
        payload: Payload,
        now: SimTime,
    ) -> Result<SendHandle> {
        let cell = Cell::new();
        let mut st = self.state.lock();
        if st.stopped {
            return Err(CommError::WorldStopped);
        }
        if dst != src && st.done[dst] {
            // The receiver is gone for good: no one will ever consume this
            // message, so fail fast instead of blocking a rendezvous forever.
            return Err(CommError::PeerFailed { rank: dst });
        }

        let offer = if self.model.protocol(payload.len()) == Protocol::Eager {
            // Flow control: stall behind earlier deferred sends (to preserve
            // non-overtaking order) or when the channel's credits are spent.
            let key = (src, dst);
            let blocked = st.deferred.get(&key).is_some_and(|q| !q.is_empty())
                || st.outstanding.get(&key).copied().unwrap_or(0) >= self.model.eager_credits;
            if blocked {
                st.deferred.entry(key).or_default().push_back(DeferredSend {
                    tag,
                    data: payload,
                    ready: now,
                    done: Arc::clone(&cell),
                });
                return Ok(SendHandle { cell });
            }
            *st.outstanding.entry(key).or_default() += 1;
            Self::inject_eager(
                &self.model,
                self.placement,
                &mut st,
                src,
                dst,
                payload,
                now,
                Arc::clone(&cell),
            )
        } else {
            SendOffer {
                data: payload,
                sender_vtime: now,
                eager_wire_arrival: None,
                done: Arc::clone(&cell),
            }
        };

        let matched = st.chan.entry((src, dst, tag)).or_default().recvs.pop_front();
        match matched {
            Some(recv) => Self::commit_match(
                &self.model,
                self.placement,
                self.trace.as_ref(),
                &mut st,
                src,
                dst,
                tag,
                offer,
                recv,
            ),
            None => st.chan.entry((src, dst, tag)).or_default().sends.push_back(offer),
        }
        Ok(SendHandle { cell })
    }

    /// Post a receive at `dst` (virtual time `now`) for a message from `src`.
    pub fn post_recv(
        &self,
        src: Rank,
        dst: Rank,
        tag: Tag,
        capacity: usize,
        now: SimTime,
    ) -> Result<RecvHandle> {
        let cell = Cell::new();
        let mut st = self.state.lock();
        if st.stopped {
            return Err(CommError::WorldStopped);
        }
        let offer = RecvOffer { capacity, receiver_vtime: now, done: Arc::clone(&cell) };
        let matched = st.chan.entry((src, dst, tag)).or_default().sends.pop_front();
        match matched {
            Some(send) => Self::commit_match(
                &self.model,
                self.placement,
                self.trace.as_ref(),
                &mut st,
                src,
                dst,
                tag,
                send,
                offer,
            ),
            None => {
                // Messages the done rank sent before returning were matched
                // above; with no send queued, this one can never arrive.
                if src != dst && st.done[src] {
                    return Err(CommError::PeerFailed { rank: src });
                }
                st.chan.entry((src, dst, tag)).or_default().recvs.push_back(offer);
            }
        }
        Ok(RecvHandle { cell })
    }

    /// Record that `rank`'s closure returned: it will never post again.
    ///
    /// Pending receives waiting on a message from `rank` and pending
    /// rendezvous sends blocked on `rank` receiving can no longer complete;
    /// both fail with [`CommError::PeerFailed`], as do future such posts.
    /// Messages `rank` sent before returning stay queued and deliverable.
    pub fn rank_done(&self, rank: Rank) {
        let mut st = self.state.lock();
        st.done[rank] = true;
        let err = CommError::PeerFailed { rank };
        let State { chan, deferred, .. } = &mut *st;
        for (&(src, dst, _tag), q) in chan.iter_mut() {
            if src == rank {
                for r in q.recvs.drain(..) {
                    r.done.fill_if_empty(Err(err.clone()));
                }
            }
            if dst == rank {
                // Eager offers already completed at post time; only blocked
                // rendezvous senders observe the failure.
                for s in q.sends.drain(..) {
                    s.done.fill_if_empty(Err(err.clone()));
                }
            }
        }
        for (&(_, dst), q) in deferred.iter_mut() {
            if dst == rank {
                for d in q.drain(..) {
                    d.done.fill_if_empty(Err(err.clone()));
                }
            }
        }
    }

    /// Bounded wait on a posted receive: `None` means nothing completed the
    /// receive within `timeout` of wall-clock time — the offer may still be
    /// pending and must be withdrawn with [`cancel_recv`](Self::cancel_recv)
    /// before the handle is abandoned.
    pub fn wait_recv_timeout(
        &self,
        handle: &RecvHandle,
        timeout: std::time::Duration,
    ) -> Option<Result<(Payload, SimTime)>> {
        handle.cell.wait_deadline(std::time::Instant::now() + timeout)
    }

    /// Withdraw a pending receive offer after a timed-out wait.
    ///
    /// Returns `true` if the offer was still queued (now removed — nothing
    /// was consumed; a message arriving later stays queued for the next
    /// matching receive). Returns `false` if a send matched the offer
    /// concurrently: the caller must [`wait_recv`](Self::wait_recv) for the
    /// committed result instead of dropping it.
    pub fn cancel_recv(&self, src: Rank, dst: Rank, tag: Tag, handle: &RecvHandle) -> bool {
        let mut st = self.state.lock();
        let Some(q) = st.chan.get_mut(&(src, dst, tag)) else {
            return false;
        };
        let before = q.recvs.len();
        q.recvs.retain(|r| !Arc::ptr_eq(&r.done, &handle.cell));
        q.recvs.len() != before
    }

    /// Block until a posted send completes; returns the sender's new virtual time.
    pub fn wait_send(&self, handle: &SendHandle) -> Result<SimTime> {
        handle.cell.wait()
    }

    /// Block until a posted receive completes; returns the payload (a pooled
    /// buffer that recycles itself when dropped) and the receiver's new
    /// virtual time.
    pub fn wait_recv(&self, handle: &RecvHandle) -> Result<(Payload, SimTime)> {
        handle.cell.wait()
    }

    /// Perform an eager injection: claim the injection-side resource, fill
    /// the sender's completion cell, and return the matchable offer.
    /// Must be called with the state lock held.
    #[allow(clippy::too_many_arguments)]
    fn inject_eager(
        model: &NetworkModel,
        placement: Placement,
        st: &mut State,
        src: Rank,
        dst: Rank,
        data: Payload,
        ready: SimTime,
        done: Arc<Cell<SimTime>>,
    ) -> SendOffer {
        let level = placement.level(src, dst);
        let costs = model.costs(level);
        let ser = costs.serialize_ns(data.len());
        let snode = placement.node_of(src);
        let start_tx = if model.contention {
            match level {
                // A NIC serializes injections fully; a node's memory system
                // admits `mem_channels` concurrent copy streams.
                Level::InterNode => st.nic_tx[snode].claim(ready, ser),
                Level::IntraNode => st.mem[snode].claim(ready, ser / model.mem_channels),
            }
        } else {
            ready
        };
        let mut inject_end = start_tx + ser;
        if model.contention && level == Level::InterNode && model.backbone_beta_ns_per_byte > 0.0 {
            let bb = data.len() as f64 * model.backbone_beta_ns_per_byte;
            let start_bb = st.backbone.claim(start_tx, bb);
            inject_end = inject_end.max(start_bb + bb);
        }
        done.fill(Ok(inject_end));
        SendOffer {
            data,
            sender_vtime: ready,
            eager_wire_arrival: Some(inject_end + costs.alpha_ns),
            done,
        }
    }

    /// Grant freed credits to deferred eager sends on `(src, dst)`, injecting
    /// and matching them in FIFO order. `credit_time` is when the credit is
    /// back at the sender. Must be called with the state lock held.
    #[allow(clippy::too_many_arguments)]
    fn promote_deferred(
        model: &NetworkModel,
        placement: Placement,
        trace: Option<&Mutex<Vec<TransferEvent>>>,
        st: &mut State,
        src: Rank,
        dst: Rank,
        credit_time: SimTime,
    ) {
        let key = (src, dst);
        while st.outstanding.get(&key).copied().unwrap_or(0) < model.eager_credits {
            let Some(d) = st.deferred.get_mut(&key).and_then(VecDeque::pop_front) else {
                return;
            };
            *st.outstanding.entry(key).or_default() += 1;
            let ready = d.ready.max(credit_time);
            let offer = Self::inject_eager(model, placement, st, src, dst, d.data, ready, d.done);
            let matched = st.chan.entry((src, dst, d.tag)).or_default().recvs.pop_front();
            match matched {
                Some(recv) => {
                    Self::commit_match(model, placement, trace, st, src, dst, d.tag, offer, recv)
                }
                None => st.chan.entry((src, dst, d.tag)).or_default().sends.push_back(offer),
            }
        }
    }

    /// Compute the transfer times for a matched pair and fill both completion
    /// cells. Must be called with the state lock held.
    #[allow(clippy::too_many_arguments)]
    fn commit_match(
        model: &NetworkModel,
        placement: Placement,
        trace: Option<&Mutex<Vec<TransferEvent>>>,
        st: &mut State,
        src: Rank,
        dst: Rank,
        _tag: Tag,
        send: SendOffer,
        recv: RecvOffer,
    ) {
        let size = send.data.len();
        let was_eager = send.eager_wire_arrival.is_some();
        if size > recv.capacity {
            let err = CommError::Truncation { capacity: recv.capacity, incoming: size };
            recv.done.fill(Err(err.clone()));
            // Rendezvous senders are still blocked; fail them too. Eager
            // senders already completed — the error surfaces at the
            // receiver, as in MPI.
            send.done.fill_if_empty(Err(err));
            if was_eager {
                let o = st.outstanding.entry((src, dst)).or_default();
                *o = o.saturating_sub(1);
                Self::promote_deferred(model, placement, trace, st, src, dst, recv.receiver_vtime);
            }
            return;
        }

        let level = placement.level(src, dst);
        let costs = model.costs(level);
        let ser = costs.serialize_ns(size);
        let snode = placement.node_of(src);
        let dnode = placement.node_of(dst);
        let k = model.mem_channels;

        let recv_done_time;
        match send.eager_wire_arrival {
            Some(wire_arrival) => {
                // Eager: data is (or will be) sitting in the early-arrival
                // buffer; the receive side claims ejection and optionally an
                // unpack copy.
                let mut delivered = wire_arrival;
                // Inter-node eager data still has to be ejected through the
                // destination NIC. Intra-node "ejection" is the same memory
                // channel the injection already paid — charging it again
                // would triple-count the copy, so only the NIC claims here.
                if model.contention && level == Level::InterNode {
                    let start_rx = st.nic_rx[dnode].claim(wire_arrival - ser, ser);
                    delivered = start_rx + ser;
                }
                let mut done = delivered.max(recv.receiver_vtime);
                if model.eager_unpack_copy {
                    // Copy out of the early-arrival buffer: an intra-level
                    // memcpy on the receiving node.
                    let unpack = model.intra.serialize_ns(size);
                    if model.contention {
                        let start = st.mem[dnode].claim(done, unpack / k);
                        done = start + unpack;
                    } else {
                        done += unpack;
                    }
                }
                recv_done_time = done;
                // sender cell was already filled at post time
            }
            None => {
                // Rendezvous: data moves only once both sides are present.
                let ready =
                    send.sender_vtime.max(recv.receiver_vtime) + model.rendezvous_handshake_ns;
                let (sender_done, recv_done) = match level {
                    Level::InterNode => {
                        let start = if model.contention {
                            // Joint booking: injection at [t, t+ser),
                            // backbone at [t, t+bb), ejection at
                            // [t+α, t+α+ser). Fixed point over the timelines.
                            let bb = if model.backbone_beta_ns_per_byte > 0.0 {
                                size as f64 * model.backbone_beta_ns_per_byte
                            } else {
                                0.0
                            };
                            let mut t = ready;
                            loop {
                                let t_tx = st.nic_tx[snode].next_fit(t, ser);
                                let t_bb = st.backbone.next_fit(t_tx, bb);
                                if t_bb > t_tx + 1e-9 {
                                    t = t_bb;
                                    continue;
                                }
                                let t_rx = st.nic_rx[dnode].next_fit(t_tx + costs.alpha_ns, ser)
                                    - costs.alpha_ns;
                                if t_rx <= t_tx + 1e-9 {
                                    t = t_tx;
                                    break;
                                }
                                t = t_rx;
                            }
                            st.nic_tx[snode].book(t, ser);
                            if bb > 0.0 {
                                st.backbone.book(t, bb);
                            }
                            st.nic_rx[dnode].book(t + costs.alpha_ns, ser);
                            t
                        } else {
                            ready
                        };
                        let end = start + costs.alpha_ns + ser;
                        // Sender returns once its NIC is drained.
                        (start + ser, end)
                    }
                    Level::IntraNode => {
                        let start = if model.contention {
                            st.mem[snode].claim(ready, ser / k)
                        } else {
                            ready
                        };
                        let end = start + costs.alpha_ns + ser;
                        // Single synchronous copy: both sides leave together.
                        (end, end)
                    }
                };
                send.done.fill(Ok(sender_done));
                recv_done_time = recv_done;
            }
        }
        if let Some(t) = trace {
            t.lock().push(TransferEvent {
                src,
                dst,
                bytes: size,
                level,
                eager: was_eager,
                sender_ready_ns: send.sender_vtime,
                delivered_ns: recv_done_time,
            });
        }
        recv.done.fill(Ok((send.data, recv_done_time)));

        if was_eager {
            // The receiver consumed an early-arrival slot: return the credit
            // (one wire latency later) and let stalled sends proceed.
            let o = st.outstanding.entry((src, dst)).or_default();
            *o = o.saturating_sub(1);
            let credit_time = recv_done_time + costs.alpha_ns;
            Self::promote_deferred(model, placement, trace, st, src, dst, credit_time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(model: NetworkModel, cores: usize, size: usize) -> Fabric {
        Fabric::new(model, Placement::new(cores), size)
    }

    #[test]
    fn rendezvous_hockney_exact() {
        // uniform model: everything rendezvous, no contention, no handshake
        let f = fabric(NetworkModel::uniform(1000.0, 2.0), 4, 4);
        let s = f.post_send(0, 1, Tag(0), &[0u8; 100], 500.0).unwrap();
        let r = f.post_recv(0, 1, Tag(0), 100, 700.0).unwrap();
        // start = max(500, 700) = 700; end = 700 + 1000 + 200 = 1900
        let (data, rdone) = f.wait_recv(&r).unwrap();
        assert_eq!(data.len(), 100);
        assert_eq!(rdone, 1900.0);
        assert_eq!(f.wait_send(&s).unwrap(), 1900.0); // intra: both leave together
    }

    #[test]
    fn rendezvous_sender_waits_for_late_receiver() {
        let f = fabric(NetworkModel::uniform(0.0, 1.0), 4, 4);
        let s = f.post_send(0, 1, Tag(0), &[0u8; 10], 0.0).unwrap();
        let r = f.post_recv(0, 1, Tag(0), 10, 5000.0).unwrap();
        assert_eq!(f.wait_send(&s).unwrap(), 5010.0);
        assert_eq!(f.wait_recv(&r).unwrap().1, 5010.0);
    }

    #[test]
    fn eager_sender_does_not_wait() {
        let mut m = NetworkModel::uniform(100.0, 1.0);
        m.eager_threshold = 1 << 20; // everything eager
        let f = fabric(m, 4, 4);
        let s = f.post_send(0, 1, Tag(0), &[0u8; 50], 0.0).unwrap();
        // sender completes after injection even though no receive is posted
        assert_eq!(f.wait_send(&s).unwrap(), 50.0);
        // a much later receiver picks the data from the early-arrival buffer
        let r = f.post_recv(0, 1, Tag(0), 50, 10_000.0).unwrap();
        let (_, rdone) = f.wait_recv(&r).unwrap();
        assert_eq!(rdone, 10_000.0); // arrival (150) < receiver time
    }

    #[test]
    fn eager_early_receiver_waits_for_wire() {
        let mut m = NetworkModel::uniform(100.0, 1.0);
        m.eager_threshold = 1 << 20;
        let f = fabric(m, 4, 4);
        let r = f.post_recv(0, 1, Tag(0), 50, 0.0).unwrap();
        let _s = f.post_send(0, 1, Tag(0), &[0u8; 50], 1000.0).unwrap();
        let (_, rdone) = f.wait_recv(&r).unwrap();
        // inject 1000→1050, wire +100 → 1150
        assert_eq!(rdone, 1150.0);
    }

    #[test]
    fn fifo_matching_per_channel() {
        let mut m = NetworkModel::uniform(0.0, 0.0);
        m.eager_threshold = 1 << 20;
        let f = fabric(m, 4, 4);
        let _ = f.post_send(0, 1, Tag(0), &[1], 0.0).unwrap();
        let _ = f.post_send(0, 1, Tag(0), &[2], 0.0).unwrap();
        let r1 = f.post_recv(0, 1, Tag(0), 1, 0.0).unwrap();
        let r2 = f.post_recv(0, 1, Tag(0), 1, 0.0).unwrap();
        assert_eq!(&*f.wait_recv(&r1).unwrap().0, &[1]);
        assert_eq!(&*f.wait_recv(&r2).unwrap().0, &[2]);
    }

    #[test]
    fn truncation_error_delivered() {
        let f = fabric(NetworkModel::uniform(0.0, 0.0), 4, 4);
        let s = f.post_send(0, 1, Tag(0), &[0u8; 10], 0.0).unwrap();
        let r = f.post_recv(0, 1, Tag(0), 4, 0.0).unwrap();
        assert!(matches!(
            f.wait_recv(&r),
            Err(CommError::Truncation { capacity: 4, incoming: 10 })
        ));
        assert!(f.wait_send(&s).is_err()); // rendezvous sender also fails
    }

    #[test]
    fn inter_node_nic_serializes_concurrent_sends() {
        // two ranks on node 0 send to two ranks on node 1 at the same time;
        // with contention the second transfer queues behind the first.
        let mut m = NetworkModel::uniform(0.0, 1.0);
        m.contention = true;
        let f = fabric(m, 2, 4); // nodes {0,1}, {2,3}
        let s1 = f.post_send(0, 2, Tag(0), &[0u8; 100], 0.0).unwrap();
        let s2 = f.post_send(1, 3, Tag(0), &[0u8; 100], 0.0).unwrap();
        let r1 = f.post_recv(0, 2, Tag(0), 100, 0.0).unwrap();
        let r2 = f.post_recv(1, 3, Tag(0), 100, 0.0).unwrap();
        let t1 = f.wait_recv(&r1).unwrap().1;
        let t2 = f.wait_recv(&r2).unwrap().1;
        let _ = (f.wait_send(&s1), f.wait_send(&s2));
        let (first, second) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        assert_eq!(first, 100.0);
        assert_eq!(second, 200.0, "second transfer must queue behind the first");
    }

    #[test]
    fn racing_ahead_does_not_delay_earlier_transfers() {
        // A transfer booked far in the virtual future must not push an
        // earlier-ready transfer behind it (the Timeline property).
        let mut m = NetworkModel::uniform(0.0, 1.0);
        m.contention = true;
        let f = fabric(m, 2, 4);
        // rank 1 races ahead to t=10000 and books the NIC
        let s_late = f.post_send(1, 3, Tag(0), &[0u8; 100], 10_000.0).unwrap();
        let r_late = f.post_recv(1, 3, Tag(0), 100, 10_000.0).unwrap();
        // rank 0 then posts an earlier transfer
        let s_early = f.post_send(0, 2, Tag(1), &[0u8; 100], 0.0).unwrap();
        let r_early = f.post_recv(0, 2, Tag(1), 100, 0.0).unwrap();
        assert_eq!(f.wait_recv(&r_early).unwrap().1, 100.0);
        assert_eq!(f.wait_recv(&r_late).unwrap().1, 10_100.0);
        let _ = (f.wait_send(&s_early), f.wait_send(&s_late));
    }

    #[test]
    fn mem_channels_allow_parallel_intra_copies() {
        // k=2: two concurrent intra-node copies only half-serialize.
        let mut m = NetworkModel::uniform(0.0, 1.0);
        m.contention = true;
        m.mem_channels = 2.0;
        let f = fabric(m, 4, 4); // all on node 0
        let _s1 = f.post_send(0, 1, Tag(0), &[0u8; 100], 0.0).unwrap();
        let _s2 = f.post_send(2, 3, Tag(0), &[0u8; 100], 0.0).unwrap();
        let r1 = f.post_recv(0, 1, Tag(0), 100, 0.0).unwrap();
        let r2 = f.post_recv(2, 3, Tag(0), 100, 0.0).unwrap();
        let t1 = f.wait_recv(&r1).unwrap().1;
        let t2 = f.wait_recv(&r2).unwrap().1;
        let (first, second) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        // each copy takes 100ns of stream time; channel occupancy 50ns each
        assert_eq!(first, 100.0);
        assert_eq!(second, 150.0);
    }

    #[test]
    fn no_contention_means_full_overlap() {
        let m = NetworkModel::uniform(0.0, 1.0); // contention off
        let f = fabric(m, 2, 4);
        let _s1 = f.post_send(0, 2, Tag(0), &[0u8; 100], 0.0).unwrap();
        let _s2 = f.post_send(1, 3, Tag(0), &[0u8; 100], 0.0).unwrap();
        let r1 = f.post_recv(0, 2, Tag(0), 100, 0.0).unwrap();
        let r2 = f.post_recv(1, 3, Tag(0), 100, 0.0).unwrap();
        assert_eq!(f.wait_recv(&r1).unwrap().1, 100.0);
        assert_eq!(f.wait_recv(&r2).unwrap().1, 100.0);
    }

    #[test]
    fn stop_fails_pending_operations() {
        let f = Arc::new(fabric(NetworkModel::uniform(0.0, 0.0), 4, 4));
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || {
            let r = f2.post_recv(0, 1, Tag(0), 10, 0.0).unwrap();
            f2.wait_recv(&r)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        f.stop();
        assert!(h.join().unwrap().is_err());
        assert!(f.post_send(0, 1, Tag(0), &[], 0.0).is_err());
    }

    #[test]
    fn eager_credits_defer_and_promote_in_order() {
        let mut m = NetworkModel::uniform(0.0, 1.0);
        m.eager_threshold = usize::MAX; // all eager
        m.eager_credits = 2;
        let f = fabric(m, 4, 2);
        // three sends: the third must defer (2 credits)
        let s1 = f.post_send(0, 1, Tag(0), &[1; 10], 0.0).unwrap();
        let s2 = f.post_send(0, 1, Tag(0), &[2; 10], 10.0).unwrap();
        let s3 = f.post_send(0, 1, Tag(0), &[3; 10], 20.0).unwrap();
        assert_eq!(f.wait_send(&s1).unwrap(), 10.0); // injected at once
        assert_eq!(f.wait_send(&s2).unwrap(), 20.0);
        // s3 is stalled until a receive consumes a credit
        let r1 = f.post_recv(0, 1, Tag(0), 10, 100.0).unwrap();
        let (d1, t1) = f.wait_recv(&r1).unwrap();
        assert_eq!(&*d1, &[1; 10]); // FIFO preserved across deferral
                                    // credit returns at recv_done + alpha(=0): s3 injects from max(20, t1)
        let s3_done = f.wait_send(&s3).unwrap();
        assert!(s3_done >= t1, "deferred send waited for the credit: {s3_done} vs {t1}");
        let r2 = f.post_recv(0, 1, Tag(0), 10, 100.0).unwrap();
        let r3 = f.post_recv(0, 1, Tag(0), 10, 100.0).unwrap();
        assert_eq!(&*f.wait_recv(&r2).unwrap().0, &[2; 10]);
        assert_eq!(&*f.wait_recv(&r3).unwrap().0, &[3; 10]);
    }

    #[test]
    fn credits_are_per_directed_channel() {
        let mut m = NetworkModel::uniform(0.0, 1.0);
        m.eager_threshold = usize::MAX;
        m.eager_credits = 1;
        let f = fabric(m, 4, 3);
        // one outstanding to rank 1 must not block sends to rank 2
        let _s1 = f.post_send(0, 1, Tag(0), &[0; 4], 0.0).unwrap();
        let s2 = f.post_send(0, 2, Tag(0), &[0; 4], 0.0).unwrap();
        assert_eq!(f.wait_send(&s2).unwrap(), 4.0);
    }

    #[test]
    fn rendezvous_ignores_credits() {
        let mut m = NetworkModel::uniform(0.0, 1.0); // threshold 0 → rendezvous
        m.eager_credits = 1;
        let f = fabric(m, 4, 2);
        // two rendezvous sends queue without consuming credits
        let s1 = f.post_send(0, 1, Tag(0), &[0; 4], 0.0).unwrap();
        let s2 = f.post_send(0, 1, Tag(0), &[0; 4], 0.0).unwrap();
        let r1 = f.post_recv(0, 1, Tag(0), 4, 0.0).unwrap();
        let r2 = f.post_recv(0, 1, Tag(0), 4, 0.0).unwrap();
        f.wait_recv(&r1).unwrap();
        f.wait_recv(&r2).unwrap();
        f.wait_send(&s1).unwrap();
        f.wait_send(&s2).unwrap();
    }

    #[test]
    fn stop_fails_deferred_sends_too() {
        let mut m = NetworkModel::uniform(0.0, 1.0);
        m.eager_threshold = usize::MAX;
        m.eager_credits = 1;
        let f = fabric(m, 4, 2);
        let _s1 = f.post_send(0, 1, Tag(0), &[0; 4], 0.0).unwrap();
        let s2 = f.post_send(0, 1, Tag(0), &[0; 4], 0.0).unwrap(); // deferred
        f.stop();
        assert!(f.wait_send(&s2).is_err());
    }

    #[test]
    fn backbone_serializes_across_distinct_node_pairs() {
        // two transfers between DISJOINT node pairs share nothing — except
        // the backbone, when enabled.
        let mut m = NetworkModel::uniform(0.0, 1.0);
        m.contention = true;
        m.backbone_beta_ns_per_byte = 2.0;
        let f = fabric(m, 1, 4); // 4 nodes of 1 rank: all inter
        let _s1 = f.post_send(0, 1, Tag(0), &[0u8; 100], 0.0).unwrap();
        let _s2 = f.post_send(2, 3, Tag(0), &[0u8; 100], 0.0).unwrap();
        let r1 = f.post_recv(0, 1, Tag(0), 100, 0.0).unwrap();
        let r2 = f.post_recv(2, 3, Tag(0), 100, 0.0).unwrap();
        let t1 = f.wait_recv(&r1).unwrap().1;
        let t2 = f.wait_recv(&r2).unwrap().1;
        let (first, second) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        // bb occupancy 200ns each; the second transfer starts 200ns later
        assert_eq!(first, 100.0);
        assert_eq!(second, 300.0);
        // without the backbone they fully overlap
        let mut m = NetworkModel::uniform(0.0, 1.0);
        m.contention = true;
        let f = fabric(m, 1, 4);
        let _s1 = f.post_send(0, 1, Tag(0), &[0u8; 100], 0.0).unwrap();
        let _s2 = f.post_send(2, 3, Tag(0), &[0u8; 100], 0.0).unwrap();
        let r1 = f.post_recv(0, 1, Tag(0), 100, 0.0).unwrap();
        let r2 = f.post_recv(2, 3, Tag(0), 100, 0.0).unwrap();
        assert_eq!(f.wait_recv(&r1).unwrap().1, 100.0);
        assert_eq!(f.wait_recv(&r2).unwrap().1, 100.0);
    }

    #[test]
    fn cancel_recv_withdraws_pending_offer() {
        let f = fabric(NetworkModel::uniform(0.0, 0.0), 4, 4);
        let r = f.post_recv(0, 1, Tag(0), 10, 0.0).unwrap();
        assert!(f.wait_recv_timeout(&r, std::time::Duration::from_millis(5)).is_none());
        assert!(f.cancel_recv(0, 1, Tag(0), &r));
        // the withdrawn offer must not steal a later send: a fresh receive
        // still gets the message
        let _s = f.post_send(0, 1, Tag(0), &[9u8; 4], 0.0).unwrap();
        let r2 = f.post_recv(0, 1, Tag(0), 10, 0.0).unwrap();
        assert_eq!(&*f.wait_recv(&r2).unwrap().0, &[9u8; 4]);
    }

    #[test]
    fn cancel_recv_after_match_returns_false() {
        let f = fabric(NetworkModel::uniform(0.0, 0.0), 4, 4);
        let r = f.post_recv(0, 1, Tag(0), 10, 0.0).unwrap();
        let _s = f.post_send(0, 1, Tag(0), &[1u8; 4], 0.0).unwrap();
        assert!(!f.cancel_recv(0, 1, Tag(0), &r));
        assert_eq!(f.wait_recv(&r).unwrap().0.len(), 4);
    }

    #[test]
    fn wait_recv_timeout_returns_result_when_available() {
        let f = fabric(NetworkModel::uniform(0.0, 0.0), 4, 4);
        let _s = f.post_send(0, 1, Tag(0), &[1u8; 4], 0.0).unwrap();
        let r = f.post_recv(0, 1, Tag(0), 10, 0.0).unwrap();
        let got = f.wait_recv_timeout(&r, std::time::Duration::from_secs(5));
        assert_eq!(got.unwrap().unwrap().0.len(), 4);
    }

    #[test]
    fn rank_done_fails_pending_recv_from_that_rank() {
        let f = Arc::new(fabric(NetworkModel::uniform(0.0, 0.0), 4, 4));
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || {
            let r = f2.post_recv(2, 1, Tag(0), 10, 0.0).unwrap();
            f2.wait_recv(&r)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        f.rank_done(2);
        assert!(matches!(h.join().unwrap(), Err(CommError::PeerFailed { rank: 2 })));
        // future receives from the done rank fail fast
        assert!(matches!(
            f.post_recv(2, 1, Tag(0), 10, 0.0),
            Err(CommError::PeerFailed { rank: 2 })
        ));
    }

    #[test]
    fn rank_done_fails_rendezvous_send_to_that_rank() {
        let f = Arc::new(fabric(NetworkModel::uniform(0.0, 1.0), 4, 4));
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || {
            let s = f2.post_send(0, 2, Tag(0), &[0u8; 64], 0.0).unwrap();
            f2.wait_send(&s)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        f.rank_done(2);
        assert!(matches!(h.join().unwrap(), Err(CommError::PeerFailed { rank: 2 })));
        assert!(matches!(
            f.post_send(0, 2, Tag(0), &[0u8; 64], 0.0),
            Err(CommError::PeerFailed { rank: 2 })
        ));
    }

    #[test]
    fn messages_queued_before_rank_done_stay_deliverable() {
        let mut m = NetworkModel::uniform(0.0, 1.0);
        m.eager_threshold = usize::MAX;
        let f = fabric(m, 4, 4);
        let _s = f.post_send(2, 1, Tag(0), &[7u8; 4], 0.0).unwrap();
        f.rank_done(2);
        let r = f.post_recv(2, 1, Tag(0), 10, 0.0).unwrap();
        assert_eq!(&*f.wait_recv(&r).unwrap().0, &[7u8; 4]);
        // once drained, further receives observe the failure
        assert!(matches!(
            f.post_recv(2, 1, Tag(0), 10, 0.0),
            Err(CommError::PeerFailed { rank: 2 })
        ));
    }

    #[test]
    fn zero_byte_rendezvous_costs_alpha() {
        let f = fabric(NetworkModel::uniform(700.0, 1.0), 4, 2);
        let _s = f.post_send(0, 1, Tag(0), &[], 0.0).unwrap();
        let r = f.post_recv(0, 1, Tag(0), 0, 0.0).unwrap();
        assert_eq!(f.wait_recv(&r).unwrap().1, 700.0);
    }
}
