//! # netsim — a virtual-time multi-core cluster simulator
//!
//! This crate stands in for the paper's evaluation hardware (a Cray XC40 and
//! an InfiniBand NEC cluster, neither of which this reproduction has).
//! It executes *unmodified* collective algorithms written against
//! [`mpsim::Communicator`] on a simulated cluster of multi-core nodes and
//! reports virtual completion times, from which the benchmark harness
//! derives the paper's bandwidth and speedup figures.
//!
//! The model captures exactly the mechanisms the paper's argument rests on:
//!
//! * two communication levels (intra-node memory copies vs inter-node
//!   interconnect messages) with distinct Hockney α–β costs,
//! * per-node resource contention — a node's NIC injects/ejects one message
//!   at a time and a node's memory system is shared — so *fewer messages*
//!   translates into *less queueing*, which is how the tuned broadcast's
//!   transfer savings become time savings,
//! * eager vs rendezvous protocols with the double-copy penalty on eager
//!   receives,
//! * LLC-pressure degradation of intra-node bandwidth (via
//!   [`presets::MachinePreset::model_for`]) reproducing the cache knees in
//!   the paper's Figure 6.
//!
//! ## Example
//!
//! ```
//! use netsim::{SimWorld, presets};
//! use mpsim::{Communicator, Tag};
//!
//! let preset = presets::hornet();
//! let model = preset.model_for(1 << 20, 48);
//! let out = SimWorld::run(model, preset.placement(), 48, |comm| {
//!     // rank 0 pings rank 47 (a different node: 24 cores/node)
//!     let mut buf = vec![0u8; 1 << 20];
//!     if comm.rank() == 0 {
//!         comm.send(&buf, 47, Tag(1)).unwrap();
//!     } else if comm.rank() == 47 {
//!         comm.recv(&mut buf, 0, Tag(1)).unwrap();
//!     }
//!     comm.now_ns()
//! });
//! // the receiver's virtual clock advanced by at least the serialization time
//! assert!(out.results[47] > 100_000);
//! assert_eq!(out.results[1], 0); // uninvolved ranks never move
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod events;
pub mod fabric;
pub mod fault;
pub mod model;
pub mod presets;
pub mod resources;
pub mod sim_comm;
pub mod topology;

pub use events::{summarize, TraceSummary, TransferEvent};
pub use fabric::{Fabric, SimTime};
pub use fault::{FaultAction, FaultPlan, FaultyComm, LinkFaults};
pub use model::{LevelCosts, NetworkModel, Protocol};
pub use presets::MachinePreset;
pub use resources::Timeline;
pub use sim_comm::{SimComm, SimOutcome, SimWorld, TimeBreakdown};
pub use topology::{Level, Placement};
