//! Time-ordered resource reservations.
//!
//! A shared resource (a node's NIC port, a node's memory channel) serves
//! transfers in *virtual-time* order. The naive "busy-until" scalar is
//! commit-order dependent: a rank that has raced ahead to a later virtual
//! time would push other ranks' *earlier* transfers into its future,
//! producing large run-to-run jitter. [`Timeline`] instead books each claim
//! into the earliest free gap at-or-after the requester's ready time, which
//! makes the outcome independent of commit order whenever the requested
//! intervals don't overlap — and bounded by one reservation's length when
//! they do.
//!
//! Booked intervals are kept sorted and merged when they touch, so steady
//! back-to-back traffic keeps the list short.

/// Sorted, non-overlapping busy intervals of one resource.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    /// `(start, end)` pairs, sorted by `start`, pairwise disjoint.
    intervals: Vec<(f64, f64)>,
}

/// Merge two intervals if they touch within this tolerance (ns).
const MERGE_EPS: f64 = 1e-9;

impl Timeline {
    /// An always-free timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Earliest start `t ≥ ready` such that `[t, t+dur)` is free.
    /// Does not book.
    pub fn next_fit(&self, ready: f64, dur: f64) -> f64 {
        if dur <= 0.0 {
            return ready;
        }
        let mut t = ready;
        // First interval that could overlap [t, t+dur): binary search by end.
        let mut i = self.intervals.partition_point(|&(_, end)| end <= t);
        while i < self.intervals.len() {
            let (start, end) = self.intervals[i];
            if start >= t + dur {
                break; // the gap before `start` fits
            }
            t = t.max(end);
            i += 1;
        }
        t
    }

    /// Book `[start, start+dur)`. The caller must have obtained `start` from
    /// [`next_fit`](Self::next_fit) with no intervening bookings (single-lock
    /// discipline in the fabric guarantees this).
    pub fn book(&mut self, start: f64, dur: f64) {
        if dur <= 0.0 {
            return;
        }
        let end = start + dur;
        let i = self.intervals.partition_point(|&(s, _)| s < start);
        debug_assert!(
            i == 0 || self.intervals[i - 1].1 <= start + MERGE_EPS,
            "booking overlaps predecessor"
        );
        debug_assert!(
            i == self.intervals.len() || end <= self.intervals[i].0 + MERGE_EPS,
            "booking overlaps successor"
        );
        // Merge with neighbours when touching.
        let merge_prev = i > 0 && start - self.intervals[i - 1].1 <= MERGE_EPS;
        let merge_next = i < self.intervals.len() && self.intervals[i].0 - end <= MERGE_EPS;
        match (merge_prev, merge_next) {
            (true, true) => {
                self.intervals[i - 1].1 = self.intervals[i].1;
                self.intervals.remove(i);
            }
            (true, false) => self.intervals[i - 1].1 = end,
            (false, true) => self.intervals[i].0 = start,
            (false, false) => self.intervals.insert(i, (start, end)),
        }
    }

    /// Convenience: find the earliest fit and book it; returns the start.
    pub fn claim(&mut self, ready: f64, dur: f64) -> f64 {
        let start = self.next_fit(ready, dur);
        self.book(start, dur);
        start
    }

    /// Number of stored intervals (diagnostics; merging keeps this small).
    pub fn fragments(&self) -> usize {
        self.intervals.len()
    }

    /// Drop intervals that end before `horizon` — bookkeeping for long runs
    /// once no future claim can start before `horizon`.
    pub fn prune_before(&mut self, horizon: f64) {
        self.intervals.retain(|&(_, end)| end > horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline_grants_immediately() {
        let mut t = Timeline::new();
        assert_eq!(t.next_fit(5.0, 10.0), 5.0);
        assert_eq!(t.claim(5.0, 10.0), 5.0);
    }

    #[test]
    fn zero_duration_never_blocks_nor_books() {
        let mut t = Timeline::new();
        t.book(0.0, 100.0);
        assert_eq!(t.next_fit(50.0, 0.0), 50.0);
        t.book(50.0, 0.0);
        assert_eq!(t.fragments(), 1);
    }

    #[test]
    fn sequential_claims_append_and_merge() {
        let mut t = Timeline::new();
        assert_eq!(t.claim(0.0, 10.0), 0.0);
        assert_eq!(t.claim(0.0, 10.0), 10.0);
        assert_eq!(t.claim(0.0, 10.0), 20.0);
        assert_eq!(t.fragments(), 1, "contiguous bookings must merge");
    }

    #[test]
    fn out_of_order_claims_fill_gaps() {
        let mut t = Timeline::new();
        // A "future" booking first (the racing-ahead rank)…
        assert_eq!(t.claim(1000.0, 50.0), 1000.0);
        // …must not delay an earlier-ready claim.
        assert_eq!(t.claim(100.0, 50.0), 100.0);
        assert_eq!(t.fragments(), 2);
    }

    #[test]
    fn gap_too_small_is_skipped() {
        let mut t = Timeline::new();
        t.book(0.0, 10.0);
        t.book(15.0, 10.0);
        // gap [10, 15) is 5 wide; a 6-wide claim must go after 25
        assert_eq!(t.next_fit(0.0, 6.0), 25.0);
        // a 5-wide claim fits exactly
        assert_eq!(t.next_fit(0.0, 5.0), 10.0);
    }

    #[test]
    fn ready_inside_busy_interval_waits_for_end() {
        let mut t = Timeline::new();
        t.book(0.0, 100.0);
        assert_eq!(t.next_fit(30.0, 10.0), 100.0);
    }

    #[test]
    fn filling_a_gap_exactly_merges_all_three() {
        let mut t = Timeline::new();
        t.book(0.0, 10.0);
        t.book(20.0, 10.0);
        assert_eq!(t.fragments(), 2);
        t.book(10.0, 10.0);
        assert_eq!(t.fragments(), 1);
        assert_eq!(t.next_fit(0.0, 1.0), 30.0);
    }

    #[test]
    fn order_insensitive_for_disjoint_requests() {
        // both orders of the same claim set yield the same final schedule
        let mut a = Timeline::new();
        let s1 = a.claim(0.0, 10.0);
        let s2 = a.claim(100.0, 10.0);
        let mut b = Timeline::new();
        let s2b = b.claim(100.0, 10.0);
        let s1b = b.claim(0.0, 10.0);
        assert_eq!((s1, s2), (s1b, s2b));
    }

    #[test]
    fn prune_drops_history() {
        let mut t = Timeline::new();
        for i in 0..100 {
            t.claim(i as f64 * 20.0, 10.0);
        }
        assert_eq!(t.fragments(), 100);
        t.prune_before(1000.0);
        assert!(t.fragments() < 100);
        // future behaviour unchanged
        assert_eq!(t.next_fit(1980.0, 5.0), 1990.0);
    }

    #[test]
    fn contended_same_gap_serializes() {
        let mut t = Timeline::new();
        let a = t.claim(0.0, 10.0);
        let b = t.claim(0.0, 10.0);
        assert_eq!(a, 0.0);
        assert_eq!(b, 10.0);
    }
}
