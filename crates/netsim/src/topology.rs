//! Cluster topology: placement of ranks onto multi-core nodes.
//!
//! The paper's experiments run on Hornet (Cray XC40, 24 cores/node) and Laki
//! (NEC cluster, 8 cores/node) with the default *block* placement:
//! consecutive ranks fill a node before the next node is used ("all the
//! processes are placed among the nodes in a blocked manner by default on
//! Hornet", §V-A). The two communication levels the paper analyses — intra-
//! node and inter-node — are derived from the placement.
//!
//! A *round-robin* placement (cyclic over a fixed node set) is provided as
//! an ablation: it destroys the ring algorithms' locality (every ring edge
//! becomes inter-node), which is exactly the sensitivity MPI users hit when
//! they change `--distribution` flags.

use mpsim::Rank;

/// Communication level of a (source, destination) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Both ranks on the same node: shared-memory copies.
    IntraNode,
    /// Different nodes: messages traverse the interconnect.
    InterNode,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    /// Consecutive ranks fill each node (`node = rank / cores_per_node`).
    Block,
    /// Ranks deal out cyclically over `nodes` nodes (`node = rank % nodes`).
    RoundRobin {
        /// Number of nodes in the allocation.
        nodes: usize,
    },
}

/// Placement of ranks onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Hardware cores per node (capacity; informs LLC-pressure estimates).
    pub cores_per_node: usize,
    strategy: Strategy,
}

impl Placement {
    /// Block placement with `cores_per_node` ranks per node (the paper's
    /// default).
    pub fn new(cores_per_node: usize) -> Self {
        assert!(cores_per_node >= 1, "need at least one core per node");
        Self { cores_per_node, strategy: Strategy::Block }
    }

    /// Round-robin placement over a fixed allocation of `nodes` nodes, each
    /// with `cores_per_node` cores.
    pub fn round_robin(cores_per_node: usize, nodes: usize) -> Self {
        assert!(cores_per_node >= 1 && nodes >= 1);
        Self { cores_per_node, strategy: Strategy::RoundRobin { nodes } }
    }

    /// Node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: Rank) -> usize {
        match self.strategy {
            Strategy::Block => rank / self.cores_per_node,
            Strategy::RoundRobin { nodes } => rank % nodes,
        }
    }

    /// Number of nodes a world of `size` ranks occupies.
    pub fn node_count(&self, size: usize) -> usize {
        match self.strategy {
            Strategy::Block => size.div_ceil(self.cores_per_node),
            Strategy::RoundRobin { nodes } => nodes.min(size.max(1)),
        }
    }

    /// The largest number of ranks any single node hosts in a world of
    /// `size` ranks (drives per-node cache-footprint estimates).
    pub fn max_ranks_per_node(&self, size: usize) -> usize {
        match self.strategy {
            Strategy::Block => self.cores_per_node.min(size),
            Strategy::RoundRobin { nodes } => size.div_ceil(nodes),
        }
    }

    /// Communication level between two ranks.
    #[inline]
    pub fn level(&self, a: Rank, b: Rank) -> Level {
        if self.node_of(a) == self.node_of(b) {
            Level::IntraNode
        } else {
            Level::InterNode
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_hornet_like() {
        let p = Placement::new(24);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(23), 0);
        assert_eq!(p.node_of(24), 1);
        assert_eq!(p.node_count(16), 1); // paper: np=16 fits one Hornet node
        assert_eq!(p.node_count(64), 3); // np=64 spans 3 nodes
        assert_eq!(p.node_count(256), 11); // np=256 spans 11 nodes
        assert_eq!(p.node_count(129), 6);
        assert_eq!(p.max_ranks_per_node(16), 16);
        assert_eq!(p.max_ranks_per_node(64), 24);
    }

    #[test]
    fn levels() {
        let p = Placement::new(4);
        assert_eq!(p.level(0, 3), Level::IntraNode);
        assert_eq!(p.level(3, 4), Level::InterNode);
        assert_eq!(p.level(5, 5), Level::IntraNode);
    }

    #[test]
    fn one_core_per_node_is_all_inter() {
        let p = Placement::new(1);
        assert_eq!(p.level(0, 1), Level::InterNode);
        assert_eq!(p.node_count(7), 7);
    }

    #[test]
    fn round_robin_deals_cyclically() {
        let p = Placement::round_robin(24, 4);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(1), 1);
        assert_eq!(p.node_of(4), 0);
        assert_eq!(p.node_count(3), 3);
        assert_eq!(p.node_count(100), 4);
        assert_eq!(p.max_ranks_per_node(100), 25);
        // consecutive ranks never share a node (for nodes > 1)
        for r in 0..20 {
            assert_eq!(p.level(r, r + 1), Level::InterNode);
        }
    }

    #[test]
    fn round_robin_same_residue_is_intra() {
        let p = Placement::round_robin(8, 3);
        assert_eq!(p.level(1, 4), Level::IntraNode);
        assert_eq!(p.level(2, 8), Level::IntraNode);
        assert_eq!(p.level(2, 7), Level::InterNode);
    }
}
