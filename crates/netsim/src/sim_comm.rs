//! The simulated executor: one OS thread per rank, each carrying a virtual
//! clock, all sharing one [`Fabric`].
//!
//! `SimWorld::run` mirrors `mpsim::ThreadWorld::run` — the same collective
//! code runs on both — but time is *virtual*: `Communicator::now_ns` returns
//! the rank's simulated clock, and [`SimOutcome`] reports per-rank finish
//! times and the makespan of the run, which the benchmark harness converts
//! into the paper's bandwidth numbers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use mpsim::sync::Mutex;

use mpsim::barrier::StopBarrier;
use mpsim::counters::CounterCell;
use mpsim::pool::{Payload, SharedBuf};
use mpsim::{
    ceil_log2, disjoint_span_lists, scatter_spans, validate_spans, CommError, Communicator, IoSpan,
    Rank, Result, Tag, TrafficStats, WorldTraffic,
};

use crate::fabric::{Fabric, SimTime};
use crate::model::NetworkModel;
use crate::topology::Placement;

/// Everything a simulated world run produced.
#[derive(Debug)]
pub struct SimOutcome<R> {
    /// Per-rank return values of the user closure, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank traffic statistics.
    pub traffic: WorldTraffic,
    /// Per-rank final virtual times in nanoseconds.
    pub finish_ns: Vec<f64>,
    /// Maximum finish time — the simulated wall-clock of the whole run.
    pub makespan_ns: f64,
    /// Per-rank time breakdown (communication vs modelled compute).
    pub breakdown: Vec<TimeBreakdown>,
    /// Final counters of the fabric's payload buffer pool.
    pub pool: mpsim::PoolStats,
}

/// Where a rank's virtual time went.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Time spent inside communication calls (including blocking waits).
    pub comm_ns: f64,
    /// Time added by [`SimComm::compute`].
    pub compute_ns: f64,
}

impl TimeBreakdown {
    /// Fraction of the rank's total busy time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.comm_ns + self.compute_ns;
        if total > 0.0 {
            self.comm_ns / total
        } else {
            0.0
        }
    }
}

struct BarrierState {
    vtimes: Vec<SimTime>,
}

struct Shared {
    fabric: Fabric,
    enter: StopBarrier,
    leave: StopBarrier,
    barrier_state: Mutex<BarrierState>,
}

/// Entry point for simulated runs.
pub struct SimWorld;

impl SimWorld {
    /// Run `f` on `n` simulated ranks placed on a cluster of
    /// `placement.cores_per_node`-core nodes with network `model`.
    ///
    /// Panics in rank closures are propagated after the world is torn down,
    /// exactly like the threaded backend.
    pub fn run<R, F>(model: NetworkModel, placement: Placement, n: usize, f: F) -> SimOutcome<R>
    where
        R: Send,
        F: Fn(&SimComm) -> R + Sync,
    {
        Self::run_inner(model, placement, n, f, false).0
    }

    /// Like [`run`](Self::run), additionally recording every transfer —
    /// see [`crate::events`] for the analysis helpers.
    pub fn run_traced<R, F>(
        model: NetworkModel,
        placement: Placement,
        n: usize,
        f: F,
    ) -> (SimOutcome<R>, Vec<crate::events::TransferEvent>)
    where
        R: Send,
        F: Fn(&SimComm) -> R + Sync,
    {
        Self::run_inner(model, placement, n, f, true)
    }

    fn run_inner<R, F>(
        model: NetworkModel,
        placement: Placement,
        n: usize,
        f: F,
        traced: bool,
    ) -> (SimOutcome<R>, Vec<crate::events::TransferEvent>)
    where
        R: Send,
        F: Fn(&SimComm) -> R + Sync,
    {
        assert!(n >= 1, "world needs at least one rank");
        let shared = Arc::new(Shared {
            fabric: Fabric::with_trace(model, placement, n, traced),
            enter: StopBarrier::new(n),
            leave: StopBarrier::new(n),
            barrier_state: Mutex::new(BarrierState { vtimes: vec![0.0; n] }),
        });

        let mut slots: Vec<Option<(R, TrafficStats, SimTime, TimeBreakdown)>> =
            (0..n).map(|_| None).collect();
        let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, slot) in slots.iter_mut().enumerate() {
                let shared = Arc::clone(&shared);
                let f = &f;
                handles.push(scope.spawn(move || {
                    let comm = SimComm {
                        rank,
                        size: n,
                        shared: Arc::clone(&shared),
                        clock: std::cell::Cell::new(0.0),
                        counters: CounterCell::default(),
                        breakdown: std::cell::Cell::new(TimeBreakdown::default()),
                    };
                    match catch_unwind(AssertUnwindSafe(|| f(&comm))) {
                        Ok(r) => {
                            *slot = Some((
                                r,
                                comm.counters.take(),
                                comm.clock.get(),
                                comm.breakdown.get(),
                            ));
                            // This rank will never communicate again: fail
                            // operations that need it instead of letting
                            // peers block forever (the failure detector the
                            // self-healing collectives rely on).
                            shared.fabric.rank_done(rank);
                            shared.enter.depart(rank);
                            shared.leave.depart(rank);
                            None
                        }
                        Err(payload) => {
                            shared.fabric.stop();
                            shared.enter.stop();
                            shared.leave.stop();
                            Some(payload)
                        }
                    }
                }));
            }
            for h in handles {
                // lint: allow(panic) — a panicking rank must abort the whole world
                if let Some(payload) = h.join().expect("rank thread poisoned the scope") {
                    panicked.get_or_insert(payload);
                }
            }
        });

        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }

        let mut results = Vec::with_capacity(n);
        let mut traffic = Vec::with_capacity(n);
        let mut finish_ns = Vec::with_capacity(n);
        let mut breakdown = Vec::with_capacity(n);
        for slot in slots {
            // lint: allow(panic) — a rank panic was already re-thrown by join above
            let (r, t, v, b) = slot.expect("rank finished without result despite no panic");
            results.push(r);
            traffic.push(t);
            finish_ns.push(v);
            breakdown.push(b);
        }
        let makespan_ns = finish_ns.iter().copied().fold(0.0, f64::max);
        let events = shared.fabric.take_trace();
        let pool = shared.fabric.pool_stats();
        (
            SimOutcome {
                results,
                traffic: WorldTraffic::new(traffic),
                finish_ns,
                makespan_ns,
                breakdown,
                pool,
            },
            events,
        )
    }
}

/// Rank-local communicator handle for the simulated backend.
pub struct SimComm {
    rank: Rank,
    size: usize,
    shared: Arc<Shared>,
    clock: std::cell::Cell<SimTime>,
    counters: CounterCell,
    breakdown: std::cell::Cell<TimeBreakdown>,
}

impl SimComm {
    /// This rank's current virtual time in nanoseconds (`f64` precision;
    /// [`Communicator::now_ns`] rounds).
    pub fn vtime(&self) -> SimTime {
        self.clock.get()
    }

    /// Advance this rank's clock by `ns` of local computation.
    ///
    /// Lets workloads model compute phases between communication calls
    /// (e.g. the matrix-multiply example's local GEMM).
    pub fn compute(&self, ns: f64) {
        assert!(ns >= 0.0, "cannot compute for negative time");
        self.clock.set(self.clock.get() + ns);
        let mut b = self.breakdown.get();
        b.compute_ns += ns;
        self.breakdown.set(b);
    }

    /// Where this rank's time has gone so far.
    pub fn time_breakdown(&self) -> TimeBreakdown {
        self.breakdown.get()
    }

    /// Attribute the clock movement across a communication call.
    fn charge_comm(&self, from: SimTime) {
        let mut b = self.breakdown.get();
        b.comm_ns += self.clock.get() - from;
        self.breakdown.set(b);
    }

    /// The placement this world is simulated on.
    pub fn placement(&self) -> Placement {
        self.shared.fabric.placement()
    }

    /// Move the clock forward to `t` if `t` is later; earlier completions
    /// (e.g. a nonblocking send that finished while we were busy) leave the
    /// clock untouched.
    fn advance_to(&self, t: SimTime) {
        self.clock.set(self.clock.get().max(t));
    }
}

/// Pending nonblocking send on the simulator.
pub struct SimSendPending {
    handle: crate::fabric::SendHandle,
    ready: SimTime,
}

/// Pending nonblocking receive on the simulator.
pub struct SimRecvPending {
    handle: crate::fabric::RecvHandle,
    ready: SimTime,
    capacity: usize,
    src: Rank,
}

impl mpsim::NonBlocking for SimComm {
    type SendPending = SimSendPending;
    type RecvPending = SimRecvPending;

    /// Post a send: the CPU pays its issue overhead now; the transfer's
    /// completion is observed at [`wait_send`](mpsim::NonBlocking::wait_send),
    /// so independent operations overlap in virtual time.
    fn isend(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<SimSendPending> {
        self.check_rank(dest)?;
        let from = self.vtime();
        let ready = from + self.shared.fabric.model().o_send_ns;
        self.advance_to(ready);
        self.charge_comm(from);
        let handle = self.shared.fabric.post_send(self.rank, dest, tag, buf, ready)?;
        self.counters.record_copy(buf.len());
        self.counters.record_send(dest, buf.len());
        Ok(SimSendPending { handle, ready })
    }

    fn irecv(&self, capacity: usize, src: Rank, tag: Tag) -> Result<SimRecvPending> {
        self.check_rank(src)?;
        let from = self.vtime();
        let ready = from + self.shared.fabric.model().o_recv_ns;
        self.advance_to(ready);
        self.charge_comm(from);
        let handle = self.shared.fabric.post_recv(src, self.rank, tag, capacity, ready)?;
        Ok(SimRecvPending { handle, ready, capacity, src })
    }

    fn wait_send(&self, pending: SimSendPending) -> Result<()> {
        let from = self.vtime();
        let done = self.shared.fabric.wait_send(&pending.handle)?;
        self.advance_to(done.max(pending.ready));
        self.charge_comm(from);
        Ok(())
    }

    fn wait_recv(&self, pending: SimRecvPending, buf: &mut [u8]) -> Result<usize> {
        assert!(buf.len() >= pending.capacity, "wait_recv buffer smaller than the posted capacity");
        let from = self.vtime();
        let (data, done) = self.shared.fabric.wait_recv(&pending.handle)?;
        buf[..data.len()].copy_from_slice(&data);
        self.counters.record_copy(data.len());
        self.advance_to(done.max(pending.ready));
        self.charge_comm(from);
        self.counters.record_recv(pending.src, data.len());
        Ok(data.len())
    }
}

impl Communicator for SimComm {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        let from = self.vtime();
        // LogGP o: the CPU is busy issuing the message before it can move.
        let ready = from + self.shared.fabric.model().o_send_ns;
        let h = self.shared.fabric.post_send(self.rank, dest, tag, buf, ready)?;
        let done = self.shared.fabric.wait_send(&h)?;
        self.advance_to(done.max(ready));
        self.charge_comm(from);
        self.counters.record_copy(buf.len());
        self.counters.record_send(dest, buf.len());
        Ok(())
    }

    fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.check_rank(src)?;
        let from = self.vtime();
        let ready = from + self.shared.fabric.model().o_recv_ns;
        let h = self.shared.fabric.post_recv(src, self.rank, tag, buf.len(), ready)?;
        let (data, done) = self.shared.fabric.wait_recv(&h)?;
        buf[..data.len()].copy_from_slice(&data);
        self.counters.record_copy(data.len());
        self.advance_to(done.max(ready));
        self.charge_comm(from);
        self.counters.record_recv(src, data.len());
        Ok(data.len())
    }

    /// Deadline-bounded receive. The bound is on *wall-clock* waiting — the
    /// simulator has no virtual-time event for "no message by T", so the
    /// timeout fires only when no matching send materializes in real time
    /// (in fault scenarios, because the sender crashed or the fault plan
    /// dropped the message). On expiry the receive offer is withdrawn,
    /// nothing is consumed, and this rank's virtual clock advances by the
    /// timeout so the wait remains visible in the simulated timeline.
    fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> Result<usize> {
        self.check_rank(src)?;
        let from = self.vtime();
        let ready = from + self.shared.fabric.model().o_recv_ns;
        let h = self.shared.fabric.post_recv(src, self.rank, tag, buf.len(), ready)?;
        let result = match self.shared.fabric.wait_recv_timeout(&h, timeout) {
            Some(r) => r,
            None => {
                if self.shared.fabric.cancel_recv(src, self.rank, tag, &h) {
                    self.advance_to(ready + timeout.as_secs_f64() * 1e9);
                    self.charge_comm(from);
                    return Err(CommError::Timeout { peer: src });
                }
                // A send matched while we were timing out: the transfer is
                // committed, so take its result rather than dropping data.
                self.shared.fabric.wait_recv(&h)
            }
        };
        let (data, done) = result?;
        buf[..data.len()].copy_from_slice(&data);
        self.counters.record_copy(data.len());
        self.advance_to(done.max(ready));
        self.charge_comm(from);
        self.counters.record_recv(src, data.len());
        Ok(data.len())
    }

    fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.check_rank(dest)?;
        self.check_rank(src)?;
        let now = self.vtime();
        // The CPU issues the send, then posts the receive: both overheads
        // serialize on this rank even though the transfers overlap.
        let model = self.shared.fabric.model();
        let send_ready = now + model.o_send_ns;
        let recv_ready = send_ready + model.o_recv_ns;
        // Post both sides before waiting on either — this is what makes
        // rings of rendezvous sendrecvs deadlock-free (MPI_Sendrecv).
        let sh = self.shared.fabric.post_send(self.rank, dest, sendtag, sendbuf, send_ready)?;
        let rh =
            self.shared.fabric.post_recv(src, self.rank, recvtag, recvbuf.len(), recv_ready)?;
        let send_done = self.shared.fabric.wait_send(&sh)?;
        let (data, recv_done) = self.shared.fabric.wait_recv(&rh)?;
        recvbuf[..data.len()].copy_from_slice(&data);
        self.counters.record_copy(sendbuf.len() + data.len());
        self.advance_to(send_done.max(recv_done).max(recv_ready));
        self.charge_comm(now);
        self.counters.record_send(dest, sendbuf.len());
        self.counters.record_recv(src, data.len());
        Ok(data.len())
    }

    /// Vectored send on the simulator: the segments are gathered straight
    /// into one pooled fabric envelope — a single transfer pays a single
    /// `α + o_send`, which is the whole point of coalescing.
    fn send_vectored(&self, buf: &[u8], spans: &[IoSpan], dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        let total = validate_spans(buf.len(), spans)?;
        let from = self.vtime();
        let ready = from + self.shared.fabric.model().o_send_ns;
        let payload =
            self.shared.fabric.gather_payload(total, spans.iter().map(|s| &buf[s.range()]));
        self.counters.record_copy(total);
        let h = self.shared.fabric.post_send_buf(self.rank, dest, tag, payload.into(), ready)?;
        let done = self.shared.fabric.wait_send(&h)?;
        self.advance_to(done.max(ready));
        self.charge_comm(from);
        self.counters.record_send_vectored(dest, total, spans.len().max(1) as u64);
        Ok(())
    }

    /// Scattered receive: the envelope is copied from the fabric's pooled
    /// buffer directly into the destination spans — no intermediate staging.
    fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        self.check_rank(src)?;
        let total = validate_spans(buf.len(), spans)?;
        let from = self.vtime();
        let ready = from + self.shared.fabric.model().o_recv_ns;
        let h = self.shared.fabric.post_recv(src, self.rank, tag, total, ready)?;
        let (data, done) = self.shared.fabric.wait_recv(&h)?;
        let n = scatter_spans(buf, spans, &data);
        self.counters.record_copy(n);
        self.advance_to(done.max(ready));
        self.charge_comm(from);
        self.counters.record_recv_vectored(src, n, spans.len().max(1) as u64);
        Ok(n)
    }

    /// Fused vectored exchange. Like [`sendrecv`](Communicator::sendrecv),
    /// both fabric offers are posted before either is awaited, so rings of
    /// rendezvous-size coalesced exchanges cannot deadlock.
    #[allow(clippy::too_many_arguments)]
    fn sendrecv_vectored(
        &self,
        buf: &mut [u8],
        send_spans: &[IoSpan],
        dest: Rank,
        sendtag: Tag,
        recv_spans: &[IoSpan],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.check_rank(dest)?;
        self.check_rank(src)?;
        let send_total = validate_spans(buf.len(), send_spans)?;
        let recv_total = validate_spans(buf.len(), recv_spans)?;
        disjoint_span_lists(send_spans, recv_spans)?;
        let now = self.vtime();
        let model = self.shared.fabric.model();
        let send_ready = now + model.o_send_ns;
        let recv_ready = send_ready + model.o_recv_ns;
        let payload = self
            .shared
            .fabric
            .gather_payload(send_total, send_spans.iter().map(|s| &buf[s.range()]));
        self.counters.record_copy(send_total);
        let sh = self.shared.fabric.post_send_buf(
            self.rank,
            dest,
            sendtag,
            payload.into(),
            send_ready,
        )?;
        let rh = self.shared.fabric.post_recv(src, self.rank, recvtag, recv_total, recv_ready)?;
        let send_done = self.shared.fabric.wait_send(&sh)?;
        let (data, recv_done) = self.shared.fabric.wait_recv(&rh)?;
        let n = scatter_spans(buf, recv_spans, &data);
        self.counters.record_copy(n);
        self.advance_to(send_done.max(recv_done).max(recv_ready));
        self.charge_comm(now);
        self.counters.record_send_vectored(dest, send_total, send_spans.len().max(1) as u64);
        self.counters.record_recv_vectored(src, n, recv_spans.len().max(1) as u64);
        Ok(n)
    }

    fn make_shared(&self, data: &[u8]) -> SharedBuf {
        // One counted copy stages the bytes into a fabric-pool rental;
        // every subsequent send_shared is a refcount clone.
        self.counters.record_copy(data.len());
        SharedBuf::new(self.shared.fabric.gather_payload(data.len(), [data]))
    }

    fn note_copy(&self, bytes: usize) {
        self.counters.record_copy(bytes);
    }

    /// Zero-copy send: a refcount clone of the shared rental is injected as
    /// the fabric payload — the sender-side `rent_copy` of the plain path
    /// disappears, and only the simulated wire time is paid.
    fn send_shared(&self, buf: &SharedBuf, dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        let from = self.vtime();
        let ready = from + self.shared.fabric.model().o_send_ns;
        let payload = Payload::Shared(buf.clone());
        let h = self.shared.fabric.post_send_buf(self.rank, dest, tag, payload, ready)?;
        let done = self.shared.fabric.wait_send(&h)?;
        self.advance_to(done.max(ready));
        self.charge_comm(from);
        self.counters.record_send(dest, buf.len());
        Ok(())
    }

    /// Owned receive: the fabric hands the in-flight payload through
    /// uncopied, so this is the receive half of the zero-copy forward chain.
    fn recv_owned(&self, capacity: usize, src: Rank, tag: Tag) -> Result<SharedBuf> {
        self.check_rank(src)?;
        let from = self.vtime();
        let ready = from + self.shared.fabric.model().o_recv_ns;
        let h = self.shared.fabric.post_recv(src, self.rank, tag, capacity, ready)?;
        let (data, done) = self.shared.fabric.wait_recv(&h)?;
        self.advance_to(done.max(ready));
        self.charge_comm(from);
        self.counters.record_recv(src, data.len());
        Ok(data.into_shared())
    }

    /// Zero-copy fused exchange. Both fabric offers are posted before either
    /// is awaited — the property that keeps rings of rendezvous-size
    /// exchanges deadlock-free — with no payload copy on either side.
    #[allow(clippy::too_many_arguments)]
    fn sendrecv_shared(
        &self,
        sendbuf: &SharedBuf,
        dest: Rank,
        sendtag: Tag,
        recv_capacity: usize,
        src: Rank,
        recvtag: Tag,
    ) -> Result<SharedBuf> {
        self.check_rank(dest)?;
        self.check_rank(src)?;
        let now = self.vtime();
        let model = self.shared.fabric.model();
        let send_ready = now + model.o_send_ns;
        let recv_ready = send_ready + model.o_recv_ns;
        let payload = Payload::Shared(sendbuf.clone());
        let sh = self.shared.fabric.post_send_buf(self.rank, dest, sendtag, payload, send_ready)?;
        let rh =
            self.shared.fabric.post_recv(src, self.rank, recvtag, recv_capacity, recv_ready)?;
        let send_done = self.shared.fabric.wait_send(&sh)?;
        let (data, recv_done) = self.shared.fabric.wait_recv(&rh)?;
        self.advance_to(send_done.max(recv_done).max(recv_ready));
        self.charge_comm(now);
        self.counters.record_send(dest, sendbuf.len());
        self.counters.record_recv(src, data.len());
        Ok(data.into_shared())
    }

    /// Barrier: all clocks jump to the latest participant plus a
    /// dissemination cost of `barrier_alpha_ns · ceil(log2 n)`.
    fn barrier(&self) -> Result<()> {
        if self.size == 1 {
            return Ok(());
        }
        self.shared.barrier_state.lock().vtimes[self.rank] = self.vtime();
        self.shared.enter.wait()?;
        let max = {
            let st = self.shared.barrier_state.lock();
            st.vtimes.iter().copied().fold(0.0, f64::max)
        };
        // Second phase keeps anyone from writing the next barrier's time
        // before every rank has read this one's maximum.
        self.shared.leave.wait()?;
        let from = self.vtime();
        let cost = self.shared.fabric.model().barrier_alpha_ns * f64::from(ceil_log2(self.size));
        self.advance_to(max + cost);
        self.charge_comm(from);
        Ok(())
    }

    fn now_ns(&self) -> u64 {
        self.vtime().round() as u64
    }

    fn check_rank(&self, rank: Rank) -> Result<()> {
        if rank < self.size {
            Ok(())
        } else {
            Err(CommError::InvalidRank { rank, size: self.size })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_world(alpha: f64, beta: f64, cores: usize, _n: usize) -> (NetworkModel, Placement) {
        (NetworkModel::uniform(alpha, beta), Placement::new(cores))
    }

    #[test]
    fn pingpong_virtual_times() {
        let (m, p) = uniform_world(1000.0, 1.0, 8, 2);
        let out = SimWorld::run(m, p, 2, |comm| {
            let mut buf = [0u8; 100];
            if comm.rank() == 0 {
                comm.send(&[7u8; 100], 1, Tag(0)).unwrap();
                comm.recv(&mut buf, 1, Tag(1)).unwrap();
            } else {
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
                comm.send(&buf, 0, Tag(1)).unwrap();
            }
            comm.vtime()
        });
        // each hop: α + 100β = 1100; round trip = 2200 (rendezvous intra:
        // both sides leave at transfer end)
        assert_eq!(out.finish_ns, vec![2200.0, 2200.0]);
        assert_eq!(out.makespan_ns, 2200.0);
        assert_eq!(out.traffic.total_bytes(), 200);
    }

    #[test]
    fn sendrecv_ring_no_deadlock_under_rendezvous() {
        // uniform → rendezvous everywhere: a naive send-then-recv would
        // deadlock; the fused sendrecv must not.
        let n = 8;
        let (m, p) = uniform_world(10.0, 1.0, 4, n);
        let out = SimWorld::run(m, p, n, |comm| {
            let sbuf = [comm.rank() as u8; 16];
            let mut rbuf = [0u8; 16];
            let right = mpsim::ring_right(comm.rank(), comm.size());
            let left = mpsim::ring_left(comm.rank(), comm.size());
            comm.sendrecv(&sbuf, right, Tag(0), &mut rbuf, left, Tag(0)).unwrap();
            rbuf[0]
        });
        for (rank, &got) in out.results.iter().enumerate() {
            assert_eq!(got as usize, mpsim::ring_left(rank, n));
        }
        // all ranks advance by exactly one transfer: 10 + 16 = 26
        assert!(out.finish_ns.iter().all(|&t| t == 26.0), "{:?}", out.finish_ns);
    }

    #[test]
    fn clocks_are_deterministic_without_contention() {
        let run = || {
            let (m, p) = uniform_world(50.0, 2.0, 4, 6);
            SimWorld::run(m, p, 6, |comm| {
                let mut buf = vec![0u8; 64];
                if comm.rank() == 0 {
                    buf = (0..64u8).collect();
                }
                bcast_like(comm, &mut buf);
                comm.vtime()
            })
            .finish_ns
        };
        // simple deterministic chain broadcast for the test
        fn bcast_like(comm: &SimComm, buf: &mut [u8]) {
            let r = comm.rank();
            if r > 0 {
                comm.recv(buf, r - 1, Tag(9)).unwrap();
            }
            if r + 1 < comm.size() {
                comm.send(buf, r + 1, Tag(9)).unwrap();
            }
        }
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // chain: each hop adds 50 + 128 = 178
        assert_eq!(a[5], 5.0 * 178.0);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let (m, p) = uniform_world(100.0, 0.0, 4, 4);
        let out = SimWorld::run(m, p, 4, |comm| {
            comm.compute(1000.0 * comm.rank() as f64);
            comm.barrier().unwrap();
            comm.vtime()
        });
        // max vtime 3000 + barrier cost 100·log2(4)=200
        assert!(out.results.iter().all(|&t| t == 3200.0), "{:?}", out.results);
    }

    #[test]
    fn compute_advances_clock() {
        let (m, p) = uniform_world(0.0, 0.0, 1, 1);
        let out = SimWorld::run(m, p, 1, |comm| {
            comm.compute(123.0);
            comm.compute(877.0);
            comm.vtime()
        });
        assert_eq!(out.results[0], 1000.0);
        assert_eq!(out.breakdown[0].compute_ns, 1000.0);
        assert_eq!(out.breakdown[0].comm_ns, 0.0);
        assert_eq!(out.breakdown[0].comm_fraction(), 0.0);
    }

    #[test]
    fn breakdown_attributes_comm_and_compute() {
        let (m, p) = uniform_world(100.0, 1.0, 4, 2);
        let out = SimWorld::run(m, p, 2, |comm| {
            comm.compute(500.0);
            let mut buf = [0u8; 50];
            if comm.rank() == 0 {
                comm.send(&[1u8; 50], 1, Tag(0)).unwrap();
            } else {
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
            }
            comm.time_breakdown()
        });
        for b in &out.breakdown {
            assert_eq!(b.compute_ns, 500.0);
            // rendezvous: both sides leave at 500 + 150 → 150ns of comm
            assert_eq!(b.comm_ns, 150.0);
            assert!((b.comm_fraction() - 150.0 / 650.0).abs() < 1e-12);
        }
        assert_eq!(out.results[0], out.breakdown[0]);
    }

    #[test]
    fn breakdown_counts_blocking_wait_as_comm() {
        // rank 1 computes for 10_000 first; rank 0's send blocks that long
        let (m, p) = uniform_world(0.0, 1.0, 4, 2);
        let out = SimWorld::run(m, p, 2, |comm| {
            let mut buf = [0u8; 10];
            if comm.rank() == 0 {
                comm.send(&[1u8; 10], 1, Tag(0)).unwrap();
            } else {
                comm.compute(10_000.0);
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
            }
            comm.time_breakdown()
        });
        assert_eq!(out.breakdown[0].comm_ns, 10_010.0); // blocked on receiver
        assert_eq!(out.breakdown[1].comm_ns, 10.0);
    }

    #[test]
    fn intra_vs_inter_costs_differ() {
        let model = NetworkModel {
            intra: crate::model::LevelCosts { alpha_ns: 10.0, beta_ns_per_byte: 0.1 },
            inter: crate::model::LevelCosts { alpha_ns: 1000.0, beta_ns_per_byte: 1.0 },
            eager_threshold: 0,
            rendezvous_handshake_ns: 0.0,
            eager_unpack_copy: false,
            contention: false,
            mem_channels: 1.0,
            barrier_alpha_ns: 0.0,
            o_send_ns: 0.0,
            o_recv_ns: 0.0,
            eager_credits: usize::MAX,
            backbone_beta_ns_per_byte: 0.0,
        };
        let out = SimWorld::run(model, Placement::new(2), 4, |comm| {
            let mut buf = [0u8; 100];
            match comm.rank() {
                0 => comm.send(&[1u8; 100], 1, Tag(0)).unwrap(), // intra (node 0)
                1 => {
                    comm.recv(&mut buf, 0, Tag(0)).unwrap();
                }
                2 => comm.send(&[1u8; 100], 3, Tag(1)).unwrap(), // intra (node 1)
                _ => {
                    comm.recv(&mut buf, 2, Tag(1)).unwrap();
                }
            }
            comm.vtime()
        });
        assert_eq!(out.results[1], 10.0 + 10.0); // α + 100·0.1
                                                 // now inter-node
        let model = NetworkModel {
            intra: crate::model::LevelCosts { alpha_ns: 10.0, beta_ns_per_byte: 0.1 },
            inter: crate::model::LevelCosts { alpha_ns: 1000.0, beta_ns_per_byte: 1.0 },
            eager_threshold: 0,
            rendezvous_handshake_ns: 0.0,
            eager_unpack_copy: false,
            contention: false,
            mem_channels: 1.0,
            barrier_alpha_ns: 0.0,
            o_send_ns: 0.0,
            o_recv_ns: 0.0,
            eager_credits: usize::MAX,
            backbone_beta_ns_per_byte: 0.0,
        };
        let out = SimWorld::run(model, Placement::new(1), 2, |comm| {
            let mut buf = [0u8; 100];
            if comm.rank() == 0 {
                comm.send(&[1u8; 100], 1, Tag(0)).unwrap();
            } else {
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
            }
            comm.vtime()
        });
        assert_eq!(out.results[1], 1000.0 + 100.0);
    }

    #[test]
    fn panic_propagates_and_unblocks() {
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let (m, p) = uniform_world(0.0, 0.0, 4, 3);
            SimWorld::run(m, p, 3, |comm| {
                if comm.rank() == 2 {
                    panic!("sim rank exploded");
                }
                let mut buf = [0u8; 1];
                let _ = comm.recv(&mut buf, 2, Tag(0));
                let _ = comm.barrier();
            })
        }));
        assert!(res.is_err());
    }

    #[test]
    fn recv_timeout_expires_when_no_message_comes() {
        let (m, p) = uniform_world(0.0, 0.0, 4, 2);
        let out = SimWorld::run(m, p, 2, |comm| {
            let mut buf = [0u8; 8];
            if comm.rank() == 1 {
                // nothing is ever sent on Tag(7); rank 0 stays alive blocked
                // on Tag(1), so this must be a genuine timeout, not PeerFailed
                let got =
                    comm.recv_timeout(&mut buf, 0, Tag(7), std::time::Duration::from_millis(50));
                comm.send(&[1], 0, Tag(1)).unwrap();
                got.unwrap_err()
            } else {
                comm.recv(&mut buf, 1, Tag(1)).unwrap();
                CommError::WorldStopped // placeholder, unchecked
            }
        });
        assert_eq!(out.results[1], CommError::Timeout { peer: 0 });
    }

    #[test]
    fn recv_timeout_delivers_message_arriving_in_time() {
        let (m, p) = uniform_world(10.0, 1.0, 4, 2);
        let out = SimWorld::run(m, p, 2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[42u8; 16], 1, Tag(0)).unwrap();
                0
            } else {
                let mut buf = [0u8; 16];
                let n = comm
                    .recv_timeout(&mut buf, 0, Tag(0), std::time::Duration::from_secs(30))
                    .unwrap();
                assert_eq!(&buf[..n], &[42u8; 16]);
                n
            }
        });
        assert_eq!(out.results[1], 16);
        assert_eq!(out.traffic.total_bytes(), 16);
    }

    #[test]
    fn recv_from_done_rank_fails_instead_of_hanging() {
        let (m, p) = uniform_world(0.0, 0.0, 4, 2);
        let out = SimWorld::run(m, p, 2, |comm| {
            if comm.rank() == 1 {
                return None; // exits immediately without sending
            }
            let mut buf = [0u8; 8];
            Some(comm.recv(&mut buf, 1, Tag(0)).unwrap_err())
        });
        assert_eq!(out.results[0], Some(CommError::PeerFailed { rank: 1 }));
    }

    #[test]
    fn messages_sent_before_exit_are_still_delivered() {
        let mut m = NetworkModel::uniform(0.0, 1.0);
        m.eager_threshold = usize::MAX; // sender completes without the receiver
        let out = SimWorld::run(m, Placement::new(4), 2, |comm| {
            if comm.rank() == 1 {
                comm.send(&[1u8; 4], 0, Tag(0)).unwrap();
                comm.send(&[2u8; 4], 0, Tag(0)).unwrap();
                return (0, None);
            }
            let mut buf = [0u8; 4];
            comm.recv(&mut buf, 1, Tag(0)).unwrap();
            let first = buf[0];
            comm.recv(&mut buf, 1, Tag(0)).unwrap();
            assert_eq!((first, buf[0]), (1, 2));
            // queue drained: the third receive observes the exit
            ((first + buf[0]) as usize, Some(comm.recv(&mut buf, 1, Tag(0)).unwrap_err()))
        });
        assert_eq!(out.results[0], (3, Some(CommError::PeerFailed { rank: 1 })));
    }

    #[test]
    fn barrier_after_peer_exit_fails_instead_of_hanging() {
        let (m, p) = uniform_world(0.0, 0.0, 4, 3);
        let out = SimWorld::run(m, p, 3, |comm| {
            if comm.rank() == 2 {
                return None;
            }
            // rank 2 never arrives; without departure tracking this would
            // deadlock the world
            Some(comm.barrier().unwrap_err())
        });
        assert_eq!(out.results[0], Some(CommError::PeerFailed { rank: 2 }));
        assert_eq!(out.results[1], Some(CommError::PeerFailed { rank: 2 }));
        assert_eq!(out.results[2], None);
    }

    #[test]
    fn rendezvous_send_to_exited_rank_fails_instead_of_hanging() {
        let (m, p) = uniform_world(0.0, 1.0, 4, 2); // uniform → rendezvous
        let out = SimWorld::run(m, p, 2, |comm| {
            if comm.rank() == 1 {
                return None;
            }
            Some(comm.send(&[0u8; 64], 1, Tag(0)).unwrap_err())
        });
        assert_eq!(out.results[0], Some(CommError::PeerFailed { rank: 1 }));
    }

    #[test]
    fn nonblocking_operations_overlap_in_virtual_time() {
        use mpsim::NonBlocking;
        // Rank 1 posts two receives before either message exists; both
        // transfers overlap, so its finish time reflects the LATER of the
        // two, not their sum.
        let (m, p) = uniform_world(0.0, 1.0, 4, 3);
        let out = SimWorld::run(m, p, 3, |comm| {
            match comm.rank() {
                0 => comm.send(&[0u8; 100], 1, Tag(0)).unwrap(),
                2 => comm.send(&[0u8; 100], 1, Tag(1)).unwrap(),
                _ => {
                    let r0 = comm.irecv(100, 0, Tag(0)).unwrap();
                    let r2 = comm.irecv(100, 2, Tag(1)).unwrap();
                    let mut b = [0u8; 100];
                    comm.wait_recv(r0, &mut b).unwrap();
                    comm.wait_recv(r2, &mut b).unwrap();
                }
            }
            comm.vtime()
        });
        // uniform model: rendezvous, both transfers start at 0, 100ns each,
        // fully overlapped -> receiver finishes at 100, not 200.
        assert_eq!(out.results[1], 100.0);
    }

    #[test]
    fn nonblocking_send_then_wait_matches_blocking_send() {
        use mpsim::NonBlocking;
        let (m, p) = uniform_world(50.0, 2.0, 4, 2);
        let out = SimWorld::run(m, p, 2, |comm| {
            if comm.rank() == 0 {
                let s = comm.isend(&[7u8; 25], 1, Tag(3)).unwrap();
                comm.wait_send(s).unwrap();
            } else {
                let mut b = [0u8; 25];
                comm.recv(&mut b, 0, Tag(3)).unwrap();
                assert_eq!(b, [7u8; 25]);
            }
            comm.vtime()
        });
        // rendezvous intra: both sides leave at 50 + 50 = 100
        assert_eq!(out.results, vec![100.0, 100.0]);
    }

    #[test]
    fn run_traced_records_every_transfer() {
        let (m, p) = uniform_world(10.0, 1.0, 2, 4);
        let (out, events) = SimWorld::run_traced(m, p, 4, |comm| {
            if comm.rank() == 0 {
                for peer in 1..comm.size() {
                    comm.send(&vec![0u8; peer * 10], peer, Tag(0)).unwrap();
                }
            } else {
                let mut buf = vec![0u8; comm.rank() * 10];
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
            }
        });
        assert_eq!(events.len() as u64, out.traffic.total_msgs());
        let summary = crate::events::summarize(&events);
        assert_eq!(summary.intra_msgs + summary.inter_msgs, 3);
        assert_eq!(summary.intra_bytes + summary.inter_bytes, 60);
        // ranks 0,1 share node 0; ranks 2,3 are on node 1
        assert_eq!(summary.intra_msgs, 1);
        assert!(events.iter().all(|e| e.delivered_ns >= e.sender_ready_ns));
        // plain run() records nothing
        let (m, p) = uniform_world(10.0, 1.0, 2, 2);
        let out = SimWorld::run(m, p, 2, |comm| comm.rank());
        assert_eq!(out.results, vec![0, 1]);
    }

    #[test]
    fn traffic_counted_same_as_threaded_backend() {
        let (m, p) = uniform_world(5.0, 1.0, 4, 4);
        let out = SimWorld::run(m, p, 4, |comm| {
            if comm.rank() == 0 {
                for peer in 1..comm.size() {
                    comm.send(&[0u8; 8], peer, Tag(0)).unwrap();
                }
            } else {
                let mut buf = [0u8; 8];
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
            }
        });
        assert_eq!(out.traffic.total_msgs(), 3);
        assert_eq!(out.traffic.total_bytes(), 24);
        assert!(out.traffic.is_balanced());
    }

    #[test]
    fn vectored_roundtrip_single_envelope() {
        let (m, p) = uniform_world(10.0, 1.0, 4, 2);
        let out = SimWorld::run(m, p, 2, |comm| {
            if comm.rank() == 0 {
                let src: Vec<u8> = (0..32).collect();
                comm.send_vectored(&src, &[IoSpan::new(12, 4), IoSpan::new(2, 3)], 1, Tag(0))
                    .unwrap();
                Vec::new()
            } else {
                let mut dst = vec![0u8; 16];
                let n = comm
                    .recv_scattered(&mut dst, &[IoSpan::new(0, 4), IoSpan::new(6, 3)], 0, Tag(0))
                    .unwrap();
                assert_eq!(n, 7);
                dst
            }
        });
        assert_eq!(&out.results[1][..4], &[12, 13, 14, 15]);
        assert_eq!(&out.results[1][6..9], &[2, 3, 4]);
        // 2 logical messages rode in 1 physical envelope, each way.
        assert_eq!(out.traffic.total_msgs(), 2);
        assert_eq!(out.traffic.total_envelopes(), 1);
        assert_eq!(out.traffic.total_bytes(), 7);
        assert!(out.traffic.is_balanced());
        // one envelope of 7 bytes: both sides leave at α + 7β = 17
        assert_eq!(out.finish_ns, vec![17.0, 17.0]);
    }

    #[test]
    fn vectored_send_gathers_with_exactly_one_counted_copy() {
        // Regression: the vectored send once assembled its segments into an
        // intermediate buffer and then staged that buffer into the fabric
        // envelope — two passes over every payload byte. `gather_payload`
        // now fills the pool rental straight from the caller's segments, so
        // the sender's whole bill is the single gather pass (and the
        // receiver's the single scatter pass out of the matched envelope).
        let (m, p) = uniform_world(10.0, 1.0, 4, 2);
        let out = SimWorld::run(m, p, 2, |comm| {
            if comm.rank() == 0 {
                let src: Vec<u8> = (0..32).collect();
                comm.send_vectored(&src, &[IoSpan::new(0, 8), IoSpan::new(16, 8)], 1, Tag(0))
                    .unwrap();
            } else {
                let mut dst = vec![0u8; 16];
                comm.recv_scattered(&mut dst, &[IoSpan::new(0, 16)], 0, Tag(0)).unwrap();
            }
        });
        assert_eq!(
            out.traffic.per_rank[0].bytes_copied, 16,
            "sender must pay exactly one gather pass, not gather + restage"
        );
        assert_eq!(
            out.traffic.per_rank[1].bytes_copied, 16,
            "receiver must pay exactly one scatter pass"
        );
    }

    #[test]
    fn shared_send_owned_recv_pays_only_the_staging_copy() {
        // The zero-copy surface on the simulator: one counted staging copy
        // covers any number of refcounted sends, and an owned receive takes
        // the in-flight envelope without touching RAM at all.
        let (m, p) = uniform_world(10.0, 1.0, 4, 2);
        let out = SimWorld::run(m, p, 2, |comm| {
            if comm.rank() == 0 {
                let shared = comm.make_shared(&[0xAB; 64]);
                comm.send_shared(&shared, 1, Tag(0)).unwrap();
                comm.send_shared(&shared, 1, Tag(1)).unwrap();
            } else {
                let a = comm.recv_owned(64, 0, Tag(0)).unwrap();
                let b = comm.recv_owned(64, 0, Tag(1)).unwrap();
                assert_eq!(&a[..], &[0xAB; 64]);
                assert_eq!(&b[..], &[0xAB; 64]);
            }
        });
        assert_eq!(out.traffic.per_rank[0].bytes_copied, 64, "one staging copy, two sends");
        assert_eq!(out.traffic.per_rank[1].bytes_copied, 0, "owned receives copy nothing");
        assert_eq!(out.traffic.total_bytes(), 128, "wire accounting is unchanged");
    }

    #[test]
    fn sendrecv_vectored_ring_no_deadlock_under_rendezvous() {
        // uniform → rendezvous everywhere: the fused vectored exchange must
        // post both offers before waiting, exactly like plain sendrecv.
        let n = 6;
        let (m, p) = uniform_world(10.0, 1.0, 4, n);
        let out = SimWorld::run(m, p, n, |comm| {
            let mut buf = vec![0u8; 32];
            buf[..8].fill(comm.rank() as u8);
            buf[8..16].fill(comm.rank() as u8 + 100);
            let right = mpsim::ring_right(comm.rank(), comm.size());
            let left = mpsim::ring_left(comm.rank(), comm.size());
            comm.sendrecv_vectored(
                &mut buf,
                &[IoSpan::new(0, 8), IoSpan::new(8, 8)],
                right,
                Tag(0),
                &[IoSpan::new(16, 8), IoSpan::new(24, 8)],
                left,
                Tag(0),
            )
            .unwrap();
            (buf[16], buf[24])
        });
        for (rank, &(a, b)) in out.results.iter().enumerate() {
            let left = mpsim::ring_left(rank, n) as u8;
            assert_eq!((a, b), (left, left + 100));
        }
        // 2 logical msgs per directed transfer, 1 envelope per transfer.
        assert_eq!(out.traffic.total_msgs(), 2 * n as u64);
        assert_eq!(out.traffic.total_envelopes(), n as u64);
        assert!(out.traffic.is_balanced());
    }
}
