//! Transfer-event tracing: an optional per-message record of what the
//! fabric did, for post-mortem analysis of a simulated run (per-level
//! volumes, time profiles, hot nodes) without instrumenting algorithms.
//!
//! Recording is opt-in (`SimWorld::run_traced`) because a large sweep can
//! commit millions of transfers.

use mpsim::Rank;

use crate::topology::{Level, Placement};

/// One completed point-to-point transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferEvent {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Payload bytes.
    pub bytes: usize,
    /// Communication level (derived from the run's placement).
    pub level: Level,
    /// Whether the eager protocol carried it.
    pub eager: bool,
    /// Virtual time the sender was ready to move the data.
    pub sender_ready_ns: f64,
    /// Virtual time the receiver observed completion.
    pub delivered_ns: f64,
}

impl TransferEvent {
    /// End-to-end latency the receiver observed past sender readiness.
    pub fn span_ns(&self) -> f64 {
        self.delivered_ns - self.sender_ready_ns
    }
}

/// Aggregate view over a trace.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TraceSummary {
    /// Messages and bytes that stayed on a node.
    pub intra_msgs: u64,
    /// Intra-node payload bytes.
    pub intra_bytes: u64,
    /// Messages that crossed nodes.
    pub inter_msgs: u64,
    /// Inter-node payload bytes.
    pub inter_bytes: u64,
    /// Eager-protocol messages.
    pub eager_msgs: u64,
    /// Mean observed transfer span in nanoseconds.
    pub mean_span_ns: f64,
    /// Maximum observed transfer span in nanoseconds.
    pub max_span_ns: f64,
}

/// Summarize a trace.
pub fn summarize(events: &[TransferEvent]) -> TraceSummary {
    let mut s = TraceSummary::default();
    let mut span_total = 0.0;
    for e in events {
        match e.level {
            Level::IntraNode => {
                s.intra_msgs += 1;
                s.intra_bytes += e.bytes as u64;
            }
            Level::InterNode => {
                s.inter_msgs += 1;
                s.inter_bytes += e.bytes as u64;
            }
        }
        s.eager_msgs += u64::from(e.eager);
        span_total += e.span_ns();
        s.max_span_ns = s.max_span_ns.max(e.span_ns());
    }
    if !events.is_empty() {
        s.mean_span_ns = span_total / events.len() as f64;
    }
    s
}

/// Per-node outgoing byte totals — quick "who is the hot spot" view.
pub fn bytes_by_source_node(events: &[TransferEvent], placement: Placement) -> Vec<u64> {
    let nodes = events.iter().map(|e| placement.node_of(e.src)).max().map_or(0, |m| m + 1);
    let mut out = vec![0u64; nodes];
    for e in events {
        out[placement.node_of(e.src)] += e.bytes as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: Rank, dst: Rank, bytes: usize, level: Level, t0: f64, t1: f64) -> TransferEvent {
        TransferEvent {
            src,
            dst,
            bytes,
            level,
            eager: false,
            sender_ready_ns: t0,
            delivered_ns: t1,
        }
    }

    #[test]
    fn summary_splits_levels_and_spans() {
        let events = vec![
            ev(0, 1, 100, Level::IntraNode, 0.0, 10.0),
            ev(0, 8, 200, Level::InterNode, 5.0, 35.0),
            ev(1, 9, 50, Level::InterNode, 0.0, 20.0),
        ];
        let s = summarize(&events);
        assert_eq!(s.intra_msgs, 1);
        assert_eq!(s.intra_bytes, 100);
        assert_eq!(s.inter_msgs, 2);
        assert_eq!(s.inter_bytes, 250);
        assert_eq!(s.max_span_ns, 30.0);
        assert!((s.mean_span_ns - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_summarizes_to_zeros() {
        assert_eq!(summarize(&[]), TraceSummary::default());
    }

    #[test]
    fn per_node_byte_attribution() {
        let p = Placement::new(4);
        let events = vec![
            ev(0, 5, 100, Level::InterNode, 0.0, 1.0),
            ev(1, 2, 10, Level::IntraNode, 0.0, 1.0),
            ev(6, 0, 40, Level::InterNode, 0.0, 1.0),
        ];
        assert_eq!(bytes_by_source_node(&events, p), vec![110, 40]);
    }
}
