//! Machine presets approximating the paper's two evaluation platforms.
//!
//! The absolute constants are documented estimates, not measurements of the
//! original systems — the reproduction targets the *shape* of the paper's
//! results (who wins, by what factor, where the knees are), which depends on
//! the α/β ratios, the eager/rendezvous switch, and the contention model
//! rather than on exact 2015 hardware numbers.
//!
//! * **Hornet** (Cray XC40): dual 12-core Haswell E5-2680v3 (24 ranks/node,
//!   ~60 MiB of L3 per node), Aries dragonfly interconnect (~10 GB/s
//!   injection per node, ~1.3 µs latency). Cray MPI switches to rendezvous
//!   around 8 KiB; the paper notes the rendezvous protocol covers its whole
//!   Fig. 8 sweep.
//! * **Laki** (NEC cluster): dual 4-core Xeon X5560 (8 ranks/node, 8 MiB L3
//!   per socket), QDR InfiniBand (~3.2 GB/s, ~1.8 µs).

use crate::model::{LevelCosts, NetworkModel};
use crate::topology::Placement;

/// A named machine configuration: placement plus a network-model factory
/// that can account for per-run cache pressure.
#[derive(Debug, Clone)]
pub struct MachinePreset {
    /// Human-readable name used in harness output.
    pub name: &'static str,
    /// Rank→node placement (block by default; swap in
    /// [`Placement::round_robin`] for placement ablations).
    pub placement: Placement,
    /// Base model (no cache pressure).
    pub base: NetworkModel,
    /// Last-level cache per node in bytes; when a broadcast's per-node
    /// footprint (`nbytes × ranks_on_node`) exceeds this, intra-node copies
    /// slow down by `llc_beta_factor`.
    pub llc_bytes_per_node: usize,
    /// Intra-node β multiplier once the footprint spills out of LLC.
    pub llc_beta_factor: f64,
}

impl MachinePreset {
    /// Placement for this machine.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Hardware cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.placement.cores_per_node
    }

    /// Network model for a broadcast of `nbytes` over `size` ranks,
    /// applying LLC-pressure degradation to intra-node bandwidth when the
    /// per-node buffer footprint exceeds the cache.
    ///
    /// This is what produces the bandwidth knee the paper attributes to
    /// "cache effects" (Fig. 6(c) around 3 MB) without teaching the fabric
    /// anything about the workload.
    pub fn model_for(&self, nbytes: usize, size: usize) -> NetworkModel {
        let mut model = self.base.clone();
        let ranks_on_node = self.placement.max_ranks_per_node(size);
        let footprint = nbytes.saturating_mul(ranks_on_node);
        if self.llc_bytes_per_node > 0 && footprint > self.llc_bytes_per_node {
            model.intra.beta_ns_per_byte *= self.llc_beta_factor;
        }
        model
    }
}

/// Hornet-like Cray XC40 preset (the platform of every figure in the paper).
pub fn hornet() -> MachinePreset {
    MachinePreset {
        name: "hornet-xc40",
        placement: Placement::new(24),
        base: NetworkModel {
            // Shared-memory copy: ~0.4 µs setup, ~6 GB/s effective per copy
            // stream (β ≈ 0.167 ns/B).
            intra: LevelCosts { alpha_ns: 400.0, beta_ns_per_byte: 0.167 },
            // Aries: ~1.3 µs, ~10 GB/s node injection (β = 0.1 ns/B).
            inter: LevelCosts { alpha_ns: 1300.0, beta_ns_per_byte: 0.10 },
            // Rendezvous-dominant, matching the paper's observation that
            // Cray MPI stays in rendezvous across the measured range; eager
            // is kept for sub-KiB control traffic. (Large-message eager with
            // saturated shared channels degenerates into an unfair wave
            // under this simulator's earliest-ready-first arbitration — see
            // DESIGN.md "protocol choice".)
            eager_threshold: 8192,
            rendezvous_handshake_ns: 900.0,
            eager_unpack_copy: true,
            contention: true,
            mem_channels: 8.0,
            barrier_alpha_ns: 1300.0,
            o_send_ns: 250.0,
            o_recv_ns: 250.0,
            eager_credits: 4,
            backbone_beta_ns_per_byte: 0.0,
        },
        llc_bytes_per_node: 60 << 20, // 2 × 30 MiB L3
        llc_beta_factor: 2.2,
    }
}

/// Laki-like NEC/InfiniBand preset (the paper's second platform; the paper
/// reports it shows "the same bandwidth performance trend").
pub fn laki() -> MachinePreset {
    MachinePreset {
        name: "laki-nec",
        placement: Placement::new(8),
        base: NetworkModel {
            intra: LevelCosts { alpha_ns: 500.0, beta_ns_per_byte: 0.25 },
            inter: LevelCosts { alpha_ns: 1800.0, beta_ns_per_byte: 0.3125 }, // ~3.2 GB/s QDR
            eager_threshold: 12288,
            rendezvous_handshake_ns: 1500.0,
            eager_unpack_copy: true,
            contention: true,
            mem_channels: 4.0,
            barrier_alpha_ns: 1800.0,
            o_send_ns: 400.0,
            o_recv_ns: 400.0,
            eager_credits: 4,
            backbone_beta_ns_per_byte: 0.0,
        },
        llc_bytes_per_node: 16 << 20, // 2 × 8 MiB L3
        llc_beta_factor: 2.5,
    }
}

/// An idealized contention-free machine (pure Hockney): useful for
/// closed-form validation and as an ablation showing that without shared
/// resources the tuned ring's advantage shrinks to the skipped transfers'
/// serial time only.
pub fn ideal(cores_per_node: usize) -> MachinePreset {
    MachinePreset {
        name: "ideal-hockney",
        placement: Placement::new(cores_per_node),
        base: NetworkModel {
            intra: LevelCosts { alpha_ns: 400.0, beta_ns_per_byte: 0.167 },
            inter: LevelCosts { alpha_ns: 1300.0, beta_ns_per_byte: 0.10 },
            // Rendezvous-dominant, matching the paper's observation that
            // Cray MPI stays in rendezvous across the measured range; eager
            // is kept for sub-KiB control traffic. (Large-message eager with
            // saturated shared channels degenerates into an unfair wave
            // under this simulator's earliest-ready-first arbitration — see
            // DESIGN.md "protocol choice".)
            eager_threshold: 8192,
            rendezvous_handshake_ns: 900.0,
            eager_unpack_copy: false,
            contention: false,
            mem_channels: 8.0,
            barrier_alpha_ns: 1300.0,
            o_send_ns: 0.0,
            o_recv_ns: 0.0,
            eager_credits: usize::MAX,
            backbone_beta_ns_per_byte: 0.0,
        },
        llc_bytes_per_node: 0,
        llc_beta_factor: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hornet_geometry_matches_paper() {
        let h = hornet();
        assert_eq!(h.cores_per_node(), 24);
        // np=16 fits one node (paper: "All data transmissions occur within
        // one node when only 16 processes are launched")
        assert_eq!(h.placement().node_count(16), 1);
        assert_eq!(h.placement().node_count(64), 3);
        assert_eq!(h.placement().node_count(256), 11);
    }

    #[test]
    fn llc_pressure_kicks_in_for_large_footprints() {
        let h = hornet();
        let small = h.model_for(1 << 20, 256); // 24 MiB/node < 60 MiB
        let big = h.model_for(4 << 20, 256); // 96 MiB/node > 60 MiB
        assert_eq!(small.intra.beta_ns_per_byte, h.base.intra.beta_ns_per_byte);
        assert!(big.intra.beta_ns_per_byte > small.intra.beta_ns_per_byte);
        // inter-node unaffected
        assert_eq!(big.inter.beta_ns_per_byte, small.inter.beta_ns_per_byte);
    }

    #[test]
    fn llc_uses_actual_ranks_on_node() {
        // 4 ranks on a 24-core node: footprint 4 × nbytes.
        let h = hornet();
        let m = h.model_for(20 << 20, 4); // 80 MiB > 60 MiB
        assert!(m.intra.beta_ns_per_byte > h.base.intra.beta_ns_per_byte);
        let m = h.model_for(14 << 20, 4); // 56 MiB < 60 MiB
        assert_eq!(m.intra.beta_ns_per_byte, h.base.intra.beta_ns_per_byte);
    }

    #[test]
    fn ideal_preset_has_no_contention() {
        let m = ideal(24).model_for(1 << 24, 256);
        assert!(!m.contention);
        assert!(!m.eager_unpack_copy);
    }

    #[test]
    fn inter_node_slower_than_intra_for_latency() {
        for preset in [hornet(), laki()] {
            assert!(preset.base.inter.alpha_ns > preset.base.intra.alpha_ns, "{}", preset.name);
        }
    }
}
