//! Deterministic fault injection for communicator stacks.
//!
//! A [`FaultPlan`] is a pure function from `(seed, src, dst, k)` — the k-th
//! message ever offered on the directed link `src → dst` — to a
//! [`FaultAction`]. Decisions are derived with the in-tree SplitMix64
//! generator, so a plan is replayed *identically* from its seed on any
//! executor: the decision depends only on per-link message ordinals, which
//! are program-order deterministic on each rank, never on wall-clock timing
//! or thread scheduling.
//!
//! [`FaultyComm`] applies a plan as a decorator over any
//! [`Communicator`]: it drops, duplicates, or holds back outgoing messages
//! and fail-stops the rank after a planned number of operations. Stack it
//! under [`mpsim::ReliableComm`] to exercise the retransmission machinery,
//! or alone to exercise the self-healing collectives' crash recovery.
//!
//! Injection happens at the *send side* of the decorated rank, which keeps
//! the fabric/mailbox layers fault-free and identical across executors. The
//! decorator assumes an eager-ish transport (sends complete without the
//! receiver): dropping a rendezvous send would otherwise block the sender
//! forever. The threaded backend is always eager; simulated worlds should
//! use a model with a high `eager_threshold` when injecting drops.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use mpsim::{
    validate_spans, AsyncCommunicator, CommError, Communicator, IoSpan, Rank, Result, Tag,
};
use testkit::rng::{Rng, SplitMix64};

/// What happens to one message offered on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The message goes through untouched.
    Deliver,
    /// The message silently disappears.
    Drop,
    /// The message is delivered twice.
    Duplicate,
    /// The message is held back and overtaken by the next message on the
    /// same `(destination, tag)` channel — a bounded reorder, which is also
    /// how a latency spike manifests at message granularity.
    Delay,
}

/// Per-link fault probabilities, in parts per million of messages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Probability a message is dropped.
    pub drop_ppm: u32,
    /// Probability a message is duplicated.
    pub dup_ppm: u32,
    /// Probability a message is delayed past its successor.
    pub delay_ppm: u32,
}

impl LinkFaults {
    /// A link that never misbehaves.
    pub const NONE: LinkFaults = LinkFaults { drop_ppm: 0, dup_ppm: 0, delay_ppm: 0 };

    /// Combined misbehavior probability — zero means the link is clean.
    pub fn total(&self) -> u32 {
        self.drop_ppm + self.dup_ppm + self.delay_ppm
    }
}

/// A seeded, deterministic schedule of faults for one world.
///
/// Clone-cheap (`Arc` inside); every rank's [`FaultyComm`] shares one plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

#[derive(Debug, Clone)]
struct PlanInner {
    seed: u64,
    default: LinkFaults,
    per_link: HashMap<(Rank, Rank), LinkFaults>,
    /// rank → number of communication operations after which it fail-stops.
    crash_after: HashMap<Rank, u64>,
}

impl FaultPlan {
    /// A plan with no faults at all, replayable from `seed` once faults are
    /// added with the builder methods.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            inner: Arc::new(PlanInner {
                seed,
                default: LinkFaults::NONE,
                per_link: HashMap::new(),
                crash_after: HashMap::new(),
            }),
        }
    }

    /// The seed this plan replays from.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    fn make_mut(&mut self) -> &mut PlanInner {
        // Builder-time only; plans are never mutated once shared.
        Arc::make_mut(&mut self.inner)
    }

    /// Apply `faults` to every link without a per-link override.
    pub fn with_default(mut self, faults: LinkFaults) -> Self {
        self.make_mut().default = faults;
        self
    }

    /// Override the fault rates of the directed link `src → dst`.
    pub fn with_link(mut self, src: Rank, dst: Rank, faults: LinkFaults) -> Self {
        self.make_mut().per_link.insert((src, dst), faults);
        self
    }

    /// Fail-stop `rank` after it has performed `after_ops` communication
    /// operations (sends, receives, and barriers all count).
    pub fn with_crash(mut self, rank: Rank, after_ops: u64) -> Self {
        self.make_mut().crash_after.insert(rank, after_ops);
        self
    }

    /// The operation count at which `rank` fail-stops, if planned.
    pub fn crash_after(&self, rank: Rank) -> Option<u64> {
        self.inner.crash_after.get(&rank).copied()
    }

    /// Every planned crash as `(rank, after_ops)`, in rank order — the
    /// read side of [`FaultPlan::with_crash`], used by plan mutators.
    pub fn crashes(&self) -> Vec<(Rank, u64)> {
        let mut all: Vec<(Rank, u64)> =
            self.inner.crash_after.iter().map(|(&r, &a)| (r, a)).collect();
        all.sort_unstable();
        all
    }

    /// Remove the planned crash of `rank`, if any — the shrinking
    /// counterpart of [`FaultPlan::with_crash`].
    pub fn without_crash(mut self, rank: Rank) -> Self {
        self.make_mut().crash_after.remove(&rank);
        self
    }

    /// The fault rates applied to links without a per-link override — the
    /// read side of [`FaultPlan::with_default`].
    pub fn default_faults(&self) -> LinkFaults {
        self.inner.default
    }

    /// The fault rates governing the directed link `src → dst`.
    pub fn link(&self, src: Rank, dst: Rank) -> LinkFaults {
        self.inner.per_link.get(&(src, dst)).copied().unwrap_or(self.inner.default)
    }

    /// Decide the fate of the `k`-th message offered on `src → dst`.
    ///
    /// Pure in `(seed, src, dst, k)`: the same call returns the same action
    /// on every executor and every replay.
    pub fn decide(&self, src: Rank, dst: Rank, k: u64) -> FaultAction {
        let faults = self.link(src, dst);
        if faults.total() == 0 {
            return FaultAction::Deliver;
        }
        let mixed = self.inner.seed
            ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ k.wrapping_mul(0x1656_67B1_9E37_79F9);
        let roll = SplitMix64::new(mixed).gen_index(1_000_000) as u32;
        if roll < faults.drop_ppm {
            FaultAction::Drop
        } else if roll < faults.drop_ppm + faults.dup_ppm {
            FaultAction::Duplicate
        } else if roll < faults.total() {
            FaultAction::Delay
        } else {
            FaultAction::Deliver
        }
    }
}

/// A [`Communicator`] decorator that injects the faults of a [`FaultPlan`].
///
/// Send-side faults (drop, duplicate, delay) are applied to this rank's
/// outgoing messages; a planned crash makes every operation after the
/// threshold fail with [`CommError::PeerFailed`] naming this rank itself, so
/// the rank's closure can return early — exactly the observable behavior of
/// a fail-stop process. Peers then detect the silence through timeouts or
/// the backend's exited-rank detector.
///
/// Link faults target payload-bearing messages only: sends on the
/// reliability layer's reserved acknowledgement range
/// ([`mpsim::reliable::ACK_TAG_BASE`]) pass through un-faulted, modelling a
/// reliable control plane (see the comment in [`Communicator::send`] for
/// why a synchronous reliability layer needs this).
pub struct FaultyComm<'a, C: ?Sized> {
    inner: &'a C,
    plan: FaultPlan,
    /// Messages offered so far per outgoing link (the `k` of the plan).
    link_seq: RefCell<HashMap<Rank, u64>>,
    /// Held-back message per `(dst, tag)` channel awaiting its successor.
    holdback: RefCell<HashMap<(Rank, u32), Vec<u8>>>,
    /// Communication operations performed so far (crash clock).
    ops: Cell<u64>,
    /// Whether the planned fail-stop has fired.
    dead: Cell<bool>,
}

impl<'a, C: ?Sized> FaultyComm<'a, C> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: &'a C, plan: FaultPlan) -> Self {
        FaultyComm {
            inner,
            plan,
            link_seq: RefCell::new(HashMap::new()),
            holdback: RefCell::new(HashMap::new()),
            ops: Cell::new(0),
            dead: Cell::new(false),
        }
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        self.inner
    }

    /// Count one operation by rank `me` against the crash clock; once the
    /// planned threshold is reached the rank is dead to the world. The
    /// caller supplies its own rank so the crash clock is shared verbatim
    /// between the blocking and the async decorator paths.
    fn tick_at(&self, me: Rank) -> Result<()> {
        let done = self.ops.get();
        self.ops.set(done + 1);
        match self.plan.crash_after(me) {
            Some(limit) if done >= limit => {
                self.dead.set(true);
                Err(CommError::PeerFailed { rank: me })
            }
            _ => Ok(()),
        }
    }

    /// Whether this rank's planned fail-stop has fired.
    pub fn crashed(&self) -> bool {
        self.dead.get()
    }

    fn next_link_seq(&self, dst: Rank) -> u64 {
        let mut seqs = self.link_seq.borrow_mut();
        let k = seqs.entry(dst).or_insert(0);
        let cur = *k;
        *k += 1;
        cur
    }

    /// Remove and return the held-back message on `(dst, tag)`, if any.
    fn take_holdback(&self, dst: Rank, tag: Tag) -> Option<Vec<u8>> {
        self.holdback.borrow_mut().remove(&(dst, tag.0))
    }

    /// Stash a delayed message on `(dst, tag)`, returning the previously
    /// held one (which its overtaker has now released).
    fn stash_holdback(&self, dst: Rank, tag: Tag, data: Vec<u8>) -> Option<Vec<u8>> {
        self.holdback.borrow_mut().insert((dst, tag.0), data)
    }

    /// All channels with a message currently in holdback.
    fn pending_holdbacks(&self) -> Vec<(Rank, u32)> {
        self.holdback.borrow().keys().copied().collect()
    }

    /// The wire image of a vectored send: bare concatenation of the spans,
    /// which is exactly what a receiver of a plain contiguous resend sees.
    fn gather_spans(buf: &[u8], spans: &[IoSpan]) -> Vec<u8> {
        let mut gathered = Vec::with_capacity(spans.iter().map(|s| s.count).sum());
        for s in spans {
            gathered.extend_from_slice(&buf[s.range()]);
        }
        gathered
    }
}

impl<C: Communicator + ?Sized> FaultyComm<'_, C> {
    /// Count one operation against the crash clock (blocking path).
    fn tick(&self) -> Result<()> {
        self.tick_at(self.inner.rank())
    }

    /// Deliver a previously held-back message on `(dst, tag)`, if any.
    fn flush_holdback(&self, dst: Rank, tag: Tag) -> Result<()> {
        match self.take_holdback(dst, tag) {
            Some(data) => self.inner.send(&data, dst, tag),
            None => Ok(()),
        }
    }
}

impl<C: Communicator> Communicator for FaultyComm<'_, C> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.tick()?;
        // The reliability layer's pure acknowledgements ride a reserved
        // control-tag range and model a tiny, assumed-reliable control
        // plane: a synchronous `ReliableComm` (no background progress
        // engine) cannot re-ack a retransmission once the receiver has
        // moved on, so a lost *ack* would strand a sender that the
        // protocol has, in fact, delivered for. Crash faults (`tick`
        // above) still apply; link faults target payload-bearing sends.
        if tag.0 >= mpsim::reliable::ACK_TAG_BASE {
            return self.inner.send(buf, dest, tag);
        }
        let k = self.next_link_seq(dest);
        match self.plan.decide(self.rank(), dest, k) {
            FaultAction::Deliver => {
                self.inner.send(buf, dest, tag)?;
                self.flush_holdback(dest, tag)
            }
            FaultAction::Drop => {
                // The message vanishes, but an earlier held-back one still
                // becomes deliverable (the "drop" consumed its overtaker).
                self.flush_holdback(dest, tag)
            }
            FaultAction::Duplicate => {
                self.inner.send(buf, dest, tag)?;
                self.inner.send(buf, dest, tag)?;
                self.flush_holdback(dest, tag)
            }
            FaultAction::Delay => {
                // Hold the message until the next send on this channel
                // overtakes it. At most one message per channel is in
                // holdback: a second delay decision flushes the first.
                let prev = self.holdback.borrow_mut().insert((dest, tag.0), buf.to_vec());
                match prev {
                    Some(data) => self.inner.send(&data, dest, tag),
                    None => Ok(()),
                }
            }
        }
    }

    /// A vectored send is ONE message on the wire, so it consumes exactly one
    /// link ordinal and its fate is decided once — coalescing changes which
    /// transfers a fault plan hits, never how many decisions are drawn per
    /// envelope.
    fn send_vectored(&self, buf: &[u8], spans: &[IoSpan], dest: Rank, tag: Tag) -> Result<()> {
        self.tick()?;
        validate_spans(buf.len(), spans)?;
        if tag.0 >= mpsim::reliable::ACK_TAG_BASE {
            return self.inner.send_vectored(buf, spans, dest, tag);
        }
        let k = self.next_link_seq(dest);
        match self.plan.decide(self.rank(), dest, k) {
            FaultAction::Deliver => {
                self.inner.send_vectored(buf, spans, dest, tag)?;
                self.flush_holdback(dest, tag)
            }
            FaultAction::Drop => self.flush_holdback(dest, tag),
            FaultAction::Duplicate => {
                self.inner.send_vectored(buf, spans, dest, tag)?;
                self.inner.send_vectored(buf, spans, dest, tag)?;
                self.flush_holdback(dest, tag)
            }
            FaultAction::Delay => {
                // Holdback stores the gathered wire image; re-sending it as a
                // plain contiguous message is indistinguishable to the
                // receiver because the wire format is bare concatenation.
                let mut gathered = Vec::with_capacity(spans.iter().map(|s| s.count).sum());
                for s in spans {
                    gathered.extend_from_slice(&buf[s.range()]);
                }
                let prev = self.holdback.borrow_mut().insert((dest, tag.0), gathered);
                match prev {
                    Some(data) => self.inner.send(&data, dest, tag),
                    None => Ok(()),
                }
            }
        }
    }

    fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        self.tick()?;
        self.inner.recv_scattered(buf, spans, src, tag)
    }

    #[allow(clippy::too_many_arguments)]
    fn sendrecv_vectored(
        &self,
        buf: &mut [u8],
        send_spans: &[IoSpan],
        dest: Rank,
        sendtag: Tag,
        recv_spans: &[IoSpan],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        // Counted and fault-injected as one vectored send plus one scattered
        // receive, mirroring `sendrecv`. Splitting the fused call is safe
        // here for the same reason it is in `sendrecv`: the decorator
        // assumes an eager-ish transport (see the module docs).
        validate_spans(buf.len(), send_spans)?;
        validate_spans(buf.len(), recv_spans)?;
        mpsim::disjoint_span_lists(send_spans, recv_spans)?;
        self.send_vectored(buf, send_spans, dest, sendtag)?;
        self.recv_scattered(buf, recv_spans, src, recvtag)
    }

    fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.tick()?;
        self.inner.recv(buf, src, tag)
    }

    fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> Result<usize> {
        self.tick()?;
        self.inner.recv_timeout(buf, src, tag, timeout)
    }

    fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        // Counted and fault-injected as one send plus one receive.
        self.send(sendbuf, dest, sendtag)?;
        self.recv(recvbuf, src, recvtag)
    }

    fn barrier(&self) -> Result<()> {
        self.tick()?;
        // A barrier is a synchronization point: anything still held back
        // must arrive before it, or "delayed" would mean "lost across
        // phases", which is a drop, not a delay.
        let pending: Vec<(Rank, u32)> = self.holdback.borrow().keys().copied().collect();
        for (dst, tag) in pending {
            self.flush_holdback(dst, Tag(tag))?;
        }
        self.inner.barrier()
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn check_rank(&self, rank: Rank) -> Result<()> {
        self.inner.check_rank(rank)
    }
}

impl<C: AsyncCommunicator + ?Sized> FaultyComm<'_, C> {
    /// Count one operation against the crash clock (async path).
    fn tick_async(&self) -> Result<()> {
        self.tick_at(self.inner.rank())
    }

    /// Async twin of `flush_holdback`.
    async fn flush_holdback_async(&self, dst: Rank, tag: Tag) -> Result<()> {
        match self.take_holdback(dst, tag) {
            Some(data) => self.inner.send(&data, dst, tag).await,
            None => Ok(()),
        }
    }
}

/// The identical fault model over any [`AsyncCommunicator`]: decisions are
/// drawn from the same per-link ordinals and the crash clock counts the same
/// operations, so a plan replays bit-identically between the blocking
/// executors and the event executor.
impl<C: AsyncCommunicator + ?Sized> AsyncCommunicator for FaultyComm<'_, C> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn check_rank(&self, rank: Rank) -> Result<()> {
        self.inner.check_rank(rank)
    }

    async fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.tick_async()?;
        // See the blocking `send` for why acknowledgement-range sends model
        // a reliable control plane and bypass link faults.
        if tag.0 >= mpsim::reliable::ACK_TAG_BASE {
            return self.inner.send(buf, dest, tag).await;
        }
        let k = self.next_link_seq(dest);
        match self.plan.decide(self.rank(), dest, k) {
            FaultAction::Deliver => {
                self.inner.send(buf, dest, tag).await?;
                self.flush_holdback_async(dest, tag).await
            }
            FaultAction::Drop => self.flush_holdback_async(dest, tag).await,
            FaultAction::Duplicate => {
                self.inner.send(buf, dest, tag).await?;
                self.inner.send(buf, dest, tag).await?;
                self.flush_holdback_async(dest, tag).await
            }
            FaultAction::Delay => match self.stash_holdback(dest, tag, buf.to_vec()) {
                Some(data) => self.inner.send(&data, dest, tag).await,
                None => Ok(()),
            },
        }
    }

    async fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.tick_async()?;
        self.inner.recv(buf, src, tag).await
    }

    async fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> Result<usize> {
        self.tick_async()?;
        self.inner.recv_timeout(buf, src, tag, timeout).await
    }

    async fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        // Counted and fault-injected as one send plus one receive, exactly
        // like the blocking impl.
        AsyncCommunicator::send(self, sendbuf, dest, sendtag).await?;
        AsyncCommunicator::recv(self, recvbuf, src, recvtag).await
    }

    async fn barrier(&self) -> Result<()> {
        self.tick_async()?;
        // Anything still held back must arrive before the barrier (see the
        // blocking impl).
        for (dst, tag) in self.pending_holdbacks() {
            self.flush_holdback_async(dst, Tag(tag)).await?;
        }
        self.inner.barrier().await
    }

    /// One envelope, one decision — identical to the blocking vectored send.
    async fn send_vectored(
        &self,
        buf: &[u8],
        spans: &[IoSpan],
        dest: Rank,
        tag: Tag,
    ) -> Result<()> {
        self.tick_async()?;
        validate_spans(buf.len(), spans)?;
        if tag.0 >= mpsim::reliable::ACK_TAG_BASE {
            return self.inner.send_vectored(buf, spans, dest, tag).await;
        }
        let k = self.next_link_seq(dest);
        match self.plan.decide(self.rank(), dest, k) {
            FaultAction::Deliver => {
                self.inner.send_vectored(buf, spans, dest, tag).await?;
                self.flush_holdback_async(dest, tag).await
            }
            FaultAction::Drop => self.flush_holdback_async(dest, tag).await,
            FaultAction::Duplicate => {
                self.inner.send_vectored(buf, spans, dest, tag).await?;
                self.inner.send_vectored(buf, spans, dest, tag).await?;
                self.flush_holdback_async(dest, tag).await
            }
            FaultAction::Delay => {
                let gathered = Self::gather_spans(buf, spans);
                match self.stash_holdback(dest, tag, gathered) {
                    Some(data) => self.inner.send(&data, dest, tag).await,
                    None => Ok(()),
                }
            }
        }
    }

    async fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        self.tick_async()?;
        self.inner.recv_scattered(buf, spans, src, tag).await
    }

    async fn sendrecv_vectored(
        &self,
        buf: &mut [u8],
        send_spans: &[IoSpan],
        dest: Rank,
        sendtag: Tag,
        recv_spans: &[IoSpan],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        validate_spans(buf.len(), send_spans)?;
        validate_spans(buf.len(), recv_spans)?;
        mpsim::disjoint_span_lists(send_spans, recv_spans)?;
        AsyncCommunicator::send_vectored(self, buf, send_spans, dest, sendtag).await?;
        AsyncCommunicator::recv_scattered(self, buf, recv_spans, src, recvtag).await
    }

    // The zero-copy surface forwards natively so a fault-decorated stack
    // keeps refcounted envelopes all the way down to the executor. Each
    // method ticks the crash clock and draws per-link decisions exactly
    // like its copying twin, so a seeded plan replays identically whether
    // the collective above runs the copy or the zero-copy path.

    fn make_shared(&self, data: &[u8]) -> mpsim::SharedBuf {
        self.inner.make_shared(data)
    }

    fn note_copy(&self, bytes: usize) {
        self.inner.note_copy(bytes)
    }

    async fn send_shared(&self, buf: &mpsim::SharedBuf, dest: Rank, tag: Tag) -> Result<()> {
        self.tick_async()?;
        if tag.0 >= mpsim::reliable::ACK_TAG_BASE {
            return self.inner.send_shared(buf, dest, tag).await;
        }
        let k = self.next_link_seq(dest);
        match self.plan.decide(self.rank(), dest, k) {
            FaultAction::Deliver => {
                self.inner.send_shared(buf, dest, tag).await?;
                self.flush_holdback_async(dest, tag).await
            }
            FaultAction::Drop => self.flush_holdback_async(dest, tag).await,
            FaultAction::Duplicate => {
                self.inner.send_shared(buf, dest, tag).await?;
                self.inner.send_shared(buf, dest, tag).await?;
                self.flush_holdback_async(dest, tag).await
            }
            // A delayed envelope degrades to the copying holdback buffer —
            // the sender may mutate its source after send_shared returns,
            // so the held-back bytes must be snapshotted now.
            FaultAction::Delay => match self.stash_holdback(dest, tag, buf.to_vec()) {
                Some(data) => self.inner.send(&data, dest, tag).await,
                None => Ok(()),
            },
        }
    }

    async fn recv_owned(&self, capacity: usize, src: Rank, tag: Tag) -> Result<mpsim::SharedBuf> {
        self.tick_async()?;
        self.inner.recv_owned(capacity, src, tag).await
    }

    async fn recv_owned_timeout(
        &self,
        capacity: usize,
        src: Rank,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> Result<mpsim::SharedBuf> {
        self.tick_async()?;
        self.inner.recv_owned_timeout(capacity, src, tag, timeout).await
    }

    async fn sendrecv_shared(
        &self,
        sendbuf: &mpsim::SharedBuf,
        dest: Rank,
        sendtag: Tag,
        recv_capacity: usize,
        src: Rank,
        recvtag: Tag,
    ) -> Result<mpsim::SharedBuf> {
        // Counted and fault-injected as one send plus one receive, exactly
        // like `sendrecv`.
        AsyncCommunicator::send_shared(self, sendbuf, dest, sendtag).await?;
        AsyncCommunicator::recv_owned(self, recv_capacity, src, recvtag).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::ThreadWorld;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let faults = LinkFaults { drop_ppm: 200_000, dup_ppm: 100_000, delay_ppm: 100_000 };
        let a = FaultPlan::new(42).with_default(faults);
        let b = FaultPlan::new(42).with_default(faults);
        let c = FaultPlan::new(43).with_default(faults);
        let seq =
            |p: &FaultPlan| -> Vec<FaultAction> { (0..256).map(|k| p.decide(0, 1, k)).collect() };
        assert_eq!(seq(&a), seq(&b), "same seed must replay the same plan");
        assert_ne!(seq(&a), seq(&c), "different seeds must differ");
    }

    #[test]
    fn decision_rates_roughly_match_ppm() {
        let faults = LinkFaults { drop_ppm: 250_000, dup_ppm: 250_000, delay_ppm: 0 };
        let plan = FaultPlan::new(7).with_default(faults);
        let n = 10_000u64;
        let mut drops = 0;
        let mut dups = 0;
        for k in 0..n {
            match plan.decide(3, 5, k) {
                FaultAction::Drop => drops += 1,
                FaultAction::Duplicate => dups += 1,
                _ => {}
            }
        }
        // 25% ± 5% over 10k trials
        assert!((2000..3000).contains(&drops), "drops: {drops}");
        assert!((2000..3000).contains(&dups), "dups: {dups}");
    }

    #[test]
    fn per_link_overrides_beat_default() {
        let plan = FaultPlan::new(1).with_default(LinkFaults::NONE).with_link(
            0,
            1,
            LinkFaults { drop_ppm: 1_000_000, dup_ppm: 0, delay_ppm: 0 },
        );
        assert_eq!(plan.decide(0, 1, 0), FaultAction::Drop);
        assert_eq!(plan.decide(1, 0, 0), FaultAction::Deliver);
        assert_eq!(plan.decide(0, 2, 12), FaultAction::Deliver);
    }

    #[test]
    fn drop_suppresses_delivery() {
        let plan = FaultPlan::new(9).with_link(
            0,
            1,
            LinkFaults { drop_ppm: 1_000_000, dup_ppm: 0, delay_ppm: 0 },
        );
        let out = ThreadWorld::run(2, |comm| {
            let faulty = FaultyComm::new(comm, plan.clone());
            if comm.rank() == 0 {
                faulty.send(&[1u8; 4], 1, Tag(0)).unwrap(); // dropped
                comm.send(&[2u8; 4], 1, Tag(0)).unwrap(); // bypasses the plan
                0
            } else {
                let mut buf = [0u8; 4];
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
                buf[0] as usize
            }
        });
        // the receiver's first (and only) message is the undecorated one
        assert_eq!(out.results[1], 2);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let plan = FaultPlan::new(9).with_link(
            0,
            1,
            LinkFaults { drop_ppm: 0, dup_ppm: 1_000_000, delay_ppm: 0 },
        );
        let out = ThreadWorld::run(2, |comm| {
            let faulty = FaultyComm::new(comm, plan.clone());
            if comm.rank() == 0 {
                faulty.send(&[5u8; 4], 1, Tag(0)).unwrap();
                0
            } else {
                let mut buf = [0u8; 4];
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
                let first = buf[0];
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
                (first + buf[0]) as usize
            }
        });
        assert_eq!(out.results[1], 10);
    }

    #[test]
    fn delay_reorders_within_tag_and_barrier_flushes() {
        let plan = FaultPlan::new(9).with_link(
            0,
            1,
            LinkFaults { drop_ppm: 0, dup_ppm: 0, delay_ppm: 1_000_000 },
        );
        let out = ThreadWorld::run(2, |comm| {
            let faulty = FaultyComm::new(comm, plan.clone());
            if comm.rank() == 0 {
                // every send is "delayed": msg A is held, msg B replaces it
                // in holdback and A goes out, then the barrier flushes B.
                faulty.send(&[b'A'; 1], 1, Tag(0)).unwrap();
                faulty.send(&[b'B'; 1], 1, Tag(0)).unwrap();
                faulty.barrier().unwrap();
                vec![]
            } else {
                let mut buf = [0u8; 1];
                let mut got = vec![];
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
                got.push(buf[0]);
                comm.barrier().unwrap();
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
                got.push(buf[0]);
                got
            }
        });
        assert_eq!(out.results[1], vec![b'A', b'B']);
    }

    #[test]
    fn crash_fails_operations_after_threshold() {
        let plan = FaultPlan::new(3).with_crash(1, 2);
        let out = ThreadWorld::run(2, |comm| {
            let faulty = FaultyComm::new(comm, plan.clone());
            if comm.rank() == 1 {
                let mut buf = [0u8; 1];
                faulty.recv(&mut buf, 0, Tag(0)).unwrap(); // op 0
                faulty.recv(&mut buf, 0, Tag(0)).unwrap(); // op 1
                assert!(!faulty.crashed());
                let err = faulty.recv(&mut buf, 0, Tag(0)).unwrap_err(); // op 2: dead
                assert!(faulty.crashed());
                assert_eq!(err, CommError::PeerFailed { rank: 1 });
                1
            } else {
                comm.send(&[0], 1, Tag(0)).unwrap();
                comm.send(&[0], 1, Tag(0)).unwrap();
                // the third message is never consumed; eager send still works
                comm.send(&[0], 1, Tag(0)).unwrap();
                0
            }
        });
        assert_eq!(out.results, vec![0, 1]);
    }

    #[test]
    fn vectored_send_draws_one_decision_per_envelope() {
        // Link 0→1 drops every message. A 3-span vectored send is one
        // envelope: it consumes ONE link ordinal and vanishes whole; the
        // next (plain) send is ordinal 1, also dropped — never partially.
        let plan = FaultPlan::new(9).with_link(
            0,
            1,
            LinkFaults { drop_ppm: 1_000_000, dup_ppm: 0, delay_ppm: 0 },
        );
        let out = ThreadWorld::run(2, |comm| {
            let faulty = FaultyComm::new(comm, plan.clone());
            if comm.rank() == 0 {
                let src: Vec<u8> = (0..12).collect();
                let spans = [IoSpan::new(0, 2), IoSpan::new(4, 2), IoSpan::new(8, 2)];
                faulty.send_vectored(&src, &spans, 1, Tag(0)).unwrap(); // dropped whole
                comm.send(&[99u8; 6], 1, Tag(0)).unwrap(); // bypasses the plan
                0
            } else {
                let mut buf = [0u8; 6];
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
                buf[0] as usize
            }
        });
        assert_eq!(out.results[1], 99);
    }

    #[test]
    fn vectored_passthrough_delivers_and_scatters() {
        // No faults: the decorator must be fully transparent to the
        // vectored path, including the fused exchange.
        let plan = FaultPlan::new(5);
        let out = ThreadWorld::run(2, |comm| {
            let faulty = FaultyComm::new(comm, plan.clone());
            let mut buf = vec![0u8; 8];
            buf[..4].fill(comm.rank() as u8 + 1);
            let peer = 1 - comm.rank();
            faulty
                .sendrecv_vectored(
                    &mut buf,
                    &[IoSpan::new(0, 4)],
                    peer,
                    Tag(0),
                    &[IoSpan::new(4, 4)],
                    peer,
                    Tag(0),
                )
                .unwrap();
            buf[4]
        });
        assert_eq!(out.results, vec![2, 1]);
    }

    #[test]
    fn crash_replays_identically_on_the_simulator() {
        use crate::{NetworkModel, Placement, SimWorld};
        let run = || {
            let plan = FaultPlan::new(11).with_crash(1, 1);
            let mut m = NetworkModel::uniform(10.0, 1.0);
            m.eager_threshold = usize::MAX;
            SimWorld::run(m, Placement::new(4), 2, move |comm| {
                let faulty = FaultyComm::new(comm, plan.clone());
                if comm.rank() == 1 {
                    let mut buf = [0u8; 1];
                    faulty.recv(&mut buf, 0, Tag(0)).unwrap();
                    faulty.recv(&mut buf, 0, Tag(0)).is_err()
                } else {
                    faulty.send(&[0], 1, Tag(0)).unwrap();
                    true
                }
            })
            .results
        };
        assert_eq!(run(), vec![true, true]);
        assert_eq!(run(), run());
    }
}
