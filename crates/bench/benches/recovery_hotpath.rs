//! `recovery_hotpath` — time-to-recover of the self-healing broadcast as a
//! function of casualty count, on the discrete-event executor.
//!
//! Each measured world is one complete self-healing launch under a seeded
//! crash plan: the initial attempt, every heartbeat-agreement round, the
//! root-succession bookkeeping, and the degraded-schedule re-derivation for
//! every epoch the cascade forces. Crash timestamps are staggered so each
//! additional casualty lands *after* the previous epoch started — the
//! cascade depth (and so the number of re-derived schedules) grows with the
//! casualty count, which is exactly the axis the bench sweeps:
//!
//! * `p8/c{0,1,3}` — the paper's world size; c3 kills three of eight ranks
//!   in three separate epochs;
//! * `p1024/c{0,1,4}` — the megascale leg; the schedule re-derivation and
//!   agreement fan-in dominate, not the payload copies.
//!
//! Everything runs on EventWorld's virtual clock, so the wall-clock medians
//! measure the *machinery* (reactor scheduling, agreement traffic, schedule
//! recomputation), not the simulated timeouts — a step timeout is a virtual
//! event, advanced for free. Before timing, every configuration is run once
//! through [`check_recovery_outcome`] and its cascade depth is asserted, so
//! a plan drift that silently stops cascading fails the bench instead of
//! quietly measuring the wrong thing.

use std::hint::black_box;
use std::time::Duration;

use bcast_core::{
    check_recovery_outcome, self_healing_rank_task, Algorithm, RankRun, RecoveryConfig,
    RecoveryDrill, RecoverySpec,
};
use mpsim::{EventWorld, WorldOutcome};
use netsim::{FaultPlan, FaultyComm};
use testkit::bench::Harness;

/// Payload per launch — small enough that agreement and re-derivation
/// dominate over payload copies, which is the hot path under test.
const NBYTES: usize = 2048;

/// Fault-plan seed; the plan is pure crashes, so the seed only feeds the
/// (unused) link-fault lanes, but it keeps replay exact.
const PLAN_SEED: u64 = 0x5EED_C0DE;

fn payload() -> Vec<u8> {
    (0..NBYTES).map(|i| (i.wrapping_mul(131) >> 3) as u8).collect()
}

/// `k` victims spread across the world, none of them the root, each dying a
/// few operations after the previous one so the crashes land in distinct
/// epochs and force a cascade of depth ≈ `k`.
fn crash_plan(p: usize, k: usize) -> (FaultPlan, Vec<usize>) {
    let mut plan = FaultPlan::new(PLAN_SEED);
    let mut victims = Vec::with_capacity(k);
    // One tuned-ring epoch costs ≈ 4·P operations per rank (same scaling
    // the megascale chaos battery uses); half-epoch spacing lands each
    // casualty in a distinct epoch at both world sizes — measured depths
    // are asserted in `verify`, so drift cannot pass silently.
    let per_epoch = 4 * p as u64;
    for i in 0..k {
        let victim = 1 + i * (p - 1) / (k + 1);
        let after_ops = 4 + i as u64 * per_epoch / 2;
        plan = plan.with_crash(victim, after_ops);
        victims.push(victim);
    }
    victims.sort_unstable();
    (plan, victims)
}

fn cfg(k: usize) -> RecoveryConfig {
    RecoveryConfig {
        // Virtual-clock deadline: expiring it costs one timer event, not
        // real milliseconds, so it can stay comfortably conservative.
        step_timeout: Duration::from_millis(40),
        // Liveness headroom: with a never-crashing root, 2k+1 epochs always
        // suffice (each casualty can spoil at most two attempts).
        max_epochs: (2 * k + 1) as u32,
        bounded_sendrecv: false,
    }
}

fn healing_world(p: usize, k: usize) -> WorldOutcome<RankRun> {
    let (plan, _) = crash_plan(p, k);
    let cfg = cfg(k);
    let src = payload();
    EventWorld::run(p, move |comm| {
        let plan = plan.clone();
        let src = src.clone();
        async move {
            let faulty = FaultyComm::new(&comm, plan);
            self_healing_rank_task(
                &faulty,
                &src,
                0,
                Algorithm::ScatterRingTuned,
                &cfg,
                &RecoveryDrill::NONE,
            )
            .await
        }
    })
}

/// Pre-flight one configuration: full invariant check plus a cascade-depth
/// floor, returning the deepest epoch count for the summary line.
fn verify(p: usize, k: usize) -> u32 {
    let out = healing_world(p, k);
    let (_, victims) = crash_plan(p, k);
    let src = payload();
    let spec = RecoverySpec {
        src: &src,
        root: 0,
        cfg: cfg(k),
        planned_victims: &victims,
        lossy_links: false,
    };
    if let Err(why) = check_recovery_outcome(&spec, &out.results, &out.traffic, out.elapsed) {
        panic!("recovery_hotpath p{p}/c{k}: invariants violated before timing: {why}");
    }
    let deepest =
        out.results.iter().filter_map(|r| r.result.as_ref().ok().map(|h| h.epochs)).max().unwrap();
    let floor = if k == 0 { 1 } else { (k as u32).max(2) };
    assert!(
        deepest >= floor,
        "recovery_hotpath p{p}/c{k}: cascade collapsed to {deepest} epoch(s) (floor {floor}) — \
         the crash plan no longer staggers across epochs"
    );
    deepest
}

fn bench_recovery_hotpath(h: &mut Harness) {
    let mut group = h.group("recovery_hotpath");
    let mut depths = Vec::new();
    for &(p, casualties, samples) in &[
        (8usize, 0usize, 15usize),
        (8, 1, 15),
        (8, 3, 10),
        (1024, 0, 5),
        (1024, 1, 3),
        (1024, 4, 3),
    ] {
        depths.push((p, casualties, verify(p, casualties)));
        group.sample_size(samples);
        group.bench(&format!("p{p}/c{casualties}"), |b| {
            b.iter(|| {
                let out = healing_world(black_box(p), casualties);
                out.results.iter().filter(|r| r.result.is_ok()).count()
            })
        });
    }
    drop(group);
    for (p, casualties, deepest) in depths {
        println!("    recovery_hotpath/p{p}/c{casualties}: cascade depth {deepest} epoch(s)");
    }
}

testkit::bench_main!(bench_recovery_hotpath);
