//! Criterion companion to Figure 8: a medium-to-long message-size sweep at a
//! fixed non-power-of-two world, native vs tuned, on the threaded backend.
//! (The paper uses np=129; thread count is scaled to np=17 here so the bench
//! stays meaningful on small hosts — the simulator binary `fig8` covers the
//! full-scale sweep.)

use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpsim::ThreadWorld;

fn bench_sweep(c: &mut Criterion) {
    let np = 17;
    let mut group = c.benchmark_group("fig8_sweep");
    group.sample_size(10);
    for &nbytes in &[12288usize, 65536, 262144, 1048576] {
        group.throughput(Throughput::Bytes(nbytes as u64));
        for (name, algorithm) in [
            ("native", Algorithm::ScatterRingNative),
            ("tuned", Algorithm::ScatterRingTuned),
        ] {
            let src = pattern(nbytes, 3);
            group.bench_with_input(BenchmarkId::new(name, nbytes), &nbytes, |b, _| {
                b.iter(|| {
                    ThreadWorld::run(np, |comm| {
                        use mpsim::Communicator;
                        let mut buf =
                            if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
                        bcast_with(comm, &mut buf, 0, algorithm).unwrap();
                        buf[0]
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
