//! Companion to Figure 8: a medium-to-long message-size sweep at a fixed
//! non-power-of-two world, native vs tuned, on the threaded backend.
//! (The paper uses np=129; thread count is scaled to np=17 here so the bench
//! stays meaningful on small hosts — the simulator binary `fig8` covers the
//! full-scale sweep.)

use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use mpsim::ThreadWorld;
use testkit::bench::Harness;

fn bench_sweep(h: &mut Harness) {
    let np = 17;
    let mut group = h.group("fig8_sweep");
    group.sample_size(10);
    for &nbytes in &[12288usize, 65536, 262144, 1048576] {
        group.throughput_bytes(nbytes as u64);
        for (name, algorithm) in
            [("native", Algorithm::ScatterRingNative), ("tuned", Algorithm::ScatterRingTuned)]
        {
            let src = pattern(nbytes, 3);
            group.bench(&format!("{name}/{nbytes}"), |b| {
                b.iter(|| {
                    ThreadWorld::run(np, |comm| {
                        use mpsim::Communicator;
                        let mut buf =
                            if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
                        bcast_with(comm, &mut buf, 0, algorithm).unwrap();
                        buf[0]
                    })
                })
            });
        }
    }
}

testkit::bench_main!(bench_sweep);
