//! Micro-benchmarks over the wider collective repertoire on the threaded
//! backend: allgather variants, alltoall variants, allreduce variants —
//! the substrate algorithms the broadcast work plugs into.

use bcast_core::allgather::{allgather_bruck, allgather_ring};
use bcast_core::alltoall::{alltoall_bruck, alltoall_pairwise};
use bcast_core::reduce::{allreduce_rabenseifner, allreduce_rd};
use mpsim::{Communicator, ThreadWorld};
use testkit::bench::Harness;

fn bench_allgather(h: &mut Harness) {
    let mut group = h.group("allgather");
    group.sample_size(10);
    let np = 10;
    for &block in &[256usize, 16384] {
        group.throughput_bytes((block * np) as u64);
        for (name, which) in [("ring", 0u8), ("bruck", 1)] {
            group.bench(&format!("{name}/{block}"), |b| {
                b.iter(|| {
                    ThreadWorld::run(np, |comm| {
                        let sendbuf = vec![comm.rank() as u8; block];
                        let mut recvbuf = vec![0u8; block * comm.size()];
                        match which {
                            0 => allgather_ring(comm, &sendbuf, &mut recvbuf).unwrap(),
                            _ => allgather_bruck(comm, &sendbuf, &mut recvbuf).unwrap(),
                        }
                        recvbuf[0]
                    })
                })
            });
        }
    }
}

fn bench_alltoall(h: &mut Harness) {
    let mut group = h.group("alltoall");
    group.sample_size(10);
    let np = 10;
    for &block in &[128usize, 8192] {
        group.throughput_bytes((block * np * np) as u64);
        for (name, which) in [("pairwise", 0u8), ("bruck", 1)] {
            group.bench(&format!("{name}/{block}"), |b| {
                b.iter(|| {
                    ThreadWorld::run(np, |comm| {
                        let sendbuf = vec![comm.rank() as u8; block * comm.size()];
                        let mut recvbuf = vec![0u8; block * comm.size()];
                        match which {
                            0 => alltoall_pairwise(comm, &sendbuf, &mut recvbuf).unwrap(),
                            _ => alltoall_bruck(comm, &sendbuf, &mut recvbuf).unwrap(),
                        }
                        recvbuf[0]
                    })
                })
            });
        }
    }
}

fn bench_allreduce(h: &mut Harness) {
    let mut group = h.group("allreduce");
    group.sample_size(10);
    let np = 8;
    for &len in &[256usize, 65536] {
        group.throughput_bytes((len * 8) as u64);
        for (name, raben) in [("recursive_doubling", false), ("rabenseifner", true)] {
            group.bench(&format!("{name}/{len}"), |b| {
                b.iter(|| {
                    ThreadWorld::run(np, |comm| {
                        let mut buf: Vec<u64> =
                            (0..len).map(|i| (comm.rank() + i) as u64).collect();
                        if raben {
                            allreduce_rabenseifner(comm, &mut buf, |a, b| a + b).unwrap();
                        } else {
                            allreduce_rd(comm, &mut buf, |a, b| a + b).unwrap();
                        }
                        buf[0]
                    })
                })
            });
        }
    }
}

testkit::bench_main!(bench_allgather, bench_alltoall, bench_allreduce);
