//! Envelope-coalescing benchmark for the tuned scatter-ring broadcast.
//!
//! Sweeps world size × per-rank chunk size and runs the same
//! [`bcast_core::bcast_opt_coalesced`] broadcast under two
//! [`CoalescePolicy`] settings over 1 KiB sub-chunk segments:
//!
//! * **per_chunk** — `max_envelope = 0`: every sub-chunk segment pays its
//!   own envelope (mailbox push + pool rental), the behaviour of a runtime
//!   that segments eagerly and never gathers;
//! * **coalesced** — `max_envelope = ∞`: contiguous sub-chunk spans of one
//!   ring step travel in a single vectored envelope, and `SendOnly` ranks
//!   merge their entire degraded tail into one transmission.
//!
//! Both settings move byte-identical traffic (the run asserts it); only the
//! physical envelope count differs — 44·k + 7 versus 36 + 7 at `P = 8`,
//! where `k` is segments per chunk. The post-run summary prints the measured
//! envelope reduction per configuration; at 4 KiB chunks (`k = 4`, `P = 8`)
//! it exceeds 4×.
//!
//! `--criterion-dir DIR` exports Criterion-compatible estimates, like every
//! bench in this crate.

use std::hint::black_box;

use bcast_core::{bcast_opt_coalesced, CoalescePolicy};
use mpsim::{Communicator, ThreadWorld, WorldTraffic};
use testkit::bench::Harness;

/// Sub-chunk segmentation granularity for both policies.
const SEGMENT: usize = 1024;

/// One full broadcast world under `policy`; returns the traffic counters.
fn bcast_world(p: usize, nbytes: usize, policy: CoalescePolicy) -> WorldTraffic {
    let out = ThreadWorld::run(p, move |comm| {
        let mut buf = if comm.rank() == 0 { vec![0xA5u8; nbytes] } else { vec![0u8; nbytes] };
        bcast_opt_coalesced(comm, &mut buf, 0, &policy).unwrap();
        black_box(&buf);
    });
    out.traffic
}

/// Measured envelope/byte counters of one configuration, both policies.
struct Outcome {
    label: String,
    per_chunk: WorldTraffic,
    coalesced: WorldTraffic,
}

fn bench_ring_coalesce(h: &mut Harness, outcomes: &mut Vec<Outcome>) {
    let mut group = h.group("ring_coalesce");
    for &p in &[8usize, 10] {
        for &chunk_kib in &[1usize, 4, 16] {
            let nbytes = p * chunk_kib * 1024;
            let label = format!("p{p}/chunk{chunk_kib}KiB");
            group.sample_size(10).throughput_bytes(nbytes as u64);
            let mut per_chunk = None;
            group.bench(&format!("{label}/per_chunk"), |b| {
                b.iter(|| {
                    per_chunk = Some(bcast_world(p, nbytes, CoalescePolicy::new(SEGMENT, 0)))
                });
            });
            let mut coalesced = None;
            group.bench(&format!("{label}/coalesced"), |b| {
                b.iter(|| {
                    coalesced =
                        Some(bcast_world(p, nbytes, CoalescePolicy::new(SEGMENT, usize::MAX)))
                });
            });
            if let (Some(per_chunk), Some(coalesced)) = (per_chunk, coalesced) {
                outcomes.push(Outcome { label, per_chunk, coalesced });
            }
        }
    }
}

fn main() {
    let mut h = Harness::from_args();
    let mut outcomes = Vec::new();
    bench_ring_coalesce(&mut h, &mut outcomes);
    if !outcomes.is_empty() {
        println!("\n    envelope reduction (identical bytes, identical logical messages):");
        for o in &outcomes {
            // Coalescing must never change what the algorithm moves.
            assert_eq!(o.per_chunk.total_bytes(), o.coalesced.total_bytes());
            assert_eq!(o.per_chunk.total_msgs(), o.coalesced.total_msgs());
            let (before, after) = (o.per_chunk.total_envelopes(), o.coalesced.total_envelopes());
            println!(
                "    {:<18} envelopes {:>5} -> {:>4}  ({:.2}x fewer), {} bytes both ways",
                o.label,
                before,
                after,
                before as f64 / after as f64,
                o.per_chunk.total_bytes(),
            );
        }
    }
    h.finish();
}
