//! Ablation benchmarks over the *simulator engine*: how expensive is it to
//! simulate one broadcast under different model features, and (printed via
//! the measurement labels) which features matter. The model-level ablation
//! *results* (what contention/protocol do to the tuned ring's advantage)
//! are produced by `src/bin/ablations.rs`.

use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use mpsim::Communicator;
use netsim::{presets, SimWorld};
use testkit::bench::Harness;

fn bench_engine(h: &mut Harness) {
    let mut group = h.group("sim_engine");
    group.sample_size(10);
    let np = 24;
    let nbytes = 1 << 18;
    for (name, preset) in [("hornet", presets::hornet()), ("ideal", presets::ideal(24))] {
        let model = preset.model_for(nbytes, np);
        let placement = preset.placement();
        let src = pattern(nbytes, 4);
        group.bench(&format!("bcast_opt_np24_256KiB/{name}"), |b| {
            b.iter(|| {
                let model = model.clone();
                SimWorld::run(model, placement, np, |comm| {
                    let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
                    bcast_with(comm, &mut buf, 0, Algorithm::ScatterRingTuned).unwrap();
                    comm.now_ns()
                })
                .makespan_ns
            })
        });
    }
}

testkit::bench_main!(bench_engine);
