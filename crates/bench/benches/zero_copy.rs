//! The zero-copy payoff, measured: binomial broadcast on the discrete-event
//! executor with shared refcounted envelopes (`bcast_binomial_async`:
//! `recv_owned` + `send_shared_to`, one landing copy per rank) against the
//! per-hop copy baseline kept as `bcast_binomial_copy_async` (sender
//! copy-in + receiver copy-out on every tree edge).
//!
//! Binomial is the algorithm where the contrast is purest: every transfer
//! carries the whole `nbytes`, so the copy path's RAM traffic scales with
//! the tree's edge count while the zero-copy path's stays at one staging
//! pass plus `P − 1` landing copies — the `bytes_copied` closed forms pinned
//! by `tests/zero_copy_accounting.rs`, here shown as wall clock.
//!
//! Legs: `P ∈ {8, 1024, 4096} × {64 KiB, 1 MiB}`. The `P = 8` and
//! `P = 1024` legs run in the `bench_compare.sh` quick gate, where the
//! 1 MiB @ `P = 1024` pair carries a banked `RELATIVE_FLOORS` entry
//! (zero-copy ≥ 1.5× the copy-path median of the same run, so machine
//! drift cancels leg-vs-leg). The `P = 4096` legs
//! move ≈ 4 GiB of payload per world and are recorded out-of-band into
//! `results/zero_copy.json`; the gate waives them by name with
//! `--allow-missing` (see `scripts/ci.sh`).

use bcast_core::{bcast_binomial_async, bcast_binomial_copy_async};
use mpsim::{AsyncCommunicator, EventWorld};
use std::hint::black_box;
use testkit::bench::Harness;

/// One measured world: a full binomial broadcast of `nbytes` from rank 0 on
/// an event world of `p` ranks, through `run` (the zero-copy or the
/// copy-path walk). Returns total wire bytes so the optimizer keeps the
/// collective alive.
fn bcast_world(p: usize, nbytes: usize, zero_copy: bool) -> u64 {
    let out = EventWorld::run(p, move |comm| async move {
        let mut buf = if comm.rank() == 0 { vec![0xA5u8; nbytes] } else { vec![0u8; nbytes] };
        let res = if zero_copy {
            bcast_binomial_async(&comm, &mut buf, 0).await
        } else {
            bcast_binomial_copy_async(&comm, &mut buf, 0).await
        };
        // A failed broadcast must fail the bench loudly. lint: allow(panic)
        res.expect("broadcast failed");
        buf[nbytes / 2]
    });
    assert!(out.results.iter().all(|&b| b == 0xA5), "corrupted payload");
    out.traffic.total_bytes()
}

fn bench_zero_copy(h: &mut Harness) {
    let mut group = h.group("zero_copy");
    for &p in &[8usize, 1024, 4096] {
        for (nbytes, label) in [(64usize << 10, "64K"), (1usize << 20, "1M")] {
            group.bench(&format!("binomial/{p}x{label}"), |b| {
                b.iter(|| bcast_world(black_box(p), nbytes, true))
            });
            group.bench(&format!("binomial_copy/{p}x{label}"), |b| {
                b.iter(|| bcast_world(black_box(p), nbytes, false))
            });
        }
    }
}

testkit::bench_main!(bench_zero_copy);
