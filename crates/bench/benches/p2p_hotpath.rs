//! Point-to-point hot-path microbenchmarks for the threaded runtime.
//!
//! The paper's signal — fewer bytes moved by the tuned ring — is only
//! measurable on the threaded backend if the per-message software overhead
//! (allocation, locking, wakeups) is small compared to the copy itself.
//! These benches pin that overhead down:
//!
//! * `pingpong/*` — round-trip latency between two ranks at 64 B / 4 KiB /
//!   64 KiB payloads (`ROUNDS` round trips per sample, so per-message
//!   latency = sample / (2·ROUNDS));
//! * `fanin/7-to-1` — N-to-1 mailbox contention: seven senders hammer one
//!   receiver's mailbox;
//! * `barrier/roundtrip` — barrier latency across 8 ranks;
//! * `mailbox/push_pop` — single-threaded mailbox machinery cost without
//!   any cross-thread wakeup.
//!
//! Each world-based group also reports the buffer-pool counters of its last
//! run (hit rate and misses = heap allocations), proving the steady-state
//! zero-allocation claim rather than asserting it.

use std::hint::black_box;

use mpsim::{Communicator, Tag, ThreadWorld};
use testkit::bench::Harness;

/// Round trips per timed sample (amortizes the 2-thread spawn cost).
const ROUNDS: usize = 256;

/// Messages per sender in the fan-in bench.
const FANIN_MSGS: usize = 128;

/// Barriers per timed sample.
const BARRIERS: usize = 256;

fn pingpong_world(size: usize) -> mpsim::WorldOutcome<()> {
    ThreadWorld::run(2, move |comm| {
        let payload = vec![1u8; size];
        let mut buf = vec![0u8; size];
        if comm.rank() == 0 {
            for _ in 0..ROUNDS {
                comm.send(&payload, 1, Tag(0)).unwrap();
                comm.recv(&mut buf, 1, Tag(1)).unwrap();
            }
        } else {
            for _ in 0..ROUNDS {
                comm.recv(&mut buf, 0, Tag(0)).unwrap();
                comm.send(&payload, 0, Tag(1)).unwrap();
            }
        }
        black_box(&buf);
    })
}

fn bench_pingpong(h: &mut Harness) {
    let mut group = h.group("pingpong");
    for &size in &[64usize, 4096, 65536] {
        let samples = if size >= 65536 { 10 } else { 15 };
        group.sample_size(samples).throughput_bytes((2 * ROUNDS * size) as u64);
        group.bench(&format!("{size}B"), |b| {
            let mut last = None;
            b.iter(|| last = Some(pingpong_world(size)));
            report_pool(&format!("pingpong/{size}B"), last.as_ref());
        });
    }
}

fn bench_fanin(h: &mut Harness) {
    let mut group = h.group("fanin");
    group.sample_size(10);
    group.bench("7-to-1", |b| {
        let mut last = None;
        b.iter(|| {
            let out = ThreadWorld::run(8, |comm| {
                let size = 1024;
                if comm.rank() == 0 {
                    let mut buf = vec![0u8; size];
                    for src in 1..comm.size() {
                        for _ in 0..FANIN_MSGS {
                            comm.recv(&mut buf, src, Tag(3)).unwrap();
                        }
                    }
                    black_box(&buf);
                } else {
                    let payload = vec![comm.rank() as u8; size];
                    for _ in 0..FANIN_MSGS {
                        comm.send(&payload, 0, Tag(3)).unwrap();
                    }
                }
            });
            last = Some(out);
        });
        report_pool("fanin/7-to-1", last.as_ref());
    });
}

fn bench_barrier(h: &mut Harness) {
    let mut group = h.group("barrier");
    group.sample_size(10);
    group.bench("roundtrip", |b| {
        b.iter(|| {
            ThreadWorld::run(8, |comm| {
                for _ in 0..BARRIERS {
                    comm.barrier().unwrap();
                }
            })
        })
    });
}

fn bench_mailbox(h: &mut Harness) {
    use mpsim::mailbox::Mailbox;
    let mut group = h.group("mailbox");
    group.bench("push_pop_1KiB", |b| {
        let mb = Mailbox::new();
        let payload = vec![7u8; 1024];
        b.iter(|| {
            for _ in 0..64 {
                mb.push(0, Tag(0), payload.clone().into());
                black_box(mb.pop_blocking(0, Tag(0)).unwrap());
            }
        })
    });
}

/// Print the buffer-pool counters of a world run, when the runtime exposes
/// them (per-message allocation proof for the zero-allocation claim).
fn report_pool<R>(label: &str, outcome: Option<&mpsim::WorldOutcome<R>>) {
    if let Some(out) = outcome {
        let p = &out.pool;
        println!(
            "    {label}: pool rents={} hits={} ({:.1}% hit) allocs={} outstanding={}",
            p.hits + p.misses,
            p.hits,
            p.hit_rate() * 100.0,
            p.misses,
            p.outstanding
        );
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_pingpong(&mut h);
    bench_fanin(&mut h);
    bench_barrier(&mut h);
    bench_mailbox(&mut h);
    // Per-operation view: world-level samples divided by their batch size.
    for r in h.records() {
        let per_op = match (r.group.as_str(), r.id.as_str()) {
            ("pingpong", _) => Some(("per message", r.median_ns / (2.0 * ROUNDS as f64))),
            ("fanin", _) => Some(("per message", r.median_ns / (7.0 * FANIN_MSGS as f64))),
            ("barrier", _) => Some(("per barrier", r.median_ns / BARRIERS as f64)),
            _ => None,
        };
        if let Some((what, ns)) = per_op {
            println!("    {}/{}: {ns:.0} ns {what}", r.group, r.id);
        }
    }
    h.finish();
}
