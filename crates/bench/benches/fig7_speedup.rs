//! Companion to Figure 7: throughput of repeated broadcasts, native vs
//! tuned, for non-power-of-two worlds at the paper's three message sizes,
//! on the real threaded backend.

use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use mpsim::ThreadWorld;
use testkit::bench::Harness;

const REPS: usize = 8; // back-to-back broadcasts per world run (paper: 100)

fn bench_throughput(h: &mut Harness) {
    let mut group = h.group("fig7_throughput");
    group.sample_size(10);
    for &np in &[9usize, 17] {
        for &nbytes in &[12288usize, 524287] {
            group.throughput_bytes((nbytes * REPS) as u64);
            for (name, algorithm) in
                [("native", Algorithm::ScatterRingNative), ("tuned", Algorithm::ScatterRingTuned)]
            {
                let src = pattern(nbytes, 2);
                group.bench(&format!("{name}/np{np}/ms{nbytes}"), |b| {
                    b.iter(|| {
                        ThreadWorld::run(np, |comm| {
                            use mpsim::Communicator;
                            let mut buf =
                                if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
                            for _ in 0..REPS {
                                bcast_with(comm, &mut buf, 0, algorithm).unwrap();
                            }
                            buf[0]
                        })
                    })
                });
            }
        }
    }
}

testkit::bench_main!(bench_throughput);
