//! Criterion companion to Figure 7: throughput of repeated broadcasts,
//! native vs tuned, for non-power-of-two worlds at the paper's three
//! message sizes, on the real threaded backend.

use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpsim::ThreadWorld;

const REPS: usize = 8; // back-to-back broadcasts per world run (paper: 100)

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_throughput");
    group.sample_size(10);
    for &np in &[9usize, 17] {
        for &nbytes in &[12288usize, 524287] {
            group.throughput(Throughput::Elements(REPS as u64));
            for (name, algorithm) in [
                ("native", Algorithm::ScatterRingNative),
                ("tuned", Algorithm::ScatterRingTuned),
            ] {
                let src = pattern(nbytes, 2);
                group.bench_with_input(
                    BenchmarkId::new(name, format!("np{np}/ms{nbytes}")),
                    &nbytes,
                    |b, _| {
                        b.iter(|| {
                            ThreadWorld::run(np, |comm| {
                                use mpsim::Communicator;
                                let mut buf = if comm.rank() == 0 {
                                    src.clone()
                                } else {
                                    vec![0u8; nbytes]
                                };
                                for _ in 0..REPS {
                                    bcast_with(comm, &mut buf, 0, algorithm).unwrap();
                                }
                                buf[0]
                            })
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
