//! Companion to Figure 6 on the *real threaded* backend: wall-time of
//! native vs tuned broadcast with actual byte movement through memory.
//! The tuned ring does measurably less copying — the paper's intra-node
//! argument — independent of the cluster simulator.
//!
//! (World sizes are thread counts here; absolute times depend on the host.
//! The simulator-based figure regeneration lives in `src/bin/fig6.rs`.)

use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use mpsim::ThreadWorld;
use testkit::bench::Harness;

fn bench_bcast(h: &mut Harness) {
    let mut group = h.group("fig6_threaded");
    group.sample_size(10);
    for &np in &[8usize, 16] {
        for &nbytes in &[512 * 1024usize, 2 * 1024 * 1024] {
            group.throughput_bytes(nbytes as u64);
            for (name, algorithm) in [
                ("native", Algorithm::ScatterRingNative),
                ("tuned", Algorithm::ScatterRingTuned),
                ("binomial", Algorithm::Binomial),
            ] {
                let src = pattern(nbytes, 1);
                group.bench(&format!("{name}/np{np}/{nbytes}B"), |b| {
                    b.iter(|| {
                        ThreadWorld::run(np, |comm| {
                            use mpsim::Communicator;
                            let mut buf =
                                if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
                            bcast_with(comm, &mut buf, 0, algorithm).unwrap();
                            buf[0]
                        })
                    })
                });
            }
        }
    }
}

testkit::bench_main!(bench_bcast);
