//! Criterion companion to Figure 6 on the *real threaded* backend: wall-time
//! of native vs tuned broadcast with actual byte movement through memory.
//! The tuned ring does measurably less copying — the paper's intra-node
//! argument — independent of the cluster simulator.
//!
//! (World sizes are thread counts here; absolute times depend on the host.
//! The simulator-based figure regeneration lives in `src/bin/fig6.rs`.)

use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpsim::ThreadWorld;

fn bench_bcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_threaded");
    group.sample_size(10);
    for &np in &[8usize, 16] {
        for &nbytes in &[512 * 1024usize, 2 * 1024 * 1024] {
            group.throughput(Throughput::Bytes(nbytes as u64));
            for (name, algorithm) in [
                ("native", Algorithm::ScatterRingNative),
                ("tuned", Algorithm::ScatterRingTuned),
                ("binomial", Algorithm::Binomial),
            ] {
                let src = pattern(nbytes, 1);
                group.bench_with_input(
                    BenchmarkId::new(name, format!("np{np}/{nbytes}B")),
                    &nbytes,
                    |b, _| {
                        b.iter(|| {
                            ThreadWorld::run(np, |comm| {
                                use mpsim::Communicator;
                                let mut buf = if comm.rank() == 0 {
                                    src.clone()
                                } else {
                                    vec![0u8; nbytes]
                                };
                                bcast_with(comm, &mut buf, 0, algorithm).unwrap();
                                buf[0]
                            })
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bcast);
criterion_main!(benches);
