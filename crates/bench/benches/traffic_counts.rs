//! Micro-benchmarks of the pure algorithmic kernels: the tuned ring's
//! (step, flag) computation, the analytic traffic model, and the simulator's
//! reservation timeline — the hot non-communication paths of the library.

use bcast_core::traffic::{bcast_volume, tuned_ring_msgs};
use bcast_core::{step_flag, Algorithm};
use netsim::Timeline;
use std::hint::black_box;
use testkit::bench::Harness;

fn bench_step_flag(h: &mut Harness) {
    let mut group = h.group("step_flag");
    for &p in &[129usize, 1024, 65536] {
        group.bench(&p.to_string(), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for rel in 0..p {
                    acc += step_flag(black_box(rel), black_box(p)).0;
                }
                acc
            })
        });
    }
}

fn bench_traffic_model(h: &mut Harness) {
    let mut group = h.group("traffic_model");
    for &p in &[129usize, 1024] {
        group.bench(&format!("tuned_ring_msgs/{p}"), |b| b.iter(|| tuned_ring_msgs(black_box(p))));
        group.bench(&format!("bcast_volume_tuned/{p}"), |b| {
            b.iter(|| bcast_volume(Algorithm::ScatterRingTuned, black_box(1 << 20), p))
        });
    }
}

fn bench_timeline(h: &mut Harness) {
    let mut group = h.group("timeline");
    group.bench("sequential_claims_merge", |b| {
        b.iter(|| {
            let mut t = Timeline::new();
            for i in 0..1000 {
                t.claim(black_box(i as f64), 1.0);
            }
            t.fragments()
        })
    });
    group.bench("gap_filling_claims", |b| {
        b.iter(|| {
            let mut t = Timeline::new();
            // alternate far-future and near-past claims
            for i in 0..500 {
                t.claim(black_box(1_000_000.0 + i as f64 * 10.0), 5.0);
                t.claim(black_box(i as f64 * 10.0), 5.0);
            }
            t.fragments()
        })
    });
}

testkit::bench_main!(bench_step_flag, bench_traffic_model, bench_timeline);
