//! Micro-benchmarks of the pure algorithmic kernels: the tuned ring's
//! (step, flag) computation, the analytic traffic model, the simulator's
//! reservation timeline, and the discrete-event executor's broadcast hot
//! path — all single-threaded, so their medians are stable under --quick.

use bcast_core::traffic::{bcast_volume, tuned_ring_msgs};
use bcast_core::{
    bcast_coalesced_event_world, bcast_event_world, step_flag, Algorithm, CoalescePolicy,
};
use netsim::Timeline;
use std::hint::black_box;
use testkit::bench::Harness;

fn bench_step_flag(h: &mut Harness) {
    let mut group = h.group("step_flag");
    for &p in &[129usize, 1024, 65536] {
        group.bench(&p.to_string(), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for rel in 0..p {
                    acc += step_flag(black_box(rel), black_box(p)).0;
                }
                acc
            })
        });
    }
}

fn bench_traffic_model(h: &mut Harness) {
    let mut group = h.group("traffic_model");
    for &p in &[129usize, 1024] {
        group.bench(&format!("tuned_ring_msgs/{p}"), |b| b.iter(|| tuned_ring_msgs(black_box(p))));
        group.bench(&format!("bcast_volume_tuned/{p}"), |b| {
            b.iter(|| bcast_volume(Algorithm::ScatterRingTuned, black_box(1 << 20), p))
        });
    }
}

fn bench_timeline(h: &mut Harness) {
    let mut group = h.group("timeline");
    group.bench("sequential_claims_merge", |b| {
        b.iter(|| {
            let mut t = Timeline::new();
            for i in 0..1000 {
                t.claim(black_box(i as f64), 1.0);
            }
            t.fragments()
        })
    });
    group.bench("gap_filling_claims", |b| {
        b.iter(|| {
            let mut t = Timeline::new();
            // alternate far-future and near-past claims
            for i in 0..500 {
                t.claim(black_box(1_000_000.0 + i as f64 * 10.0), 5.0);
                t.claim(black_box(i as f64 * 10.0), 5.0);
            }
            t.fragments()
        })
    });
}

fn bench_event_world_hotpath(h: &mut Harness) {
    // A full broadcast on the event executor: reactor scheduling, mailbox
    // traffic, and pooled envelopes, but zero thread spawns — one measured
    // world is one complete collective, so the median tracks the per-message
    // overhead of the event loop itself.
    let mut group = h.group("event_world_hotpath");
    for &p in &[8usize, 32, 1024] {
        group.bench(&format!("tuned_bcast/{p}"), |b| {
            b.iter(|| {
                bcast_event_world(black_box(p), 2048, 0, Algorithm::ScatterRingTuned)
                    .traffic
                    .total_msgs()
            })
        });
    }
    group.bench("coalesced_bcast/32", |b| {
        b.iter(|| {
            bcast_coalesced_event_world(black_box(32), 2048, 0, CoalescePolicy::unlimited())
                .traffic
                .total_envelopes()
        })
    });
}

testkit::bench_main!(
    bench_step_flag,
    bench_traffic_model,
    bench_timeline,
    bench_event_world_hotpath
);
