//! # bcast-bench — harness regenerating every table and figure of the paper
//!
//! The paper's methodology (§V): synchronize all ranks with a barrier,
//! repeat the broadcast 100 times, and report *bandwidth* — "the rate at
//! which the broadcast messages can be processed", i.e.
//! `nbytes / mean_time_per_broadcast` — in base-2 megabytes per second.
//!
//! This crate provides that measurement loop over the [`netsim`] simulator
//! (the cluster stand-in) plus CSV/gnuplot-friendly printers, and hosts:
//!
//! * `src/bin/fig6.rs` — Fig. 6(a–c): bandwidth vs message size, np ∈ {16, 64, 256};
//! * `src/bin/fig7.rs` — Fig. 7: throughput speedup, np ∈ {9, 17, 33, 65, 129};
//! * `src/bin/fig8.rs` — Fig. 8: bandwidth sweep at np = 129;
//! * `src/bin/traffic_table.rs` — §IV transfer counts (56→44, 90→75, scaling);
//! * `benches/` — micro-benchmarks on the in-tree `testkit::bench` harness (real threaded backend).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod predict;

use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use mpsim::Communicator;
use netsim::{MachinePreset, SimWorld};

/// Number of timed repetitions per measurement, as in the paper.
pub const PAPER_ITERATIONS: usize = 100;

/// One measured point of a sweep.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Message size in bytes.
    pub nbytes: usize,
    /// World size.
    pub np: usize,
    /// Mean simulated time per broadcast, nanoseconds.
    pub mean_ns: f64,
    /// Bandwidth in base-2 MB/s (`2^20` bytes per second), the paper's unit.
    pub bandwidth_mbps: f64,
    /// Broadcasts per second (the paper's Fig. 7 "throughput").
    pub throughput_per_s: f64,
    /// Total messages moved per broadcast (from the instrumented runtime).
    pub msgs_per_bcast: f64,
}

/// Measure one `(algorithm, np, nbytes)` point on a simulated machine.
///
/// Follows the paper's loop: one barrier, then `iterations` back-to-back
/// broadcasts; the per-broadcast time is the virtual makespan divided by the
/// iteration count. Root is rank 0 throughout, as in the micro-benchmarks.
pub fn measure_sim(
    preset: &MachinePreset,
    algorithm: Algorithm,
    np: usize,
    nbytes: usize,
    iterations: usize,
) -> Measurement {
    assert!(iterations >= 1);
    let model = preset.model_for(nbytes, np);
    let src = pattern(nbytes, 0xF16);
    let out = SimWorld::run(model, preset.placement(), np, |comm| {
        let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
        comm.barrier().unwrap();
        let start = comm.now_ns();
        for _ in 0..iterations {
            bcast_with(comm, &mut buf, 0, algorithm).unwrap();
        }
        // A closing barrier makes every rank see the full completion time,
        // like the paper's user-level timing harness.
        comm.barrier().unwrap();
        let elapsed = comm.now_ns() - start;
        assert_eq!(buf, src, "rank {} corrupted buffer", comm.rank());
        elapsed
    });
    let elapsed_ns = out.results.iter().copied().max().unwrap() as f64;
    let mean_ns = elapsed_ns / iterations as f64;
    let bandwidth_mbps = if mean_ns > 0.0 {
        (nbytes as f64 / (1 << 20) as f64) / (mean_ns * 1e-9)
    } else {
        f64::INFINITY
    };
    Measurement {
        nbytes,
        np,
        mean_ns,
        bandwidth_mbps,
        throughput_per_s: if mean_ns > 0.0 { 1e9 / mean_ns } else { f64::INFINITY },
        msgs_per_bcast: out.traffic.total_msgs() as f64 / iterations as f64,
    }
}

/// A native-vs-tuned comparison at one point.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// The native (`MPI_Bcast_native`) measurement.
    pub native: Measurement,
    /// The tuned (`MPI_Bcast_opt`) measurement.
    pub tuned: Measurement,
}

impl Comparison {
    /// Bandwidth improvement of tuned over native, in percent
    /// (the paper's "improved by a range from 2% to 54%").
    pub fn improvement_pct(&self) -> f64 {
        (self.tuned.bandwidth_mbps / self.native.bandwidth_mbps - 1.0) * 100.0
    }

    /// Throughput speedup tuned/native (the paper's Fig. 7 y-axis).
    pub fn speedup(&self) -> f64 {
        self.tuned.throughput_per_s / self.native.throughput_per_s
    }
}

/// Measure native and tuned at one `(np, nbytes)` point.
pub fn compare_sim(
    preset: &MachinePreset,
    np: usize,
    nbytes: usize,
    iterations: usize,
) -> Comparison {
    Comparison {
        native: measure_sim(preset, Algorithm::ScatterRingNative, np, nbytes, iterations),
        tuned: measure_sim(preset, Algorithm::ScatterRingTuned, np, nbytes, iterations),
    }
}

/// The paper's Fig. 6 x-axis: powers of two from 2^19 to 2^25 bytes.
pub fn fig6_sizes() -> Vec<usize> {
    (19..=25).map(|e| 1usize << e).collect()
}

/// The paper's Fig. 8 x-axis: 12288 to 2560000 bytes, doubling from the
/// medium-message threshold (2^13.58… — we use the paper's powers of two
/// between 2^13 and 2^21, clipped to the stated endpoints).
pub fn fig8_sizes() -> Vec<usize> {
    let mut v = vec![12288usize];
    let mut s = 16384usize;
    while s < 2_560_000 {
        v.push(s);
        s *= 2;
    }
    v.push(2_560_000);
    v
}

/// Print a CSV header + rows for a native/tuned sweep (gnuplot-friendly).
pub fn print_comparison_csv(title: &str, rows: &[Comparison]) {
    println!("# {title}");
    println!("nbytes,np,native_mbps,tuned_mbps,improvement_pct,native_msgs,tuned_msgs");
    for c in rows {
        println!(
            "{},{},{:.1},{:.1},{:+.1},{:.0},{:.0}",
            c.native.nbytes,
            c.native.np,
            c.native.bandwidth_mbps,
            c.tuned.bandwidth_mbps,
            c.improvement_pct(),
            c.native.msgs_per_bcast,
            c.tuned.msgs_per_bcast,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::presets;

    #[test]
    fn measure_sim_produces_sane_numbers() {
        let m = measure_sim(&presets::hornet(), Algorithm::ScatterRingTuned, 16, 1 << 19, 3);
        assert!(m.mean_ns > 0.0);
        assert!(m.bandwidth_mbps > 0.0 && m.bandwidth_mbps.is_finite());
        // 15 scatter + 44-ish ring… np=16: scatter 15 + tuned ring (P²−Σown)
        assert!(m.msgs_per_bcast > 15.0);
    }

    #[test]
    fn comparison_improvement_sign_matches_bandwidths() {
        let c = compare_sim(&presets::hornet(), 16, 1 << 20, 3);
        if c.tuned.bandwidth_mbps > c.native.bandwidth_mbps {
            assert!(c.improvement_pct() > 0.0);
        } else {
            assert!(c.improvement_pct() <= 0.0);
        }
    }

    #[test]
    fn fig_sizes_match_paper_ranges() {
        let s6 = fig6_sizes();
        assert_eq!(s6.first(), Some(&524288));
        assert_eq!(s6.last(), Some(&(1 << 25)));
        let s8 = fig8_sizes();
        assert_eq!(s8.first(), Some(&12288));
        assert_eq!(s8.last(), Some(&2_560_000));
        assert!(s8.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn more_iterations_tighten_per_bcast_time() {
        // mean per-broadcast time should be roughly iteration-count
        // independent (steady state), within a loose factor.
        let a = measure_sim(&presets::hornet(), Algorithm::ScatterRingNative, 16, 1 << 19, 2);
        let b = measure_sim(&presets::hornet(), Algorithm::ScatterRingNative, 16, 1 << 19, 8);
        let ratio = a.mean_ns / b.mean_ns;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio={ratio}");
    }
}
