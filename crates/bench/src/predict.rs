//! Fast analytic predictor: compute the contention-free Hockney makespan of
//! a scatter-ring broadcast *without running any threads*, by evaluating the
//! algorithm's static communication schedule as a dependency graph.
//!
//! This is the classic α–β paper-napkin model made executable: each rank's
//! operations form a chain, each matched (send, recv) pair completes at
//! `max(sender_ready, receiver_ready) + handshake + α + sβ`, and the
//! broadcast finishes when the last rank's chain does. It is validated
//! against the full simulator (ideal preset, rendezvous, zero overheads),
//! where both must agree to floating-point accuracy — a strong cross-check
//! that the threaded virtual-time engine computes what the theory says.
//!
//! Because it runs in microseconds it is also the sweep tool for exploring
//! parameter spaces far beyond what thread-per-rank simulation can touch
//! (e.g. `P = 4096`).

// rank indices double as identities in the schedule-building loops below;
// iterator rewrites would obscure the tree arithmetic
#![allow(clippy::needless_range_loop)]

use bcast_core::chunks::ChunkLayout;
use bcast_core::ring::ring_step_chunks;
use bcast_core::ring_tuned::{receives_at, sends_at, step_flag};
use bcast_core::scatter::owned_chunks;
use bcast_core::Algorithm;
use netsim::{Level, NetworkModel, Placement};

/// One endpoint operation in a rank's schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Send `bytes` to `peer` (this rank's `seq`-th message to `peer`).
    Send { peer: usize, bytes: usize },
    /// Receive `bytes` from `peer`.
    Recv { peer: usize, bytes: usize },
    /// Concurrent exchange (`MPI_Sendrecv`).
    SendRecv { to: usize, send_bytes: usize, from: usize, recv_bytes: usize },
}

/// Build the per-rank schedules of a scatter-ring broadcast (root 0).
fn schedules(algorithm: Algorithm, nbytes: usize, p: usize) -> Vec<Vec<Op>> {
    assert!(matches!(
        algorithm,
        Algorithm::ScatterRingNative | Algorithm::ScatterRingTuned | Algorithm::Binomial
    ));
    let layout = ChunkLayout::new(nbytes, p);
    let mut ops: Vec<Vec<Op>> = vec![Vec::new(); p];

    if algorithm == Algorithm::Binomial {
        // Whole-buffer tree: same shape as the scatter, full-size messages.
        for rel in 1..p {
            let parent = rel - (1 << rel.trailing_zeros());
            ops[rel].push(Op::Recv { peer: parent, bytes: nbytes });
        }
        for parent in 0..p {
            let avail: usize =
                if parent == 0 { p.next_power_of_two() } else { 1 << parent.trailing_zeros() };
            let mut mask = avail >> 1;
            let mut sends = Vec::new();
            while mask > 0 {
                let child = parent + mask;
                if child < p && child - (1 << child.trailing_zeros()) == parent {
                    sends.push(Op::Send { peer: child, bytes: nbytes });
                }
                mask >>= 1;
            }
            ops[parent].extend(sends);
        }
        return ops;
    }

    // Binomial scatter (root 0 ⇒ relative == absolute ranks).
    for rel in 1..p {
        let parent = rel - (1 << rel.trailing_zeros());
        let own = owned_chunks(rel, p);
        let bytes = layout.span_bytes(rel..rel + own);
        if bytes > 0 {
            // The parent's sends happen highest-distance child first; child
            // order within a parent's op list must mirror the executed
            // algorithm (descending mask) for FIFO matching to line up.
            ops[rel].push(Op::Recv { peer: parent, bytes });
        }
    }
    // Parent send ops, in descending-mask order per parent.
    for parent in 0..p {
        let avail: usize =
            if parent == 0 { p.next_power_of_two() } else { 1 << parent.trailing_zeros() };
        let mut mask = avail >> 1;
        let mut sends = Vec::new();
        while mask > 0 {
            let child = parent + mask;
            if child < p && child - (1 << child.trailing_zeros()) == parent {
                let own = owned_chunks(child, p);
                let bytes = layout.span_bytes(child..child + own);
                if bytes > 0 {
                    sends.push(Op::Send { peer: child, bytes });
                }
            }
            mask >>= 1;
        }
        // a non-root rank receives its subtree before forwarding; the root
        // has no receive, so appending is correct for everyone (ring ops
        // are added below, after all scatter ops)
        ops[parent].extend(sends);
    }

    // Ring allgather.
    if p > 1 {
        for rel in 0..p {
            let right = (rel + 1) % p;
            let left = (rel + p - 1) % p;
            let (step, flag) = step_flag(rel, p);
            for i in 1..p {
                let (sc, rc) = ring_step_chunks(rel, p, i);
                let sbytes = layout.count(sc);
                let rbytes = layout.count(rc);
                let (do_send, do_recv) = match algorithm {
                    Algorithm::ScatterRingNative => (true, true),
                    _ => (sends_at(step, flag, p, i), receives_at(step, flag, p, i)),
                };
                match (do_send, do_recv) {
                    (true, true) => ops[rel].push(Op::SendRecv {
                        to: right,
                        send_bytes: sbytes,
                        from: left,
                        recv_bytes: rbytes,
                    }),
                    (true, false) => ops[rel].push(Op::Send { peer: right, bytes: sbytes }),
                    (false, true) => ops[rel].push(Op::Recv { peer: left, bytes: rbytes }),
                    (false, false) => {}
                }
            }
        }
    }
    ops
}

/// Evaluate the schedule under a contention-free rendezvous Hockney model
/// and return the makespan in nanoseconds.
///
/// Restrictions (checked): rendezvous only (`eager_threshold == 0`), no
/// contention, no per-message CPU overhead — the regime in which the
/// dependency recurrence below is exact. Inter-node rendezvous lets the
/// sender continue after serialization (`start + sβ`); intra-node transfers
/// release both sides at `start + α + sβ`, mirroring the fabric.
pub fn predict_makespan_ns(
    algorithm: Algorithm,
    nbytes: usize,
    p: usize,
    model: &NetworkModel,
    placement: Placement,
) -> f64 {
    assert_eq!(model.eager_threshold, 0, "predictor covers rendezvous only");
    assert!(!model.contention, "predictor covers the contention-free model only");
    assert_eq!(model.o_send_ns, 0.0);
    assert_eq!(model.o_recv_ns, 0.0);

    let scheds = schedules(algorithm, nbytes, p);

    // Matching is FIFO per directed pair: the k-th send rank->peer matches
    // the k-th receive at peer from rank. Resolve each op's partner op index
    // per direction.
    use std::collections::HashMap;
    let mut send_seq: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    let mut recv_seq: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for (r, ops) in scheds.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Send { peer, .. } => send_seq.entry((r, peer)).or_default().push(i),
                Op::Recv { peer, .. } => recv_seq.entry((peer, r)).or_default().push(i),
                Op::SendRecv { to, from, .. } => {
                    send_seq.entry((r, to)).or_default().push(i);
                    recv_seq.entry((from, r)).or_default().push(i);
                }
            }
        }
    }
    // partner op index for each (rank, op) per direction
    let mut send_partner: Vec<Vec<Option<(usize, usize)>>> =
        scheds.iter().map(|o| vec![None; o.len()]).collect();
    let mut recv_partner: Vec<Vec<Option<(usize, usize)>>> =
        scheds.iter().map(|o| vec![None; o.len()]).collect();
    let mut s_cursor: HashMap<(usize, usize), usize> = HashMap::new();
    let mut r_cursor: HashMap<(usize, usize), usize> = HashMap::new();
    for (r, ops) in scheds.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Send { peer, .. } => {
                    let c = s_cursor.entry((r, peer)).or_insert(0);
                    send_partner[r][i] = Some((peer, recv_seq[&(r, peer)][*c]));
                    *c += 1;
                }
                Op::Recv { peer, .. } => {
                    let c = r_cursor.entry((peer, r)).or_insert(0);
                    recv_partner[r][i] = Some((peer, send_seq[&(peer, r)][*c]));
                    *c += 1;
                }
                Op::SendRecv { to, from, .. } => {
                    let cs = s_cursor.entry((r, to)).or_insert(0);
                    send_partner[r][i] = Some((to, recv_seq[&(r, to)][*cs]));
                    *cs += 1;
                    let cr = r_cursor.entry((from, r)).or_insert(0);
                    recv_partner[r][i] = Some((from, send_seq[&(from, r)][*cr]));
                    *cr += 1;
                }
            }
        }
    }

    // transfer completion under the rendezvous model, mirroring the fabric:
    // start = max(ready) + handshake; inter-node senders leave after
    // serialization, intra-node transfers release both sides together.
    let xfer = |src: usize, dst: usize, bytes: usize, ready: f64| -> (f64, f64) {
        let level = placement.level(src, dst);
        let costs = model.costs(level);
        let start = ready + model.rendezvous_handshake_ns;
        let end = start + costs.alpha_ns + costs.serialize_ns(bytes);
        match level {
            Level::InterNode => (start + costs.serialize_ns(bytes), end),
            Level::IntraNode => (end, end),
        }
    };

    // Relaxation over per-op completion times: an op is computable once the
    // previous op of this rank and of every partner has completed. The
    // dependency graph is acyclic (indices strictly decrease), so repeated
    // sweeps terminate having computed everything.
    let mut done: Vec<Vec<Option<f64>>> = scheds.iter().map(|o| vec![None; o.len()]).collect();
    let ready_of = |done: &Vec<Vec<Option<f64>>>, r: usize, i: usize| -> Option<f64> {
        if i == 0 {
            Some(0.0)
        } else {
            done[r][i - 1]
        }
    };
    let mut remaining: usize = scheds.iter().map(Vec::len).sum();
    // first not-yet-computed op per rank: ops complete in order within a
    // rank (each depends on its predecessor), so a cursor suffices
    let mut cursor = vec![0usize; p];
    while remaining > 0 {
        let mut progressed = false;
        for r in 0..p {
            for i in cursor[r]..scheds[r].len() {
                if done[r][i].is_some() {
                    cursor[r] = i + 1;
                    continue;
                }
                let Some(my_ready) = ready_of(&done, r, i) else { break };
                let partner_ready = |link: Option<(usize, usize)>| -> Option<f64> {
                    let (peer, pi) = link?;
                    ready_of(&done, peer, pi)
                };
                let value = match scheds[r][i] {
                    Op::Send { peer, bytes } => {
                        let pr = partner_ready(send_partner[r][i]);
                        pr.map(|pr| xfer(r, peer, bytes, my_ready.max(pr)).0)
                    }
                    Op::Recv { peer, bytes } => {
                        let pr = partner_ready(recv_partner[r][i]);
                        pr.map(|pr| xfer(peer, r, bytes, my_ready.max(pr)).1)
                    }
                    Op::SendRecv { to, send_bytes, from, recv_bytes } => {
                        match (partner_ready(send_partner[r][i]), partner_ready(recv_partner[r][i]))
                        {
                            (Some(ps), Some(pr)) => {
                                let s_done = xfer(r, to, send_bytes, my_ready.max(ps)).0;
                                let r_done = xfer(from, r, recv_bytes, my_ready.max(pr)).1;
                                Some(s_done.max(r_done))
                            }
                            _ => None,
                        }
                    }
                };
                if let Some(v) = value {
                    done[r][i] = Some(v);
                    cursor[r] = i + 1;
                    remaining -= 1;
                    progressed = true;
                } else {
                    break; // later ops of this rank can't be ready either
                }
            }
        }
        assert!(progressed, "schedule deadlocked - matching bug");
    }
    done.iter().flat_map(|ops| ops.iter().map(|d| d.unwrap())).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_core::verify::pattern;
    use mpsim::Communicator;
    use netsim::SimWorld;

    fn rendezvous_model() -> NetworkModel {
        let mut m = NetworkModel::uniform(800.0, 0.4);
        m.rendezvous_handshake_ns = 350.0;
        // distinct inter level to exercise both paths
        m.inter = netsim::LevelCosts { alpha_ns: 1500.0, beta_ns_per_byte: 0.9 };
        m
    }

    fn simulate(algorithm: Algorithm, nbytes: usize, p: usize, cores: usize) -> f64 {
        let model = rendezvous_model();
        let src = pattern(nbytes, 3);
        let out = SimWorld::run(model, Placement::new(cores), p, |comm| {
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
            bcast_core::bcast_with(comm, &mut buf, 0, algorithm).unwrap();
            assert_eq!(buf, src);
        });
        out.makespan_ns
    }

    #[test]
    fn predictor_matches_simulator_native() {
        for &(p, nbytes, cores) in
            &[(4usize, 4096usize, 2usize), (8, 10_000, 4), (10, 4096, 24), (13, 999, 3)]
        {
            let predicted = predict_makespan_ns(
                Algorithm::ScatterRingNative,
                nbytes,
                p,
                &rendezvous_model(),
                Placement::new(cores),
            );
            let simulated = simulate(Algorithm::ScatterRingNative, nbytes, p, cores);
            let rel = (predicted - simulated).abs() / simulated.max(1.0);
            assert!(
                rel < 1e-9,
                "native p={p} nbytes={nbytes}: predicted {predicted} vs simulated {simulated}"
            );
        }
    }

    #[test]
    fn predictor_matches_simulator_tuned() {
        for &(p, nbytes, cores) in &[
            (4usize, 4096usize, 2usize),
            (8, 10_000, 4),
            (10, 4096, 24),
            (13, 999, 3),
            (24, 65_536, 24),
        ] {
            let predicted = predict_makespan_ns(
                Algorithm::ScatterRingTuned,
                nbytes,
                p,
                &rendezvous_model(),
                Placement::new(cores),
            );
            let simulated = simulate(Algorithm::ScatterRingTuned, nbytes, p, cores);
            let rel = (predicted - simulated).abs() / simulated.max(1.0);
            assert!(
                rel < 1e-9,
                "tuned p={p} nbytes={nbytes}: predicted {predicted} vs simulated {simulated}"
            );
        }
    }

    #[test]
    fn predictor_matches_simulator_binomial() {
        for &(p, nbytes, cores) in &[(4usize, 4096usize, 2usize), (10, 10_000, 24), (13, 999, 3)] {
            let predicted = predict_makespan_ns(
                Algorithm::Binomial,
                nbytes,
                p,
                &rendezvous_model(),
                Placement::new(cores),
            );
            let simulated = simulate(Algorithm::Binomial, nbytes, p, cores);
            let rel = (predicted - simulated).abs() / simulated.max(1.0);
            assert!(
                rel < 1e-9,
                "binomial p={p} nbytes={nbytes}: predicted {predicted} vs simulated {simulated}"
            );
        }
    }

    #[test]
    fn binomial_vs_ring_crossover_in_the_analytic_model() {
        // latency-bound: binomial wins; bandwidth-bound: the rings win —
        // the reason MPICH switches algorithms at all.
        let m = rendezvous_model();
        let placement = Placement::new(24);
        let small_binomial = predict_makespan_ns(Algorithm::Binomial, 1024, 16, &m, placement);
        let small_ring = predict_makespan_ns(Algorithm::ScatterRingTuned, 1024, 16, &m, placement);
        assert!(small_binomial < small_ring);
        let big_binomial = predict_makespan_ns(Algorithm::Binomial, 1 << 22, 16, &m, placement);
        let big_ring = predict_makespan_ns(Algorithm::ScatterRingTuned, 1 << 22, 16, &m, placement);
        assert!(big_ring < big_binomial);
    }

    #[test]
    fn predictor_scales_to_thousands_of_ranks() {
        // The whole point: sweep sizes no thread-per-rank simulation touches.
        let t = predict_makespan_ns(
            Algorithm::ScatterRingTuned,
            1 << 20,
            2048,
            &rendezvous_model(),
            Placement::new(24),
        );
        let n = predict_makespan_ns(
            Algorithm::ScatterRingNative,
            1 << 20,
            2048,
            &rendezvous_model(),
            Placement::new(24),
        );
        assert!(t > 0.0 && n > 0.0);
        assert!(t <= n * 1.001, "tuned {t} should not exceed native {n}");
    }
}
