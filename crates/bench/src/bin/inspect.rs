//! Diagnostic probe: per-rank virtual finish times and per-level traffic of
//! one simulated broadcast, native vs tuned.
//!
//! Usage: `inspect [--np N] [--nbytes B] [--iters I] [--preset hornet|laki|ideal]`
//!
//! Prints, per algorithm: makespan, the five slowest ranks, per-node finish
//! spread, and the intra/inter message and byte split — the quantities used
//! to sanity-check the simulator's behaviour against the paper's §IV
//! argument (fewer messages → less queueing on shared resources).

use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use mpsim::Communicator;
use netsim::{presets, SimWorld};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let np = flag(&args, "--np").map_or(64, |v| v.parse().unwrap());
    let nbytes = flag(&args, "--nbytes").map_or(1 << 20, |v| v.parse().unwrap());
    let iters = flag(&args, "--iters").map_or(1, |v| v.parse().unwrap());
    let mut preset = match flag(&args, "--preset").as_deref() {
        None | Some("hornet") => presets::hornet(),
        Some("laki") => presets::laki(),
        Some("ideal") => presets::ideal(24),
        Some(other) => panic!("unknown preset {other}"),
    };
    // Ablation switches for debugging the model.
    if args.iter().any(|a| a == "--no-unpack") {
        preset.base.eager_unpack_copy = false;
    }
    if args.iter().any(|a| a == "--no-contention") {
        preset.base.contention = false;
    }
    if args.iter().any(|a| a == "--o0") {
        preset.base.o_send_ns = 0.0;
        preset.base.o_recv_ns = 0.0;
    }
    if args.iter().any(|a| a == "--all-rendezvous") {
        preset.base.eager_threshold = 0;
    }
    if let Some(v) = flag(&args, "--credits") {
        preset.base.eager_credits = v.parse().unwrap();
    }
    if let Some(v) = flag(&args, "--eager-threshold") {
        preset.base.eager_threshold = v.parse().unwrap();
    }
    println!("# inspect: np={np} nbytes={nbytes} iters={iters} preset={}", preset.name);

    let want_trace = args.iter().any(|a| a == "--trace");
    for algorithm in [Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned] {
        let model = preset.model_for(nbytes, np);
        let placement = preset.placement();
        let src = pattern(nbytes, 7);
        let (out, events) = SimWorld::run_traced(model, placement, np, |comm| {
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
            comm.barrier().unwrap();
            for _ in 0..iters {
                bcast_with(comm, &mut buf, 0, algorithm).unwrap();
            }
            comm.vtime()
        });
        let mut by_finish: Vec<(usize, f64)> = out.results.iter().copied().enumerate().collect();
        by_finish.sort_by(|a, b| b.1.total_cmp(&a.1));
        let (intra_m, inter_m, intra_b, inter_b) =
            out.traffic.split_msgs(|a, b| placement.level(a, b) == netsim::Level::IntraNode);
        println!("\n== {algorithm:?}");
        println!("makespan: {:.1} us", out.makespan_ns / 1000.0);
        println!(
            "slowest ranks: {}",
            by_finish
                .iter()
                .take(5)
                .map(|(r, t)| format!("r{}@{:.1}us(node{})", r, t / 1000.0, placement.node_of(*r)))
                .collect::<Vec<_>>()
                .join(" ")
        );
        if args.iter().any(|a| a == "--dump") {
            for (r, t) in out.results.iter().enumerate() {
                println!("rank {r}: {:.1} us", t / 1000.0);
            }
        }
        let nodes = placement.node_count(np);
        for node in 0..nodes {
            let finishes: Vec<f64> =
                (0..np).filter(|&r| placement.node_of(r) == node).map(|r| out.results[r]).collect();
            let max = finishes.iter().copied().fold(f64::MIN, f64::max);
            let min = finishes.iter().copied().fold(f64::MAX, f64::min);
            println!("node {node}: finish {:.1}..{:.1} us", min / 1000.0, max / 1000.0);
        }
        println!(
            "traffic: intra {intra_m} msgs / {:.2} MB, inter {inter_m} msgs / {:.2} MB",
            intra_b as f64 / 1048576.0,
            inter_b as f64 / 1048576.0
        );
        if want_trace {
            let s = netsim::summarize(&events);
            println!(
                "trace: {} transfers ({} eager), mean span {:.2} us, max span {:.2} us",
                events.len(),
                s.eager_msgs,
                s.mean_span_ns / 1000.0,
                s.max_span_ns / 1000.0
            );
            let hot = netsim::events::bytes_by_source_node(&events, placement);
            println!("bytes by source node: {hot:?}");
        }
        let busiest = out
            .breakdown
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.comm_ns.total_cmp(&b.1.comm_ns))
            .unwrap();
        println!(
            "comm-heaviest rank: r{} with {:.1} us comm ({:.0}% of its busy time)",
            busiest.0,
            busiest.1.comm_ns / 1000.0,
            busiest.1.comm_fraction() * 100.0
        );
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|i| args[i + 1].clone())
}
