//! Section IV transfer-count table: native `P·(P−1)` vs tuned `P² − Σ own`,
//! reproducing the paper's worked examples (56 → 44 at P = 8, 90 → 75 at
//! P = 10) and extending the saving curve across process counts — including
//! a measured column from the instrumented threaded runtime to show that the
//! executed algorithms move exactly the modelled number of messages.
//!
//! Usage: `traffic_table [--max P]`

use bcast_core::bcast::Algorithm;
use bcast_core::traffic::{native_ring_msgs, ring_saving_msgs, tuned_ring_msgs};
use bcast_core::verify::run_threaded;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max: usize = args
        .iter()
        .position(|a| a == "--max")
        .map_or(64, |i| args[i + 1].parse().expect("--max P"));

    println!("# Ring-allgather transfer counts (paper §IV)");
    println!("P,native,tuned,saving,saving_pct,measured_tuned");
    let mut ps: Vec<usize> = vec![2, 4, 8, 10, 16, 24, 32, 48];
    ps.extend([64, 96, 128, 129, 192, 256, 512].iter().filter(|&&p| p <= max.max(10)));
    ps.retain(|&p| p <= max.max(10));
    ps.dedup();
    for p in ps {
        let native = native_ring_msgs(p);
        let tuned = tuned_ring_msgs(p);
        let saving = ring_saving_msgs(p);
        // measure on the real threaded runtime (ring phase only =
        // total − scatter messages) when world size is affordable
        let measured = if p <= 128 {
            let run = run_threaded(Algorithm::ScatterRingTuned, p, 8 * p, 0);
            assert!(run.correct);
            let scatter = run.traffic.total_msgs() - tuned; // should equal P−1
            assert_eq!(scatter, p as u64 - 1, "scatter message count mismatch");
            (run.traffic.total_msgs() - (p as u64 - 1)).to_string()
        } else {
            "-".to_string()
        };
        println!(
            "{p},{native},{tuned},{saving},{:.1},{measured}",
            100.0 * saving as f64 / native as f64
        );
    }
    println!("# paper: P=8: 56 -> 44 (saved 12); P=10: 90 -> 75 (saved 15)");
}
