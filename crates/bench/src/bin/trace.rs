//! Step-level trace of the ring allgather on the simulator: prints selected
//! ranks' virtual times after every ring step, for debugging the model.
//!
//! Usage: `trace [--np N] [--nbytes B] [--tuned] [--ranks 0,1,24] [--o0]
//!         [--no-unpack] [--all-rendezvous]`

use bcast_core::chunks::ChunkLayout;
use bcast_core::ring::ring_step_chunks;
use bcast_core::ring_tuned::{receives_at, sends_at, step_flag};
use bcast_core::scatter::binomial_scatter;
use bcast_core::verify::pattern;
use mpsim::sync::Mutex;
use mpsim::{ring_left, ring_right, split_send_recv, Communicator, Tag};
use netsim::{presets, SimWorld};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let np: usize = flag(&args, "--np").map_or(96, |v| v.parse().unwrap());
    let nbytes: usize = flag(&args, "--nbytes").map_or(np * 4096, |v| v.parse().unwrap());
    let tuned = args.iter().any(|a| a == "--tuned");
    let watch: Vec<usize> = flag(&args, "--ranks")
        .map_or(vec![1, 24, 48, 95], |v| v.split(',').map(|s| s.parse().unwrap()).collect());
    let mut preset = presets::hornet();
    if args.iter().any(|a| a == "--o0") {
        preset.base.o_send_ns = 0.0;
        preset.base.o_recv_ns = 0.0;
    }
    if args.iter().any(|a| a == "--no-unpack") {
        preset.base.eager_unpack_copy = false;
    }
    if args.iter().any(|a| a == "--all-rendezvous") {
        preset.base.eager_threshold = 0;
    }

    let model = preset.model_for(nbytes, np);
    let placement = preset.placement();
    let src = pattern(nbytes, 3);
    // (rank, step, vtime_us) tuples, any order; sorted before printing
    let traces: Mutex<Vec<(usize, usize, f64)>> = Mutex::new(vec![]);

    SimWorld::run(model, placement, np, |comm| {
        let rank = comm.rank();
        let size = comm.size();
        let mut buf = if rank == 0 { src.clone() } else { vec![0u8; nbytes] };
        binomial_scatter(comm, &mut buf, 0).unwrap();
        if size == 1 {
            return;
        }
        let layout = ChunkLayout::new(buf.len(), size);
        let (left, right) = (ring_left(rank, size), ring_right(rank, size));
        let (step, flagv) = step_flag(rank, size);
        for i in 1..size {
            let (sc, rc) = ring_step_chunks(rank, size, i);
            let sr = layout.range(sc);
            let rr = layout.range(rc);
            let do_send = if tuned { sends_at(step, flagv, size, i) } else { true };
            let do_recv = if tuned { receives_at(step, flagv, size, i) } else { true };
            match (do_send, do_recv) {
                (true, true) => {
                    let (sb, rb) =
                        split_send_recv(&mut buf, sr.start, sr.len(), rr.start, rr.len()).unwrap();
                    comm.sendrecv(sb, right, Tag::ALLGATHER, rb, left, Tag::ALLGATHER).unwrap();
                }
                (true, false) => comm.send(&buf[sr], right, Tag::ALLGATHER).unwrap(),
                (false, true) => {
                    comm.recv(&mut buf[rr], left, Tag::ALLGATHER).unwrap();
                }
                (false, false) => {}
            }
            if watch.contains(&rank) {
                traces.lock().push((rank, i, comm.vtime() / 1000.0));
            }
        }
        assert_eq!(buf, src);
    });

    let mut t = traces.into_inner();
    t.sort_by_key(|a| (a.0, a.1));
    let mut last_rank = usize::MAX;
    let mut last_t = 0.0;
    for (rank, step, vt) in t {
        if rank != last_rank {
            println!("--- rank {rank}");
            last_rank = rank;
            last_t = 0.0;
        }
        println!("step {step:4}: {vt:9.2} us (+{:.2})", vt - last_t);
        last_t = vt;
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|i| args[i + 1].clone())
}
