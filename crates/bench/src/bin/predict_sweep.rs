//! Analytic large-scale sweep (beyond the paper's 256 processes): tuned vs
//! native scatter-ring broadcast makespan under the contention-free
//! rendezvous Hockney model, up to thousands of ranks, computed in
//! milliseconds via the schedule evaluator (`bcast_bench::predict`).
//!
//! Usage: `predict_sweep [--nbytes B] [--max-p P]`

use bcast_bench::predict::predict_makespan_ns;
use bcast_core::Algorithm;
use netsim::{LevelCosts, NetworkModel, Placement};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |f: &str| args.iter().position(|a| a == f).map(|i| args[i + 1].clone());
    let nbytes: usize = get("--nbytes").map_or(1 << 20, |v| v.parse().unwrap());
    let max_p: usize = get("--max-p").map_or(4096, |v| v.parse().unwrap());

    // Hornet-like constants, contention-free (the predictor's regime).
    let mut model = NetworkModel::uniform(400.0, 0.167);
    model.inter = LevelCosts { alpha_ns: 1300.0, beta_ns_per_byte: 0.10 };
    model.rendezvous_handshake_ns = 900.0;
    let placement = Placement::new(24);

    println!("# Analytic sweep: {nbytes} B broadcast, contention-free Hockney, 24 cores/node");
    println!("P,native_us,tuned_us,speedup");
    let mut p = 8usize;
    while p <= max_p {
        for q in [p, p + p / 8] {
            // a power of two and a non-power-of-two nearby
            if q > max_p {
                continue;
            }
            let native =
                predict_makespan_ns(Algorithm::ScatterRingNative, nbytes, q, &model, placement);
            let tuned =
                predict_makespan_ns(Algorithm::ScatterRingTuned, nbytes, q, &model, placement);
            println!("{q},{:.1},{:.1},{:.4}", native / 1000.0, tuned / 1000.0, native / tuned);
        }
        p *= 2;
    }
}
