//! Figure 6 (a–c): bandwidth of `MPI_Bcast_native` vs `MPI_Bcast_opt` for
//! long messages (2^19..2^25 bytes) with power-of-two process counts
//! 16, 64 and 256 on the simulated Hornet-like Cray XC40.
//!
//! Usage: `fig6 [--iters N] [--np LIST] [--preset hornet|laki|ideal]`
//!
//! Output: one CSV block per process count, plus a per-np peak-bandwidth
//! summary (the paper's §V-A "peak bandwidth" comparison, experiment E7).

use bcast_bench::{compare_sim, fig6_sizes, print_comparison_csv, Comparison};
use netsim::presets;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = flag_value(&args, "--iters").map_or(5, |v| v.parse().expect("--iters N"));
    let nps: Vec<usize> = flag_value(&args, "--np").map_or(vec![16, 64, 256], |v| {
        v.split(',').map(|s| s.parse().expect("--np LIST")).collect()
    });
    let preset = match flag_value(&args, "--preset").as_deref() {
        None | Some("hornet") => presets::hornet(),
        Some("laki") => presets::laki(),
        Some("ideal") => presets::ideal(24),
        Some(other) => panic!("unknown preset {other}"),
    };
    let mut preset = preset;
    if let Some(v) = flag_value(&args, "--eager-threshold") {
        preset.base.eager_threshold = v.parse().expect("--eager-threshold BYTES");
    }

    println!("# Figure 6: long-message bandwidth, native vs tuned ({})", preset.name);
    println!("# iterations per point: {iters}");
    for &np in &nps {
        let rows: Vec<Comparison> =
            fig6_sizes().iter().map(|&n| compare_sim(&preset, np, n, iters)).collect();
        print_comparison_csv(&format!("Fig 6, np={np}"), &rows);
        let peak_native = rows.iter().map(|c| c.native.bandwidth_mbps).fold(f64::MIN, f64::max);
        let peak_tuned = rows.iter().map(|c| c.tuned.bandwidth_mbps).fold(f64::MIN, f64::max);
        let best = rows.iter().map(Comparison::improvement_pct).fold(f64::MIN, f64::max);
        println!(
            "# np={np} peak: native {peak_native:.0} MB/s, tuned {peak_tuned:.0} MB/s \
             ({:+.1}% peak, best point {best:+.1}%)\n",
            (peak_tuned / peak_native - 1.0) * 100.0
        );
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| args.get(i + 1).expect("flag value").clone())
}
