//! Figure 8: bandwidth of `MPI_Bcast_native` vs `MPI_Bcast_opt` at 129
//! processes over message sizes 12288..2560000 bytes (medium through long,
//! all on the scatter-ring path because 129 is not a power of two).
//!
//! Usage: `fig8 [--iters N] [--np N] [--preset hornet|laki|ideal]`

use bcast_bench::{compare_sim, fig8_sizes, print_comparison_csv, Comparison};
use netsim::presets;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = flag_value(&args, "--iters").map_or(10, |v| v.parse().expect("--iters N"));
    let np = flag_value(&args, "--np").map_or(129, |v| v.parse().expect("--np N"));
    let preset = match flag_value(&args, "--preset").as_deref() {
        None | Some("hornet") => presets::hornet(),
        Some("laki") => presets::laki(),
        Some("ideal") => presets::ideal(24),
        Some(other) => panic!("unknown preset {other}"),
    };
    let mut preset = preset;
    if let Some(v) = flag_value(&args, "--eager-threshold") {
        preset.base.eager_threshold = v.parse().expect("--eager-threshold BYTES");
    }

    println!("# Figure 8: medium..long sweep at np={np} ({})", preset.name);
    println!("# iterations per point: {iters}");
    let rows: Vec<Comparison> =
        fig8_sizes().iter().map(|&n| compare_sim(&preset, np, n, iters)).collect();
    print_comparison_csv(&format!("Fig 8, np={np}"), &rows);
    let best = rows.iter().map(Comparison::improvement_pct).fold(f64::MIN, f64::max);
    println!("# best improvement: {best:+.1}% (paper: up to +30%)");
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| args.get(i + 1).expect("flag value").clone())
}
