//! Model-level ablation study (DESIGN.md §8): which mechanisms turn the
//! tuned ring's *message* savings into *time* savings?
//!
//! For a fixed workload (np=16 intra-node and np=48 two-node, 1 MiB), toggle
//! one model feature at a time and report the tuned/native speedup:
//!
//! * `full`            — the Hornet preset as used in the figures
//! * `no-contention`   — infinite NIC/memory resources (pure Hockney)
//! * `no-overhead`     — zero per-message CPU overhead (LogGP o = 0)
//! * `all-eager`       — eager protocol at every size (credits still apply)
//! * `all-rendezvous`  — rendezvous at every size
//! * `loose-credits`   — eager flow-control credits 4 → 64
//! * `round-robin`     — cyclic placement over 4 nodes (ring locality gone)
//! * `backbone-4GB/s`  — shared-bisection fabric (inter-node volume scarce)
//!
//! Usage: `ablations [--iters N]`

use bcast_bench::compare_sim;
use netsim::presets::{self, MachinePreset};

fn variants() -> Vec<(&'static str, MachinePreset)> {
    let base = presets::hornet();
    let mut v = vec![("full", base.clone())];

    let mut p = base.clone();
    p.base.contention = false;
    v.push(("no-contention", p));

    let mut p = base.clone();
    p.base.o_send_ns = 0.0;
    p.base.o_recv_ns = 0.0;
    v.push(("no-overhead", p));

    let mut p = base.clone();
    p.base.eager_threshold = usize::MAX;
    v.push(("all-eager", p));

    let mut p = base.clone();
    p.base.eager_threshold = 0;
    v.push(("all-rendezvous", p));

    let mut p = base.clone();
    p.base.eager_credits = 64;
    v.push(("loose-credits", p));

    // Placement ablation: deal ranks round-robin over 4 nodes — every ring
    // edge becomes inter-node, the locality the block placement gave the
    // ring algorithms disappears.
    let mut p = base.clone();
    p.placement = netsim::Placement::round_robin(24, 4);
    v.push(("round-robin", p));

    // Bisection-limited fabric: a 4 GB/s shared backbone makes inter-node
    // volume the scarce resource (Dragonfly under global congestion).
    let mut p = base.clone();
    p.base.backbone_beta_ns_per_byte = 0.25;
    v.push(("backbone-4GB/s", p));

    v
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = args
        .iter()
        .position(|a| a == "--iters")
        .map_or(5, |i| args[i + 1].parse().expect("--iters N"));

    println!("# Ablations: tuned/native speedup under model variants ({iters} iters)");
    println!("{:<16} {:>14} {:>14} {:>16}", "variant", "np16/1MiB", "np48/1MiB", "np33/12288B");
    for (name, preset) in variants() {
        let a = compare_sim(&preset, 16, 1 << 20, iters).speedup();
        let b = compare_sim(&preset, 48, 1 << 20, iters).speedup();
        let c = compare_sim(&preset, 33, 12288, iters * 3).speedup();
        println!("{name:<16} {a:>14.3} {b:>14.3} {c:>16.3}");
    }
    println!(
        "\nReading guide: without shared-resource contention the rings tie —\n\
         the bandwidth saving only pays where bandwidth is actually scarce,\n\
         which is the paper's core argument."
    );
}
