//! OSU-microbenchmark-style broadcast latency table (`osu_bcast` look-alike)
//! on the simulated cluster: one row per message size, average per-broadcast
//! latency in microseconds for the chosen algorithm.
//!
//! Usage: `osu_bcast [--np N] [--algo native|tuned|binomial|auto]
//!         [--iters I] [--max-size B] [--preset hornet|laki|ideal]`

use bcast_bench::measure_sim;
use bcast_core::Algorithm;
use netsim::presets;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |f: &str| args.iter().position(|a| a == f).map(|i| args[i + 1].clone());
    let np: usize = get("--np").map_or(16, |v| v.parse().unwrap());
    let iters: usize = get("--iters").map_or(10, |v| v.parse().unwrap());
    let max_size: usize = get("--max-size").map_or(1 << 22, |v| v.parse().unwrap());
    let algorithm = match get("--algo").as_deref() {
        None | Some("tuned") => Algorithm::ScatterRingTuned,
        Some("native") => Algorithm::ScatterRingNative,
        Some("binomial") => Algorithm::Binomial,
        Some("rd") => Algorithm::ScatterRdAllgather,
        Some(o) => panic!("unknown algo {o}"),
    };
    let preset = match get("--preset").as_deref() {
        None | Some("hornet") => presets::hornet(),
        Some("laki") => presets::laki(),
        Some("ideal") => presets::ideal(24),
        Some(o) => panic!("unknown preset {o}"),
    };

    println!("# OSU-style MPI_Bcast Latency Test ({}, np={np}, {algorithm:?})", preset.name);
    println!("# {:>10} {:>14} {:>14}", "Size", "Avg Latency(us)", "Bandwidth(MB/s)");
    let mut size = 1usize;
    while size <= max_size {
        let m = measure_sim(&preset, algorithm, np, size, iters);
        println!("{:>12} {:>14.2} {:>14.1}", size, m.mean_ns / 1000.0, m.bandwidth_mbps);
        size *= 4;
    }
}
