//! Figure 7: throughput speedup of `MPI_Bcast_opt` over `MPI_Bcast_native`
//! for non-power-of-two process counts (9, 17, 33, 65, 129) at three message
//! sizes: 12288 B (medium threshold), 524287 B (largest medium), 1048576 B
//! (long).
//!
//! Throughput is broadcasts per second over back-to-back repetitions — which
//! is where the tuned algorithm's structural advantage shows at small sizes:
//! the native root must drain its (useless) ring receives before starting
//! the next broadcast, while the tuned root finishes after its last send.
//!
//! Usage: `fig7 [--iters N] [--preset hornet|laki|ideal]`

use bcast_bench::compare_sim;
use netsim::presets;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = flag_value(&args, "--iters").map_or(20, |v| v.parse().expect("--iters N"));
    let preset = match flag_value(&args, "--preset").as_deref() {
        None | Some("hornet") => presets::hornet(),
        Some("laki") => presets::laki(),
        Some("ideal") => presets::ideal(24),
        Some(other) => panic!("unknown preset {other}"),
    };
    let mut preset = preset;
    if let Some(v) = flag_value(&args, "--eager-threshold") {
        preset.base.eager_threshold = v.parse().expect("--eager-threshold BYTES");
    }

    let nps = [9usize, 17, 33, 65, 129];
    let sizes = [12288usize, 524287, 1048576];

    println!("# Figure 7: throughput speedup tuned/native, npof2 ({})", preset.name);
    println!("# iterations per point: {iters}");
    println!("np,ms12288,ms524287,ms1048576");
    for &np in &nps {
        let speedups: Vec<f64> =
            sizes.iter().map(|&ms| compare_sim(&preset, np, ms, iters).speedup()).collect();
        println!("{np},{:.3},{:.3},{:.3}", speedups[0], speedups[1], speedups[2]);
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| args.get(i + 1).expect("flag value").clone())
}
