//! Differential property tests of the hierarchical [`TimerWheel`] against a
//! `BinaryHeap` reference model — the exact structure the wheel replaced in
//! the event reactor.
//!
//! The heap model is the old semantics in miniature: armed timers are
//! `(deadline, seq, task)` triples in a min-heap, cancellation marks the
//! entry dead and pops discard dead entries lazily. The wheel must agree
//! with it on every observable: which timer pops next (including the
//! `(deadline, seq)` tie-breaking order that keeps replay deterministic),
//! what `cancel` returns for live vs stale handles, and how many live
//! entries remain. Deadline magnitudes are drawn across the wheel's full
//! level range so placement and cascading at every level is exercised.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use mpsim::{TimerHandle, TimerWheel};
use testkit::prop::{self, Config};

/// Reference model: the reactor's previous timer store, lazy deletion and
/// all, plus the handle table needed to aim cancels at specific arms.
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, usize, usize)>>,
    /// Sequence numbers of cancelled (or already-popped) entries.
    dead: HashSet<usize>,
    /// Every handle ever issued: `(wheel_handle, deadline, task)` indexed by
    /// arming order, which doubles as the model's tie-breaking `seq`.
    armed: Vec<(TimerHandle, u64, usize)>,
}

impl HeapModel {
    fn new() -> Self {
        HeapModel { heap: BinaryHeap::new(), dead: HashSet::new(), armed: Vec::new() }
    }

    fn arm(&mut self, handle: TimerHandle, deadline: u64, task: usize) {
        let seq = self.armed.len();
        self.heap.push(Reverse((deadline, seq, task)));
        self.armed.push((handle, deadline, task));
    }

    /// Cancel the `k`-th handle ever issued; true if it was still live.
    fn cancel(&mut self, k: usize) -> bool {
        self.dead.insert(k)
    }

    /// Earliest live `(deadline, task)`, discarding dead entries like the
    /// old reactor did.
    fn pop_next(&mut self) -> Option<(u64, usize)> {
        while let Some(Reverse((deadline, seq, task))) = self.heap.pop() {
            if self.dead.insert(seq) {
                return Some((deadline, task));
            }
        }
        None
    }

    fn live(&self) -> usize {
        self.armed.len() - self.dead.len()
    }
}

#[test]
fn wheel_matches_binary_heap_model() {
    // Op stream: (op, magnitude, raw). op 0 arms `raw` masked to `magnitude`
    // bits of delay (0..2^47, spanning every wheel level), op 1 cancels the
    // raw-indexed handle (live or stale), op 2 pops the next deadline and
    // advances the clock to it — exactly the reactor's idle transition.
    prop::check(
        "wheel_matches_binary_heap_model",
        Config::cases(96),
        &prop::vec_of((prop::u8_range(0..3), prop::u8_range(0..48), prop::any_u64()), 1..120),
        |ops: &Vec<(u8, u8, u64)>| {
            let mut wheel = TimerWheel::new();
            let mut model = HeapModel::new();
            let mut now = 0u64;
            let mut cancels = 0u64;

            let drain_one = |wheel: &mut TimerWheel,
                             model: &mut HeapModel,
                             now: &mut u64|
             -> Result<bool, String> {
                let expect = model.pop_next();
                let got = wheel.pop_next(*now);
                if got != expect {
                    return Err(format!("pop at now={now}: wheel {got:?}, heap {expect:?}"));
                }
                if let Some((deadline, _)) = got {
                    *now = (*now).max(deadline);
                    Ok(true)
                } else {
                    Ok(false)
                }
            };

            for (i, &(op, magnitude, raw)) in ops.iter().enumerate() {
                match op {
                    0 => {
                        let delay = raw & ((1u64 << magnitude) - 1);
                        let deadline = now.saturating_add(delay);
                        let handle = wheel.arm(now, deadline, i);
                        model.arm(handle, deadline, i);
                    }
                    1 => {
                        if model.armed.is_empty() {
                            continue;
                        }
                        let k = (raw as usize) % model.armed.len();
                        let expect = model.cancel(k);
                        let got = wheel.cancel(model.armed[k].0);
                        if got != expect {
                            return Err(format!(
                                "cancel of arm #{k}: wheel said {got}, model said {expect}"
                            ));
                        }
                        if expect {
                            cancels += 1;
                        }
                    }
                    _ => {
                        drain_one(&mut wheel, &mut model, &mut now)?;
                    }
                }
                if wheel.len() != model.live() {
                    return Err(format!(
                        "after op {i}: wheel holds {} live timers, heap model {}",
                        wheel.len(),
                        model.live()
                    ));
                }
            }

            // Drain to empty: the full remaining order must match too.
            while drain_one(&mut wheel, &mut model, &mut now)? {}
            if !wheel.is_empty() {
                return Err(format!("wheel not empty after drain: {} left", wheel.len()));
            }
            if wheel.cancelled() != cancels {
                return Err(format!(
                    "cancel counter: wheel {} vs expected {cancels}",
                    wheel.cancelled()
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn equal_deadlines_pop_in_arming_order() {
    // The determinism-critical tie rule on its own: any batch of timers
    // armed for the same instant must pop in arming order, regardless of
    // how the batch is interleaved with earlier/later deadlines.
    prop::check(
        "equal_deadlines_pop_in_arming_order",
        Config::cases(64),
        &prop::vec_of(prop::u8_range(0..8), 1..40),
        |deadlines: &Vec<u8>| {
            let mut wheel = TimerWheel::new();
            for (i, &d) in deadlines.iter().enumerate() {
                wheel.arm(0, u64::from(d), i);
            }
            let mut popped = Vec::new();
            let mut now = 0u64;
            while let Some((deadline, task)) = wheel.pop_next(now) {
                now = now.max(deadline);
                popped.push((deadline, task));
            }
            // Expected: stable sort of (deadline, arming index).
            let mut expect: Vec<(u64, usize)> =
                deadlines.iter().enumerate().map(|(i, &d)| (u64::from(d), i)).collect();
            expect.sort();
            if popped != expect {
                return Err(format!("pop order {popped:?} != arming-stable order {expect:?}"));
            }
            Ok(())
        },
    );
}
