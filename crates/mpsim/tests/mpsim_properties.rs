//! Property-based tests of the mpsim substrate itself: matching order,
//! counter balance, sub-communicator invariants under randomized inputs
//! from the in-tree `testkit` harness.

use mpsim::{Communicator, SubComm, Tag, ThreadWorld};
use testkit::prop::{self, Config};

/// Non-overtaking: per (src, dst, tag) messages arrive in send order,
/// regardless of how many tags interleave.
#[test]
fn per_channel_fifo_with_interleaved_tags() {
    prop::check(
        "per_channel_fifo_with_interleaved_tags",
        Config::cases(32),
        &prop::vec_of((prop::u32_range(0..4), prop::u8_range(0..255)), 1..60),
        |plan: &Vec<(u32, u8)>| {
            let plan2 = plan.clone();
            let out = ThreadWorld::run(2, move |comm| {
                if comm.rank() == 0 {
                    for &(tag, val) in &plan2 {
                        comm.send(&[val], 1, Tag(tag)).unwrap();
                    }
                    vec![]
                } else {
                    // receive per tag in the global order of that tag's sends
                    let mut got = Vec::new();
                    for tag in 0..4u32 {
                        let count = plan2.iter().filter(|&&(t, _)| t == tag).count();
                        for _ in 0..count {
                            let mut b = [0u8; 1];
                            comm.recv(&mut b, 0, Tag(tag)).unwrap();
                            got.push((tag, b[0]));
                        }
                    }
                    got
                }
            });
            // per tag, the received sequence equals the sent subsequence
            for tag in 0..4u32 {
                let sent: Vec<u8> =
                    plan.iter().filter(|&&(t, _)| t == tag).map(|&(_, v)| v).collect();
                let recvd: Vec<u8> =
                    out.results[1].iter().filter(|&&(t, _)| t == tag).map(|&(_, v)| v).collect();
                if sent != recvd {
                    return Err(format!("tag {tag}: sent {sent:?} != received {recvd:?}"));
                }
            }
            if !out.traffic.is_balanced() {
                return Err("unbalanced counters".into());
            }
            if out.traffic.total_msgs() != plan.len() as u64 {
                return Err(format!(
                    "msgs {} != plan len {}",
                    out.traffic.total_msgs(),
                    plan.len()
                ));
            }
            Ok(())
        },
    );
}

/// Random shifted exchange: counters balance and totals match.
#[test]
fn counters_balance_under_random_exchanges() {
    prop::check(
        "counters_balance_under_random_exchanges",
        Config::cases(32),
        &(prop::usize_range(2..8), prop::vec_of(prop::usize_range(0..200), 1..12)),
        |(np, sizes): &(usize, Vec<usize>)| {
            let np = *np;
            let sizes2 = sizes.clone();
            let out = ThreadWorld::run(np, move |comm| {
                let me = comm.rank();
                // everyone sends each size to (me + k + 1) mod np, receives likewise
                for (k, &sz) in sizes2.iter().enumerate() {
                    let dst = (me + k + 1) % comm.size();
                    comm.send(&vec![me as u8; sz], dst, Tag(k as u32)).unwrap();
                }
                for (k, &sz) in sizes2.iter().enumerate() {
                    let src = (me + comm.size() - ((k + 1) % comm.size())) % comm.size();
                    let mut buf = vec![0u8; sz];
                    comm.recv(&mut buf, src, Tag(k as u32)).unwrap();
                    assert!(buf.iter().all(|&b| b == src as u8));
                }
            });
            if !out.traffic.is_balanced() {
                return Err("unbalanced counters".into());
            }
            if out.traffic.total_msgs() != (np * sizes.len()) as u64 {
                return Err("message count mismatch".into());
            }
            let bytes: usize = sizes.iter().sum::<usize>() * np;
            if out.traffic.total_bytes() != bytes as u64 {
                return Err("byte count mismatch".into());
            }
            Ok(())
        },
    );
}

/// SubComm::split partitions the world: every rank lands in exactly one
/// group; local ranks are ordered by (key, parent rank); all groups are
/// functional (barrier works).
#[test]
fn split_partitions_correctly() {
    prop::check(
        "split_partitions_correctly",
        Config::cases(32),
        &(
            prop::usize_range(1..10),
            prop::vec_of(prop::u64_range(0..3), 10..11),
            prop::vec_of(prop::i64_range(-5..5), 10..11),
        ),
        |(np, colors, keys): &(usize, Vec<u64>, Vec<i64>)| {
            let np = *np;
            let colors2 = colors.clone();
            let keys2 = keys.clone();
            let out = ThreadWorld::run(np, move |comm| {
                let me = comm.rank();
                let sc = SubComm::split(comm, Some(colors2[me]), keys2[me]).unwrap();
                sc.barrier().unwrap();
                (colors2[me], sc.rank(), sc.members().to_vec())
            });
            for (me, (color, local, members)) in out.results.iter().enumerate() {
                // membership: exactly the ranks with this color
                let expect: Vec<usize> = {
                    let mut v: Vec<(i64, usize)> =
                        (0..np).filter(|&r| colors[r] == *color).map(|r| (keys[r], r)).collect();
                    v.sort_unstable();
                    v.into_iter().map(|(_, r)| r).collect()
                };
                if members != &expect {
                    return Err(format!("rank {me}: members {members:?} != {expect:?}"));
                }
                if members[*local] != me {
                    return Err(format!("rank {me}: local index {local} mismatched"));
                }
            }
            Ok(())
        },
    );
}
