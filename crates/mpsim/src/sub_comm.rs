//! Sub-communicators: a view of a parent [`Communicator`] restricted to a
//! subset of its ranks (the moral equivalent of `MPI_Comm_split`).
//!
//! The multi-core-aware broadcast of the paper's Section I runs three phases
//! on three different process groups (root's node, the node leaders, every
//! other node). `SubComm` provides exactly that: local ranks `0..members.len()`
//! mapped onto parent ranks, with a dissemination barrier built from tagged
//! point-to-point messages so that a barrier over a *subset* of the world
//! never involves non-members.

use crate::acomm::AsyncCommunicator;
use crate::comm::{Communicator, IoSpan};
use crate::error::Result;
use crate::rank::{ceil_log2, Rank, Tag};

/// A communicator over a subset of a parent communicator's ranks.
///
/// `members` lists parent ranks; the local rank of `members[i]` is `i`.
/// Construct one *on every member rank* with identical `members` (mirroring
/// the collective nature of `MPI_Comm_split`).
///
/// The view works over both communicator surfaces: build with
/// [`SubComm::new`] over a blocking [`Communicator`] parent, or with
/// [`SubComm::new_async`] over an [`AsyncCommunicator`] parent (the event
/// executor) — the recovery stack uses the latter to re-run degraded
/// collectives over survivor subsets as futures.
pub struct SubComm<'a, C: ?Sized> {
    parent: &'a C,
    members: Vec<Rank>,
    my_local: Rank,
}

/// Shared membership validation: panics on structural errors, returns the
/// caller's local rank or `None` when the caller is not a member.
fn validate_members(parent_size: usize, parent_rank: Rank, members: &[Rank]) -> Option<Rank> {
    assert!(!members.is_empty(), "sub-communicator needs at least one member");
    let mut seen = vec![false; parent_size];
    for &m in members {
        assert!(m < parent_size, "member rank {m} out of range");
        assert!(!seen[m], "duplicate member rank {m}");
        seen[m] = true;
    }
    members.iter().position(|&m| m == parent_rank)
}

impl<'a, C: Communicator + ?Sized> SubComm<'a, C> {
    /// Build the view for the calling rank. Returns `None` if the caller is
    /// not in `members`.
    ///
    /// Panics if `members` is empty, contains duplicates, or names an
    /// out-of-range parent rank — those are programming errors in the
    /// collective driver, not runtime conditions.
    pub fn new(parent: &'a C, members: Vec<Rank>) -> Option<Self> {
        let my_local = validate_members(parent.size(), parent.rank(), &members)?;
        Some(Self { parent, members, my_local })
    }
}

impl<'a, C: AsyncCommunicator + ?Sized> SubComm<'a, C> {
    /// [`SubComm::new`] for an async parent: identical validation and
    /// membership contract, with `rank()`/`size()` taken from the
    /// [`AsyncCommunicator`] surface.
    pub fn new_async(parent: &'a C, members: Vec<Rank>) -> Option<Self> {
        let my_local = validate_members(parent.size(), parent.rank(), &members)?;
        Some(Self { parent, members, my_local })
    }
}

impl<C: ?Sized> SubComm<'_, C> {
    /// Parent rank of local rank `local`.
    pub fn to_parent(&self, local: Rank) -> Rank {
        self.members[local]
    }

    /// Local rank of parent rank `parent_rank`, if it is a member.
    pub fn from_parent(&self, parent_rank: Rank) -> Option<Rank> {
        self.members.iter().position(|&m| m == parent_rank)
    }

    /// The member list (parent ranks, in local-rank order).
    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    /// Translate failure-detector errors back into local rank space so
    /// recovery layers stacked on a SubComm reason in their own world.
    /// Non-member ranks are left untranslated (the caller can only act on
    /// them through the parent anyway).
    fn localize_err(&self, e: crate::error::CommError) -> crate::error::CommError {
        use crate::error::CommError;
        match e {
            CommError::Timeout { peer } => {
                CommError::Timeout { peer: self.from_parent(peer).unwrap_or(peer) }
            }
            CommError::PeerFailed { rank } => {
                CommError::PeerFailed { rank: self.from_parent(rank).unwrap_or(rank) }
            }
            other => other,
        }
    }
}

impl<'a, C: Communicator + ?Sized> SubComm<'a, C> {
    /// Collective split, the moral equivalent of `MPI_Comm_split`: every
    /// rank of the parent must call this with its `(color, key)`; ranks
    /// sharing a color form one sub-communicator, with local ranks ordered
    /// by `(key, parent rank)`. `color == None` (MPI_UNDEFINED) yields
    /// `None` — the rank joins no group but still participates in the
    /// exchange.
    ///
    /// Implemented as a gather-to-0 + broadcast of the `(color, key)` table
    /// over tagged point-to-point messages (control-plane traffic; it is
    /// counted like any other traffic).
    pub fn split(parent: &'a C, color: Option<u64>, key: i64) -> Option<Self> {
        const SPLIT_GATHER: Tag = Tag(0xC0);
        const SPLIT_BCAST: Tag = Tag(0xC1);
        let size = parent.size();
        let rank = parent.rank();

        // Encode (has_color, color, key) in 17 bytes.
        let encode = |c: Option<u64>, k: i64| -> [u8; 17] {
            let mut b = [0u8; 17];
            b[0] = c.is_some() as u8;
            b[1..9].copy_from_slice(&c.unwrap_or(0).to_le_bytes());
            b[9..17].copy_from_slice(&k.to_le_bytes());
            b
        };
        let decode = |b: &[u8]| -> (Option<u64>, i64) {
            // lint: allow(panic) — wire format: the 17-byte header was length-checked
            let c = (b[0] != 0).then(|| u64::from_le_bytes(b[1..9].try_into().unwrap()));
            // lint: allow(panic) — wire format: the 17-byte header was length-checked
            let k = i64::from_le_bytes(b[9..17].try_into().unwrap());
            (c, k)
        };

        let mut table = vec![0u8; 17 * size];
        table[rank * 17..rank * 17 + 17].copy_from_slice(&encode(color, key));
        if rank == 0 {
            for peer in 1..size {
                parent
                    .recv(&mut table[peer * 17..peer * 17 + 17], peer, SPLIT_GATHER)
                    // lint: allow(panic) — split protocol: every member reports exactly once
                    .expect("split gather failed");
            }
            for peer in 1..size {
                // lint: allow(panic) — split protocol: every member posts a matching recv
                parent.send(&table, peer, SPLIT_BCAST).expect("split bcast failed");
            }
        } else {
            parent
                .send(&table[rank * 17..rank * 17 + 17], 0, SPLIT_GATHER)
                // lint: allow(panic) — split protocol: every member reports exactly once
                .expect("split gather failed");
            // lint: allow(panic) — split protocol: a table from rank 0 always arrives
            parent.recv(&mut table, 0, SPLIT_BCAST).expect("split bcast failed");
        }

        let my_color = color?;
        let mut group: Vec<(i64, Rank)> = (0..size)
            .filter_map(|r| {
                let (c, k) = decode(&table[r * 17..r * 17 + 17]);
                (c == Some(my_color)).then_some((k, r))
            })
            .collect();
        group.sort_unstable();
        let members: Vec<Rank> = group.into_iter().map(|(_, r)| r).collect();
        Self::new(parent, members)
    }
}

impl<C: Communicator + ?Sized> Communicator for SubComm<'_, C> {
    fn rank(&self) -> Rank {
        self.my_local
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        self.parent.send(buf, self.members[dest], tag)
    }

    fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.check_rank(src)?;
        self.parent.recv(buf, self.members[src], tag).map_err(|e| self.localize_err(e))
    }

    fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> Result<usize> {
        self.check_rank(src)?;
        self.parent
            .recv_timeout(buf, self.members[src], tag, timeout)
            .map_err(|e| self.localize_err(e))
    }

    fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.check_rank(dest)?;
        self.check_rank(src)?;
        self.parent.sendrecv(
            sendbuf,
            self.members[dest],
            sendtag,
            recvbuf,
            self.members[src],
            recvtag,
        )
    }

    /// Dissemination barrier over the member set only.
    ///
    /// Round `k` (of `ceil(log2 n)`) has each member exchange a zero-byte
    /// token with the members `2^k` positions away. Distinct per-round tags
    /// keep rounds from overtaking each other.
    fn barrier(&self) -> Result<()> {
        let n = self.members.len();
        if n == 1 {
            return Ok(());
        }
        let me = self.my_local;
        let rounds = ceil_log2(n);
        let mut token = [0u8; 0];
        for k in 0..rounds {
            let dist = 1usize << k;
            let to = (me + dist) % n;
            let from = (me + n - dist) % n;
            let tag = Tag(Tag::BARRIER.0 + k);
            self.sendrecv(&[], to, tag, &mut token, from, tag)?;
        }
        Ok(())
    }

    fn now_ns(&self) -> u64 {
        self.parent.now_ns()
    }

    // The vectored operations forward with rank translation only, keeping
    // the parent backend's single-envelope fast path (and its logical-
    // message accounting) intact through sub-communicators.

    fn send_vectored(&self, buf: &[u8], spans: &[IoSpan], dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        self.parent.send_vectored(buf, spans, self.members[dest], tag)
    }

    fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        self.check_rank(src)?;
        self.parent
            .recv_scattered(buf, spans, self.members[src], tag)
            .map_err(|e| self.localize_err(e))
    }

    fn sendrecv_vectored(
        &self,
        buf: &mut [u8],
        send_spans: &[IoSpan],
        dest: Rank,
        sendtag: Tag,
        recv_spans: &[IoSpan],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.check_rank(dest)?;
        self.check_rank(src)?;
        self.parent
            .sendrecv_vectored(
                buf,
                send_spans,
                self.members[dest],
                sendtag,
                recv_spans,
                self.members[src],
                recvtag,
            )
            .map_err(|e| self.localize_err(e))
    }
}

/// The async view mirrors the blocking one method-for-method: rank
/// translation on every peer argument, failure-detector errors localized on
/// the receive paths, and a member-only dissemination barrier (the parent's
/// world barrier would wait on non-members, which may already be dead — the
/// exact situation recovery sub-worlds are built for).
impl<C: AsyncCommunicator + ?Sized> AsyncCommunicator for SubComm<'_, C> {
    fn rank(&self) -> Rank {
        self.my_local
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn now_ns(&self) -> u64 {
        self.parent.now_ns()
    }

    async fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        self.parent.send(buf, self.members[dest], tag).await
    }

    async fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.check_rank(src)?;
        self.parent.recv(buf, self.members[src], tag).await.map_err(|e| self.localize_err(e))
    }

    async fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> Result<usize> {
        self.check_rank(src)?;
        self.parent
            .recv_timeout(buf, self.members[src], tag, timeout)
            .await
            .map_err(|e| self.localize_err(e))
    }

    async fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.check_rank(dest)?;
        self.check_rank(src)?;
        self.parent
            .sendrecv(sendbuf, self.members[dest], sendtag, recvbuf, self.members[src], recvtag)
            .await
            .map_err(|e| self.localize_err(e))
    }

    /// Dissemination barrier over the member set only (same rounds and tags
    /// as the blocking implementation).
    async fn barrier(&self) -> Result<()> {
        let n = self.members.len();
        if n == 1 {
            return Ok(());
        }
        let me = self.my_local;
        let rounds = ceil_log2(n);
        let mut token = [0u8; 0];
        for k in 0..rounds {
            let dist = 1usize << k;
            let to = (me + dist) % n;
            let from = (me + n - dist) % n;
            let tag = Tag(Tag::BARRIER.0 + k);
            AsyncCommunicator::sendrecv(self, &[], to, tag, &mut token, from, tag).await?;
        }
        Ok(())
    }

    async fn send_vectored(
        &self,
        buf: &[u8],
        spans: &[IoSpan],
        dest: Rank,
        tag: Tag,
    ) -> Result<()> {
        self.check_rank(dest)?;
        self.parent.send_vectored(buf, spans, self.members[dest], tag).await
    }

    async fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        self.check_rank(src)?;
        self.parent
            .recv_scattered(buf, spans, self.members[src], tag)
            .await
            .map_err(|e| self.localize_err(e))
    }

    async fn sendrecv_vectored(
        &self,
        buf: &mut [u8],
        send_spans: &[IoSpan],
        dest: Rank,
        sendtag: Tag,
        recv_spans: &[IoSpan],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.check_rank(dest)?;
        self.check_rank(src)?;
        self.parent
            .sendrecv_vectored(
                buf,
                send_spans,
                self.members[dest],
                sendtag,
                recv_spans,
                self.members[src],
                recvtag,
            )
            .await
            .map_err(|e| self.localize_err(e))
    }

    fn make_shared(&self, data: &[u8]) -> crate::SharedBuf {
        self.parent.make_shared(data)
    }

    fn note_copy(&self, bytes: usize) {
        self.parent.note_copy(bytes)
    }

    async fn send_shared(&self, buf: &crate::SharedBuf, dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        self.parent.send_shared(buf, self.members[dest], tag).await
    }

    async fn recv_owned(&self, capacity: usize, src: Rank, tag: Tag) -> Result<crate::SharedBuf> {
        self.check_rank(src)?;
        self.parent
            .recv_owned(capacity, self.members[src], tag)
            .await
            .map_err(|e| self.localize_err(e))
    }

    async fn recv_owned_timeout(
        &self,
        capacity: usize,
        src: Rank,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> Result<crate::SharedBuf> {
        self.check_rank(src)?;
        self.parent
            .recv_owned_timeout(capacity, self.members[src], tag, timeout)
            .await
            .map_err(|e| self.localize_err(e))
    }

    async fn sendrecv_shared(
        &self,
        sendbuf: &crate::SharedBuf,
        dest: Rank,
        sendtag: Tag,
        recv_capacity: usize,
        src: Rank,
        recvtag: Tag,
    ) -> Result<crate::SharedBuf> {
        self.check_rank(dest)?;
        self.check_rank(src)?;
        self.parent
            .sendrecv_shared(
                sendbuf,
                self.members[dest],
                sendtag,
                recv_capacity,
                self.members[src],
                recvtag,
            )
            .await
            .map_err(|e| self.localize_err(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_comm::ThreadWorld;

    #[test]
    fn rank_translation() {
        ThreadWorld::run(6, |comm| {
            let members = vec![1, 3, 5];
            match SubComm::new(comm, members.clone()) {
                Some(sc) => {
                    assert!(members.contains(&comm.rank()));
                    assert_eq!(sc.size(), 3);
                    assert_eq!(sc.to_parent(sc.rank()), comm.rank());
                    assert_eq!(sc.from_parent(comm.rank()), Some(sc.rank()));
                    assert_eq!(sc.from_parent(0), None);
                }
                None => assert!(!members.contains(&comm.rank())),
            }
        });
    }

    #[test]
    fn send_recv_within_subset() {
        let out = ThreadWorld::run(5, |comm| {
            // members: 4, 2, 0 → local ranks 0, 1, 2
            let Some(sc) = SubComm::new(comm, vec![4, 2, 0]) else {
                return 0u8;
            };
            if sc.rank() == 0 {
                sc.send(&[77], 2, Tag(1)).unwrap(); // parent rank 0
                0
            } else if sc.rank() == 2 {
                let mut b = [0u8; 1];
                sc.recv(&mut b, 0, Tag(1)).unwrap(); // from parent rank 4
                b[0]
            } else {
                0
            }
        });
        assert_eq!(out.results[0], 77); // parent rank 0 was local rank 2
    }

    #[test]
    fn barrier_only_involves_members() {
        // Non-members never enter the barrier; it must still complete.
        ThreadWorld::run(7, |comm| {
            let members = vec![0, 2, 4, 6];
            if let Some(sc) = SubComm::new(comm, members) {
                for _ in 0..5 {
                    sc.barrier().unwrap();
                }
            }
        });
    }

    #[test]
    fn barrier_synchronizes_members() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrived = AtomicUsize::new(0);
        ThreadWorld::run(6, |comm| {
            let members = vec![1, 2, 5];
            if let Some(sc) = SubComm::new(comm, members) {
                arrived.fetch_add(1, Ordering::SeqCst);
                sc.barrier().unwrap();
                assert!(arrived.load(Ordering::SeqCst) >= 3);
            }
        });
    }

    #[test]
    fn single_member_subcomm_is_trivial() {
        ThreadWorld::run(3, |comm| {
            if let Some(sc) = SubComm::new(comm, vec![comm.rank()]) {
                assert_eq!(sc.size(), 1);
                assert_eq!(sc.rank(), 0);
                sc.barrier().unwrap();
            }
        });
    }

    #[test]
    fn split_groups_by_color_and_orders_by_key() {
        ThreadWorld::run(6, |comm| {
            // colors: even/odd rank; key: descending rank → local ranks reversed
            let color = Some((comm.rank() % 2) as u64);
            let key = -(comm.rank() as i64);
            let sc = SubComm::split(comm, color, key).expect("every rank has a color");
            assert_eq!(sc.size(), 3);
            // members sorted by key: highest parent rank first
            let expect: Vec<usize> =
                if comm.rank() % 2 == 0 { vec![4, 2, 0] } else { vec![5, 3, 1] };
            assert_eq!(sc.members(), &expect[..]);
            assert_eq!(sc.to_parent(sc.rank()), comm.rank());
            // the new group is a working communicator
            sc.barrier().unwrap();
        });
    }

    #[test]
    fn split_with_undefined_color_joins_nothing() {
        ThreadWorld::run(4, |comm| {
            let color = (comm.rank() != 2).then_some(7u64);
            let sc = SubComm::split(comm, color, comm.rank() as i64);
            if comm.rank() == 2 {
                assert!(sc.is_none());
            } else {
                let sc = sc.unwrap();
                assert_eq!(sc.members(), &[0, 1, 3]);
            }
        });
    }

    #[test]
    fn split_ties_break_by_parent_rank() {
        ThreadWorld::run(5, |comm| {
            let sc = SubComm::split(comm, Some(0), 42).unwrap(); // same key everywhere
            assert_eq!(sc.members(), &[0, 1, 2, 3, 4]);
            assert_eq!(sc.rank(), comm.rank());
        });
    }

    #[test]
    #[should_panic(expected = "duplicate member")]
    fn duplicate_members_panics() {
        ThreadWorld::run(2, |comm| {
            let _ = SubComm::new(comm, vec![0, 0]);
        });
    }
}
