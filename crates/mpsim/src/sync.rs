//! Synchronization seam: a `parking_lot`-shaped API with two backends.
//!
//! The runtime originally used `parking_lot` for its locks. To keep the
//! workspace building with **zero external dependencies** (registry access
//! cannot be assumed), this module provides the same call shapes —
//! `Mutex::lock()` returning a guard directly, `Condvar::wait(&mut guard)`,
//! `RwLock::{read, write}` — and selects one of two implementations:
//!
//! * default: a thin shim over `std::sync` (`sync_std`), ignoring
//!   poisoning;
//! * `fast-sync` feature: the spin-then-park backend in `sync_fast` —
//!   atomics plus `thread::park_timeout`, with a spin window sized for the
//!   mailbox/barrier rendezvous hot path.
//!
//! All lock users in `mpsim` and `netsim` go through this module, so the
//! backend swap needs no call-site changes; `mailbox`, `barrier`, the
//! netsim `fabric`, and `sim_comm` all pick it up automatically. Both
//! backends are always *compiled* (tests and clippy cover each everywhere);
//! the feature only chooses which one this module re-exports.
//!
//! Poisoning is deliberately ignored by both backends: a panicking rank
//! already triggers world teardown through
//! [`crate::barrier::StopBarrier::stop`] and
//! [`crate::mailbox::Mailbox::stop`], and the protected state (message
//! queues, reservation timelines) stays structurally valid across an
//! unwind, matching `parking_lot`'s no-poisoning semantics that the
//! original code was written against.

use std::sync::PoisonError;

#[cfg(feature = "fast-sync")]
pub use crate::sync_fast::{Condvar, Mutex, MutexGuard};
#[cfg(not(feature = "fast-sync"))]
pub use crate::sync_std::{Condvar, Mutex, MutexGuard};

/// A reader-writer lock whose `read`/`write` return guards directly.
///
/// Only used on cold paths, so it has a single std-backed implementation
/// regardless of the selected mutex backend.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // These exercise whichever backend the feature set selected, through
    // the exact API the runtime uses.

    #[test]
    fn mutex_basic_and_guard_deref() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wait_in_place() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn mutex_is_not_poisoned_by_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panicking holder
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
