//! Synchronization shim: a `parking_lot`-shaped API over `std::sync`.
//!
//! The runtime originally used `parking_lot` for its locks. To keep the
//! workspace building with **zero external dependencies** (registry access
//! cannot be assumed), this module provides the same call shapes —
//! `Mutex::lock()` returning a guard directly, `Condvar::wait(&mut guard)`,
//! `RwLock::{read, write}` — over the standard library primitives. All lock
//! users in `mpsim` and `netsim` go through this module, so a faster lock
//! backend (e.g. `parking_lot` again, or a futex-based lock) can be swapped
//! back in behind this one file without touching any call site.
//!
//! Poisoning is deliberately ignored: a panicking rank already triggers
//! world teardown through [`crate::barrier::StopBarrier::stop`] and
//! [`crate::mailbox::Mailbox::stop`], and the protected state (message
//! queues, reservation timelines) stays structurally valid across an
//! unwind, matching `parking_lot`'s no-poisoning semantics that the
//! original code was written against.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is always `Some` except transiently inside
/// [`Condvar::wait`], which must move the std guard out and back.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard invariant: present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard invariant: present outside Condvar::wait")
    }
}

/// Condition variable operating on [`MutexGuard`] in place.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired before returning. Spurious wakeups are possible,
    /// so callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant: present on entry to wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wake a single waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_guard_deref() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wait_in_place() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn mutex_is_not_poisoned_by_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panicking holder
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
