//! Per-rank sharded mailbox with MPI-style `(source, tag)` matching.
//!
//! Each rank owns one [`Mailbox`]. Senders push envelopes; the owning rank
//! blocks in [`Mailbox::pop_blocking`] until a message matching the requested
//! `(source, tag)` pair is present. Messages for a given pair are delivered
//! strictly in push order (MPI's non-overtaking guarantee), implemented as a
//! FIFO queue per pair.
//!
//! ## Sharding
//!
//! The mailbox used to be one `Mutex<HashMap>` with a single condvar, so
//! every sender in a fan-in serialized on the receiver's lock and every push
//! paid a `notify_all` that woke *every* blocked receiver regardless of
//! which `(src, tag)` it was waiting for. The state is now split into
//! [`SHARDS`] independently locked slots, each with its own condvar:
//!
//! * slot selection is a **flat array indexed by `src`** while `src <
//!   SHARDS` — the common case for collectives, where sources are small
//!   rank numbers and a pair's traffic always lands in "its" slot with no
//!   hashing at all — and an FxHash-style mix of `(src, tag)` beyond that;
//! * a push locks only its slot and wakes only receivers blocked **on that
//!   slot**, and only when the slot's waiter count is nonzero, so the
//!   uncontended send path performs no wakeup syscall at all (see
//!   [`Mailbox::wakeup_stats`] for the counters that prove it).
//!
//! Since a `(src, tag)` pair maps to exactly one slot on both the push and
//! pop side, per-pair FIFO order is preserved unchanged.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::counters::WakeupStats;
use crate::pool::Payload;
use crate::proto::push_should_notify;
use crate::sync::{Condvar, Mutex};

use crate::error::{CommError, Result};
use crate::rank::{Rank, Tag};

/// Number of independently locked slots per mailbox. Power of two so the
/// overflow hash can mask instead of divide.
pub const SHARDS: usize = 16;

/// A delivered message payload.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank (kept for diagnostics; matching already fixed it).
    pub src: Rank,
    /// The payload (pool-backed on the hot path; its drop recycles the
    /// buffer after the receiver copies out). Shared payloads are refcount
    /// clones of one rental fanned out to many mailboxes.
    pub data: Payload,
}

#[derive(Default)]
struct SlotState {
    /// FIFO of pending messages per (source, tag) mapping to this slot.
    queues: HashMap<(Rank, Tag), VecDeque<Envelope>>,
    /// Receivers currently blocked on this slot's condvar.
    waiters: usize,
    /// Set when the world is tearing down; wakes all blocked receivers.
    stopped: bool,
}

#[derive(Default)]
struct Slot {
    state: Mutex<SlotState>,
    available: Condvar,
}

/// Mailbox owned by a single receiving rank.
///
/// `push` may be called from any thread; `pop_blocking` is called by the
/// owning rank's thread.
pub struct Mailbox {
    slots: Box<[Slot]>,
    /// Total pushes (delivered envelopes).
    pushes: AtomicU64,
    /// Pushes that found a blocked receiver and issued a condvar notify.
    notifies: AtomicU64,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

/// Slot index for a `(src, tag)` pair: direct for small sources, hashed
/// beyond. Both sides of a pair compute the same index — public so the
/// schedule verifier can reason about slot sharing.
pub fn slot_index(src: Rank, tag: Tag) -> usize {
    if src < SHARDS {
        src
    } else {
        // FxHash-style multiply-xor mix; cheap and adequate for spreading
        // (src, tag) pairs of large worlds across slots.
        let h = (src as u64 ^ ((tag.0 as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (SHARDS - 1)
    }
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self {
            slots: (0..SHARDS).map(|_| Slot::default()).collect(),
            pushes: AtomicU64::new(0),
            notifies: AtomicU64::new(0),
        }
    }

    fn slot(&self, src: Rank, tag: Tag) -> &Slot {
        &self.slots[slot_index(src, tag)]
    }

    /// Deliver a message from `src` with `tag`.
    pub fn push(&self, src: Rank, tag: Tag, data: Payload) {
        let slot = self.slot(src, tag);
        let mut st = slot.state.lock();
        st.queues.entry((src, tag)).or_default().push_back(Envelope { src, data });
        // Wake the slot's waiters only when someone is actually blocked:
        // the owning rank may be waiting on a *different* (src, tag) that
        // shares this slot (spurious but benign — it rechecks and sleeps
        // again); with zero waiters the notify would be pure overhead.
        let wake = push_should_notify(st.waiters);
        drop(st);
        self.pushes.fetch_add(1, Ordering::Relaxed);
        if wake {
            self.notifies.fetch_add(1, Ordering::Relaxed);
            slot.available.notify_all();
        }
    }

    /// Block until a message from `src` with `tag` is available and return it.
    pub fn pop_blocking(&self, src: Rank, tag: Tag) -> Result<Envelope> {
        self.pop_watch(src, tag, None, || None)
    }

    /// Blocking pop with an optional deadline and a liveness watch.
    ///
    /// The `watch` closure is evaluated (under the slot lock) whenever the
    /// queue for `(src, tag)` is empty; returning `Some(err)` fails the pop
    /// with that error — the hook [`ThreadComm`](crate::ThreadComm) uses to
    /// turn "blocked on a rank that already exited" into
    /// [`CommError::PeerFailed`] instead of a silent hang. Queued messages
    /// are always drained first, so data sent before a peer exited is still
    /// delivered.
    ///
    /// With `deadline: Some(d)`, the pop fails with [`CommError::Timeout`]
    /// once `d` passes without a matching message.
    pub fn pop_watch(
        &self,
        src: Rank,
        tag: Tag,
        deadline: Option<std::time::Instant>,
        watch: impl Fn() -> Option<CommError>,
    ) -> Result<Envelope> {
        let slot = self.slot(src, tag);
        let mut st = slot.state.lock();
        loop {
            if let Some(q) = st.queues.get_mut(&(src, tag)) {
                if let Some(env) = q.pop_front() {
                    return Ok(env);
                }
            }
            if st.stopped {
                return Err(CommError::WorldStopped);
            }
            if let Some(err) = watch() {
                return Err(err);
            }
            let wait_bound = match deadline {
                Some(d) => {
                    let now = std::time::Instant::now();
                    if now >= d {
                        return Err(CommError::Timeout { peer: src });
                    }
                    Some(d - now)
                }
                None => None,
            };
            st.waiters += 1;
            match wait_bound {
                // Expiry is re-checked at the top of the loop, so the
                // timed-out flag itself is not needed here.
                Some(remaining) => {
                    slot.available.wait_timeout(&mut st, remaining);
                }
                None => slot.available.wait(&mut st),
            }
            st.waiters -= 1;
        }
    }

    /// Non-blocking variant: returns `None` when no matching message is
    /// queued (an `MPI_Iprobe`-with-receive convenience for tests).
    pub fn try_pop(&self, src: Rank, tag: Tag) -> Option<Envelope> {
        let mut st = self.slot(src, tag).state.lock();
        st.queues.get_mut(&(src, tag)).and_then(VecDeque::pop_front)
    }

    /// Number of queued messages matching `(src, tag)`.
    pub fn pending(&self, src: Rank, tag: Tag) -> usize {
        let st = self.slot(src, tag).state.lock();
        st.queues.get(&(src, tag)).map_or(0, VecDeque::len)
    }

    /// Total queued messages across all pairs (diagnostics; a clean run
    /// should end with 0 everywhere).
    pub fn pending_total(&self) -> usize {
        self.slots
            .iter()
            .map(|slot| slot.state.lock().queues.values().map(VecDeque::len).sum::<usize>())
            .sum()
    }

    /// Push/notify counters: how many deliveries actually had to wake a
    /// blocked receiver. `pushes - notifies` sends skipped the wakeup.
    pub fn wakeup_stats(&self) -> WakeupStats {
        WakeupStats {
            pushes: self.pushes.load(Ordering::Relaxed),
            notifies: self.notifies.load(Ordering::Relaxed),
        }
    }

    /// Mark the world as stopped, failing all current and future blocking
    /// receives with [`CommError::WorldStopped`].
    pub fn stop(&self) {
        for slot in &self.slots {
            let mut st = slot.state.lock();
            st.stopped = true;
            drop(st);
            slot.available.notify_all();
        }
    }

    /// Wake every blocked receiver so it re-evaluates its `watch` predicate
    /// (see [`pop_watch`](Self::pop_watch)). State is unchanged; receivers
    /// whose condition still holds simply go back to sleep.
    ///
    /// Taking each slot lock before notifying orders the caller's preceding
    /// writes (e.g. an exited-rank flag) before any waiter's re-check.
    pub fn wake_all(&self) {
        for slot in &self.slots {
            let st = slot.state.lock();
            let wake = st.waiters > 0;
            drop(st);
            if wake {
                slot.available.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_per_pair() {
        let mb = Mailbox::new();
        mb.push(1, Tag(5), vec![1].into());
        mb.push(1, Tag(5), vec![2].into());
        mb.push(1, Tag(5), vec![3].into());
        assert_eq!(&*mb.pop_blocking(1, Tag(5)).unwrap().data, &[1]);
        assert_eq!(&*mb.pop_blocking(1, Tag(5)).unwrap().data, &[2]);
        assert_eq!(&*mb.pop_blocking(1, Tag(5)).unwrap().data, &[3]);
    }

    #[test]
    fn matching_is_exact_on_src_and_tag() {
        let mb = Mailbox::new();
        mb.push(1, Tag(5), vec![10].into());
        mb.push(2, Tag(5), vec![20].into());
        mb.push(1, Tag(6), vec![30].into());
        assert_eq!(&*mb.pop_blocking(2, Tag(5)).unwrap().data, &[20]);
        assert_eq!(&*mb.pop_blocking(1, Tag(6)).unwrap().data, &[30]);
        assert_eq!(&*mb.pop_blocking(1, Tag(5)).unwrap().data, &[10]);
    }

    #[test]
    fn matching_is_exact_for_sources_beyond_the_flat_slots() {
        // sources >= SHARDS take the hashed path; make sure distinct pairs
        // that may share a slot still match exactly and in order.
        let mb = Mailbox::new();
        let (a, b) = (SHARDS + 3, 5 * SHARDS + 3);
        mb.push(a, Tag(1), vec![1].into());
        mb.push(b, Tag(1), vec![2].into());
        mb.push(a, Tag(2), vec![3].into());
        mb.push(a, Tag(1), vec![4].into());
        assert_eq!(&*mb.pop_blocking(b, Tag(1)).unwrap().data, &[2]);
        assert_eq!(&*mb.pop_blocking(a, Tag(1)).unwrap().data, &[1]);
        assert_eq!(&*mb.pop_blocking(a, Tag(1)).unwrap().data, &[4]);
        assert_eq!(&*mb.pop_blocking(a, Tag(2)).unwrap().data, &[3]);
    }

    #[test]
    fn try_pop_does_not_block() {
        let mb = Mailbox::new();
        assert!(mb.try_pop(0, Tag(0)).is_none());
        mb.push(0, Tag(0), vec![].into());
        assert!(mb.try_pop(0, Tag(0)).is_some());
        assert!(mb.try_pop(0, Tag(0)).is_none());
    }

    #[test]
    fn pending_counts() {
        let mb = Mailbox::new();
        assert_eq!(mb.pending(3, Tag(1)), 0);
        mb.push(3, Tag(1), vec![].into());
        mb.push(3, Tag(1), vec![].into());
        mb.push(4, Tag(1), vec![].into());
        assert_eq!(mb.pending(3, Tag(1)), 2);
        assert_eq!(mb.pending_total(), 3);
    }

    #[test]
    fn blocking_receiver_woken_by_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.pop_blocking(7, Tag(9)).unwrap());
        // Give the receiver a moment to block, then deliver.
        std::thread::sleep(std::time::Duration::from_millis(10));
        mb.push(7, Tag(9), vec![42].into());
        assert_eq!(&*h.join().unwrap().data, &[42]);
    }

    #[test]
    fn stop_unblocks_with_error() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.pop_blocking(0, Tag(0)));
        std::thread::sleep(std::time::Duration::from_millis(10));
        mb.stop();
        assert_eq!(h.join().unwrap().unwrap_err(), CommError::WorldStopped);
        // and future receives fail immediately
        assert_eq!(mb.pop_blocking(0, Tag(0)).unwrap_err(), CommError::WorldStopped);
    }

    #[test]
    fn pop_deadline_times_out() {
        let mb = Mailbox::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(20);
        let err = mb.pop_watch(0, Tag(0), Some(deadline), || None).unwrap_err();
        assert_eq!(err, CommError::Timeout { peer: 0 });
    }

    #[test]
    fn pop_deadline_delivers_message_arriving_in_time() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            mb2.pop_watch(1, Tag(0), Some(deadline), || None)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        mb.push(1, Tag(0), vec![7].into());
        assert_eq!(&*h.join().unwrap().unwrap().data, &[7]);
    }

    #[test]
    fn pop_watch_fails_when_watch_fires() {
        let mb = Mailbox::new();
        let err =
            mb.pop_watch(4, Tag(0), None, || Some(CommError::PeerFailed { rank: 4 })).unwrap_err();
        assert_eq!(err, CommError::PeerFailed { rank: 4 });
    }

    #[test]
    fn pop_watch_drains_queued_messages_before_consulting_watch() {
        // A message sent before the peer exited must still be delivered.
        let mb = Mailbox::new();
        mb.push(4, Tag(0), vec![1].into());
        let env =
            mb.pop_watch(4, Tag(0), None, || Some(CommError::PeerFailed { rank: 4 })).unwrap();
        assert_eq!(&*env.data, &[1]);
    }

    #[test]
    fn wake_all_forces_watch_reevaluation() {
        use std::sync::atomic::AtomicBool;
        let mb = Arc::new(Mailbox::new());
        let gone = Arc::new(AtomicBool::new(false));
        let (mb2, gone2) = (Arc::clone(&mb), Arc::clone(&gone));
        let h = std::thread::spawn(move || {
            mb2.pop_watch(3, Tag(0), None, || {
                gone2.load(Ordering::SeqCst).then_some(CommError::PeerFailed { rank: 3 })
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        gone.store(true, Ordering::SeqCst);
        mb.wake_all();
        assert_eq!(h.join().unwrap().unwrap_err(), CommError::PeerFailed { rank: 3 });
    }

    #[test]
    fn zero_byte_messages_are_real_messages() {
        let mb = Mailbox::new();
        mb.push(0, Tag(0), Box::<[u8]>::from([]).into());
        let env = mb.pop_blocking(0, Tag(0)).unwrap();
        assert_eq!(env.data.len(), 0);
    }

    #[test]
    fn uncontended_pushes_skip_the_notify() {
        // No receiver is ever blocked: every push must take the no-wakeup
        // fast path. This is the regression test for the old unconditional
        // `notify_all` on the send path.
        let mb = Mailbox::new();
        for i in 0..50 {
            mb.push(i % 4, Tag(0), vec![i as u8].into());
        }
        let stats = mb.wakeup_stats();
        assert_eq!(stats.pushes, 50);
        assert_eq!(stats.notifies, 0, "uncontended sends must not notify");
        assert_eq!(stats.skipped(), 50);
        // drain; popping ready messages never blocks, so still no notifies
        for i in 0..50 {
            mb.pop_blocking(i % 4, Tag(0)).unwrap();
        }
        assert_eq!(mb.wakeup_stats().notifies, 0);
    }

    #[test]
    fn contended_push_notifies_exactly_when_a_waiter_is_blocked() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.pop_blocking(2, Tag(0)).unwrap());
        // Wait until the receiver is actually parked in the slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.push(2, Tag(0), vec![1].into());
        h.join().unwrap();
        let stats = mb.wakeup_stats();
        assert_eq!(stats.pushes, 1);
        assert_eq!(stats.notifies, 1, "a blocked waiter requires a notify");
    }

    #[test]
    fn pushes_to_other_slots_do_not_wake_a_blocked_receiver() {
        // A receiver blocked on slot(src=2) must not be notified by pushes
        // to different slots — that was the cost of the single condvar.
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.pop_blocking(2, Tag(0)).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        for _ in 0..10 {
            mb.push(3, Tag(0), vec![0].into()); // different slot: no waiters
        }
        assert_eq!(mb.wakeup_stats().notifies, 0);
        mb.push(2, Tag(0), vec![9].into());
        assert_eq!(&*h.join().unwrap().data, &[9]);
        assert_eq!(mb.wakeup_stats().notifies, 1);
    }
}
