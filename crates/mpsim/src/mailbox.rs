//! Per-rank mailbox with MPI-style `(source, tag)` matching.
//!
//! Each rank owns one [`Mailbox`]. Senders push envelopes; the owning rank
//! blocks in [`Mailbox::pop_blocking`] until a message matching the requested
//! `(source, tag)` pair is present. Messages for a given pair are delivered
//! strictly in push order (MPI's non-overtaking guarantee), implemented as a
//! FIFO queue per pair.

use std::collections::{HashMap, VecDeque};

use crate::sync::{Condvar, Mutex};

use crate::error::{CommError, Result};
use crate::rank::{Rank, Tag};

/// A delivered message payload.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank (kept for diagnostics; matching already fixed it).
    pub src: Rank,
    /// The payload.
    pub data: Box<[u8]>,
}

#[derive(Default)]
struct State {
    /// FIFO of pending messages per (source, tag).
    queues: HashMap<(Rank, Tag), VecDeque<Envelope>>,
    /// Set when the world is tearing down; wakes all blocked receivers.
    stopped: bool,
}

/// Mailbox owned by a single receiving rank.
///
/// `push` may be called from any thread; `pop_blocking` is called by the
/// owning rank's thread.
#[derive(Default)]
pub struct Mailbox {
    state: Mutex<State>,
    available: Condvar,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver a message from `src` with `tag`.
    pub fn push(&self, src: Rank, tag: Tag, data: Box<[u8]>) {
        let mut st = self.state.lock();
        st.queues.entry((src, tag)).or_default().push_back(Envelope { src, data });
        // Wake all waiters: the owning rank may be blocked on a different
        // (src, tag) in `sendrecv`'s receive half, and spurious wakeups are
        // benign.
        self.available.notify_all();
    }

    /// Block until a message from `src` with `tag` is available and return it.
    pub fn pop_blocking(&self, src: Rank, tag: Tag) -> Result<Envelope> {
        let mut st = self.state.lock();
        loop {
            if let Some(q) = st.queues.get_mut(&(src, tag)) {
                if let Some(env) = q.pop_front() {
                    return Ok(env);
                }
            }
            if st.stopped {
                return Err(CommError::WorldStopped);
            }
            self.available.wait(&mut st);
        }
    }

    /// Non-blocking variant: returns `None` when no matching message is
    /// queued (an `MPI_Iprobe`-with-receive convenience for tests).
    pub fn try_pop(&self, src: Rank, tag: Tag) -> Option<Envelope> {
        let mut st = self.state.lock();
        st.queues.get_mut(&(src, tag)).and_then(VecDeque::pop_front)
    }

    /// Number of queued messages matching `(src, tag)`.
    pub fn pending(&self, src: Rank, tag: Tag) -> usize {
        let st = self.state.lock();
        st.queues.get(&(src, tag)).map_or(0, VecDeque::len)
    }

    /// Total queued messages across all pairs (diagnostics; a clean run
    /// should end with 0 everywhere).
    pub fn pending_total(&self) -> usize {
        let st = self.state.lock();
        st.queues.values().map(VecDeque::len).sum()
    }

    /// Mark the world as stopped, failing all current and future blocking
    /// receives with [`CommError::WorldStopped`].
    pub fn stop(&self) {
        let mut st = self.state.lock();
        st.stopped = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_per_pair() {
        let mb = Mailbox::new();
        mb.push(1, Tag(5), vec![1].into());
        mb.push(1, Tag(5), vec![2].into());
        mb.push(1, Tag(5), vec![3].into());
        assert_eq!(&*mb.pop_blocking(1, Tag(5)).unwrap().data, &[1]);
        assert_eq!(&*mb.pop_blocking(1, Tag(5)).unwrap().data, &[2]);
        assert_eq!(&*mb.pop_blocking(1, Tag(5)).unwrap().data, &[3]);
    }

    #[test]
    fn matching_is_exact_on_src_and_tag() {
        let mb = Mailbox::new();
        mb.push(1, Tag(5), vec![10].into());
        mb.push(2, Tag(5), vec![20].into());
        mb.push(1, Tag(6), vec![30].into());
        assert_eq!(&*mb.pop_blocking(2, Tag(5)).unwrap().data, &[20]);
        assert_eq!(&*mb.pop_blocking(1, Tag(6)).unwrap().data, &[30]);
        assert_eq!(&*mb.pop_blocking(1, Tag(5)).unwrap().data, &[10]);
    }

    #[test]
    fn try_pop_does_not_block() {
        let mb = Mailbox::new();
        assert!(mb.try_pop(0, Tag(0)).is_none());
        mb.push(0, Tag(0), vec![].into());
        assert!(mb.try_pop(0, Tag(0)).is_some());
        assert!(mb.try_pop(0, Tag(0)).is_none());
    }

    #[test]
    fn pending_counts() {
        let mb = Mailbox::new();
        assert_eq!(mb.pending(3, Tag(1)), 0);
        mb.push(3, Tag(1), vec![].into());
        mb.push(3, Tag(1), vec![].into());
        mb.push(4, Tag(1), vec![].into());
        assert_eq!(mb.pending(3, Tag(1)), 2);
        assert_eq!(mb.pending_total(), 3);
    }

    #[test]
    fn blocking_receiver_woken_by_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.pop_blocking(7, Tag(9)).unwrap());
        // Give the receiver a moment to block, then deliver.
        std::thread::sleep(std::time::Duration::from_millis(10));
        mb.push(7, Tag(9), vec![42].into());
        assert_eq!(&*h.join().unwrap().data, &[42]);
    }

    #[test]
    fn stop_unblocks_with_error() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.pop_blocking(0, Tag(0)));
        std::thread::sleep(std::time::Duration::from_millis(10));
        mb.stop();
        assert_eq!(h.join().unwrap().unwrap_err(), CommError::WorldStopped);
        // and future receives fail immediately
        assert_eq!(mb.pop_blocking(0, Tag(0)).unwrap_err(), CommError::WorldStopped);
    }

    #[test]
    fn zero_byte_messages_are_real_messages() {
        let mb = Mailbox::new();
        mb.push(0, Tag(0), Box::new([]));
        let env = mb.pop_blocking(0, Tag(0)).unwrap();
        assert_eq!(env.data.len(), 0);
    }
}
