//! The [`Communicator`] trait — the narrow waist between collective
//! algorithms and execution backends.

use crate::error::{CommError, Result};
use crate::pool::SharedBuf;
use crate::rank::{Rank, Tag};

/// Blocking, tag-matched point-to-point communication within a fixed world.
///
/// The contract mirrors the slice of MPI used by MPICH's broadcast code:
///
/// * Messages between a given `(sender, receiver, tag)` triple are
///   **non-overtaking**: they are received in the order they were sent.
/// * [`recv`](Communicator::recv) blocks until a matching message arrives and
///   returns the actual payload length; the payload must fit in the provided
///   buffer or [`CommError::Truncation`] is returned.
/// * [`send`](Communicator::send) may be buffered (eager) or synchronous
///   (rendezvous) depending on the backend and message size — exactly the
///   freedom MPI gives implementations. Algorithms must not rely on either.
/// * [`sendrecv`](Communicator::sendrecv) behaves like a send and a receive
///   executing *concurrently*, so rings of `sendrecv` cannot deadlock
///   (MPI_Sendrecv semantics).
///
/// Self-messaging (`dest == rank`) is permitted and loops back locally.
pub trait Communicator {
    /// This process's rank, in `0..size()`.
    fn rank(&self) -> Rank;

    /// Number of ranks in the world.
    fn size(&self) -> usize;

    /// Blocking tagged send of `buf` to `dest`.
    fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()>;

    /// Blocking tagged receive from `src` into `buf`.
    ///
    /// Returns the number of payload bytes written (which may be smaller than
    /// `buf.len()`, like an MPI receive with a larger count).
    fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize>;

    /// Deadline-bounded receive: like [`recv`](Communicator::recv), but
    /// failing with [`CommError::Timeout`] if no matching message arrives
    /// within `timeout`.
    ///
    /// On expiry nothing has been consumed: a message that arrives later
    /// stays queued for the next matching receive. Backends that know the
    /// peer can no longer send (it exited or crashed) may fail early with
    /// [`CommError::PeerFailed`] instead of waiting out the deadline — this
    /// is the failure detector the self-healing collectives in `bcast-core`
    /// are built on.
    fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> Result<usize>;

    /// Combined concurrent send+receive (MPI_Sendrecv).
    ///
    /// The default implementation is only correct for backends whose `send`
    /// never blocks on the receiver (eager/buffered); synchronous backends
    /// must override it with a genuinely concurrent implementation.
    fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.send(sendbuf, dest, sendtag)?;
        self.recv(recvbuf, src, recvtag)
    }

    /// Block until every rank in the world has entered the barrier.
    fn barrier(&self) -> Result<()>;

    /// Current time in nanoseconds on this backend's clock.
    ///
    /// Wall-clock backends return real elapsed time since world start;
    /// simulator backends return this rank's *virtual* time. Benchmarks use
    /// differences of `now_ns` around an operation uniformly on both.
    fn now_ns(&self) -> u64;

    /// Validate that `rank` names a member of this world.
    fn check_rank(&self, rank: Rank) -> Result<()> {
        if rank < self.size() {
            Ok(())
        } else {
            Err(CommError::InvalidRank { rank, size: self.size() })
        }
    }

    /// Gathering send: transmit the concatenation of `spans` of `buf` as
    /// **one** message (a `writev`-style iovec send).
    ///
    /// The wire format is the plain byte concatenation of the segments in
    /// list order — no header — so a single-span vectored send is
    /// indistinguishable from [`send`](Communicator::send) of that slice,
    /// and the two sides of a transfer may freely mix plain and vectored
    /// calls as long as byte counts line up. An empty span list is a
    /// zero-byte message.
    ///
    /// Spans must lie inside `buf` and be pairwise disjoint
    /// ([`CommError::OutOfBounds`] / [`CommError::SpanOverlap`]).
    ///
    /// The default implementation assembles the payload in a temporary
    /// `Vec` and forwards to `send` (so traffic accounting degrades to one
    /// logical message per envelope); backends override it to gather
    /// straight into their transmit envelope and record one logical message
    /// per span but a single envelope (see `TrafficStats::envelopes_sent`).
    fn send_vectored(&self, buf: &[u8], spans: &[IoSpan], dest: Rank, tag: Tag) -> Result<()> {
        let total = validate_spans(buf.len(), spans)?;
        let mut tmp = Vec::with_capacity(total);
        for s in spans {
            tmp.extend_from_slice(&buf[s.range()]);
        }
        self.send(&tmp, dest, tag)
    }

    /// Scattering receive: receive **one** message and split its bytes into
    /// `spans` of `buf` in list order (a `readv`-style iovec receive).
    ///
    /// Returns the number of payload bytes scattered. A message shorter
    /// than the span total fills a prefix of the span list, exactly as a
    /// short plain receive fills a prefix of the buffer; a longer one fails
    /// with [`CommError::Truncation`] against the span total.
    ///
    /// The default implementation receives into a temporary and scatters;
    /// backends override it to copy each segment directly out of the
    /// matched envelope.
    fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        let total = validate_spans(buf.len(), spans)?;
        let mut tmp = vec![0u8; total];
        let n = self.recv(&mut tmp, src, tag)?;
        Ok(scatter_spans(buf, spans, &tmp[..n]))
    }

    /// Combined concurrent vectored send + scattering receive over disjoint
    /// span lists of the *same* user buffer — the coalescing ring's inner
    /// step, where a rank forwards one set of chunks while absorbing
    /// another.
    ///
    /// Exactly one envelope moves in each direction. The send and receive
    /// lists must each validate and must not overlap each other
    /// ([`CommError::SpanOverlap`]).
    ///
    /// Like [`sendrecv`](Communicator::sendrecv), the default send-then-
    /// receive implementation is only correct on eager backends;
    /// synchronous backends must override it with a genuinely concurrent
    /// implementation.
    #[allow(clippy::too_many_arguments)]
    fn sendrecv_vectored(
        &self,
        buf: &mut [u8],
        send_spans: &[IoSpan],
        dest: Rank,
        sendtag: Tag,
        recv_spans: &[IoSpan],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        validate_spans(buf.len(), send_spans)?;
        validate_spans(buf.len(), recv_spans)?;
        disjoint_span_lists(send_spans, recv_spans)?;
        self.send_vectored(buf, send_spans, dest, sendtag)?;
        self.recv_scattered(buf, recv_spans, src, recvtag)
    }

    /// Stage `data` into a pooled, shareable envelope payload — **one** copy,
    /// recorded against this rank's `bytes_copied`. Everything sent from the
    /// returned [`SharedBuf`] (or its [`slice`](SharedBuf::slice) sub-views)
    /// afterwards moves refcounts, not bytes.
    ///
    /// The default stages into a plain allocation; pooled backends override
    /// it to rent from their buffer pool.
    fn make_shared(&self, data: &[u8]) -> SharedBuf {
        self.note_copy(data.len());
        SharedBuf::from(data.to_vec())
    }

    /// Record `bytes` of payload this rank memcpy'd *outside* the
    /// communicator — the collectives' final copy-out of a received
    /// [`SharedBuf`] into the user buffer. Counting backends override this
    /// to feed `TrafficStats::bytes_copied`; the default is a no-op.
    fn note_copy(&self, _bytes: usize) {}

    /// Zero-copy send: enqueue a refcount clone of `buf` for `dest` instead
    /// of staging the bytes into a fresh envelope.
    ///
    /// Wire accounting is identical to [`send`](Communicator::send) of the
    /// same bytes — only `bytes_copied` differs. The default falls back to
    /// copy semantics so decorators (retransmission, fault injection, rank
    /// translation) keep working unchanged.
    fn send_shared(&self, buf: &SharedBuf, dest: Rank, tag: Tag) -> Result<()> {
        self.send(buf, dest, tag)
    }

    /// Fan out one shared payload to several destinations — the broadcast
    /// hot loop. `dests` clones of one refcount; no bytes move on backends
    /// with a native [`send_shared`](Communicator::send_shared).
    fn send_shared_to(&self, dests: &[Rank], buf: &SharedBuf, tag: Tag) -> Result<()> {
        for &dest in dests {
            self.send_shared(buf, dest, tag)?;
        }
        Ok(())
    }

    /// Owned receive: take the arriving envelope itself instead of copying
    /// its bytes out into a caller buffer.
    ///
    /// `capacity` plays the role of the receive buffer length: a longer
    /// message fails with [`CommError::Truncation`], exactly like
    /// [`recv`](Communicator::recv) into a `capacity`-byte buffer. The
    /// returned view is immutable and may alias the sender's `SharedBuf`
    /// (that is the point); it returns to the owning pool when dropped.
    fn recv_owned(&self, capacity: usize, src: Rank, tag: Tag) -> Result<SharedBuf> {
        let mut tmp = vec![0u8; capacity];
        let n = self.recv(&mut tmp, src, tag)?;
        tmp.truncate(n);
        Ok(SharedBuf::from(tmp))
    }

    /// Combined concurrent zero-copy exchange: forward `sendbuf` to `dest`
    /// while taking ownership of the envelope arriving from `src` — the
    /// ring allgather's inner step, where each received chunk becomes the
    /// next step's outgoing chunk without touching RAM in between.
    ///
    /// Deadlock-freedom contract is that of
    /// [`sendrecv`](Communicator::sendrecv): both directions progress
    /// concurrently, so rings of rendezvous-sized exchanges cannot deadlock.
    /// The default falls back to copy semantics via `sendrecv`.
    #[allow(clippy::too_many_arguments)]
    fn sendrecv_shared(
        &self,
        sendbuf: &SharedBuf,
        dest: Rank,
        sendtag: Tag,
        recv_capacity: usize,
        src: Rank,
        recvtag: Tag,
    ) -> Result<SharedBuf> {
        let mut tmp = vec![0u8; recv_capacity];
        let n = self.sendrecv(sendbuf, dest, sendtag, &mut tmp, src, recvtag)?;
        tmp.truncate(n);
        Ok(SharedBuf::from(tmp))
    }
}

/// One segment of a vectored operation: `count` bytes starting at byte
/// offset `disp` in the caller's buffer.
///
/// Spans are expressed as displacements rather than slices (like MPI
/// derived datatypes, unlike `IoSlice`) so the same descriptor list can
/// drive the gather side, the scatter side, and traffic reconciliation
/// without borrowing the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoSpan {
    /// Byte offset of the segment within the user buffer.
    pub disp: usize,
    /// Length of the segment in bytes.
    pub count: usize,
}

impl IoSpan {
    /// Span of `count` bytes at offset `disp`.
    pub const fn new(disp: usize, count: usize) -> Self {
        Self { disp, count }
    }

    /// The half-open byte range `[disp, disp + count)` this span covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.disp..self.disp + self.count
    }
}

impl From<std::ops::Range<usize>> for IoSpan {
    fn from(r: std::ops::Range<usize>) -> Self {
        Self { disp: r.start, count: r.end.saturating_sub(r.start) }
    }
}

/// Total payload bytes named by a span list (no validation).
pub fn spans_len(spans: &[IoSpan]) -> usize {
    spans.iter().map(|s| s.count).sum()
}

/// Validate a vectored segment list against a buffer of length `len`:
/// every span must lie in bounds and the spans must be pairwise disjoint
/// (zero-length spans are never considered overlapping). Returns the total
/// payload size.
pub fn validate_spans(len: usize, spans: &[IoSpan]) -> Result<usize> {
    let mut total = 0usize;
    for s in spans {
        if s.disp.checked_add(s.count).is_none_or(|end| end > len) {
            return Err(CommError::OutOfBounds { disp: s.disp, count: s.count, len });
        }
        // In-bounds disjoint spans can never sum past `len`, so a checked
        // add only fires on inputs the overlap check below would reject.
        total = total.checked_add(s.count).ok_or(CommError::OutOfBounds {
            disp: s.disp,
            count: s.count,
            len,
        })?;
    }
    // O(k²) pairwise check: k is a handful of chunk spans in practice, and
    // this avoids allocating a sorted copy on the hot path.
    for (i, a) in spans.iter().enumerate() {
        if a.count == 0 {
            continue;
        }
        for b in &spans[i + 1..] {
            if b.count != 0 && a.disp < b.disp + b.count && b.disp < a.disp + a.count {
                return Err(CommError::SpanOverlap { a: (a.disp, a.count), b: (b.disp, b.count) });
            }
        }
    }
    Ok(total)
}

/// Reject any overlap between two individually-validated span lists (the
/// send and receive halves of a combined vectored operation must name
/// disjoint regions of the shared buffer).
pub fn disjoint_span_lists(a: &[IoSpan], b: &[IoSpan]) -> Result<()> {
    for x in a {
        if x.count == 0 {
            continue;
        }
        for y in b {
            if y.count != 0 && x.disp < y.disp + y.count && y.disp < x.disp + x.count {
                return Err(CommError::SpanOverlap { a: (x.disp, x.count), b: (y.disp, y.count) });
            }
        }
    }
    Ok(())
}

/// Copy `data` into `spans` of `buf` in list order, stopping when the
/// payload runs out (a short message fills a prefix of the span list, just
/// as a short plain receive fills a prefix of the buffer). Returns the
/// number of bytes written.
pub fn scatter_spans(buf: &mut [u8], spans: &[IoSpan], data: &[u8]) -> usize {
    let mut off = 0;
    for s in spans {
        if off == data.len() {
            break;
        }
        let take = s.count.min(data.len() - off);
        buf[s.disp..s.disp + take].copy_from_slice(&data[off..off + take]);
        off += take;
    }
    off
}

/// Borrow two disjoint `(disp, count)` regions of `buf`, one immutably (for
/// sending) and one mutably (for receiving).
///
/// The ring-allgather inner loop sends chunk `j` while receiving chunk
/// `jnext` of the *same* user buffer; Rust's aliasing rules need the split to
/// be explicit. Returns `OutOfBounds` if either region escapes the buffer and
/// panics (a bug, not an input error) if the regions overlap.
pub fn split_send_recv(
    buf: &mut [u8],
    send_disp: usize,
    send_count: usize,
    recv_disp: usize,
    recv_count: usize,
) -> Result<(&[u8], &mut [u8])> {
    let len = buf.len();
    let check = |disp: usize, count: usize| -> Result<()> {
        if disp.checked_add(count).is_none_or(|end| end > len) {
            Err(CommError::OutOfBounds { disp, count, len })
        } else {
            Ok(())
        }
    };
    check(send_disp, send_count)?;
    check(recv_disp, recv_count)?;
    assert!(
        send_disp + send_count <= recv_disp || recv_disp + recv_count <= send_disp,
        "split_send_recv: overlapping regions send=[{send_disp},+{send_count}) recv=[{recv_disp},+{recv_count})"
    );
    // Branch on which region actually ends first (disp comparison alone is
    // wrong when a zero-length region shares its displacement with the
    // start of the other region).
    if send_disp + send_count <= recv_disp {
        let (lo, hi) = buf.split_at_mut(recv_disp);
        Ok((&lo[send_disp..send_disp + send_count], &mut hi[..recv_count]))
    } else {
        let (lo, hi) = buf.split_at_mut(send_disp);
        let recv = &mut lo[recv_disp..recv_disp + recv_count];
        Ok((&hi[..send_count], recv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_disjoint_send_before_recv() {
        let mut buf: Vec<u8> = (0..10).collect();
        let (s, r) = split_send_recv(&mut buf, 1, 3, 6, 2).unwrap();
        assert_eq!(s, &[1, 2, 3]);
        r.copy_from_slice(&[99, 98]);
        assert_eq!(buf[6], 99);
        assert_eq!(buf[7], 98);
    }

    #[test]
    fn split_disjoint_recv_before_send() {
        let mut buf: Vec<u8> = (0..10).collect();
        let (s, r) = split_send_recv(&mut buf, 7, 2, 0, 4).unwrap();
        assert_eq!(s, &[7, 8]);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn split_zero_counts_ok_even_when_equal_disp() {
        let mut buf = vec![0u8; 4];
        let (s, r) = split_send_recv(&mut buf, 2, 0, 2, 0).unwrap();
        assert!(s.is_empty() && r.is_empty());
    }

    #[test]
    fn split_zero_recv_at_start_of_send_region() {
        // regression: recv_count = 0 with recv_disp == send_disp must pick
        // the recv-before-send branch, not index past the split point
        let mut buf: Vec<u8> = (0..8).collect();
        let (s, r) = split_send_recv(&mut buf, 5, 3, 5, 0).unwrap();
        assert_eq!(s, &[5, 6, 7]);
        assert!(r.is_empty());
    }

    #[test]
    fn split_zero_send_at_start_of_recv_region() {
        let mut buf: Vec<u8> = (0..8).collect();
        let (s, r) = split_send_recv(&mut buf, 2, 0, 2, 4).unwrap();
        assert!(s.is_empty());
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn split_out_of_bounds_is_error() {
        let mut buf = vec![0u8; 4];
        assert!(matches!(
            split_send_recv(&mut buf, 2, 4, 0, 1),
            Err(CommError::OutOfBounds { .. })
        ));
        assert!(matches!(
            split_send_recv(&mut buf, 0, 1, 3, 2),
            Err(CommError::OutOfBounds { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn split_overlap_panics() {
        let mut buf = vec![0u8; 8];
        let _ = split_send_recv(&mut buf, 0, 4, 2, 4);
    }

    #[test]
    fn adjacent_regions_are_disjoint() {
        let mut buf: Vec<u8> = (0..8).collect();
        let (s, r) = split_send_recv(&mut buf, 0, 4, 4, 4).unwrap();
        assert_eq!(s, &[0, 1, 2, 3]);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn validate_spans_totals_and_ranges() {
        let spans = [IoSpan::new(6, 2), IoSpan::new(0, 3)];
        assert_eq!(validate_spans(8, &spans), Ok(5));
        assert_eq!(spans_len(&spans), 5);
        assert_eq!(IoSpan::from(4..7), IoSpan::new(4, 3));
        assert_eq!(IoSpan::new(4, 3).range(), 4..7);
        assert_eq!(validate_spans(8, &[]), Ok(0));
    }

    #[test]
    fn validate_spans_rejects_out_of_bounds() {
        assert!(matches!(
            validate_spans(8, &[IoSpan::new(6, 4)]),
            Err(CommError::OutOfBounds { disp: 6, count: 4, len: 8 })
        ));
        assert!(matches!(
            validate_spans(8, &[IoSpan::new(usize::MAX, 2)]),
            Err(CommError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn validate_spans_rejects_overlap_but_allows_adjacency() {
        assert!(matches!(
            validate_spans(16, &[IoSpan::new(0, 4), IoSpan::new(3, 4)]),
            Err(CommError::SpanOverlap { a: (0, 4), b: (3, 4) })
        ));
        // Adjacent spans and zero-length spans sharing a displacement are fine.
        assert!(validate_spans(16, &[IoSpan::new(0, 4), IoSpan::new(4, 4)]).is_ok());
        assert!(validate_spans(16, &[IoSpan::new(2, 0), IoSpan::new(0, 8)]).is_ok());
    }

    #[test]
    fn disjoint_span_lists_crosses_lists_only() {
        let a = [IoSpan::new(0, 4)];
        let b = [IoSpan::new(4, 4)];
        assert!(disjoint_span_lists(&a, &b).is_ok());
        assert!(matches!(
            disjoint_span_lists(&a, &[IoSpan::new(2, 4)]),
            Err(CommError::SpanOverlap { .. })
        ));
    }

    #[test]
    fn scatter_spans_fills_prefix_on_short_payload() {
        let mut buf = [0u8; 10];
        let spans = [IoSpan::new(7, 3), IoSpan::new(1, 4)];
        let n = scatter_spans(&mut buf, &spans, &[9, 8, 7, 6, 5]);
        assert_eq!(n, 5);
        assert_eq!(buf, [0, 6, 5, 0, 0, 0, 0, 9, 8, 7]);
        // Short payload stops mid-list.
        let mut buf = [0u8; 10];
        let n = scatter_spans(&mut buf, &spans, &[1, 2]);
        assert_eq!(n, 2);
        assert_eq!(buf[7..9], [1, 2]);
        assert_eq!(buf[1..5], [0, 0, 0, 0]);
    }
}
