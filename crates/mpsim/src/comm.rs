//! The [`Communicator`] trait — the narrow waist between collective
//! algorithms and execution backends.

use crate::error::{CommError, Result};
use crate::rank::{Rank, Tag};

/// Blocking, tag-matched point-to-point communication within a fixed world.
///
/// The contract mirrors the slice of MPI used by MPICH's broadcast code:
///
/// * Messages between a given `(sender, receiver, tag)` triple are
///   **non-overtaking**: they are received in the order they were sent.
/// * [`recv`](Communicator::recv) blocks until a matching message arrives and
///   returns the actual payload length; the payload must fit in the provided
///   buffer or [`CommError::Truncation`] is returned.
/// * [`send`](Communicator::send) may be buffered (eager) or synchronous
///   (rendezvous) depending on the backend and message size — exactly the
///   freedom MPI gives implementations. Algorithms must not rely on either.
/// * [`sendrecv`](Communicator::sendrecv) behaves like a send and a receive
///   executing *concurrently*, so rings of `sendrecv` cannot deadlock
///   (MPI_Sendrecv semantics).
///
/// Self-messaging (`dest == rank`) is permitted and loops back locally.
pub trait Communicator {
    /// This process's rank, in `0..size()`.
    fn rank(&self) -> Rank;

    /// Number of ranks in the world.
    fn size(&self) -> usize;

    /// Blocking tagged send of `buf` to `dest`.
    fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()>;

    /// Blocking tagged receive from `src` into `buf`.
    ///
    /// Returns the number of payload bytes written (which may be smaller than
    /// `buf.len()`, like an MPI receive with a larger count).
    fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize>;

    /// Deadline-bounded receive: like [`recv`](Communicator::recv), but
    /// failing with [`CommError::Timeout`] if no matching message arrives
    /// within `timeout`.
    ///
    /// On expiry nothing has been consumed: a message that arrives later
    /// stays queued for the next matching receive. Backends that know the
    /// peer can no longer send (it exited or crashed) may fail early with
    /// [`CommError::PeerFailed`] instead of waiting out the deadline — this
    /// is the failure detector the self-healing collectives in `bcast-core`
    /// are built on.
    fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> Result<usize>;

    /// Combined concurrent send+receive (MPI_Sendrecv).
    ///
    /// The default implementation is only correct for backends whose `send`
    /// never blocks on the receiver (eager/buffered); synchronous backends
    /// must override it with a genuinely concurrent implementation.
    fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.send(sendbuf, dest, sendtag)?;
        self.recv(recvbuf, src, recvtag)
    }

    /// Block until every rank in the world has entered the barrier.
    fn barrier(&self) -> Result<()>;

    /// Current time in nanoseconds on this backend's clock.
    ///
    /// Wall-clock backends return real elapsed time since world start;
    /// simulator backends return this rank's *virtual* time. Benchmarks use
    /// differences of `now_ns` around an operation uniformly on both.
    fn now_ns(&self) -> u64;

    /// Validate that `rank` names a member of this world.
    fn check_rank(&self, rank: Rank) -> Result<()> {
        if rank < self.size() {
            Ok(())
        } else {
            Err(CommError::InvalidRank { rank, size: self.size() })
        }
    }
}

/// Borrow two disjoint `(disp, count)` regions of `buf`, one immutably (for
/// sending) and one mutably (for receiving).
///
/// The ring-allgather inner loop sends chunk `j` while receiving chunk
/// `jnext` of the *same* user buffer; Rust's aliasing rules need the split to
/// be explicit. Returns `OutOfBounds` if either region escapes the buffer and
/// panics (a bug, not an input error) if the regions overlap.
pub fn split_send_recv(
    buf: &mut [u8],
    send_disp: usize,
    send_count: usize,
    recv_disp: usize,
    recv_count: usize,
) -> Result<(&[u8], &mut [u8])> {
    let len = buf.len();
    let check = |disp: usize, count: usize| -> Result<()> {
        if disp.checked_add(count).is_none_or(|end| end > len) {
            Err(CommError::OutOfBounds { disp, count, len })
        } else {
            Ok(())
        }
    };
    check(send_disp, send_count)?;
    check(recv_disp, recv_count)?;
    assert!(
        send_disp + send_count <= recv_disp || recv_disp + recv_count <= send_disp,
        "split_send_recv: overlapping regions send=[{send_disp},+{send_count}) recv=[{recv_disp},+{recv_count})"
    );
    // Branch on which region actually ends first (disp comparison alone is
    // wrong when a zero-length region shares its displacement with the
    // start of the other region).
    if send_disp + send_count <= recv_disp {
        let (lo, hi) = buf.split_at_mut(recv_disp);
        Ok((&lo[send_disp..send_disp + send_count], &mut hi[..recv_count]))
    } else {
        let (lo, hi) = buf.split_at_mut(send_disp);
        let recv = &mut lo[recv_disp..recv_disp + recv_count];
        Ok((&hi[..send_count], recv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_disjoint_send_before_recv() {
        let mut buf: Vec<u8> = (0..10).collect();
        let (s, r) = split_send_recv(&mut buf, 1, 3, 6, 2).unwrap();
        assert_eq!(s, &[1, 2, 3]);
        r.copy_from_slice(&[99, 98]);
        assert_eq!(buf[6], 99);
        assert_eq!(buf[7], 98);
    }

    #[test]
    fn split_disjoint_recv_before_send() {
        let mut buf: Vec<u8> = (0..10).collect();
        let (s, r) = split_send_recv(&mut buf, 7, 2, 0, 4).unwrap();
        assert_eq!(s, &[7, 8]);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn split_zero_counts_ok_even_when_equal_disp() {
        let mut buf = vec![0u8; 4];
        let (s, r) = split_send_recv(&mut buf, 2, 0, 2, 0).unwrap();
        assert!(s.is_empty() && r.is_empty());
    }

    #[test]
    fn split_zero_recv_at_start_of_send_region() {
        // regression: recv_count = 0 with recv_disp == send_disp must pick
        // the recv-before-send branch, not index past the split point
        let mut buf: Vec<u8> = (0..8).collect();
        let (s, r) = split_send_recv(&mut buf, 5, 3, 5, 0).unwrap();
        assert_eq!(s, &[5, 6, 7]);
        assert!(r.is_empty());
    }

    #[test]
    fn split_zero_send_at_start_of_recv_region() {
        let mut buf: Vec<u8> = (0..8).collect();
        let (s, r) = split_send_recv(&mut buf, 2, 0, 2, 4).unwrap();
        assert!(s.is_empty());
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn split_out_of_bounds_is_error() {
        let mut buf = vec![0u8; 4];
        assert!(matches!(
            split_send_recv(&mut buf, 2, 4, 0, 1),
            Err(CommError::OutOfBounds { .. })
        ));
        assert!(matches!(
            split_send_recv(&mut buf, 0, 1, 3, 2),
            Err(CommError::OutOfBounds { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn split_overlap_panics() {
        let mut buf = vec![0u8; 8];
        let _ = split_send_recv(&mut buf, 0, 4, 2, 4);
    }

    #[test]
    fn adjacent_regions_are_disjoint() {
        let mut buf: Vec<u8> = (0..8).collect();
        let (s, r) = split_send_recv(&mut buf, 0, 4, 4, 4).unwrap();
        assert_eq!(s, &[0, 1, 2, 3]);
        assert_eq!(r.len(), 4);
    }
}
