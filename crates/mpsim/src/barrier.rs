//! A stoppable sense-reversing barrier.
//!
//! `std::sync::Barrier` cannot be interrupted: if one rank panics before
//! reaching the barrier, every other rank blocks forever. World teardown
//! needs to be able to fail blocked rendezvous, so we use a small
//! condvar-based barrier with a `stop` switch, mirroring the mailbox design.

use crate::sync::{Condvar, Mutex};

use crate::error::{CommError, Result};

struct State {
    /// Ranks currently waiting in the active phase.
    waiting: usize,
    /// Phase counter; flips each time the barrier releases.
    generation: u64,
    /// Set on teardown; all waiters return `WorldStopped`.
    stopped: bool,
    /// First party that left the world for good (exited or crashed). A
    /// fixed-size barrier can never complete again, so all current and
    /// future waiters fail with `PeerFailed` instead of blocking forever.
    departed: Option<usize>,
}

/// Reusable barrier for a fixed number of participants.
pub struct StopBarrier {
    parties: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl StopBarrier {
    /// Barrier releasing once `parties` threads have called [`wait`](Self::wait).
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "barrier needs at least one party");
        Self {
            parties,
            state: Mutex::new(State { waiting: 0, generation: 0, stopped: false, departed: None }),
            cv: Condvar::new(),
        }
    }

    /// Block until all parties arrive (or the barrier is stopped / a party
    /// departed for good).
    pub fn wait(&self) -> Result<()> {
        let mut st = self.state.lock();
        if st.stopped {
            return Err(CommError::WorldStopped);
        }
        if let Some(rank) = st.departed {
            return Err(CommError::PeerFailed { rank });
        }
        st.waiting += 1;
        if st.waiting == self.parties {
            st.waiting = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        while st.generation == gen && !st.stopped && st.departed.is_none() {
            self.cv.wait(&mut st);
        }
        if st.generation != gen {
            // Released normally; a concurrent stop/departure affects the
            // *next* generation, not this completed one.
            return Ok(());
        }
        if let Some(rank) = st.departed {
            return Err(CommError::PeerFailed { rank });
        }
        Err(CommError::WorldStopped)
    }

    /// Fail all current and future waiters.
    pub fn stop(&self) {
        let mut st = self.state.lock();
        st.stopped = true;
        self.cv.notify_all();
    }

    /// Record that `party` has left the world permanently (exited its rank
    /// closure or crashed). The barrier can never be completed by the
    /// remaining parties, so all current and future waiters fail with
    /// [`CommError::PeerFailed`] naming the first departed party.
    pub fn depart(&self, party: usize) {
        let mut st = self.state.lock();
        if st.departed.is_none() {
            st.departed = Some(party);
        }
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = StopBarrier::new(1);
        for _ in 0..10 {
            b.wait().unwrap();
        }
    }

    #[test]
    fn releases_all_parties_together() {
        let n = 8;
        let b = Arc::new(StopBarrier::new(n));
        let before = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..n {
            let b = Arc::clone(&b);
            let before = Arc::clone(&before);
            handles.push(std::thread::spawn(move || {
                before.fetch_add(1, Ordering::SeqCst);
                b.wait().unwrap();
                // by the time anyone exits, everyone must have arrived
                assert_eq!(before.load(Ordering::SeqCst), n);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn reusable_across_generations() {
        let n = 4;
        let b = Arc::new(StopBarrier::new(n));
        let mut handles = vec![];
        for _ in 0..n {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    b.wait().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn depart_unblocks_waiters_with_peer_failed() {
        let b = Arc::new(StopBarrier::new(3));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        b.depart(2);
        assert_eq!(h.join().unwrap().unwrap_err(), CommError::PeerFailed { rank: 2 });
        // the barrier is permanently failed for later arrivals too
        assert_eq!(b.wait().unwrap_err(), CommError::PeerFailed { rank: 2 });
    }

    #[test]
    fn depart_after_release_does_not_disturb_completed_generation() {
        let b = Arc::new(StopBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.wait());
        b.wait().unwrap();
        h.join().unwrap().unwrap();
        b.depart(0);
        assert_eq!(b.wait().unwrap_err(), CommError::PeerFailed { rank: 0 });
    }

    #[test]
    fn stop_unblocks_waiters() {
        let b = Arc::new(StopBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        b.stop();
        assert_eq!(h.join().unwrap().unwrap_err(), CommError::WorldStopped);
        assert_eq!(b.wait().unwrap_err(), CommError::WorldStopped);
    }
}
