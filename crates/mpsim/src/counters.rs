//! Traffic accounting.
//!
//! The paper's central claim is a *transfer-count* reduction: the native ring
//! allgather moves `P·(P−1)` messages while the tuned one skips the redundant
//! ones (56 → 44 for `P = 8`, 90 → 75 for `P = 10`). Every backend therefore
//! counts messages and bytes per rank and per peer, so the analytic model in
//! `bcast-core::traffic` can be validated against what the runtime actually
//! did.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use crate::rank::Rank;

/// Traffic exchanged with one particular peer, as seen from one rank.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PeerTraffic {
    /// Messages sent to the peer.
    pub msgs_sent: u64,
    /// Payload bytes sent to the peer.
    pub bytes_sent: u64,
    /// Messages received from the peer.
    pub msgs_recvd: u64,
    /// Payload bytes received from the peer.
    pub bytes_recvd: u64,
}

/// Per-rank traffic statistics.
///
/// Zero-byte messages count as messages (they still occupy a send/receive
/// slot and pay latency, both in MPI and in our simulator), which matches how
/// the paper counts "data transmissions".
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total messages sent by this rank.
    pub msgs_sent: u64,
    /// Total payload bytes sent by this rank.
    pub bytes_sent: u64,
    /// Total messages received by this rank.
    pub msgs_recvd: u64,
    /// Total payload bytes received by this rank.
    pub bytes_recvd: u64,
    /// Physical transmissions issued by this rank: a plain send is one
    /// envelope carrying one message, a k-span vectored send is one envelope
    /// carrying k messages. `envelopes_sent ≤ msgs_sent` always; the gap is
    /// exactly what coalescing saved.
    pub envelopes_sent: u64,
    /// Physical transmissions absorbed by this rank (see
    /// [`envelopes_sent`](TrafficStats::envelopes_sent)).
    pub envelopes_recvd: u64,
    /// Payload bytes this rank moved through RAM with `memcpy` — envelope
    /// staging on sends, copy-out on receives, vectored gathers/scatters,
    /// and the collectives' final copy into the user buffer. Zero-copy
    /// (`send_shared`/`recv_owned`) paths move refcounts instead, so this is
    /// the memory-bandwidth analogue of the paper's transfer count. Unlike
    /// the wire counters it is rank-local: copies have no matching "receive",
    /// so it plays no part in [`WorldTraffic::is_balanced`].
    pub bytes_copied: u64,
    /// Breakdown by peer rank.
    pub by_peer: BTreeMap<Rank, PeerTraffic>,
}

impl TrafficStats {
    /// Record one outgoing message of `bytes` payload to `dest`.
    pub fn record_send(&mut self, dest: Rank, bytes: usize) {
        self.record_send_vectored(dest, bytes, 1);
    }

    /// Record one incoming message of `bytes` payload from `src`.
    pub fn record_recv(&mut self, src: Rank, bytes: usize) {
        self.record_recv_vectored(src, bytes, 1);
    }

    /// Record one outgoing envelope carrying `msgs` logical messages of
    /// `bytes` total payload to `dest` — the vectored-send accounting.
    pub fn record_send_vectored(&mut self, dest: Rank, bytes: usize, msgs: u64) {
        self.msgs_sent += msgs;
        self.bytes_sent += bytes as u64;
        self.envelopes_sent += 1;
        let p = self.by_peer.entry(dest).or_default();
        p.msgs_sent += msgs;
        p.bytes_sent += bytes as u64;
    }

    /// Record one incoming envelope carrying `msgs` logical messages of
    /// `bytes` total payload from `src`.
    pub fn record_recv_vectored(&mut self, src: Rank, bytes: usize, msgs: u64) {
        self.msgs_recvd += msgs;
        self.bytes_recvd += bytes as u64;
        self.envelopes_recvd += 1;
        let p = self.by_peer.entry(src).or_default();
        p.msgs_recvd += msgs;
        p.bytes_recvd += bytes as u64;
    }

    /// Record `bytes` of payload moved by memcpy on this rank.
    pub fn record_copy(&mut self, bytes: usize) {
        self.bytes_copied += bytes as u64;
    }

    /// Merge another rank-local record into this one (used for aggregation).
    pub fn merge(&mut self, other: &TrafficStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recvd += other.msgs_recvd;
        self.bytes_recvd += other.bytes_recvd;
        self.envelopes_sent += other.envelopes_sent;
        self.envelopes_recvd += other.envelopes_recvd;
        self.bytes_copied += other.bytes_copied;
        for (&peer, pt) in &other.by_peer {
            let p = self.by_peer.entry(peer).or_default();
            p.msgs_sent += pt.msgs_sent;
            p.bytes_sent += pt.bytes_sent;
            p.msgs_recvd += pt.msgs_recvd;
            p.bytes_recvd += pt.bytes_recvd;
        }
    }
}

/// Aggregated traffic of a whole world run (all ranks).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WorldTraffic {
    /// Per-rank statistics, indexed by rank.
    pub per_rank: Vec<TrafficStats>,
}

impl WorldTraffic {
    /// Build from per-rank stats.
    pub fn new(per_rank: Vec<TrafficStats>) -> Self {
        Self { per_rank }
    }

    /// Total messages sent across all ranks — the paper's "number of message
    /// transfers". Every message is counted once (at the sender).
    pub fn total_msgs(&self) -> u64 {
        self.per_rank.iter().map(|s| s.msgs_sent).sum()
    }

    /// Total payload bytes sent across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|s| s.bytes_sent).sum()
    }

    /// Total physical envelopes sent across all ranks — what the fabric
    /// actually pays for (pool rentals, mailbox pushes), as opposed to
    /// [`total_msgs`](WorldTraffic::total_msgs), the paper's logical
    /// transfer count. Coalescing lowers this without touching
    /// [`total_bytes`](WorldTraffic::total_bytes) or `total_msgs`.
    pub fn total_envelopes(&self) -> u64 {
        self.per_rank.iter().map(|s| s.envelopes_sent).sum()
    }

    /// Total payload bytes memcpy'd across all ranks — the copy bill the
    /// zero-copy fabric exists to shrink (see
    /// [`TrafficStats::bytes_copied`]).
    pub fn total_bytes_copied(&self) -> u64 {
        self.per_rank.iter().map(|s| s.bytes_copied).sum()
    }

    /// Sanity: globally, every send must have been received.
    pub fn is_balanced(&self) -> bool {
        let sent: u64 = self.per_rank.iter().map(|s| s.msgs_sent).sum();
        let recvd: u64 = self.per_rank.iter().map(|s| s.msgs_recvd).sum();
        let bsent: u64 = self.per_rank.iter().map(|s| s.bytes_sent).sum();
        let brecvd: u64 = self.per_rank.iter().map(|s| s.bytes_recvd).sum();
        let esent: u64 = self.per_rank.iter().map(|s| s.envelopes_sent).sum();
        let erecvd: u64 = self.per_rank.iter().map(|s| s.envelopes_recvd).sum();
        sent == recvd && bsent == brecvd && esent == erecvd
    }

    /// Split total messages by a peer classifier (e.g. intra-node vs
    /// inter-node). `classify(src, dst)` returns `true` for the first bucket.
    ///
    /// Returns `(matching_msgs, other_msgs, matching_bytes, other_bytes)`.
    pub fn split_msgs<F: Fn(Rank, Rank) -> bool>(&self, classify: F) -> (u64, u64, u64, u64) {
        let (mut m0, mut m1, mut b0, mut b1) = (0, 0, 0, 0);
        for (src, st) in self.per_rank.iter().enumerate() {
            for (&dst, pt) in &st.by_peer {
                if classify(src, dst) {
                    m0 += pt.msgs_sent;
                    b0 += pt.bytes_sent;
                } else {
                    m1 += pt.msgs_sent;
                    b1 += pt.bytes_sent;
                }
            }
        }
        (m0, m1, b0, b1)
    }
}

/// Mailbox wakeup accounting: how many deliveries had to wake a blocked
/// receiver versus how many took the notify-free fast path.
///
/// The threaded backend's send path only issues a condvar notify when the
/// destination slot has a blocked waiter; these counters let tests and
/// benches assert that uncontended sends really skip the wakeup.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WakeupStats {
    /// Envelopes delivered (mailbox pushes).
    pub pushes: u64,
    /// Pushes that found a blocked receiver and issued a notify.
    pub notifies: u64,
}

impl WakeupStats {
    /// Pushes that skipped the wakeup entirely.
    pub fn skipped(&self) -> u64 {
        self.pushes - self.notifies
    }
}

/// Reactor introspection counters from one event-executor run.
///
/// These measure the *scheduler*, not the workload: traffic counters say
/// what the collective moved, these say what it cost the reactor to move
/// it. The threaded executor has no reactor, so it reports all zeros.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReactorStats {
    /// Task enqueues onto the ready queue (deduplicated: a task already
    /// queued is not counted again).
    pub wakeups: u64,
    /// Polls that returned `Pending` — the task was woken (or speculatively
    /// polled at startup) without being able to make progress. The targeted
    /// wake paths exist to keep this near the workload's unavoidable floor.
    pub spurious_polls: u64,
    /// Timers disarmed while still pending — every `recv_timeout` satisfied
    /// by an in-time delivery cancels its deadline instead of leaving a
    /// stale entry for the reactor to trip over later.
    pub timer_cancels: u64,
    /// Envelopes that overflowed a mailbox lane's inline tag buckets into
    /// the spill map. 0 for every built-in collective; nonzero only for
    /// wild-tag protocol traffic (see `event_mailbox`).
    pub mailbox_spills: u64,
}

/// Sentinel peer for an empty write-back slot ([`CounterCell`]).
const NO_PEER: Rank = Rank::MAX;

/// Interior-mutable counter cell used by rank-local communicator handles.
///
/// A communicator handle lives on exactly one thread, so `RefCell` suffices;
/// the world gathers the final values after the ranks join.
///
/// The stats live in two tiers so the per-message path touches only plain
/// `Cell`s:
///
/// * the six totals are individual `Cell<u64>`s — no `RefCell` flag, no
///   map, just load-add-store;
/// * the per-peer breakdown lives in a `BTreeMap`, which would otherwise
///   put one map lookup on *every* message of the event executor's hot
///   path. Collectives talk to the same peer for long runs (a ring rank
///   sends right and receives left for P−1 straight phases), so the cell
///   keeps one write-back slot per direction: increments for the current
///   peer accumulate in a `Cell` and are folded into the map only when the
///   peer changes or a snapshot is taken.
///
/// The folded values are exactly the per-message sums, so observable
/// statistics are bit-identical to recording straight into a
/// [`TrafficStats`].
#[derive(Debug, Default)]
pub struct CounterCell {
    msgs_sent: Cell<u64>,
    bytes_sent: Cell<u64>,
    msgs_recvd: Cell<u64>,
    bytes_recvd: Cell<u64>,
    envelopes_sent: Cell<u64>,
    envelopes_recvd: Cell<u64>,
    bytes_copied: Cell<u64>,
    by_peer: RefCell<BTreeMap<Rank, PeerTraffic>>,
    /// Pending `(peer, msgs, bytes)` not yet folded into `by_peer`
    /// (send direction); `NO_PEER` marks the slot empty.
    hot_send: Cell<(Rank, u64, u64)>,
    /// Pending `(peer, msgs, bytes)` for the receive direction.
    hot_recv: Cell<(Rank, u64, u64)>,
}

impl CounterCell {
    /// Record an outgoing message.
    pub fn record_send(&self, dest: Rank, bytes: usize) {
        self.record_send_vectored(dest, bytes, 1);
    }

    /// Record an incoming message.
    pub fn record_recv(&self, src: Rank, bytes: usize) {
        self.record_recv_vectored(src, bytes, 1);
    }

    /// Record one outgoing envelope carrying `msgs` logical messages.
    pub fn record_send_vectored(&self, dest: Rank, bytes: usize, msgs: u64) {
        self.msgs_sent.set(self.msgs_sent.get() + msgs);
        self.bytes_sent.set(self.bytes_sent.get() + bytes as u64);
        self.envelopes_sent.set(self.envelopes_sent.get() + 1);
        let (peer, m, b) = self.hot_send.get();
        if peer == dest {
            self.hot_send.set((peer, m + msgs, b + bytes as u64));
        } else {
            self.fold_send(peer, m, b);
            self.hot_send.set((dest, msgs, bytes as u64));
        }
    }

    /// Record one incoming envelope carrying `msgs` logical messages.
    pub fn record_recv_vectored(&self, src: Rank, bytes: usize, msgs: u64) {
        self.msgs_recvd.set(self.msgs_recvd.get() + msgs);
        self.bytes_recvd.set(self.bytes_recvd.get() + bytes as u64);
        self.envelopes_recvd.set(self.envelopes_recvd.get() + 1);
        let (peer, m, b) = self.hot_recv.get();
        if peer == src {
            self.hot_recv.set((peer, m + msgs, b + bytes as u64));
        } else {
            self.fold_recv(peer, m, b);
            self.hot_recv.set((src, msgs, bytes as u64));
        }
    }

    /// Record `bytes` of payload moved by memcpy on this rank.
    pub fn record_copy(&self, bytes: usize) {
        self.bytes_copied.set(self.bytes_copied.get() + bytes as u64);
    }

    fn fold_send(&self, peer: Rank, msgs: u64, bytes: u64) {
        if peer != NO_PEER {
            let mut map = self.by_peer.borrow_mut();
            let p = map.entry(peer).or_default();
            p.msgs_sent += msgs;
            p.bytes_sent += bytes;
        }
    }

    fn fold_recv(&self, peer: Rank, msgs: u64, bytes: u64) {
        if peer != NO_PEER {
            let mut map = self.by_peer.borrow_mut();
            let p = map.entry(peer).or_default();
            p.msgs_recvd += msgs;
            p.bytes_recvd += bytes;
        }
    }

    /// Fold both write-back slots into the map, emptying them.
    fn flush(&self) {
        let (peer, m, b) = self.hot_send.replace((NO_PEER, 0, 0));
        self.fold_send(peer, m, b);
        let (peer, m, b) = self.hot_recv.replace((NO_PEER, 0, 0));
        self.fold_recv(peer, m, b);
    }

    /// Snapshot the current statistics.
    pub fn snapshot(&self) -> TrafficStats {
        self.flush();
        TrafficStats {
            msgs_sent: self.msgs_sent.get(),
            bytes_sent: self.bytes_sent.get(),
            msgs_recvd: self.msgs_recvd.get(),
            bytes_recvd: self.bytes_recvd.get(),
            envelopes_sent: self.envelopes_sent.get(),
            envelopes_recvd: self.envelopes_recvd.get(),
            bytes_copied: self.bytes_copied.get(),
            by_peer: self.by_peer.borrow().clone(),
        }
    }

    /// Take the statistics out, leaving zeros.
    pub fn take(&self) -> TrafficStats {
        self.flush();
        TrafficStats {
            msgs_sent: self.msgs_sent.take(),
            bytes_sent: self.bytes_sent.take(),
            msgs_recvd: self.msgs_recvd.take(),
            bytes_recvd: self.bytes_recvd.take(),
            envelopes_sent: self.envelopes_sent.take(),
            envelopes_recvd: self.envelopes_recvd.take(),
            bytes_copied: self.bytes_copied.take(),
            by_peer: self.by_peer.take(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = TrafficStats::default();
        s.record_send(3, 100);
        s.record_send(3, 50);
        s.record_send(5, 0); // zero-byte message still counts
        s.record_recv(2, 10);
        assert_eq!(s.msgs_sent, 3);
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.msgs_recvd, 1);
        assert_eq!(s.bytes_recvd, 10);
        assert_eq!(s.by_peer[&3].msgs_sent, 2);
        assert_eq!(s.by_peer[&3].bytes_sent, 150);
        assert_eq!(s.by_peer[&5].msgs_sent, 1);
        assert_eq!(s.by_peer[&5].bytes_sent, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficStats::default();
        a.record_send(1, 10);
        let mut b = TrafficStats::default();
        b.record_send(1, 5);
        b.record_recv(0, 7);
        a.merge(&b);
        assert_eq!(a.msgs_sent, 2);
        assert_eq!(a.bytes_sent, 15);
        assert_eq!(a.msgs_recvd, 1);
        assert_eq!(a.by_peer[&1].msgs_sent, 2);
    }

    #[test]
    fn world_balance() {
        let mut s0 = TrafficStats::default();
        let mut s1 = TrafficStats::default();
        s0.record_send(1, 8);
        s1.record_recv(0, 8);
        let w = WorldTraffic::new(vec![s0, s1]);
        assert!(w.is_balanced());
        assert_eq!(w.total_msgs(), 1);
        assert_eq!(w.total_bytes(), 8);
    }

    #[test]
    fn vectored_records_split_msgs_from_envelopes() {
        let mut s0 = TrafficStats::default();
        s0.record_send_vectored(1, 24, 3); // one envelope, three chunk spans
        s0.record_send(1, 8); // plain send: one of each
        assert_eq!(s0.msgs_sent, 4);
        assert_eq!(s0.envelopes_sent, 2);
        assert_eq!(s0.bytes_sent, 32);
        assert_eq!(s0.by_peer[&1].msgs_sent, 4);

        let mut s1 = TrafficStats::default();
        s1.record_recv_vectored(0, 24, 3);
        s1.record_recv(0, 8);
        let w = WorldTraffic::new(vec![s0, s1]);
        assert!(w.is_balanced());
        assert_eq!(w.total_msgs(), 4);
        assert_eq!(w.total_envelopes(), 2);
        assert_eq!(w.total_bytes(), 32);
    }

    #[test]
    fn merge_accumulates_envelopes() {
        let mut a = TrafficStats::default();
        a.record_send_vectored(1, 10, 2);
        let mut b = TrafficStats::default();
        b.record_send_vectored(1, 6, 4);
        b.record_recv(0, 7);
        a.merge(&b);
        assert_eq!(a.msgs_sent, 6);
        assert_eq!(a.envelopes_sent, 2);
        assert_eq!(a.envelopes_recvd, 1);
    }

    #[test]
    fn world_unbalanced_detected() {
        let mut s0 = TrafficStats::default();
        s0.record_send(1, 8);
        let w = WorldTraffic::new(vec![s0, TrafficStats::default()]);
        assert!(!w.is_balanced());
    }

    #[test]
    fn split_by_classifier() {
        // ranks 0,1 on node A; rank 2 on node B (node = rank / 2)
        let node = |r: Rank| r / 2;
        let mut s0 = TrafficStats::default();
        s0.record_send(1, 4); // intra
        s0.record_send(2, 8); // inter
        let mut s1 = TrafficStats::default();
        s1.record_send(2, 16); // inter
        let w = WorldTraffic::new(vec![s0, s1, TrafficStats::default()]);
        let (intra_m, inter_m, intra_b, inter_b) = w.split_msgs(|a, b| node(a) == node(b));
        assert_eq!((intra_m, inter_m), (1, 2));
        assert_eq!((intra_b, inter_b), (4, 24));
    }

    #[test]
    fn counter_cell_take_resets() {
        let c = CounterCell::default();
        c.record_send(0, 1);
        assert_eq!(c.snapshot().msgs_sent, 1);
        let taken = c.take();
        assert_eq!(taken.msgs_sent, 1);
        assert_eq!(c.snapshot().msgs_sent, 0);
    }

    #[test]
    fn bytes_copied_is_rank_local() {
        let mut s0 = TrafficStats::default();
        s0.record_send(1, 8);
        s0.record_copy(8); // staging copy on the sender
        let mut s1 = TrafficStats::default();
        s1.record_recv(0, 8);
        // receiver took the envelope zero-copy: no copy recorded
        let w = WorldTraffic::new(vec![s0, s1]);
        assert!(w.is_balanced(), "copies must not unbalance wire traffic");
        assert_eq!(w.total_bytes_copied(), 8);

        let mut a = TrafficStats::default();
        a.record_copy(3);
        let mut b = TrafficStats::default();
        b.record_copy(4);
        a.merge(&b);
        assert_eq!(a.bytes_copied, 7);

        let c = CounterCell::default();
        c.record_copy(5);
        c.record_copy(6);
        assert_eq!(c.snapshot().bytes_copied, 11);
        assert_eq!(c.take().bytes_copied, 11);
        assert_eq!(c.snapshot().bytes_copied, 0);
    }
}
