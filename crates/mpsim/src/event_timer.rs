//! Hierarchical timing wheel for the event reactor's virtual-clock timers.
//!
//! The first event executor kept armed deadlines in a
//! `BinaryHeap<(deadline, seq, task)>`. Arming was `O(log n)`, but the heap
//! had no cancel at all: every `recv_timeout` whose message arrived in time
//! left a *stale* entry behind, to be popped, found dead, and discarded on
//! some later idle step. Retransmission protocols (`ReliableComm`) arm one
//! timer per await and satisfy nearly all of them, so the heap accumulated
//! garbage proportional to total message count and every idle transition
//! paid to sift through it.
//!
//! [`TimerWheel`] replaces the heap with a hashed hierarchical wheel:
//!
//! * **O(1) arm** — the level is the highest bit in which the deadline
//!   differs from the current clock (6 bits per level), the slot is the
//!   deadline's digit at that level; inserting is a push onto an intrusive
//!   doubly-linked list.
//! * **O(1) cancel** — entries live in a slab addressed by a
//!   generation-counted [`TimerHandle`]; cancelling unlinks the entry from
//!   its slot list and recycles it immediately. A satisfied `recv_timeout`
//!   now leaves *nothing* behind, and cancelling a handle whose timer
//!   already fired (the generation moved on) is a safe no-op — which is what
//!   makes dropping a half-polled receive future sound.
//! * **exact heap ordering** — [`TimerWheel::pop_next`] returns armed timers
//!   in strictly ascending `(deadline, seq)` order, bit-identical to the
//!   heap it replaces, so the reactor's deterministic replay is unchanged.
//!   The differential property test in `tests/timer_wheel_prop.rs` checks
//!   this against a literal `BinaryHeap` model over seeded
//!   arm/cancel/advance sequences.
//!
//! Why per-level minimum scanning is exact and needs no overflow list: the
//! wheel has 11 levels × 64 slots = 66 bits of span, which covers every
//! `u64` deadline, and the reactor maintains the invariant that the clock
//! never passes an armed deadline (it only ever jumps *to* the earliest
//! one). At arm time the deadline differs from `now` only in its bottom
//! `6·(level+1)` bits, so within its level the entry sits fewer than 64
//! slots ahead of the clock's current slot — and that distance only shrinks
//! as the clock advances. The nearest occupied slot at each level (by
//! wrapped distance from the clock's slot) therefore holds that level's
//! earliest deadlines, and the global minimum is the best of one slot scan
//! per level: at most 11 short list walks per idle transition, independent
//! of how many timers are armed.

/// Bits of clock resolved per wheel level.
const LEVEL_BITS: u32 = 6;
/// Slots per level (`2^LEVEL_BITS`).
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels in the hierarchy; `LEVELS * LEVEL_BITS >= 64` spans every `u64`
/// nanosecond deadline, so no overflow list is needed.
const LEVELS: usize = 11;
/// Null index for slab free list and intrusive slot lists.
const NIL: u32 = u32::MAX;

/// Handle to an armed timer; `cancel` on a handle whose entry already fired
/// or was re-armed is a no-op thanks to the generation counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    idx: u32,
    gen: u32,
}

/// The liveness decision for [`TimerWheel::cancel`]: a handle may touch its
/// slab entry only while the entry is still armed *and* the generations
/// match. A fired or re-armed entry has moved on (its generation was bumped
/// at release), so the stale handle is a no-op — which is what makes
/// dropping a half-polled receive future sound. Shared with schedcheck's
/// `TimerWheelModel`, whose `no_generation` mutation (match on slab index
/// alone) lets a stale cancel kill a recycled entry and is caught by the
/// explorer as a deadlock.
#[must_use]
pub fn handle_is_live(entry_gen: u32, entry_armed: bool, handle_gen: u32) -> bool {
    entry_armed && entry_gen == handle_gen
}

/// One slab entry: payload plus intrusive list links and slot bookkeeping.
#[derive(Debug)]
struct Entry {
    deadline_ns: u64,
    /// Arming sequence number; ties on `deadline_ns` pop in arming order,
    /// exactly like the `(deadline, seq)` tuple the old heap ordered by.
    seq: u64,
    task: u32,
    gen: u32,
    prev: u32,
    next: u32,
    /// `level * SLOTS + slot` while armed; `NIL` while on the free list.
    home: u32,
}

/// One wheel level: a 64-bit occupancy bitmap plus per-slot list heads.
#[derive(Debug)]
struct Level {
    occupied: u64,
    heads: [u32; SLOTS],
}

impl Level {
    fn new() -> Self {
        Level { occupied: 0, heads: [NIL; SLOTS] }
    }
}

/// Hierarchical timing wheel with O(1) arm and cancel; see module docs.
#[derive(Debug)]
pub struct TimerWheel {
    levels: Vec<Level>,
    entries: Vec<Entry>,
    free_head: u32,
    next_seq: u64,
    armed: usize,
    cancelled: u64,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// An empty wheel. Slot storage is a few KB and allocated up front; the
    /// entry slab grows to the high-water mark of concurrently armed timers
    /// (for the reactor: at most one per parked rank) and is then recycled.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            entries: Vec::new(),
            free_head: NIL,
            next_seq: 0,
            armed: 0,
            cancelled: 0,
        }
    }

    /// Number of currently armed timers.
    pub fn len(&self) -> usize {
        self.armed
    }

    /// True when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }

    /// Timers cancelled while still armed, for reactor introspection.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Level and slot for a deadline given the current clock: the level is
    /// the highest 6-bit digit in which the two differ, the slot is the
    /// deadline's digit there. A deadline equal to `now` lands at level 0 in
    /// the clock's own slot and pops immediately.
    ///
    /// Public so schedcheck's `TimerWheelModel` can assert the scanning
    /// precondition (an armed entry's placement stays within 64 slots of the
    /// clock's digit at its level, for every reachable arm/cancel/pop
    /// interleaving) against this exact function rather than a copy.
    pub fn place(now_ns: u64, deadline_ns: u64) -> (usize, usize) {
        let diff = deadline_ns ^ now_ns;
        let level = if diff == 0 { 0 } else { (63 - diff.leading_zeros()) as usize / 6 };
        let slot = ((deadline_ns >> (LEVEL_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    /// Arm a timer for `task` at absolute `deadline_ns`, with `now_ns` the
    /// reactor clock at arm time (callers must never arm in the past, which
    /// the reactor guarantees because the clock only jumps to popped
    /// deadlines). Returns the handle for [`TimerWheel::cancel`].
    pub fn arm(&mut self, now_ns: u64, deadline_ns: u64, task: usize) -> TimerHandle {
        debug_assert!(deadline_ns >= now_ns, "arming a deadline in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free_head {
            NIL => {
                let idx = self.entries.len() as u32;
                self.entries.push(Entry {
                    deadline_ns,
                    seq,
                    task: task as u32,
                    gen: 0,
                    prev: NIL,
                    next: NIL,
                    home: NIL,
                });
                idx
            }
            free => {
                let e = &mut self.entries[free as usize];
                self.free_head = e.next;
                e.deadline_ns = deadline_ns;
                e.seq = seq;
                e.task = task as u32;
                e.prev = NIL;
                e.next = NIL;
                free
            }
        };
        let (level, slot) = Self::place(now_ns, deadline_ns);
        let head = self.levels[level].heads[slot];
        self.entries[idx as usize].next = head;
        self.entries[idx as usize].home = (level * SLOTS + slot) as u32;
        if head != NIL {
            self.entries[head as usize].prev = idx;
        }
        self.levels[level].heads[slot] = idx;
        self.levels[level].occupied |= 1u64 << slot;
        self.armed += 1;
        TimerHandle { idx, gen: self.entries[idx as usize].gen }
    }

    /// Cancel an armed timer. Returns `true` if the handle was still live
    /// (the timer had neither fired nor been cancelled); stale handles are
    /// ignored, so callers may cancel unconditionally on drop.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        let Some(e) = self.entries.get(handle.idx as usize) else { return false };
        if !handle_is_live(e.gen, e.home != NIL, handle.gen) {
            return false;
        }
        self.unlink(handle.idx);
        self.release(handle.idx);
        self.cancelled += 1;
        true
    }

    /// Pop the earliest armed timer — minimum `(deadline, seq)` across the
    /// wheel — given the current clock. Returns `(deadline_ns, task)`.
    ///
    /// Requires `now_ns <=` every armed deadline (the reactor invariant);
    /// under it, the nearest occupied slot per level by wrapped distance
    /// from the clock's slot holds that level's minimum (see module docs).
    pub fn pop_next(&mut self, now_ns: u64) -> Option<(u64, usize)> {
        if self.armed == 0 {
            return None;
        }
        let mut best: Option<(u64, u64, u32)> = None;
        for (level, lv) in self.levels.iter().enumerate() {
            if lv.occupied == 0 {
                continue;
            }
            let now_slot = ((now_ns >> (LEVEL_BITS as usize * level)) & (SLOTS as u64 - 1)) as u32;
            let dist = lv.occupied.rotate_right(now_slot).trailing_zeros();
            let slot = ((now_slot + dist) & (SLOTS as u32 - 1)) as usize;
            let mut i = lv.heads[slot];
            while i != NIL {
                let e = &self.entries[i as usize];
                if best.is_none_or(|(d, s, _)| (e.deadline_ns, e.seq) < (d, s)) {
                    best = Some((e.deadline_ns, e.seq, i));
                }
                i = e.next;
            }
        }
        // lint: allow(panic) — armed > 0 guarantees an occupied slot.
        let (deadline_ns, _, idx) = best.expect("armed timers but empty wheel");
        let task = self.entries[idx as usize].task as usize;
        self.unlink(idx);
        self.release(idx);
        Some((deadline_ns, task))
    }

    /// Detach an armed entry from its slot's intrusive list, clearing the
    /// occupancy bit when the slot empties.
    fn unlink(&mut self, idx: u32) {
        let (prev, next, home) = {
            let e = &self.entries[idx as usize];
            (e.prev, e.next, e.home as usize)
        };
        let (level, slot) = (home / SLOTS, home % SLOTS);
        if prev == NIL {
            self.levels[level].heads[slot] = next;
            if next == NIL {
                self.levels[level].occupied &= !(1u64 << slot);
            }
        } else {
            self.entries[prev as usize].next = next;
        }
        if next != NIL {
            self.entries[next as usize].prev = prev;
        }
        self.armed -= 1;
    }

    /// Return an unlinked entry to the free list, bumping its generation so
    /// outstanding handles go stale.
    fn release(&mut self, idx: u32) {
        let free = self.free_head;
        let e = &mut self.entries[idx as usize];
        e.gen = e.gen.wrapping_add(1);
        e.home = NIL;
        e.prev = NIL;
        e.next = free;
        self.free_head = idx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.arm(0, 500, 1);
        w.arm(0, 100, 2);
        w.arm(0, 300, 3);
        assert_eq!(w.pop_next(0), Some((100, 2)));
        assert_eq!(w.pop_next(100), Some((300, 3)));
        assert_eq!(w.pop_next(300), Some((500, 1)));
        assert_eq!(w.pop_next(500), None);
    }

    #[test]
    fn equal_deadlines_pop_in_arming_order() {
        let mut w = TimerWheel::new();
        w.arm(0, 42, 7);
        w.arm(0, 42, 8);
        w.arm(0, 42, 9);
        assert_eq!(w.pop_next(0), Some((42, 7)));
        assert_eq!(w.pop_next(42), Some((42, 8)));
        assert_eq!(w.pop_next(42), Some((42, 9)));
    }

    #[test]
    fn cancel_removes_and_stale_handles_are_noops() {
        let mut w = TimerWheel::new();
        let a = w.arm(0, 10, 1);
        let b = w.arm(0, 20, 2);
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double cancel must be a no-op");
        assert_eq!(w.cancelled(), 1);
        assert_eq!(w.pop_next(0), Some((20, 2)));
        assert!(!w.cancel(b), "cancel after fire must be a no-op");
        assert_eq!(w.cancelled(), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn slab_recycles_entries() {
        let mut w = TimerWheel::new();
        for round in 0..1000u64 {
            let h = w.arm(round, round + 5, 0);
            assert!(w.cancel(h));
        }
        assert!(w.entries.len() <= 2, "cancelled entries must be recycled");
    }

    #[test]
    fn deadline_equal_to_now_pops_immediately() {
        let mut w = TimerWheel::new();
        w.arm(77, 77, 3);
        assert_eq!(w.pop_next(77), Some((77, 3)));
    }

    #[test]
    fn spans_the_full_u64_range() {
        let mut w = TimerWheel::new();
        w.arm(0, u64::MAX, 1);
        w.arm(0, 1 << 40, 2);
        w.arm(0, 3, 3);
        assert_eq!(w.pop_next(0), Some((3, 3)));
        assert_eq!(w.pop_next(3), Some((1 << 40, 2)));
        assert_eq!(w.pop_next(1 << 40), Some((u64::MAX, 1)));
    }

    #[test]
    fn arming_relative_to_advanced_clock_keeps_order() {
        let mut w = TimerWheel::new();
        w.arm(0, 1_000_000, 1);
        let (d, t) = w.pop_next(0).unwrap();
        assert_eq!((d, t), (1_000_000, 1));
        // clock jumped to 1_000_000; later arms are placed relative to it
        w.arm(d, d + 3, 2);
        w.arm(d, d + 70, 3);
        w.arm(d, d + 1, 4);
        assert_eq!(w.pop_next(d), Some((d + 1, 4)));
        assert_eq!(w.pop_next(d + 1), Some((d + 3, 2)));
        assert_eq!(w.pop_next(d + 3), Some((d + 70, 3)));
    }
}
