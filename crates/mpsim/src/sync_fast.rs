//! Spin-then-park lock backend (`fast-sync` feature).
//!
//! The ROADMAP's fast-lock seam: a mutex and condvar built directly on
//! `std::sync::atomic` plus `thread::park_timeout`, tuned for the threaded
//! runtime's access pattern — critical sections of a few hundred
//! nanoseconds (a hash-map queue push or pop) and rendezvous where the
//! other side arrives almost immediately (ping-pong, barrier).
//!
//! * **Mutex**: a word-sized state machine (`0` unlocked / `1` locked /
//!   `2` locked-contended). `lock` spins briefly with `spin_loop` hints
//!   before registering in a waiter list and parking; `unlock` is a single
//!   `swap` that unparks one registered waiter only when contention was
//!   observed.
//! * **Condvar**: waiters register a `(flag, thread)` pair, release the
//!   mutex, then *spin on the flag* before parking — a notify that arrives
//!   within the spin window (the common case for message rendezvous)
//!   completes without any syscall on the waiting side.
//!
//! Every park uses [`PARK_TIMEOUT`] as a safety net, so even a lost wakeup
//! (theoretically possible in the window between a waiter registering and
//! parking while the notifier misses the registration) only costs bounded
//! latency, never liveness. Spurious wakeups are allowed by both APIs; all
//! callers loop on their predicate.
//!
//! Spin windows are sized by [`multicore`]: spinning only pays when the
//! peer can run concurrently on another hardware thread. On a single core
//! a spinning waiter starves the thread that would wake it, so there the
//! windows collapse to zero and every blocking path parks immediately.
//!
//! Poisoning does not exist here, matching the std shim's `parking_lot`
//! semantics: the protected state stays structurally valid across unwinds
//! and world teardown is handled at a higher level.

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::{self, Thread};
use std::time::Duration;

use crate::proto::{release_needs_wake, slow_path_acquired, CONTENDED, LOCKED, UNLOCKED};

/// Spin iterations before a lock acquisition parks (multicore only).
const LOCK_SPINS: u32 = 128;
/// Spin iterations a condvar waiter burns on its flag before parking
/// (multicore only). Message rendezvous usually completes well inside
/// this window.
const WAIT_SPINS: u32 = 6000;
/// Park safety net: bounds the cost of any lost-wakeup race.
const PARK_TIMEOUT: Duration = Duration::from_micros(100);
/// Timeslice donations a condvar waiter makes after its spin window and
/// before parking. On one core `yield_now` hands the CPU straight to the
/// peer that will set our flag, and `unpark` on a thread that never parked
/// is a syscall-free atomic store — so a rendezvous that completes within
/// the yield window costs two context switches and no futex traffic.
const WAIT_YIELDS: u32 = 32;
/// Timeslice donations a contended lock acquisition makes before parking.
const LOCK_YIELDS: u32 = 16;

/// Does spinning pay on this machine? Only when the peer can make progress
/// on another hardware thread: on a single core every spin iteration merely
/// delays the peer's next scheduler slot, so a waiter spinning on its flag
/// starves the very thread that would set it and then rides the park
/// timeout. With one core all spin windows collapse to zero and blocking
/// paths park immediately, turning each wakeup into a plain scheduler
/// handoff (what a futex-based lock would do).
fn multicore() -> bool {
    // 0 = uninitialized, 1 = single core, 2 = multicore.
    static CORES: AtomicU32 = AtomicU32::new(0);
    match CORES.load(Ordering::Relaxed) {
        0 => {
            let n = thread::available_parallelism().map_or(1, usize::from);
            let class = if n > 1 { 2 } else { 1 };
            CORES.store(class, Ordering::Relaxed);
            class == 2
        }
        class => class == 2,
    }
}

fn lock_spins() -> u32 {
    if multicore() {
        LOCK_SPINS
    } else {
        0
    }
}

fn wait_spins() -> u32 {
    if multicore() {
        WAIT_SPINS
    } else {
        0
    }
}

/// A minimal spinlock-guarded list used for waiter registries.
struct SpinList<T> {
    lock: AtomicBool,
    items: UnsafeCell<Vec<T>>,
}

// SAFETY: access to `items` is serialized by the `lock` flag.
unsafe impl<T: Send> Send for SpinList<T> {}
unsafe impl<T: Send> Sync for SpinList<T> {}

impl<T> Default for SpinList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SpinList<T> {
    const fn new() -> Self {
        Self { lock: AtomicBool::new(false), items: UnsafeCell::new(Vec::new()) }
    }

    fn with<R>(&self, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        let mut spins = 0u32;
        while self
            .lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // The critical sections are a few instructions, so contention is
            // rare and brief — but if the holder lost its timeslice (or we
            // share one core with it), burning ours only delays the release.
            spins += 1;
            if spins > 64 {
                thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // SAFETY: the spinlock above gives exclusive access.
        let r = f(unsafe { &mut *self.items.get() });
        self.lock.store(false, Ordering::Release);
        r
    }
}

/// Spin-then-park mutual-exclusion lock; `lock` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    state: AtomicU32,
    parked: SpinList<Thread>,
    data: UnsafeCell<T>,
}

// SAFETY: the lock protocol serializes access to `data`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// RAII guard returned by [`Mutex::lock`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            state: AtomicU32::new(UNLOCKED),
            parked: SpinList::new(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking (spin, then park) until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if self
            .state
            .compare_exchange_weak(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return MutexGuard { mutex: self };
        }
        self.lock_slow();
        MutexGuard { mutex: self }
    }

    #[cold]
    fn lock_slow(&self) {
        for _ in 0..lock_spins() {
            if self.state.load(Ordering::Relaxed) == UNLOCKED
                && self
                    .state
                    .compare_exchange_weak(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
        }
        let mut yields = 0;
        loop {
            // Announce contention; a swap that finds UNLOCKED acquires the
            // lock (conservatively leaving it marked contended, which at
            // worst costs one extra unpark at the next unlock).
            if slow_path_acquired(self.state.swap(CONTENDED, Ordering::Acquire)) {
                return;
            }
            // Critical sections are sub-microsecond, so donating a
            // timeslice is almost always enough for the holder to finish;
            // parking is the backstop for a descheduled holder.
            if yields < LOCK_YIELDS {
                yields += 1;
                thread::yield_now();
                continue;
            }
            self.parked.with(|v| v.push(thread::current()));
            // Recheck after registering: an unlock that raced us may have
            // missed the registration. A stale registry entry only yields a
            // spurious unpark later, which every park loop tolerates.
            if slow_path_acquired(self.state.swap(CONTENDED, Ordering::Acquire)) {
                return;
            }
            thread::park_timeout(PARK_TIMEOUT);
        }
    }

    fn unlock(&self) {
        if release_needs_wake(self.state.swap(UNLOCKED, Ordering::Release)) {
            if let Some(t) = self.parked.with(Vec::pop) {
                t.unpark();
            }
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Best-effort: do not block the formatter on a held lock.
        match self.state.load(Ordering::Relaxed) {
            UNLOCKED => {
                let guard = self.lock();
                f.debug_tuple("Mutex").field(&&*guard).finish()
            }
            _ => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock exclusively.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

/// One registered condvar waiter.
struct Waiter {
    notified: AtomicBool,
    thread: Thread,
}

/// Per-thread cached waiter, so a blocking receive loop does not allocate
/// on every wait. Reused only when no registry or notifier still holds a
/// reference (`strong_count == 1`), which makes the flag reset safe.
fn current_waiter() -> Arc<Waiter> {
    thread_local! {
        static CACHED: std::cell::RefCell<Option<Arc<Waiter>>> =
            const { std::cell::RefCell::new(None) };
    }
    CACHED.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.as_ref() {
            Some(w) if Arc::strong_count(w) == 1 => {
                w.notified.store(false, Ordering::Relaxed);
                Arc::clone(w)
            }
            _ => {
                let w = Arc::new(Waiter {
                    notified: AtomicBool::new(false),
                    thread: thread::current(),
                });
                *slot = Some(Arc::clone(&w));
                w
            }
        }
    })
}

/// Condition variable operating on [`MutexGuard`] in place.
#[derive(Default)]
pub struct Condvar {
    waiters: SpinList<Arc<Waiter>>,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self { waiters: SpinList::new() }
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired before returning. Spurious wakeups are possible,
    /// so callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let waiter = current_waiter();
        self.waiters.with(|v| v.push(Arc::clone(&waiter)));
        // Release while registered: a notify between unlock and park sets
        // the flag (and possibly pre-loads our park token), so it cannot be
        // lost.
        guard.mutex.unlock();
        let max_spins = wait_spins();
        let mut spins = 0;
        let mut yields = 0;
        while !waiter.notified.load(Ordering::Acquire) {
            if spins < max_spins {
                spins += 1;
                std::hint::spin_loop();
            } else if yields < WAIT_YIELDS {
                yields += 1;
                thread::yield_now();
            } else {
                thread::park_timeout(PARK_TIMEOUT);
            }
        }
        // Re-acquire before returning so the guard's eventual drop unlocks
        // exactly once.
        if guard
            .mutex
            .state
            .compare_exchange_weak(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            guard.mutex.lock_slow();
        }
    }

    /// Like [`wait`](Self::wait) but with an upper bound on blocking time.
    ///
    /// Returns `true` when the wait ended because `timeout` elapsed (the
    /// lock is re-acquired either way). A notify that races the expiry is
    /// honored as a normal wakeup: the waiter deregisters itself and then
    /// re-checks its flag, so a consumed `notify_one` token is never lost.
    pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let waiter = current_waiter();
        self.waiters.with(|v| v.push(Arc::clone(&waiter)));
        guard.mutex.unlock();
        let max_spins = wait_spins();
        let mut spins = 0;
        let mut yields = 0;
        let mut timed_out = false;
        while !waiter.notified.load(Ordering::Acquire) {
            if spins < max_spins {
                spins += 1;
                // Amortize the clock read over the spin window; the deadline
                // only needs PARK_TIMEOUT-grained accuracy anyway.
                if spins % 256 == 0 && std::time::Instant::now() >= deadline {
                    timed_out = true;
                    break;
                }
                std::hint::spin_loop();
            } else {
                let now = std::time::Instant::now();
                if now >= deadline {
                    timed_out = true;
                    break;
                }
                if yields < WAIT_YIELDS {
                    yields += 1;
                    thread::yield_now();
                } else {
                    thread::park_timeout(PARK_TIMEOUT.min(deadline - now));
                }
            }
        }
        if timed_out {
            // Deregister so the registry holds no dangling reference (and the
            // thread-local waiter cache can be reused). A notifier that
            // already popped our entry set the flag; treat that as a wakeup.
            self.waiters.with(|v| v.retain(|w| !Arc::ptr_eq(w, &waiter)));
            if waiter.notified.load(Ordering::Acquire) {
                timed_out = false;
            }
        }
        if guard
            .mutex
            .state
            .compare_exchange_weak(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            guard.mutex.lock_slow();
        }
        timed_out
    }

    /// Wake a single waiting thread.
    pub fn notify_one(&self) {
        if let Some(w) = self.waiters.with(Vec::pop) {
            w.notified.store(true, Ordering::Release);
            w.thread.unpark();
        }
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        let drained = self.waiters.with(std::mem::take);
        for w in drained {
            w.notified.store(true, Ordering::Release);
            w.thread.unpark();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lock_excludes_and_counts() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 80_000);
    }

    #[test]
    fn condvar_rendezvous() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let consumed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pair = Arc::clone(&pair);
                let consumed = Arc::clone(&consumed);
                s.spawn(move || {
                    let (m, cv) = &*pair;
                    let mut g = m.lock();
                    while *g == 0 {
                        cv.wait(&mut g);
                    }
                    *g -= 1;
                    consumed.fetch_add(1, Ordering::SeqCst);
                });
            }
            let (m, cv) = &*pair;
            for _ in 0..4 {
                std::thread::sleep(Duration::from_millis(1));
                *m.lock() += 1;
                cv.notify_one();
            }
        });
        assert_eq!(consumed.load(Ordering::SeqCst), 4);
        assert_eq!(*pair.0.lock(), 0);
    }

    #[test]
    fn notify_all_releases_everyone() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let woke = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let pair = Arc::clone(&pair);
                let woke = Arc::clone(&woke);
                s.spawn(move || {
                    let (m, cv) = &*pair;
                    let mut g = m.lock();
                    while !*g {
                        cv.wait(&mut g);
                    }
                    woke.fetch_add(1, Ordering::SeqCst);
                });
            }
            std::thread::sleep(Duration::from_millis(10));
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        });
        assert_eq!(woke.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn notify_before_wait_is_not_lost_for_registered_waiter() {
        // A waiter that registered but has not parked yet must still see a
        // notify issued immediately after the mutex was released.
        for _ in 0..200 {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let h = std::thread::spawn(move || {
                let (m, cv) = &*pair2;
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            });
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
            h.join().unwrap();
        }
    }

    #[test]
    fn wait_timeout_expires_without_notify() {
        let pair = (Mutex::new(false), Condvar::new());
        let mut g = pair.0.lock();
        let start = std::time::Instant::now();
        let timed_out = pair.1.wait_timeout(&mut g, Duration::from_millis(30));
        assert!(timed_out);
        assert!(start.elapsed() >= Duration::from_millis(20));
        *g = true; // lock is re-held
    }

    #[test]
    fn wait_timeout_returns_early_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            let mut timed_out = false;
            while !*ready && !timed_out {
                timed_out = cv.wait_timeout(&mut ready, Duration::from_secs(10));
            }
            timed_out
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(!h.join().unwrap());
    }

    #[test]
    fn wait_timeout_deregisters_expired_waiter() {
        // After an expiry, the registry must not keep a stale entry: a later
        // notify_one must wake the *new* waiter, not burn its token on the
        // expired registration.
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        {
            let mut g = pair.0.lock();
            assert!(pair.1.wait_timeout(&mut g, Duration::from_millis(5)));
        }
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while *g == 0 {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = 1;
        cv.notify_one();
        h.join().unwrap();
    }

    #[test]
    fn guard_drop_unlocks() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn debug_does_not_deadlock_while_held() {
        let m = Mutex::new(3);
        let g = m.lock();
        let s = format!("{m:?}");
        assert!(s.contains("locked"));
        drop(g);
        assert!(format!("{m:?}").contains('3'));
    }
}
