//! Default lock backend: a `parking_lot`-shaped shim over `std::sync`.
//!
//! Provides `Mutex::lock()` returning a guard directly and
//! `Condvar::wait(&mut guard)` over the standard library primitives, with
//! poisoning ignored (see [`crate::sync`] for why that is sound here).

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is always `Some` except transiently inside
/// [`Condvar::wait`], which must move the std guard out and back.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // lint: allow(panic) — guard invariant: inner is present outside wait
        self.0.as_ref().expect("guard invariant: present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // lint: allow(panic) — guard invariant: inner is present outside wait
        self.0.as_mut().expect("guard invariant: present outside Condvar::wait")
    }
}

/// Condition variable operating on [`MutexGuard`] in place.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired before returning. Spurious wakeups are possible,
    /// so callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // lint: allow(panic) — guard invariant: inner is present outside wait
        let inner = guard.0.take().expect("guard invariant: present on entry to wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Like [`wait`](Self::wait) but with an upper bound on blocking time.
    ///
    /// Returns `true` when the wait ended because `timeout` elapsed (the
    /// lock is re-acquired either way). Spurious wakeups are possible, so
    /// callers loop on their predicate *and* recompute the remaining time.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        // lint: allow(panic) — guard invariant: inner is present outside wait
        let inner = guard.0.take().expect("guard invariant: present on entry to wait");
        let (inner, result) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        result.timed_out()
    }

    /// Wake a single waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_guard_deref() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wait_in_place() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn wait_timeout_expires_without_notify() {
        let pair = (Mutex::new(false), Condvar::new());
        let mut g = pair.0.lock();
        let start = std::time::Instant::now();
        let timed_out = pair.1.wait_timeout(&mut g, std::time::Duration::from_millis(30));
        assert!(timed_out);
        assert!(start.elapsed() >= std::time::Duration::from_millis(20));
        *g = true; // lock is re-held
    }

    #[test]
    fn wait_timeout_returns_early_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            let mut timed_out = false;
            while !*ready && !timed_out {
                timed_out = cv.wait_timeout(&mut ready, std::time::Duration::from_secs(10));
            }
            timed_out
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(!h.join().unwrap());
    }

    #[test]
    fn mutex_is_not_poisoned_by_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panicking holder
        assert_eq!(*m.lock(), 1);
    }
}
