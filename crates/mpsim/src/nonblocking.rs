//! Nonblocking point-to-point (`MPI_Isend` / `MPI_Irecv` / `MPI_Wait`).
//!
//! The blocking [`Communicator`] API is all the paper's algorithms need, but
//! pipelined algorithms (e.g. segmented chain broadcast) want a receive
//! posted *while* the previous segment is still being forwarded. The
//! [`NonBlocking`] extension trait provides exactly the post/wait pair; the
//! receive is posted by `(capacity, source, tag)` and the payload is
//! delivered into the caller's buffer at wait time, which keeps borrows
//! short without losing any overlap (both backends buffer internally).

use crate::comm::Communicator;
use crate::error::Result;
use crate::rank::{Rank, Tag};

/// Post/wait point-to-point operations. Every handle must be waited on;
/// dropping one without waiting loses the operation's completion (and, for
/// receives, the message).
pub trait NonBlocking: Communicator {
    /// In-flight send handle.
    type SendPending;
    /// In-flight receive handle.
    type RecvPending;

    /// Start a send; the payload is captured immediately (like an MPI
    /// buffered/eager send), so `buf` may be reused as soon as this returns.
    fn isend(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<Self::SendPending>;

    /// Post a receive for up to `capacity` bytes from `src` with `tag`.
    fn irecv(&self, capacity: usize, src: Rank, tag: Tag) -> Result<Self::RecvPending>;

    /// Complete a send.
    fn wait_send(&self, pending: Self::SendPending) -> Result<()>;

    /// Complete a receive, copying the payload into `buf` (which must be at
    /// least the posted capacity) and returning its length.
    fn wait_recv(&self, pending: Self::RecvPending, buf: &mut [u8]) -> Result<usize>;
}

/// Threaded backend: sends are already buffered (they complete at post
/// time); a posted receive just records the match key — MPI's
/// non-overtaking rule guarantees that waiting later picks exactly the
/// message that was next at post time, *provided* posted receives for the
/// same `(src, tag)` are waited in post order.
pub struct ThreadSendPending(());

/// Pending receive on the threaded backend.
pub struct ThreadRecvPending {
    src: Rank,
    tag: Tag,
    capacity: usize,
}

impl NonBlocking for crate::thread_comm::ThreadComm {
    type SendPending = ThreadSendPending;
    type RecvPending = ThreadRecvPending;

    fn isend(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<Self::SendPending> {
        self.send(buf, dest, tag)?;
        Ok(ThreadSendPending(()))
    }

    fn irecv(&self, capacity: usize, src: Rank, tag: Tag) -> Result<Self::RecvPending> {
        self.check_rank(src)?;
        Ok(ThreadRecvPending { src, tag, capacity })
    }

    fn wait_send(&self, _pending: Self::SendPending) -> Result<()> {
        Ok(())
    }

    fn wait_recv(&self, pending: Self::RecvPending, buf: &mut [u8]) -> Result<usize> {
        assert!(buf.len() >= pending.capacity, "wait_recv buffer smaller than the posted capacity");
        self.recv(&mut buf[..pending.capacity], pending.src, pending.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_comm::ThreadWorld;

    #[test]
    fn isend_completes_immediately_and_delivers() {
        let out = ThreadWorld::run(2, |comm| {
            if comm.rank() == 0 {
                let p = comm.isend(&[1, 2, 3], 1, Tag(0)).unwrap();
                comm.wait_send(p).unwrap();
                vec![]
            } else {
                let p = comm.irecv(3, 0, Tag(0)).unwrap();
                let mut buf = [0u8; 3];
                let n = comm.wait_recv(p, &mut buf).unwrap();
                buf[..n].to_vec()
            }
        });
        assert_eq!(out.results[1], vec![1, 2, 3]);
    }

    #[test]
    fn posted_receives_complete_in_post_order() {
        let out = ThreadWorld::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..4u8 {
                    comm.send(&[i], 1, Tag(7)).unwrap();
                }
                vec![]
            } else {
                let pendings: Vec<_> = (0..4).map(|_| comm.irecv(1, 0, Tag(7)).unwrap()).collect();
                let mut got = Vec::new();
                for p in pendings {
                    let mut b = [0u8; 1];
                    comm.wait_recv(p, &mut b).unwrap();
                    got.push(b[0]);
                }
                got
            }
        });
        assert_eq!(out.results[1], vec![0, 1, 2, 3]);
    }

    #[test]
    fn overlap_send_and_recv_through_posts() {
        // classic exchange without sendrecv: post both, then wait both
        let out = ThreadWorld::run(2, |comm| {
            let peer = 1 - comm.rank();
            let sp = comm.isend(&[comm.rank() as u8], peer, Tag(1)).unwrap();
            let rp = comm.irecv(1, peer, Tag(1)).unwrap();
            let mut b = [0u8; 1];
            comm.wait_recv(rp, &mut b).unwrap();
            comm.wait_send(sp).unwrap();
            b[0]
        });
        assert_eq!(out.results, vec![1, 0]);
    }
}
