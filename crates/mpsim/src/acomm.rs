//! Async mirror of the [`Communicator`] surface — the narrow waist between
//! collective algorithms and the *event-loop* executor.
//!
//! The collectives in `bcast-core` are written once as `async` cores against
//! [`AsyncCommunicator`]. On the cooperative single-threaded executor
//! ([`EventWorld`](crate::event_comm::EventWorld)) the futures genuinely
//! suspend; on the blocking backends ([`ThreadWorld`](crate::ThreadWorld),
//! `netsim::SimWorld`) the same cores run through the [`SyncComm`] bridge,
//! whose async methods complete on first poll because they forward to
//! blocking calls. [`complete_now`] drives such a never-pending future to
//! completion without any runtime, so the public blocking entry points keep
//! their exact historical signatures and behaviour.
//!
//! No external async runtime is involved anywhere: the only machinery is
//! `std::task` plus a no-op waker. See DESIGN.md §6 for why.

use std::future::Future;
use std::sync::{Arc, OnceLock};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::comm::{Communicator, IoSpan};
use crate::error::{CommError, Result};
use crate::nonblocking::NonBlocking;
use crate::pool::SharedBuf;
use crate::rank::{Rank, Tag};

/// Async counterpart of [`Communicator`]: identical contract (tag matching,
/// non-overtaking per `(source, tag)`, truncation, exited-peer detection),
/// with the blocking operations expressed as futures.
///
/// The trait is consumed only by this workspace's executors, all of which
/// are either single-threaded or drive the future on the calling thread, so
/// no `Send` bound is imposed on the returned futures.
///
/// Implementations may refine the `async fn` methods to plain functions
/// returning a concrete `impl Future` (RPITIT refinement). The event
/// executor does this for its receive family: `recv`, `recv_timeout` and
/// `sendrecv` return a single hand-rolled leaf future that matches, checks
/// truncation, copies and records traffic in one poll frame, instead of a
/// nest of compiler-generated state machines — at megascale the park/resume
/// walk through those frames is the hot path.
#[allow(async_fn_in_trait)]
pub trait AsyncCommunicator {
    /// This process's rank, in `0..size()`.
    fn rank(&self) -> Rank;

    /// Number of ranks in the world.
    fn size(&self) -> usize;

    /// Current time in nanoseconds on this backend's clock (virtual on the
    /// event executor, wall-clock elapsed on the threaded one).
    fn now_ns(&self) -> u64;

    /// Validate that `rank` names a member of this world.
    fn check_rank(&self, rank: Rank) -> Result<()> {
        if rank < self.size() {
            Ok(())
        } else {
            Err(CommError::InvalidRank { rank, size: self.size() })
        }
    }

    /// Tagged send of `buf` to `dest` (may complete eagerly).
    async fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()>;

    /// Tagged receive from `src` into `buf`; resolves to the payload length.
    async fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize>;

    /// Deadline-bounded receive; fails with [`CommError::Timeout`] if no
    /// matching message arrives within `timeout` on this backend's clock.
    async fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<usize>;

    /// Combined concurrent send+receive (MPI_Sendrecv). The default
    /// send-then-receive chain is correct only for eager backends;
    /// synchronous backends override it (see [`SyncComm`]).
    async fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.send(sendbuf, dest, sendtag).await?;
        self.recv(recvbuf, src, recvtag).await
    }

    /// Resolve once every rank in the world has entered the barrier.
    async fn barrier(&self) -> Result<()>;

    /// Gathering send of `spans` of `buf` as **one** envelope (see
    /// [`Communicator::send_vectored`] for the wire contract).
    async fn send_vectored(
        &self,
        buf: &[u8],
        spans: &[IoSpan],
        dest: Rank,
        tag: Tag,
    ) -> Result<()> {
        let total = crate::comm::validate_spans(buf.len(), spans)?;
        let mut tmp = Vec::with_capacity(total);
        for s in spans {
            tmp.extend_from_slice(&buf[s.range()]);
        }
        self.send(&tmp, dest, tag).await
    }

    /// Scattering receive of one envelope into `spans` of `buf` (see
    /// [`Communicator::recv_scattered`] for the wire contract).
    async fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        let total = crate::comm::validate_spans(buf.len(), spans)?;
        let mut tmp = vec![0u8; total];
        let n = self.recv(&mut tmp, src, tag).await?;
        Ok(crate::comm::scatter_spans(buf, spans, &tmp[..n]))
    }

    /// Combined concurrent vectored send + scattering receive over disjoint
    /// span lists of the same buffer (see
    /// [`Communicator::sendrecv_vectored`]).
    #[allow(clippy::too_many_arguments)]
    async fn sendrecv_vectored(
        &self,
        buf: &mut [u8],
        send_spans: &[IoSpan],
        dest: Rank,
        sendtag: Tag,
        recv_spans: &[IoSpan],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        crate::comm::validate_spans(buf.len(), send_spans)?;
        crate::comm::validate_spans(buf.len(), recv_spans)?;
        crate::comm::disjoint_span_lists(send_spans, recv_spans)?;
        self.send_vectored(buf, send_spans, dest, sendtag).await?;
        self.recv_scattered(buf, recv_spans, src, recvtag).await
    }

    /// Stage `data` into a pooled, shareable envelope payload — one counted
    /// copy (see [`Communicator::make_shared`]). Synchronous by design:
    /// staging never waits on any backend.
    fn make_shared(&self, data: &[u8]) -> SharedBuf {
        self.note_copy(data.len());
        SharedBuf::from(data.to_vec())
    }

    /// Record `bytes` of payload memcpy'd outside the communicator (see
    /// [`Communicator::note_copy`]).
    fn note_copy(&self, _bytes: usize) {}

    /// Zero-copy send of a refcount clone of `buf` (see
    /// [`Communicator::send_shared`]). The default falls back to copy
    /// semantics.
    async fn send_shared(&self, buf: &SharedBuf, dest: Rank, tag: Tag) -> Result<()> {
        self.send(buf, dest, tag).await
    }

    /// Fan out one shared payload to several destinations (see
    /// [`Communicator::send_shared_to`]).
    async fn send_shared_to(&self, dests: &[Rank], buf: &SharedBuf, tag: Tag) -> Result<()> {
        for &dest in dests {
            self.send_shared(buf, dest, tag).await?;
        }
        Ok(())
    }

    /// Owned receive of the arriving envelope (see
    /// [`Communicator::recv_owned`]). `capacity` bounds the acceptable
    /// message length exactly like a receive buffer's length.
    async fn recv_owned(&self, capacity: usize, src: Rank, tag: Tag) -> Result<SharedBuf> {
        let mut tmp = vec![0u8; capacity];
        let n = self.recv(&mut tmp, src, tag).await?;
        tmp.truncate(n);
        Ok(SharedBuf::from(tmp))
    }

    /// [`recv_owned`](AsyncCommunicator::recv_owned) bounded by a timeout —
    /// the owned twin of [`recv_timeout`](AsyncCommunicator::recv_timeout),
    /// which is what lets timeout-guarding decorators (the recovery guard)
    /// forward owned receives to a zero-copy backend without giving up their
    /// bounded-receive contract.
    async fn recv_owned_timeout(
        &self,
        capacity: usize,
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<SharedBuf> {
        let mut tmp = vec![0u8; capacity];
        let n = self.recv_timeout(&mut tmp, src, tag, timeout).await?;
        tmp.truncate(n);
        Ok(SharedBuf::from(tmp))
    }

    /// Combined concurrent zero-copy exchange (see
    /// [`Communicator::sendrecv_shared`]).
    #[allow(clippy::too_many_arguments)]
    async fn sendrecv_shared(
        &self,
        sendbuf: &SharedBuf,
        dest: Rank,
        sendtag: Tag,
        recv_capacity: usize,
        src: Rank,
        recvtag: Tag,
    ) -> Result<SharedBuf> {
        let mut tmp = vec![0u8; recv_capacity];
        let n = self.sendrecv(sendbuf, dest, sendtag, &mut tmp, src, recvtag).await?;
        tmp.truncate(n);
        Ok(SharedBuf::from(tmp))
    }
}

/// Async counterpart of [`NonBlocking`]: the post half stays synchronous
/// (posting never waits on any backend), only the wait half is a future.
#[allow(async_fn_in_trait)]
pub trait AsyncNonBlocking: AsyncCommunicator {
    /// In-flight send handle.
    type SendPending;
    /// In-flight receive handle.
    type RecvPending;

    /// Start a send; the payload is captured immediately.
    fn isend(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<Self::SendPending>;

    /// Post a receive for up to `capacity` bytes from `src` with `tag`.
    fn irecv(&self, capacity: usize, src: Rank, tag: Tag) -> Result<Self::RecvPending>;

    /// Complete a send.
    async fn wait_send(&self, pending: Self::SendPending) -> Result<()>;

    /// Complete a receive, copying the payload into `buf` (at least the
    /// posted capacity long) and resolving to its length.
    async fn wait_recv(&self, pending: Self::RecvPending, buf: &mut [u8]) -> Result<usize>;
}

/// Bridge from the blocking [`Communicator`] world into the async trait:
/// wraps a borrowed sync communicator and forwards every async method to the
/// corresponding blocking call, which means every future it returns is ready
/// on its first poll. Drive such futures with [`complete_now`].
///
/// Crucially, `sendrecv`/`sendrecv_vectored` forward to the sync trait's own
/// implementations (not the async defaults), so rendezvous backends keep
/// their genuinely concurrent exchange.
pub struct SyncComm<'a, C: ?Sized>(&'a C);

impl<'a, C: ?Sized> SyncComm<'a, C> {
    /// Wrap a borrowed blocking communicator.
    pub fn new(inner: &'a C) -> Self {
        Self(inner)
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &'a C {
        self.0
    }
}

impl<C: Communicator + ?Sized> AsyncCommunicator for SyncComm<'_, C> {
    fn rank(&self) -> Rank {
        self.0.rank()
    }

    fn size(&self) -> usize {
        self.0.size()
    }

    fn now_ns(&self) -> u64 {
        self.0.now_ns()
    }

    fn check_rank(&self, rank: Rank) -> Result<()> {
        self.0.check_rank(rank)
    }

    async fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.0.send(buf, dest, tag)
    }

    async fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.0.recv(buf, src, tag)
    }

    async fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<usize> {
        self.0.recv_timeout(buf, src, tag, timeout)
    }

    async fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.0.sendrecv(sendbuf, dest, sendtag, recvbuf, src, recvtag)
    }

    async fn barrier(&self) -> Result<()> {
        self.0.barrier()
    }

    async fn send_vectored(
        &self,
        buf: &[u8],
        spans: &[IoSpan],
        dest: Rank,
        tag: Tag,
    ) -> Result<()> {
        self.0.send_vectored(buf, spans, dest, tag)
    }

    async fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        self.0.recv_scattered(buf, spans, src, tag)
    }

    async fn sendrecv_vectored(
        &self,
        buf: &mut [u8],
        send_spans: &[IoSpan],
        dest: Rank,
        sendtag: Tag,
        recv_spans: &[IoSpan],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.0.sendrecv_vectored(buf, send_spans, dest, sendtag, recv_spans, src, recvtag)
    }

    fn make_shared(&self, data: &[u8]) -> SharedBuf {
        self.0.make_shared(data)
    }

    fn note_copy(&self, bytes: usize) {
        self.0.note_copy(bytes);
    }

    async fn send_shared(&self, buf: &SharedBuf, dest: Rank, tag: Tag) -> Result<()> {
        self.0.send_shared(buf, dest, tag)
    }

    async fn send_shared_to(&self, dests: &[Rank], buf: &SharedBuf, tag: Tag) -> Result<()> {
        self.0.send_shared_to(dests, buf, tag)
    }

    async fn recv_owned(&self, capacity: usize, src: Rank, tag: Tag) -> Result<SharedBuf> {
        self.0.recv_owned(capacity, src, tag)
    }

    async fn sendrecv_shared(
        &self,
        sendbuf: &SharedBuf,
        dest: Rank,
        sendtag: Tag,
        recv_capacity: usize,
        src: Rank,
        recvtag: Tag,
    ) -> Result<SharedBuf> {
        self.0.sendrecv_shared(sendbuf, dest, sendtag, recv_capacity, src, recvtag)
    }
}

impl<C: NonBlocking + ?Sized> AsyncNonBlocking for SyncComm<'_, C> {
    type SendPending = C::SendPending;
    type RecvPending = C::RecvPending;

    fn isend(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<Self::SendPending> {
        self.0.isend(buf, dest, tag)
    }

    fn irecv(&self, capacity: usize, src: Rank, tag: Tag) -> Result<Self::RecvPending> {
        self.0.irecv(capacity, src, tag)
    }

    async fn wait_send(&self, pending: Self::SendPending) -> Result<()> {
        self.0.wait_send(pending)
    }

    async fn wait_recv(&self, pending: Self::RecvPending, buf: &mut [u8]) -> Result<usize> {
        self.0.wait_recv(pending, buf)
    }
}

struct NoopWake;

impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
    fn wake_by_ref(self: &Arc<Self>) {}
}

/// A waker that does nothing, for polling futures that never park
/// (`Waker::noop` needs a newer toolchain than this workspace pins).
fn noop_waker() -> &'static Waker {
    static NOOP: OnceLock<Waker> = OnceLock::new();
    NOOP.get_or_init(|| Waker::from(Arc::new(NoopWake)))
}

/// Drive a future that completes without ever suspending — the composition
/// of an async collective core with the [`SyncComm`] bridge, whose await
/// points all resolve on first poll.
///
/// # Panics
///
/// Panics if the future returns `Pending`, which would mean a genuinely
/// asynchronous future was driven without an executor — a wiring bug, not a
/// runtime condition.
pub fn complete_now<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let mut cx = Context::from_waker(noop_waker());
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(out) => out,
        // lint: allow(panic) — a parked future on a blocking backend is a
        // wiring bug; there is no executor to ever resume it.
        Poll::Pending => panic!("complete_now: future suspended on a blocking backend"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_comm::ThreadWorld;

    #[test]
    fn complete_now_drives_ready_chains() {
        let v = complete_now(async { 1 + 2 });
        assert_eq!(v, 3);
        let v = complete_now(async {
            let a = async { 10 }.await;
            let b = async { 32 }.await;
            a + b
        });
        assert_eq!(v, 42);
    }

    #[test]
    #[should_panic(expected = "suspended")]
    fn complete_now_rejects_parking_futures() {
        // A future that is pending forever.
        struct Never;
        impl Future for Never {
            type Output = ();
            fn poll(self: std::pin::Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        complete_now(Never);
    }

    #[test]
    fn bridge_roundtrip_on_threads() {
        let out = ThreadWorld::run(2, |comm| {
            let acomm = SyncComm::new(comm);
            complete_now(async {
                assert_eq!(acomm.size(), 2);
                let mut buf = [0u8; 4];
                if acomm.rank() == 0 {
                    acomm.send(&[1, 2, 3, 4], 1, Tag(1)).await.unwrap();
                    acomm.recv(&mut buf, 1, Tag(2)).await.unwrap();
                } else {
                    acomm.recv(&mut buf, 0, Tag(1)).await.unwrap();
                    acomm.send(&buf, 0, Tag(2)).await.unwrap();
                }
                buf
            })
        });
        assert_eq!(out.results[0], [1, 2, 3, 4]);
        assert_eq!(out.results[1], [1, 2, 3, 4]);
        assert_eq!(out.traffic.total_msgs(), 2);
    }

    #[test]
    fn bridge_forwards_vectored_and_nonblocking() {
        let out = ThreadWorld::run(2, |comm| {
            let acomm = SyncComm::new(comm);
            complete_now(async {
                if acomm.rank() == 0 {
                    let src: Vec<u8> = (0..16).collect();
                    let spans = [IoSpan::new(12, 4), IoSpan::new(2, 3)];
                    acomm.send_vectored(&src, &spans, 1, Tag(0)).await.unwrap();
                    let p = acomm.isend(&[9], 1, Tag(1)).unwrap();
                    acomm.wait_send(p).await.unwrap();
                    vec![]
                } else {
                    let mut dst = [0u8; 10];
                    let spans = [IoSpan::new(0, 4), IoSpan::new(6, 3)];
                    let n = acomm.recv_scattered(&mut dst, &spans, 0, Tag(0)).await.unwrap();
                    assert_eq!(n, 7);
                    let p = acomm.irecv(1, 0, Tag(1)).unwrap();
                    let mut one = [0u8; 1];
                    acomm.wait_recv(p, &mut one).await.unwrap();
                    assert_eq!(one[0], 9);
                    dst.to_vec()
                }
            })
        });
        assert_eq!(out.results[1][..4], [12, 13, 14, 15]);
        // one vectored envelope (2 msgs) + one plain send
        assert_eq!(out.traffic.total_msgs(), 3);
        assert_eq!(out.traffic.total_envelopes(), 2);
    }
}
