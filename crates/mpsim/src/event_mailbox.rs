//! Dense per-source mailbox lanes for the event reactor.
//!
//! The first event executor kept one `HashMap<(Rank, Tag), VecDeque>` per
//! destination. Every eager send and every receive poll paid a SipHash of
//! the `(source, tag)` key — at P = 4096 that is ~16.8M hashed lookups per
//! sweep, and it was the single largest line in the hot-path profile.
//!
//! [`LaneMailbox`] replaces the map with indexed lanes:
//!
//! * **Radix-paged source index.** A dense `Vec<Lane>` per destination
//!   would be Θ(P²) memory across the world (6+ GB at P = 16384), but a
//!   flat `HashMap` is what we are removing. Instead, source ranks index a
//!   two-level radix: `pages[src >> 8][src & 255]` holds the lane's slot in
//!   a compact arena, and a 256-entry page is allocated only when some
//!   source first sends here. Collectives touch O(log P) or O(1) peers per
//!   destination, so the world's whole index stays tens of MB at P = 16384
//!   while lookups stay two dependent loads — no hashing, no probing.
//! * **Inline tag buckets.** Each lane holds up to [`INLINE_TAGS`] distinct
//!   tags in a linear-scanned inline array — every built-in collective uses
//!   at most a few tags per (source, destination) pair, so the scan is 1–2
//!   comparisons and the spill path below never runs (asserted by the
//!   megascale sweeps via the `mailbox_spills` reactor counter).
//! * **Spill map for wild tags.** Protocol tag spaces (`ReliableComm`
//!   derives per-message tags from a `u32` base) can exceed the inline
//!   buckets; those envelopes fall back to a boxed `HashMap` keyed by tag
//!   only. The fallback preserves exact per-`(source, tag)` FIFO semantics
//!   and is counted, never silent. This is the one sanctioned `HashMap` on
//!   the event path — the repolint `event-mailbox-hashmap` rule flags any
//!   other.
//!
//! Per-`(source, tag)` FIFO (MPI's non-overtaking rule) is inherited from
//! the per-bucket `VecDeque`s; nothing about matching semantics changes,
//! only the cost of finding the queue.

// lint: allow(mailbox-spill) — the spill fallback below is the sanctioned use.
use std::collections::{HashMap, VecDeque};

use crate::mailbox::Envelope;
use crate::rank::{Rank, Tag};

/// Distinct tags a lane tracks inline before spilling; built-in collectives
/// use ≤ 3 per (source, destination) pair (scatter, allgather, coalesced).
pub const INLINE_TAGS: usize = 4;

/// Where an envelope (or a lookup) for `tag` goes within a lane, given the
/// tags currently owning inline buckets (in first-seen order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketRoute {
    /// `tag` already owns inline bucket `i`.
    Existing(usize),
    /// `tag` is new and a free inline bucket remains: claim the next one
    /// (pushes only; a *pop* routed here finds nothing queued).
    NewInline,
    /// Every inline bucket owns some other tag: the wild-tag spill map.
    Spill,
}

/// The lane's bucket-routing decision, shared by [`LaneMailbox::push`] and
/// [`LaneMailbox::pop`] below and by schedcheck's `LaneMailboxModel`, which
/// explores push/pop interleavings over this exact predicate and checks the
/// spill counter accounts for every envelope the route sends to the spill
/// map (its mutation knobs — drop wild envelopes, skip the count — are
/// caught by the explorer as a deadlock / invariant violation).
#[must_use]
pub fn bucket_route(tags_in_use: &[u32], tag: u32) -> BucketRoute {
    for (i, t) in tags_in_use.iter().enumerate() {
        if *t == tag {
            return BucketRoute::Existing(i);
        }
    }
    if tags_in_use.len() < INLINE_TAGS {
        BucketRoute::NewInline
    } else {
        BucketRoute::Spill
    }
}

/// Radix page size for the source index: 8 bits per level.
const PAGE_BITS: usize = 8;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
/// Vacant marker in radix pages.
const NIL: u32 = u32::MAX;

/// One inline FIFO for a single tag within a lane.
#[derive(Debug, Default)]
struct TagBucket {
    tag: u32,
    queue: VecDeque<Envelope>,
}

/// All queued envelopes from one source rank to this destination.
#[derive(Debug)]
struct Lane {
    inline: [TagBucket; INLINE_TAGS],
    /// Buckets of `inline` in use; buckets fill in first-seen-tag order and
    /// a drained bucket keeps its tag, so membership never needs a sentinel
    /// tag value (the full `u32` tag space remains usable).
    used: u8,
    /// Wild-tag fallback; see module docs. Boxed on purpose: the map is
    /// absent on every collective path, and the indirection keeps each
    /// `Lane` one pointer wider instead of `size_of::<HashMap>()` wider —
    /// lanes are the dense arena the hot loop walks.
    #[allow(clippy::box_collection)]
    spill: Option<Box<HashMap<u32, VecDeque<Envelope>>>>, // lint: allow(mailbox-spill)
}

impl Lane {
    fn new() -> Self {
        Lane { inline: Default::default(), used: 0, spill: None }
    }
}

/// One destination rank's mailbox: envelopes indexed by source lane, then
/// tag bucket. See module docs for the shape and its cost model.
#[derive(Debug)]
pub struct LaneMailbox {
    /// `pages[src >> PAGE_BITS][src & (PAGE_SIZE-1)]` → index into `lanes`,
    /// or `NIL`. Boxed pages so an untouched 256-source region costs 8 bytes.
    pages: Vec<Option<Box<[u32; PAGE_SIZE]>>>,
    lanes: Vec<Lane>,
    /// Envelopes routed through a spill map instead of an inline bucket.
    spills: u64,
}

impl LaneMailbox {
    /// An empty mailbox for a world of `size` ranks.
    pub fn new(size: usize) -> Self {
        LaneMailbox { pages: vec![None; size.div_ceil(PAGE_SIZE)], lanes: Vec::new(), spills: 0 }
    }

    /// Envelopes that had to take the spill path (0 for every built-in
    /// collective); feeds the world's `mailbox_spills` reactor counter.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Queue one envelope from `src` under `tag` (FIFO per `(src, tag)`).
    pub fn push(&mut self, src: Rank, tag: Tag, env: Envelope) {
        let lane_idx = self.lane_for(src);
        let lane = &mut self.lanes[lane_idx];
        let used = lane.used as usize;
        let tags: [u32; INLINE_TAGS] = std::array::from_fn(|i| lane.inline[i].tag);
        match bucket_route(&tags[..used], tag.0) {
            BucketRoute::Existing(i) => lane.inline[i].queue.push_back(env),
            BucketRoute::NewInline => {
                lane.inline[used].tag = tag.0;
                lane.inline[used].queue.push_back(env);
                lane.used = (used + 1) as u8;
            }
            BucketRoute::Spill => {
                self.spills += 1;
                // lint: allow(mailbox-spill) — sanctioned wild-tag fallback.
                lane.spill
                    .get_or_insert_with(Default::default)
                    .entry(tag.0)
                    .or_default()
                    .push_back(env);
            }
        }
    }

    /// Dequeue the oldest envelope from `src` under `tag`, if any. Never
    /// allocates: a receive polled before any matching send reads only the
    /// radix index and leaves no structure behind.
    pub fn pop(&mut self, src: Rank, tag: Tag) -> Option<Envelope> {
        let page = self.pages[src >> PAGE_BITS].as_ref()?;
        let lane_idx = page[src & (PAGE_SIZE - 1)];
        if lane_idx == NIL {
            return None;
        }
        let lane = &mut self.lanes[lane_idx as usize];
        let used = lane.used as usize;
        let tags: [u32; INLINE_TAGS] = std::array::from_fn(|i| lane.inline[i].tag);
        match bucket_route(&tags[..used], tag.0) {
            BucketRoute::Existing(i) => lane.inline[i].queue.pop_front(),
            // NewInline on a pop means the tag was never pushed inline; only
            // the spill map could hold it (and then only if `used` is full,
            // so this arm also finds nothing — which is correct).
            BucketRoute::NewInline | BucketRoute::Spill => {
                lane.spill.as_mut()?.get_mut(&tag.0)?.pop_front()
            }
        }
    }

    /// Lane index for `src`, creating the page and lane on first use.
    fn lane_for(&mut self, src: Rank) -> usize {
        let page = self.pages[src >> PAGE_BITS].get_or_insert_with(|| Box::new([NIL; PAGE_SIZE]));
        let slot = &mut page[src & (PAGE_SIZE - 1)];
        if *slot == NIL {
            *slot = self.lanes.len() as u32;
            self.lanes.push(Lane::new());
        }
        *slot as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::BufferPool;

    fn env(pool: &std::sync::Arc<BufferPool>, src: Rank, byte: u8) -> Envelope {
        Envelope { src, data: pool.rent_copy(&[byte]).into() }
    }

    #[test]
    fn bucket_route_decisions() {
        assert_eq!(bucket_route(&[], 7), BucketRoute::NewInline);
        assert_eq!(bucket_route(&[7, 9], 9), BucketRoute::Existing(1));
        assert_eq!(bucket_route(&[1, 2, 3], 4), BucketRoute::NewInline);
        assert_eq!(bucket_route(&[1, 2, 3, 4], 5), BucketRoute::Spill);
        assert_eq!(bucket_route(&[1, 2, 3, 4], 4), BucketRoute::Existing(3));
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let pool = BufferPool::new();
        let mut mb = LaneMailbox::new(8);
        mb.push(3, Tag(1), env(&pool, 3, 10));
        mb.push(3, Tag(1), env(&pool, 3, 11));
        mb.push(3, Tag(2), env(&pool, 3, 20));
        mb.push(5, Tag(1), env(&pool, 5, 50));
        assert_eq!(mb.pop(3, Tag(1)).unwrap().data[0], 10);
        assert_eq!(mb.pop(3, Tag(2)).unwrap().data[0], 20);
        assert_eq!(mb.pop(3, Tag(1)).unwrap().data[0], 11);
        assert_eq!(mb.pop(5, Tag(1)).unwrap().data[0], 50);
        assert!(mb.pop(3, Tag(1)).is_none());
        assert_eq!(mb.spills(), 0);
    }

    #[test]
    fn pop_on_untouched_source_allocates_nothing() {
        let mut mb = LaneMailbox::new(1024);
        assert!(mb.pop(700, Tag(0)).is_none());
        assert!(mb.pages.iter().all(Option::is_none), "pop must not build pages");
        assert!(mb.lanes.is_empty(), "pop must not build lanes");
    }

    #[test]
    fn wild_tags_spill_but_keep_fifo() {
        let pool = BufferPool::new();
        let mut mb = LaneMailbox::new(4);
        // INLINE_TAGS distinct tags fit inline; two more spill.
        for t in 0..(INLINE_TAGS as u32 + 2) {
            mb.push(1, Tag(t), env(&pool, 1, t as u8));
            mb.push(1, Tag(t), env(&pool, 1, 100 + t as u8));
        }
        assert_eq!(mb.spills(), 4, "two wild tags × two envelopes each");
        for t in 0..(INLINE_TAGS as u32 + 2) {
            assert_eq!(mb.pop(1, Tag(t)).unwrap().data[0], t as u8);
            assert_eq!(mb.pop(1, Tag(t)).unwrap().data[0], 100 + t as u8);
            assert!(mb.pop(1, Tag(t)).is_none());
        }
    }

    #[test]
    fn drained_inline_bucket_is_reused_for_its_tag() {
        let pool = BufferPool::new();
        let mut mb = LaneMailbox::new(2);
        for round in 0..100u32 {
            mb.push(0, Tag(7), env(&pool, 0, round as u8));
            assert_eq!(mb.pop(0, Tag(7)).unwrap().data[0], round as u8);
        }
        assert_eq!(mb.spills(), 0);
        assert_eq!(mb.lanes[0].used, 1, "one tag must occupy one bucket forever");
    }

    #[test]
    fn high_source_ranks_use_late_pages() {
        let pool = BufferPool::new();
        let mut mb = LaneMailbox::new(16384);
        mb.push(16383, Tag(0), env(&pool, 16383, 9));
        assert_eq!(mb.pop(16383, Tag(0)).unwrap().data[0], 9);
        let touched = mb.pages.iter().filter(|p| p.is_some()).count();
        assert_eq!(touched, 1, "only the sender's page may be materialized");
    }
}
