//! Size-classed, thread-safe buffer pool backing the zero-allocation fabric.
//!
//! Every message the threaded backend moves used to pay one heap allocation
//! (`buf.to_vec().into_boxed_slice()`) on the send side and one deallocation
//! after copy-out on the receive side. In a steady-state collective the same
//! handful of buffer sizes cycle between sender and receiver, so the
//! allocator traffic is pure overhead — and at small message sizes it
//! dominates the copy the paper's byte-count argument cares about.
//!
//! [`BufferPool`] keeps one freelist per power-of-two size class. Renting
//! ([`BufferPool::rent`]) pops a recycled buffer when one is available and
//! allocates otherwise; dropping the returned [`PooledBuf`] pushes the
//! buffer back onto its class freelist. Counters ([`PoolStats`]) record
//! hits, misses (= actual heap allocations) and outstanding rentals, so
//! benches and tests can *prove* the steady-state zero-allocation claim.
//!
//! The pool is deliberately not global: each `ThreadWorld`/`Fabric` owns one
//! `Arc<BufferPool>`, so worlds cannot poison each other's statistics and
//! all memory is released when the world's last handle drops.

use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::Mutex;

/// Smallest size class: `1 << MIN_SHIFT` bytes (64 B).
const MIN_SHIFT: u32 = 6;
/// Largest size class: `1 << MAX_SHIFT` bytes (64 MiB). Larger rentals are
/// served by plain allocation and freed on drop (never pooled).
const MAX_SHIFT: u32 = 26;
/// Number of freelists.
const NUM_CLASSES: usize = (MAX_SHIFT - MIN_SHIFT + 1) as usize;
/// Per-class freelist cap: beyond this, returned buffers are freed instead
/// of pooled, bounding worst-case held memory.
const MAX_PER_CLASS: usize = 64;

/// Snapshot of a pool's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Rentals served from a freelist (no heap allocation).
    pub hits: u64,
    /// Rentals that had to allocate (freelist empty, oversized, or zero-len).
    pub misses: u64,
    /// Buffers returned to a freelist so far.
    pub returned: u64,
    /// Buffers currently rented out (rents minus returns/frees).
    pub outstanding: u64,
}

impl PoolStats {
    /// Fraction of rentals served without allocating, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe buffer pool with power-of-two size classes.
#[derive(Default)]
pub struct BufferPool {
    classes: [Mutex<Vec<Box<[u8]>>>; NUM_CLASSES],
    hits: AtomicU64,
    misses: AtomicU64,
    returned: AtomicU64,
    dropped: AtomicU64,
}

/// Number of size classes (for per-class caches layered over the pool).
pub(crate) const POOL_CLASSES: usize = NUM_CLASSES;

/// Size class index for `len`, or `None` when the rental bypasses the pool
/// (zero-length or beyond the largest class).
pub(crate) fn class_of(len: usize) -> Option<usize> {
    if len == 0 || len > (1usize << MAX_SHIFT) {
        return None;
    }
    let shift = len.next_power_of_two().trailing_zeros().max(MIN_SHIFT);
    Some((shift - MIN_SHIFT) as usize)
}

impl BufferPool {
    /// Create an empty pool.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Rent a zero-initialized buffer of logical length `len`.
    ///
    /// The backing capacity is `len` rounded up to its size class, so a
    /// recycled buffer serves every rental of the same class. The returned
    /// handle dereferences to exactly `len` bytes.
    pub fn rent(self: &Arc<Self>, len: usize) -> PooledBuf {
        self.rent_raw(len, true)
    }

    fn rent_raw(self: &Arc<Self>, len: usize, zero: bool) -> PooledBuf {
        let Some(class) = class_of(len) else {
            // Oversized or empty: plain allocation, freed on drop.
            self.misses.fetch_add(1, Ordering::Relaxed);
            return PooledBuf {
                data: ManuallyDrop::new(vec![0u8; len].into_boxed_slice()),
                len,
                pool: Some(Arc::clone(self)),
                class: None,
            };
        };
        let recycled = self.classes[class].lock().pop();
        let data = match recycled {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Only the logical prefix is handed out; zero it so a rental
                // never observes a previous message's bytes. `rent_copy`
                // skips this — its copy overwrites the whole prefix.
                if zero {
                    buf[..len].fill(0);
                }
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vec![0u8; 1usize << (class as u32 + MIN_SHIFT)].into_boxed_slice()
            }
        };
        PooledBuf {
            data: ManuallyDrop::new(data),
            len,
            pool: Some(Arc::clone(self)),
            class: Some(class),
        }
    }

    /// Rent a buffer and copy `src` into it — the send-path one-liner.
    pub fn rent_copy(self: &Arc<Self>, src: &[u8]) -> PooledBuf {
        let mut buf = self.rent_raw(src.len(), false);
        buf.copy_from_slice(src);
        buf
    }

    /// Rent a buffer of logical length `total` and fill it by concatenating
    /// `parts` — the vectored-send gather, done in one pass straight into the
    /// envelope with no intermediate `Vec` assembly.
    ///
    /// The parts must sum to exactly `total`: the rental skips zeroing, so a
    /// shortfall would leak a previous message's bytes (asserted).
    pub fn rent_gather<'a, I>(self: &Arc<Self>, total: usize, parts: I) -> PooledBuf
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut buf = self.rent_raw(total, false);
        let mut filled = 0;
        for part in parts {
            buf[filled..filled + part.len()].copy_from_slice(part);
            filled += part.len();
        }
        assert!(filled == total, "rent_gather: parts sum to {filled}, expected {total}");
        buf
    }

    /// Current counter values.
    pub fn stats(&self) -> PoolStats {
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let returned = self.returned.load(Ordering::Relaxed);
        let dropped = self.dropped.load(Ordering::Relaxed);
        PoolStats {
            hits,
            misses,
            returned,
            outstanding: (hits + misses).saturating_sub(returned + dropped),
        }
    }

    /// Buffers currently sitting on freelists (diagnostics).
    pub fn idle_buffers(&self) -> usize {
        self.classes.iter().map(|c| c.lock().len()).sum()
    }

    fn recycle(&self, data: Box<[u8]>, class: Option<usize>) {
        match class {
            Some(class) => {
                let mut list = self.classes[class].lock();
                if list.len() < MAX_PER_CLASS {
                    list.push(data);
                    drop(list);
                    self.returned.fetch_add(1, Ordering::Relaxed);
                } else {
                    drop(list);
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// RAII handle to a rented (or standalone) buffer.
///
/// Dereferences to its logical `len` bytes. Dropping a pooled handle returns
/// the backing buffer to its freelist; handles created from raw storage via
/// [`From`] simply free it, which keeps call sites (tests, the simulator's
/// trace tooling) free to construct envelopes without a pool.
pub struct PooledBuf {
    data: ManuallyDrop<Box<[u8]>>,
    len: usize,
    pool: Option<Arc<BufferPool>>,
    class: Option<usize>,
}

impl PooledBuf {
    /// Logical length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Size class of the backing buffer, when pooled.
    pub(crate) fn class(&self) -> Option<usize> {
        self.class
    }

    /// Re-point the handle at logical length `len` without touching the
    /// pool — the recycle fast path for single-threaded executors that
    /// cache whole handles. The caller must pick a handle of `len`'s own
    /// size class (the backing capacity is the class size) and must
    /// overwrite all `len` bytes: no zeroing happens here.
    pub(crate) fn reset_len(&mut self, len: usize) {
        debug_assert_eq!(class_of(len), self.class, "reset_len across size classes");
        self.len = len;
    }

    /// True when the handle holds no payload bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[..self.len]
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[..self.len]
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.len)
            .field("pooled", &self.class.is_some())
            .finish()
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        // SAFETY: `data` is never touched again after this take.
        let data = unsafe { ManuallyDrop::take(&mut self.data) };
        match &self.pool {
            Some(pool) => pool.recycle(data, self.class),
            None => drop(data),
        }
    }
}

impl From<Box<[u8]>> for PooledBuf {
    fn from(data: Box<[u8]>) -> Self {
        let len = data.len();
        PooledBuf { data: ManuallyDrop::new(data), len, pool: None, class: None }
    }
}

impl From<Vec<u8>> for PooledBuf {
    fn from(data: Vec<u8>) -> Self {
        data.into_boxed_slice().into()
    }
}

/// Immutable, refcounted view of a [`PooledBuf`] — the zero-copy envelope
/// payload.
///
/// Cloning a `SharedBuf` bumps a refcount instead of copying bytes, so one
/// rented buffer can sit in many mailboxes at once (a broadcast fan-out is
/// `children` clones of the same rental). The backing buffer returns to its
/// pool when the **last** clone drops, exactly like a uniquely-owned
/// `PooledBuf`. [`slice`](SharedBuf::slice) carves shared sub-views (scatter
/// chunks of one root buffer) that keep the whole rental alive.
///
/// The view is immutable by construction — no `DerefMut` — which is what
/// makes handing the same bytes to several receivers sound.
#[derive(Clone)]
pub struct SharedBuf {
    inner: Arc<PooledBuf>,
    off: usize,
    len: usize,
}

impl SharedBuf {
    /// Wrap a uniquely-owned buffer into a shareable view (no copy).
    pub fn new(buf: PooledBuf) -> Self {
        let len = buf.len();
        SharedBuf { inner: Arc::new(buf), off: 0, len }
    }

    /// Logical length of this view in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view holds no payload bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many live views (including this one) share the backing buffer.
    pub fn shares(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// A shared sub-view of `range` (relative to this view). The sub-view
    /// holds the whole backing rental alive; no bytes move.
    pub fn slice(&self, range: std::ops::Range<usize>) -> SharedBuf {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds of SharedBuf of len {}",
            self.len
        );
        SharedBuf {
            inner: Arc::clone(&self.inner),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }

    /// Recover unique ownership of the backing buffer, if this is the last
    /// view and it covers the whole rental — the handle-cache fast path of
    /// the event executor. Otherwise the view is returned unchanged.
    pub(crate) fn try_unique(self) -> std::result::Result<PooledBuf, SharedBuf> {
        if self.off == 0 && Arc::strong_count(&self.inner) == 1 {
            let full = self.len == self.inner.len();
            match Arc::try_unwrap(self.inner) {
                Ok(buf) if full => Ok(buf),
                Ok(buf) => Err(SharedBuf { inner: Arc::new(buf), off: self.off, len: self.len }),
                Err(inner) => Err(SharedBuf { inner, off: self.off, len: self.len }),
            }
        } else {
            Err(self)
        }
    }
}

impl std::ops::Deref for SharedBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner[self.off..self.off + self.len]
    }
}

impl std::fmt::Debug for SharedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBuf")
            .field("len", &self.len)
            .field("off", &self.off)
            .field("shares", &self.shares())
            .finish()
    }
}

impl From<PooledBuf> for SharedBuf {
    fn from(buf: PooledBuf) -> Self {
        SharedBuf::new(buf)
    }
}

impl From<Vec<u8>> for SharedBuf {
    fn from(data: Vec<u8>) -> Self {
        SharedBuf::new(PooledBuf::from(data))
    }
}

/// An envelope payload: uniquely owned (the classic copy path, no refcount
/// overhead) or shared (a zero-copy fan-out clone).
///
/// Dereferences to its bytes either way, so receive paths that only *read*
/// the payload do not care which variant arrived.
#[derive(Debug)]
pub enum Payload {
    /// Uniquely-owned rental — mutable-capable, stashable in handle caches.
    Unique(PooledBuf),
    /// Refcounted view — possibly aliased by the sender and other receivers.
    Shared(SharedBuf),
}

impl Payload {
    /// Logical length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        match self {
            Payload::Unique(b) => b.len(),
            Payload::Shared(s) => s.len(),
        }
    }

    /// True when the payload holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convert into a shared view, without copying. A unique payload pays
    /// one `Arc` allocation; a shared one is handed through as-is.
    pub fn into_shared(self) -> SharedBuf {
        match self {
            Payload::Unique(b) => SharedBuf::new(b),
            Payload::Shared(s) => s,
        }
    }

    /// Recover a uniquely-owned buffer when nothing else aliases the bytes
    /// (see [`SharedBuf::try_unique`]); used to stash consumed envelopes
    /// back into per-class handle caches.
    pub(crate) fn try_unique(self) -> Option<PooledBuf> {
        match self {
            Payload::Unique(b) => Some(b),
            Payload::Shared(s) => s.try_unique().ok(),
        }
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            Payload::Unique(b) => b,
            Payload::Shared(s) => s,
        }
    }
}

impl From<PooledBuf> for Payload {
    fn from(buf: PooledBuf) -> Self {
        Payload::Unique(buf)
    }
}

impl From<SharedBuf> for Payload {
    fn from(buf: SharedBuf) -> Self {
        Payload::Shared(buf)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(data: Vec<u8>) -> Self {
        Payload::Unique(data.into())
    }
}

impl From<Box<[u8]>> for Payload {
    fn from(data: Box<[u8]>) -> Self {
        Payload::Unique(data.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_rounding() {
        assert_eq!(class_of(0), None);
        assert_eq!(class_of(1), Some(0)); // rounds up to 64
        assert_eq!(class_of(64), Some(0));
        assert_eq!(class_of(65), Some(1)); // 128
        assert_eq!(class_of(4096), Some(6));
        assert_eq!(class_of(1 << 26), Some(NUM_CLASSES - 1));
        assert_eq!(class_of((1 << 26) + 1), None);
    }

    #[test]
    fn rent_miss_then_hit() {
        let pool = BufferPool::new();
        let a = pool.rent(100);
        assert_eq!(a.len(), 100);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().outstanding, 1);
        drop(a);
        assert_eq!(pool.stats().returned, 1);
        assert_eq!(pool.stats().outstanding, 0);
        // same class (128B) is a hit, even at a different logical length
        let b = pool.rent(128);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
        drop(b);
        assert!((pool.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rentals_are_zeroed() {
        let pool = BufferPool::new();
        let mut a = pool.rent(64);
        a.copy_from_slice(&[0xFF; 64]);
        drop(a);
        let b = pool.rent(32); // same class, shorter logical length
        assert!(b.iter().all(|&x| x == 0), "recycled buffer leaked bytes");
    }

    #[test]
    fn rent_copy_round_trips_payload() {
        let pool = BufferPool::new();
        let src: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let buf = pool.rent_copy(&src);
        assert_eq!(&*buf, &src[..]);
    }

    #[test]
    fn rent_gather_concatenates_parts() {
        let pool = BufferPool::new();
        // Dirty a recycled 64B-class buffer so a gather shortfall would show.
        let mut dirty = pool.rent(64);
        dirty.copy_from_slice(&[0xAB; 64]);
        drop(dirty);
        let buf = pool.rent_gather(6, [&[1u8, 2][..], &[][..], &[3, 4, 5, 6][..]]);
        assert_eq!(&*buf, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(pool.stats().hits, 1, "gather should reuse the freelist");
    }

    #[test]
    #[should_panic(expected = "rent_gather")]
    fn rent_gather_rejects_short_parts() {
        let pool = BufferPool::new();
        let _ = pool.rent_gather(8, [&[1u8, 2][..]]);
    }

    #[test]
    fn zero_len_and_oversized_bypass_freelists() {
        let pool = BufferPool::new();
        let z = pool.rent(0);
        assert!(z.is_empty());
        drop(z);
        assert_eq!(pool.idle_buffers(), 0);
        let stats = pool.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.outstanding, 0);
    }

    #[test]
    fn unpooled_from_impls() {
        let v: PooledBuf = vec![1, 2, 3].into();
        assert_eq!(&*v, &[1, 2, 3]);
        let b: PooledBuf = Box::<[u8]>::from([9u8; 4]).into();
        assert_eq!(b.len(), 4);
        drop(b); // must not panic or touch any pool
    }

    #[test]
    fn freelist_is_capped() {
        let pool = BufferPool::new();
        let bufs: Vec<_> = (0..MAX_PER_CLASS + 8).map(|_| pool.rent(64)).collect();
        drop(bufs);
        assert_eq!(pool.idle_buffers(), MAX_PER_CLASS);
        let stats = pool.stats();
        assert_eq!(stats.returned, MAX_PER_CLASS as u64);
        assert_eq!(stats.outstanding, 0);
    }

    #[test]
    fn shared_buf_returns_to_pool_on_last_drop() {
        let pool = BufferPool::new();
        let s = SharedBuf::new(pool.rent_copy(&[7u8; 100]));
        let clones: Vec<_> = (0..5).map(|_| s.clone()).collect();
        assert_eq!(s.shares(), 6);
        assert_eq!(pool.stats().outstanding, 1, "clones share one rental");
        drop(clones);
        assert_eq!(s.shares(), 1);
        assert_eq!(pool.stats().returned, 0, "still held by the original");
        drop(s);
        assert_eq!(pool.stats().returned, 1);
        assert_eq!(pool.stats().outstanding, 0);
        // the recycled buffer serves the next same-class rental
        let _b = pool.rent(100);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn shared_buf_slices_alias_the_rental() {
        let pool = BufferPool::new();
        let s = SharedBuf::new(pool.rent_copy(&(0..64u8).collect::<Vec<_>>()));
        let a = s.slice(8..16);
        let b = a.slice(2..6); // slice of a slice
        assert_eq!(&*a, &(8..16u8).collect::<Vec<_>>()[..]);
        assert_eq!(&*b, &[10, 11, 12, 13]);
        assert_eq!(s.shares(), 3);
        drop(s);
        drop(a);
        assert_eq!(pool.stats().outstanding, 1, "sub-view keeps the rental alive");
        drop(b);
        assert_eq!(pool.stats().outstanding, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_buf_slice_bounds_checked() {
        let s = SharedBuf::from(vec![0u8; 8]);
        let _ = s.slice(4..12);
    }

    #[test]
    fn shared_buf_try_unique() {
        let pool = BufferPool::new();
        let s = SharedBuf::new(pool.rent_copy(&[1u8; 32]));
        let c = s.clone();
        // aliased: not unique
        let s = s.try_unique().unwrap_err();
        drop(c);
        // sole full view: unique again
        let b = s.try_unique().unwrap();
        assert_eq!(&*b, &[1u8; 32]);
        // a sub-view is never unique even as the last clone
        let s = SharedBuf::from(vec![5u8; 16]).slice(0..8);
        assert!(s.try_unique().is_err());
    }

    #[test]
    fn payload_variants_deref_and_convert() {
        let pool = BufferPool::new();
        let u = Payload::from(pool.rent_copy(&[3u8; 10]));
        assert_eq!(u.len(), 10);
        assert_eq!(&*u, &[3u8; 10]);
        assert!(u.try_unique().is_some());
        let s = Payload::from(SharedBuf::new(pool.rent_copy(&[4u8; 6])));
        assert_eq!(&*s, &[4u8; 6]);
        let shared = s.into_shared();
        assert_eq!(shared.shares(), 1);
        // a lone shared payload recovers unique ownership for stashing
        assert!(Payload::from(shared).try_unique().is_some());
        // an aliased one does not
        let s = SharedBuf::new(pool.rent_copy(&[9u8; 4]));
        let keep = s.clone();
        assert!(Payload::from(s).try_unique().is_none());
        drop(keep);
    }

    #[test]
    fn pool_is_shared_across_threads() {
        let pool = BufferPool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..100 {
                        let mut b = pool.rent(256);
                        b[0] = i as u8;
                        drop(b);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, 400);
        assert_eq!(stats.outstanding, 0);
    }
}
