//! Rank arithmetic shared by every collective algorithm.
//!
//! The paper's pseudo-code works throughout in *relative* ranks — the rank of
//! a process counted from the broadcast root around the ring — and in
//! power-of-two masks over those relative ranks. The helpers here are the
//! single source of truth for that arithmetic; `bcast-core` unit-tests them
//! against the worked examples of the paper (Figures 1, 2, 4 and 5).

/// Index of a process inside a world/communicator (`0..size`).
pub type Rank = usize;

/// Message tag used for matching, mirroring MPI's `tag` argument.
///
/// Collectives reserve small tag values; applications are free to use any
/// value. Matching is exact: a receive for `Tag(t)` only matches messages
/// sent with `Tag(t)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u32);

impl Tag {
    /// Tag used by the binomial-scatter phase of scatter-ring broadcasts.
    pub const SCATTER: Tag = Tag(0xB0);
    /// Tag used by the allgather (ring or recursive-doubling) phase.
    pub const ALLGATHER: Tag = Tag(0xB1);
    /// Tag used by plain binomial-tree broadcast.
    pub const BCAST: Tag = Tag(0xB2);
    /// Tag used by barrier implementations layered on point-to-point.
    /// Dissemination barriers use a contiguous range starting here (one tag
    /// per round), so leave headroom above.
    pub const BARRIER: Tag = Tag(0xB3);
    /// Tag used by gather trees.
    pub const GATHER: Tag = Tag(0xD0);
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tag:{}", self.0)
    }
}

/// Rank of `rank` relative to `root`, i.e. its distance from the root going
/// forward around the ring of `size` processes.
///
/// This is the `relative_rank = (rank >= root) ? rank-root : rank-root+comm_size`
/// of the paper's Listing 1. The root itself has relative rank 0.
#[inline]
pub fn relative_rank(rank: Rank, root: Rank, size: usize) -> Rank {
    debug_assert!(rank < size && root < size);
    if rank >= root {
        rank - root
    } else {
        rank + size - root
    }
}

/// Inverse of [`relative_rank`]: the absolute rank that sits `relative`
/// positions after `root` on the ring.
#[inline]
pub fn absolute_rank(relative: Rank, root: Rank, size: usize) -> Rank {
    debug_assert!(relative < size && root < size);
    let r = relative + root;
    if r >= size {
        r - size
    } else {
        r
    }
}

/// The left (counter-clockwise) neighbour of `rank` on the ring, i.e.
/// `(size + rank - 1) % size` as in the paper's pseudo-code.
#[inline]
pub fn ring_left(rank: Rank, size: usize) -> Rank {
    debug_assert!(rank < size);
    if rank == 0 {
        size - 1
    } else {
        rank - 1
    }
}

/// The right (clockwise) neighbour of `rank` on the ring: `(rank + 1) % size`.
#[inline]
pub fn ring_right(rank: Rank, size: usize) -> Rank {
    debug_assert!(rank < size);
    if rank + 1 == size {
        0
    } else {
        rank + 1
    }
}

/// Whether `n` is a power of two. MPICH3 switches allgather algorithm on this
/// predicate; `is_pof2(0) == false`.
#[inline]
pub fn is_pof2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// `ceil(log2(n))` for `n >= 1`; `ceil_log2(1) == 0`.
///
/// This is the exponent used to seed the mask loop of the tuned ring
/// allgather (`mask = 2^ceil(log2 comm_size)`).
#[inline]
pub fn ceil_log2(n: usize) -> u32 {
    assert!(n >= 1, "ceil_log2 of zero");
    usize::BITS - (n - 1).leading_zeros()
}

/// The smallest power of two `>= n` (for `n >= 1`).
#[inline]
pub fn ceil_pof2(n: usize) -> usize {
    1usize << ceil_log2(n)
}

/// `ceil(a / b)` — the paper's `scatter_size = (nbytes + comm_size - 1) / comm_size`.
#[inline]
pub fn ceil_div(a: usize, b: usize) -> usize {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_rank_identity_at_root() {
        for size in 1..20 {
            for root in 0..size {
                assert_eq!(relative_rank(root, root, size), 0);
            }
        }
    }

    #[test]
    fn relative_rank_wraps() {
        // size 10, root 7: ranks 7,8,9,0,1,... have relative 0,1,2,3,4,...
        assert_eq!(relative_rank(7, 7, 10), 0);
        assert_eq!(relative_rank(8, 7, 10), 1);
        assert_eq!(relative_rank(9, 7, 10), 2);
        assert_eq!(relative_rank(0, 7, 10), 3);
        assert_eq!(relative_rank(6, 7, 10), 9);
    }

    #[test]
    fn absolute_inverts_relative() {
        for size in 1..24 {
            for root in 0..size {
                for rank in 0..size {
                    let rel = relative_rank(rank, root, size);
                    assert_eq!(absolute_rank(rel, root, size), rank);
                }
            }
        }
    }

    #[test]
    fn ring_neighbours() {
        assert_eq!(ring_left(0, 8), 7);
        assert_eq!(ring_left(5, 8), 4);
        assert_eq!(ring_right(7, 8), 0);
        assert_eq!(ring_right(3, 8), 4);
        // left and right are inverses
        for size in 1..16 {
            for r in 0..size {
                assert_eq!(ring_left(ring_right(r, size), size), r);
                assert_eq!(ring_right(ring_left(r, size), size), r);
            }
        }
    }

    #[test]
    fn pof2_predicates() {
        assert!(!is_pof2(0));
        assert!(is_pof2(1));
        assert!(is_pof2(2));
        assert!(!is_pof2(3));
        assert!(is_pof2(4));
        assert!(!is_pof2(6));
        assert!(is_pof2(1024));
        assert!(!is_pof2(1023));
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(129), 8);
    }

    #[test]
    fn ceil_pof2_values() {
        assert_eq!(ceil_pof2(1), 1);
        assert_eq!(ceil_pof2(2), 2);
        assert_eq!(ceil_pof2(3), 4);
        assert_eq!(ceil_pof2(8), 8);
        assert_eq!(ceil_pof2(10), 16); // mask seed for the paper's 10-process example
        assert_eq!(ceil_pof2(129), 256);
    }

    #[test]
    fn ceil_div_values() {
        assert_eq!(ceil_div(0, 8), 0);
        assert_eq!(ceil_div(8, 8), 1);
        assert_eq!(ceil_div(9, 8), 2);
        assert_eq!(ceil_div(12288, 10), 1229);
    }
}
