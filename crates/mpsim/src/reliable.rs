//! Reliable delivery over a lossy communicator.
//!
//! [`ReliableComm`] wraps any [`Communicator`] with a stop-and-wait
//! acknowledgement protocol: every payload is framed with a per-`(peer,
//! tag)` sequence number, the receiver acknowledges each frame, and the
//! sender retransmits on an exponential backoff until acknowledged or out
//! of attempts. Duplicates (retransmissions whose original did arrive, or
//! messages duplicated by the link itself) are detected by their stale
//! sequence number, re-acknowledged, and discarded, so the application sees
//! exactly-once delivery in order — over a link that drops, duplicates, or
//! reorders (boundedly) its messages.
//!
//! The protocol runs on shifted tags: a user message on `Tag(t)` travels as
//! a data frame on `Tag(DATA_TAG_BASE + t)` and is acknowledged on
//! `Tag(ACK_TAG_BASE + t)`, leaving the user's own tag space untouched.
//! Collectives can therefore run *unmodified* over `ReliableComm`. On the
//! event executor this doubles the live tag count per source (data + ack
//! per user tag), which still sits inside the lane mailbox's inline tag
//! buckets for the collectives' single-tag phases; workloads juggling many
//! concurrent user tags per peer land on the mailbox's wild-tag spill map
//! instead — correct, hash-matched, and counted in
//! `ReactorStats::mailbox_spills` rather than silent.
//!
//! ## Transport requirements
//!
//! The wrapped transport must deliver eagerly (sends complete without the
//! receiver participating): a retransmission only helps if the original
//! send itself could not block forever. The threaded backend is always
//! eager; simulated worlds need a model with a sufficiently high
//! `eager_threshold`. Messages must also arrive *uncorrupted* — the
//! protocol handles loss, duplication, and bounded reordering, not bit rot.

use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Duration;

use crate::acomm::AsyncCommunicator;
use crate::comm::{
    disjoint_span_lists, scatter_spans, spans_len, validate_spans, Communicator, IoSpan,
};
use crate::error::{CommError, Result};
use crate::rank::{Rank, Tag};

/// Absolute deadline on a backend clock: `now_ns` plus `timeout`, saturating.
///
/// The async protocol paths express every wait as arithmetic on
/// [`AsyncCommunicator::now_ns`] so that on the event executor the
/// retransmission timers run on the *virtual* clock (no real sleeping), while
/// on the threaded backend the same arithmetic tracks wall-clock time.
fn deadline_after(now_ns: u64, timeout: Duration) -> u64 {
    now_ns.saturating_add(u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX))
}

/// Base of the tag range carrying acknowledged data frames.
pub const DATA_TAG_BASE: u32 = 0xE000_0000;
/// Base of the tag range carrying acknowledgements.
pub const ACK_TAG_BASE: u32 = 0xF000_0000;

/// Retransmission policy for [`ReliableComm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// How long to wait for an acknowledgement before retransmitting.
    pub base_timeout: Duration,
    /// Backoff cap: the per-attempt timeout doubles up to this value.
    pub max_timeout: Duration,
    /// Total transmission attempts (first try included) before giving up
    /// with [`CommError::Timeout`].
    pub max_attempts: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            base_timeout: Duration::from_millis(25),
            max_timeout: Duration::from_millis(200),
            max_attempts: 10,
        }
    }
}

impl RetryConfig {
    /// The ack-wait timeout for 0-based attempt `i`: doubling, capped.
    fn timeout_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        self.base_timeout.saturating_mul(factor).min(self.max_timeout)
    }
}

/// Per-`(peer, tag)` sequence counters.
#[derive(Default)]
struct ChannelSeq {
    /// Next sequence number to assign to an outgoing frame.
    tx_next: u32,
    /// Sequence number the receiver expects next.
    rx_expected: u32,
    /// Largest payload delivered on this channel so far. A stale
    /// retransmitted duplicate can be a copy of *any* already-delivered
    /// frame, so receive-side frame buffers must accommodate the largest
    /// one regardless of the size of the currently posted receive —
    /// otherwise the inner transport reports a truncation before
    /// `accept_frame` can read the sequence number and discard the dup.
    rx_high_water: usize,
}

/// Acknowledged, deduplicated delivery over a lossy [`Communicator`].
///
/// See the [module docs](self) for the protocol and its requirements.
pub struct ReliableComm<'a, C: ?Sized> {
    inner: &'a C,
    cfg: RetryConfig,
    seq: RefCell<HashMap<(Rank, u32), ChannelSeq>>,
}

impl<'a, C: ?Sized> ReliableComm<'a, C> {
    /// Wrap `inner` with the default [`RetryConfig`].
    pub fn new(inner: &'a C) -> Self {
        Self::with_config(inner, RetryConfig::default())
    }

    /// Wrap `inner` with an explicit retransmission policy.
    pub fn with_config(inner: &'a C, cfg: RetryConfig) -> Self {
        assert!(cfg.max_attempts >= 1, "at least one attempt is required");
        ReliableComm { inner, cfg, seq: RefCell::new(HashMap::new()) }
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        self.inner
    }

    fn data_tag(tag: Tag) -> Tag {
        debug_assert!(tag.0 < DATA_TAG_BASE, "user tag collides with the reliable-protocol range");
        Tag(DATA_TAG_BASE.wrapping_add(tag.0))
    }

    fn ack_tag(tag: Tag) -> Tag {
        Tag(ACK_TAG_BASE.wrapping_add(tag.0))
    }

    fn next_tx_seq(&self, peer: Rank, tag: Tag) -> u32 {
        let mut seqs = self.seq.borrow_mut();
        let ch = seqs.entry((peer, tag.0)).or_default();
        let s = ch.tx_next;
        ch.tx_next += 1;
        s
    }

    fn rx_expected(&self, peer: Rank, tag: Tag) -> u32 {
        self.seq.borrow_mut().entry((peer, tag.0)).or_default().rx_expected
    }

    fn advance_rx(&self, peer: Rank, tag: Tag, payload_len: usize) {
        let mut seqs = self.seq.borrow_mut();
        let ch = seqs.entry((peer, tag.0)).or_default();
        ch.rx_expected += 1;
        ch.rx_high_water = ch.rx_high_water.max(payload_len);
    }

    /// Frame-buffer size for a receive posting `buf_len` payload bytes:
    /// large enough for the expected frame *and* for a stale duplicate of
    /// any frame already delivered on this channel (see
    /// [`ChannelSeq::rx_high_water`]).
    fn rx_frame_len(&self, peer: Rank, tag: Tag, buf_len: usize) -> usize {
        let hw = self.seq.borrow_mut().entry((peer, tag.0)).or_default().rx_high_water;
        buf_len.max(hw) + 4
    }

    /// Rewrite an inner-transport truncation on a *framed* channel into the
    /// user's payload terms: the 4-byte sequence header is protocol, not
    /// payload, and the frame buffer may be larger than the posted receive
    /// (it also accommodates stale oversized duplicates), so the reported
    /// capacity is the caller's, not the frame buffer's.
    fn unframe_truncation(e: CommError, user_capacity: usize) -> CommError {
        match e {
            CommError::Truncation { incoming, .. } if incoming >= 4 => {
                CommError::Truncation { capacity: user_capacity, incoming: incoming - 4 }
            }
            other => other,
        }
    }
}

impl<C: Communicator + ?Sized> ReliableComm<'_, C> {
    fn send_ack(&self, peer: Rank, tag: Tag, seq: u32) -> Result<()> {
        match self.inner.send(&seq.to_le_bytes(), peer, Self::ack_tag(tag)) {
            // A dead peer cannot retransmit, so the lost ack is moot; the
            // delivered payload is still good.
            Err(CommError::PeerFailed { .. }) => Ok(()),
            r => r,
        }
    }

    /// Handle one received data frame: deliver it if it is the expected
    /// sequence number, re-acknowledge and discard stale duplicates.
    /// Returns the payload length when the frame was the expected one.
    fn accept_frame(
        &self,
        frame: &[u8],
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
    ) -> Result<Option<usize>> {
        self.accept_frame_with(frame, buf.len(), src, tag, |payload| {
            buf[..payload.len()].copy_from_slice(payload);
        })
    }

    /// [`accept_frame`](Self::accept_frame) with the delivery copy abstracted
    /// out, so the scattered receive can fan the payload into spans instead
    /// of a contiguous buffer. `deliver` runs only for the expected frame,
    /// after the truncation check against `capacity`.
    fn accept_frame_with(
        &self,
        frame: &[u8],
        capacity: usize,
        src: Rank,
        tag: Tag,
        deliver: impl FnOnce(&[u8]),
    ) -> Result<Option<usize>> {
        if frame.len() < 4 {
            // Not a protocol frame; nothing sane to do but drop it.
            return Ok(None);
        }
        let mut seq_bytes = [0u8; 4];
        seq_bytes.copy_from_slice(&frame[..4]);
        let seq = u32::from_le_bytes(seq_bytes);
        let expected = self.rx_expected(src, tag);
        if seq == expected {
            let payload = &frame[4..];
            if payload.len() > capacity {
                return Err(CommError::Truncation { capacity, incoming: payload.len() });
            }
            self.advance_rx(src, tag, payload.len());
            self.send_ack(src, tag, seq)?;
            deliver(payload);
            Ok(Some(payload.len()))
        } else if seq < expected {
            // Duplicate of an already-delivered frame: the first ack was
            // lost (or the link duplicated the frame). Re-ack so the sender
            // stops retransmitting, and drop the payload.
            self.send_ack(src, tag, seq)?;
            Ok(None)
        } else {
            // Ahead of the expected sequence. Stop-and-wait never legally
            // produces this; it can only be a reordered duplicate. Drop it
            // without acking — the sender will retransmit in order.
            Ok(None)
        }
    }

    /// Transmit an assembled frame with retry-until-acked (the shared tail
    /// of the plain and vectored send paths).
    fn send_framed(&self, frame: &[u8], dest: Rank, tag: Tag, seq: u32) -> Result<()> {
        for attempt in 0..self.cfg.max_attempts {
            self.inner.send(frame, dest, Self::data_tag(tag))?;
            if self.await_ack(dest, tag, seq, self.cfg.timeout_for(attempt))? {
                return Ok(());
            }
        }
        Err(CommError::Timeout { peer: dest })
    }

    /// Wait up to `timeout` for an acknowledgement of `seq` from `peer`.
    fn await_ack(&self, peer: Rank, tag: Tag, seq: u32, timeout: Duration) -> Result<bool> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            let mut ack = [0u8; 4];
            match self.inner.recv_timeout(&mut ack, peer, Self::ack_tag(tag), deadline - now) {
                Ok(4) => {
                    // Acks for older frames may arrive late; only the ack
                    // for this frame (or beyond, defensively) completes the
                    // send.
                    if u32::from_le_bytes(ack) >= seq {
                        return Ok(true);
                    }
                }
                Ok(_) => {} // malformed ack: ignore
                Err(CommError::Timeout { .. }) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
    }
}

impl<C: Communicator> Communicator for ReliableComm<'_, C> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        if dest == self.rank() {
            // Loopback cannot lose messages; skip the protocol.
            return self.inner.send(buf, dest, tag);
        }
        let seq = self.next_tx_seq(dest, tag);
        let mut frame = Vec::with_capacity(buf.len() + 4);
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(buf);
        self.send_framed(&frame, dest, tag, seq)
    }

    fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.check_rank(src)?;
        if src == self.rank() {
            return self.inner.recv(buf, src, tag);
        }
        let mut frame = vec![0u8; self.rx_frame_len(src, tag, buf.len())];
        loop {
            // Blocking is fine: as long as the sender retries, some copy of
            // the expected frame eventually arrives; if the sender died the
            // backend's failure detector surfaces `PeerFailed` here.
            let n = self
                .inner
                .recv(&mut frame, src, Self::data_tag(tag))
                .map_err(|e| Self::unframe_truncation(e, buf.len()))?;
            if let Some(len) = self.accept_frame(&frame[..n], buf, src, tag)? {
                return Ok(len);
            }
        }
    }

    fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<usize> {
        self.check_rank(src)?;
        if src == self.rank() {
            return self.inner.recv_timeout(buf, src, tag, timeout);
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut frame = vec![0u8; self.rx_frame_len(src, tag, buf.len())];
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout { peer: src });
            }
            let n = self
                .inner
                .recv_timeout(&mut frame, src, Self::data_tag(tag), deadline - now)
                .map_err(|e| Self::unframe_truncation(e, buf.len()))?;
            if let Some(len) = self.accept_frame(&frame[..n], buf, src, tag)? {
                return Ok(len);
            }
        }
    }

    /// Concurrent send+receive over the reliable protocol.
    ///
    /// A naive send-then-receive deadlocks when two ranks `sendrecv` each
    /// other: both would block awaiting an ack that only the other side's
    /// *receive* produces. This implementation pumps both directions — it
    /// transmits its frame, then alternates between draining the incoming
    /// data channel and watching for its ack, retransmitting on backoff.
    fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.check_rank(dest)?;
        self.check_rank(src)?;
        if dest == self.rank() && src == self.rank() {
            return self.inner.sendrecv(sendbuf, dest, sendtag, recvbuf, src, recvtag);
        }

        let seq = self.next_tx_seq(dest, sendtag);
        let mut frame = Vec::with_capacity(sendbuf.len() + 4);
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(sendbuf);
        let mut in_frame = vec![0u8; self.rx_frame_len(src, recvtag, recvbuf.len())];

        // Short slices keep the pump responsive in both directions.
        let slice = (self.cfg.base_timeout / 4).max(Duration::from_millis(1));
        let mut acked = dest == self.rank();
        let mut received: Option<usize> = None;
        if dest != self.rank() {
            self.inner.send(&frame, dest, Self::data_tag(sendtag))?;
        } else {
            self.inner.send(sendbuf, dest, sendtag)?;
        }
        let mut attempt = 0u32;
        let mut next_retransmit = std::time::Instant::now() + self.cfg.timeout_for(0);
        loop {
            if acked {
                if let Some(len) = received {
                    return Ok(len);
                }
            }
            if received.is_none() {
                if src == self.rank() {
                    // Loopback receive: the message is already queued.
                    received = Some(self.inner.recv(recvbuf, src, recvtag)?);
                } else {
                    match self
                        .inner
                        .recv_timeout(&mut in_frame, src, Self::data_tag(recvtag), slice)
                        .map_err(|e| Self::unframe_truncation(e, recvbuf.len()))
                    {
                        Ok(n) => {
                            if let Some(len) =
                                self.accept_frame(&in_frame[..n], recvbuf, src, recvtag)?
                            {
                                received = Some(len);
                            }
                        }
                        Err(CommError::Timeout { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
            if !acked {
                match self.inner.recv_timeout(
                    &mut in_frame[..4],
                    dest,
                    Self::ack_tag(sendtag),
                    slice,
                ) {
                    Ok(4) => {
                        let mut b = [0u8; 4];
                        b.copy_from_slice(&in_frame[..4]);
                        if u32::from_le_bytes(b) >= seq {
                            acked = true;
                        }
                    }
                    Ok(_) => {}
                    Err(CommError::Timeout { .. }) => {}
                    Err(e) => return Err(e),
                }
                if !acked && std::time::Instant::now() >= next_retransmit {
                    attempt += 1;
                    if attempt >= self.cfg.max_attempts {
                        return Err(CommError::Timeout { peer: dest });
                    }
                    self.inner.send(&frame, dest, Self::data_tag(sendtag))?;
                    next_retransmit = std::time::Instant::now() + self.cfg.timeout_for(attempt);
                }
            }
        }
    }

    fn barrier(&self) -> Result<()> {
        self.inner.barrier()
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn check_rank(&self, rank: Rank) -> Result<()> {
        self.inner.check_rank(rank)
    }

    /// Vectored send over the reliable protocol: the segments are gathered
    /// directly behind the 4-byte sequence header, so the protocol frame
    /// doubles as the staging buffer and the whole payload still travels —
    /// and is retransmitted — as one frame.
    fn send_vectored(&self, buf: &[u8], spans: &[IoSpan], dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        let total = validate_spans(buf.len(), spans)?;
        if dest == self.rank() {
            // Loopback cannot lose messages; skip the protocol.
            return self.inner.send_vectored(buf, spans, dest, tag);
        }
        let seq = self.next_tx_seq(dest, tag);
        let mut frame = Vec::with_capacity(total + 4);
        frame.extend_from_slice(&seq.to_le_bytes());
        for s in spans {
            frame.extend_from_slice(&buf[s.range()]);
        }
        self.send_framed(&frame, dest, tag, seq)
    }

    /// Scattered receive over the reliable protocol: the expected frame's
    /// payload is fanned out into the spans straight from the frame buffer;
    /// stale duplicates are re-acked and dropped without touching `buf`.
    fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        self.check_rank(src)?;
        let total = validate_spans(buf.len(), spans)?;
        if src == self.rank() {
            return self.inner.recv_scattered(buf, spans, src, tag);
        }
        let mut frame = vec![0u8; self.rx_frame_len(src, tag, total)];
        loop {
            let n = self
                .inner
                .recv(&mut frame, src, Self::data_tag(tag))
                .map_err(|e| Self::unframe_truncation(e, total))?;
            let accepted = self.accept_frame_with(&frame[..n], total, src, tag, |payload| {
                scatter_spans(buf, spans, payload);
            })?;
            if let Some(len) = accepted {
                return Ok(len);
            }
        }
    }

    /// Combined vectored exchange over the reliable protocol.
    ///
    /// Stages both directions contiguously and delegates to the pumping
    /// [`sendrecv`](Self::sendrecv) — a naive vectored-send-then-receive
    /// would deadlock for mutual exchanges exactly like the plain one.
    fn sendrecv_vectored(
        &self,
        buf: &mut [u8],
        send_spans: &[IoSpan],
        dest: Rank,
        sendtag: Tag,
        recv_spans: &[IoSpan],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        validate_spans(buf.len(), send_spans)?;
        let rtotal = validate_spans(buf.len(), recv_spans)?;
        disjoint_span_lists(send_spans, recv_spans)?;
        let mut sendbuf = Vec::with_capacity(spans_len(send_spans));
        for s in send_spans {
            sendbuf.extend_from_slice(&buf[s.range()]);
        }
        let mut recvbuf = vec![0u8; rtotal];
        let n = self.sendrecv(&sendbuf, dest, sendtag, &mut recvbuf, src, recvtag)?;
        Ok(scatter_spans(buf, recv_spans, &recvbuf[..n]))
    }
}

impl<C: AsyncCommunicator + ?Sized> ReliableComm<'_, C> {
    /// Async twin of [`send_ack`](Self::send_ack).
    async fn send_ack_async(&self, peer: Rank, tag: Tag, seq: u32) -> Result<()> {
        match self.inner.send(&seq.to_le_bytes(), peer, Self::ack_tag(tag)).await {
            // A dead peer cannot retransmit, so the lost ack is moot; the
            // delivered payload is still good.
            Err(CommError::PeerFailed { .. }) => Ok(()),
            r => r,
        }
    }

    /// Async twin of [`accept_frame`](Self::accept_frame).
    async fn accept_frame_async(
        &self,
        frame: &[u8],
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
    ) -> Result<Option<usize>> {
        self.accept_frame_with_async(frame, buf.len(), src, tag, |payload| {
            buf[..payload.len()].copy_from_slice(payload);
        })
        .await
    }

    /// Async twin of [`accept_frame_with`](Self::accept_frame_with): the
    /// sequence arithmetic is identical; only the acknowledgement send
    /// awaits.
    async fn accept_frame_with_async(
        &self,
        frame: &[u8],
        capacity: usize,
        src: Rank,
        tag: Tag,
        deliver: impl FnOnce(&[u8]),
    ) -> Result<Option<usize>> {
        if frame.len() < 4 {
            // Not a protocol frame; nothing sane to do but drop it.
            return Ok(None);
        }
        let mut seq_bytes = [0u8; 4];
        seq_bytes.copy_from_slice(&frame[..4]);
        let seq = u32::from_le_bytes(seq_bytes);
        let expected = self.rx_expected(src, tag);
        if seq == expected {
            let payload = &frame[4..];
            if payload.len() > capacity {
                return Err(CommError::Truncation { capacity, incoming: payload.len() });
            }
            self.advance_rx(src, tag, payload.len());
            self.send_ack_async(src, tag, seq).await?;
            deliver(payload);
            Ok(Some(payload.len()))
        } else if seq < expected {
            // Duplicate of an already-delivered frame: re-ack and drop.
            self.send_ack_async(src, tag, seq).await?;
            Ok(None)
        } else {
            // Reordered duplicate from the future: drop without acking.
            Ok(None)
        }
    }

    /// Async twin of [`send_framed`](Self::send_framed).
    async fn send_framed_async(&self, frame: &[u8], dest: Rank, tag: Tag, seq: u32) -> Result<()> {
        for attempt in 0..self.cfg.max_attempts {
            self.inner.send(frame, dest, Self::data_tag(tag)).await?;
            if self.await_ack_async(dest, tag, seq, self.cfg.timeout_for(attempt)).await? {
                return Ok(());
            }
        }
        Err(CommError::Timeout { peer: dest })
    }

    /// Async twin of [`await_ack`](Self::await_ack), with the deadline kept
    /// as `now_ns` arithmetic so the wait is virtual-clock-pure on the event
    /// executor.
    async fn await_ack_async(
        &self,
        peer: Rank,
        tag: Tag,
        seq: u32,
        timeout: Duration,
    ) -> Result<bool> {
        let deadline = deadline_after(self.inner.now_ns(), timeout);
        loop {
            let now = self.inner.now_ns();
            if now >= deadline {
                return Ok(false);
            }
            let mut ack = [0u8; 4];
            let remaining = Duration::from_nanos(deadline - now);
            match self.inner.recv_timeout(&mut ack, peer, Self::ack_tag(tag), remaining).await {
                Ok(4) => {
                    // Acks for older frames may arrive late; only the ack
                    // for this frame (or beyond, defensively) completes the
                    // send.
                    if u32::from_le_bytes(ack) >= seq {
                        return Ok(true);
                    }
                }
                Ok(_) => {} // malformed ack: ignore
                Err(CommError::Timeout { .. }) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
    }
}

/// The identical stop-and-wait protocol over any [`AsyncCommunicator`]: on
/// the event executor the retransmission timers become virtual-clock timer
/// events (deterministic, no real sleeping); through the
/// [`SyncComm`](crate::acomm::SyncComm) bridge the behaviour matches the
/// blocking impl above.
impl<C: AsyncCommunicator + ?Sized> AsyncCommunicator for ReliableComm<'_, C> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn check_rank(&self, rank: Rank) -> Result<()> {
        self.inner.check_rank(rank)
    }

    async fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        if dest == self.rank() {
            // Loopback cannot lose messages; skip the protocol.
            return self.inner.send(buf, dest, tag).await;
        }
        let seq = self.next_tx_seq(dest, tag);
        let mut frame = Vec::with_capacity(buf.len() + 4);
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(buf);
        self.send_framed_async(&frame, dest, tag, seq).await
    }

    async fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.check_rank(src)?;
        if src == self.rank() {
            return self.inner.recv(buf, src, tag).await;
        }
        let mut frame = vec![0u8; self.rx_frame_len(src, tag, buf.len())];
        loop {
            let n = self
                .inner
                .recv(&mut frame, src, Self::data_tag(tag))
                .await
                .map_err(|e| Self::unframe_truncation(e, buf.len()))?;
            if let Some(len) = self.accept_frame_async(&frame[..n], buf, src, tag).await? {
                return Ok(len);
            }
        }
    }

    async fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<usize> {
        self.check_rank(src)?;
        if src == self.rank() {
            return self.inner.recv_timeout(buf, src, tag, timeout).await;
        }
        let deadline = deadline_after(self.inner.now_ns(), timeout);
        let mut frame = vec![0u8; self.rx_frame_len(src, tag, buf.len())];
        loop {
            let now = self.inner.now_ns();
            if now >= deadline {
                return Err(CommError::Timeout { peer: src });
            }
            let remaining = Duration::from_nanos(deadline - now);
            let n = self
                .inner
                .recv_timeout(&mut frame, src, Self::data_tag(tag), remaining)
                .await
                .map_err(|e| Self::unframe_truncation(e, buf.len()))?;
            if let Some(len) = self.accept_frame_async(&frame[..n], buf, src, tag).await? {
                return Ok(len);
            }
        }
    }

    /// Async twin of the pumping [`sendrecv`](Communicator::sendrecv) above:
    /// same two-direction pump, with the retransmit deadline tracked in
    /// `now_ns` units instead of `Instant`s.
    async fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.check_rank(dest)?;
        self.check_rank(src)?;
        if dest == self.rank() && src == self.rank() {
            return self.inner.sendrecv(sendbuf, dest, sendtag, recvbuf, src, recvtag).await;
        }

        let seq = self.next_tx_seq(dest, sendtag);
        let mut frame = Vec::with_capacity(sendbuf.len() + 4);
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(sendbuf);
        let mut in_frame = vec![0u8; self.rx_frame_len(src, recvtag, recvbuf.len())];

        // Short slices keep the pump responsive in both directions.
        let slice = (self.cfg.base_timeout / 4).max(Duration::from_millis(1));
        let mut acked = dest == self.rank();
        let mut received: Option<usize> = None;
        if dest != self.rank() {
            self.inner.send(&frame, dest, Self::data_tag(sendtag)).await?;
        } else {
            self.inner.send(sendbuf, dest, sendtag).await?;
        }
        let mut attempt = 0u32;
        let mut next_retransmit = deadline_after(self.inner.now_ns(), self.cfg.timeout_for(0));
        loop {
            if acked {
                if let Some(len) = received {
                    return Ok(len);
                }
            }
            if received.is_none() {
                if src == self.rank() {
                    // Loopback receive: the message is already queued.
                    received = Some(self.inner.recv(recvbuf, src, recvtag).await?);
                } else {
                    match self
                        .inner
                        .recv_timeout(&mut in_frame, src, Self::data_tag(recvtag), slice)
                        .await
                        .map_err(|e| Self::unframe_truncation(e, recvbuf.len()))
                    {
                        Ok(n) => {
                            if let Some(len) = self
                                .accept_frame_async(&in_frame[..n], recvbuf, src, recvtag)
                                .await?
                            {
                                received = Some(len);
                            }
                        }
                        Err(CommError::Timeout { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
            if !acked {
                match self
                    .inner
                    .recv_timeout(&mut in_frame[..4], dest, Self::ack_tag(sendtag), slice)
                    .await
                {
                    Ok(4) => {
                        let mut b = [0u8; 4];
                        b.copy_from_slice(&in_frame[..4]);
                        if u32::from_le_bytes(b) >= seq {
                            acked = true;
                        }
                    }
                    Ok(_) => {}
                    Err(CommError::Timeout { .. }) => {}
                    Err(e) => return Err(e),
                }
                if !acked && self.inner.now_ns() >= next_retransmit {
                    attempt += 1;
                    if attempt >= self.cfg.max_attempts {
                        return Err(CommError::Timeout { peer: dest });
                    }
                    self.inner.send(&frame, dest, Self::data_tag(sendtag)).await?;
                    next_retransmit =
                        deadline_after(self.inner.now_ns(), self.cfg.timeout_for(attempt));
                }
            }
        }
    }

    async fn barrier(&self) -> Result<()> {
        self.inner.barrier().await
    }

    async fn send_vectored(
        &self,
        buf: &[u8],
        spans: &[IoSpan],
        dest: Rank,
        tag: Tag,
    ) -> Result<()> {
        self.check_rank(dest)?;
        let total = validate_spans(buf.len(), spans)?;
        if dest == self.rank() {
            // Loopback cannot lose messages; skip the protocol.
            return self.inner.send_vectored(buf, spans, dest, tag).await;
        }
        let seq = self.next_tx_seq(dest, tag);
        let mut frame = Vec::with_capacity(total + 4);
        frame.extend_from_slice(&seq.to_le_bytes());
        for s in spans {
            frame.extend_from_slice(&buf[s.range()]);
        }
        self.send_framed_async(&frame, dest, tag, seq).await
    }

    async fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        self.check_rank(src)?;
        let total = validate_spans(buf.len(), spans)?;
        if src == self.rank() {
            return self.inner.recv_scattered(buf, spans, src, tag).await;
        }
        let mut frame = vec![0u8; self.rx_frame_len(src, tag, total)];
        loop {
            let n = self
                .inner
                .recv(&mut frame, src, Self::data_tag(tag))
                .await
                .map_err(|e| Self::unframe_truncation(e, total))?;
            let accepted = self
                .accept_frame_with_async(&frame[..n], total, src, tag, |payload| {
                    scatter_spans(buf, spans, payload);
                })
                .await?;
            if let Some(len) = accepted {
                return Ok(len);
            }
        }
    }

    async fn sendrecv_vectored(
        &self,
        buf: &mut [u8],
        send_spans: &[IoSpan],
        dest: Rank,
        sendtag: Tag,
        recv_spans: &[IoSpan],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        validate_spans(buf.len(), send_spans)?;
        let rtotal = validate_spans(buf.len(), recv_spans)?;
        disjoint_span_lists(send_spans, recv_spans)?;
        let mut sendbuf = Vec::with_capacity(spans_len(send_spans));
        for s in send_spans {
            sendbuf.extend_from_slice(&buf[s.range()]);
        }
        let mut recvbuf = vec![0u8; rtotal];
        let n =
            AsyncCommunicator::sendrecv(self, &sendbuf, dest, sendtag, &mut recvbuf, src, recvtag)
                .await?;
        Ok(scatter_spans(buf, recv_spans, &recvbuf[..n]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_comm::ThreadWorld;

    fn fast_cfg() -> RetryConfig {
        RetryConfig {
            base_timeout: Duration::from_millis(10),
            max_timeout: Duration::from_millis(80),
            max_attempts: 6,
        }
    }

    #[test]
    fn plain_send_recv_roundtrip() {
        let out = ThreadWorld::run(2, |comm| {
            let rc = ReliableComm::new(comm);
            if comm.rank() == 0 {
                rc.send(&[7u8; 100], 1, Tag(3)).unwrap();
                0
            } else {
                let mut buf = [0u8; 100];
                let n = rc.recv(&mut buf, 0, Tag(3)).unwrap();
                assert_eq!(&buf[..n], &[7u8; 100]);
                n
            }
        });
        assert_eq!(out.results, vec![0, 100]);
    }

    #[test]
    fn many_messages_stay_in_order() {
        let out = ThreadWorld::run(2, |comm| {
            let rc = ReliableComm::new(comm);
            if comm.rank() == 0 {
                for i in 0..50u8 {
                    rc.send(&[i], 1, Tag(0)).unwrap();
                }
                vec![]
            } else {
                let mut got = vec![];
                let mut buf = [0u8; 1];
                for _ in 0..50 {
                    rc.recv(&mut buf, 0, Tag(0)).unwrap();
                    got.push(buf[0]);
                }
                got
            }
        });
        assert_eq!(out.results[1], (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn sendrecv_exchange_does_not_deadlock() {
        let out = ThreadWorld::run(2, |comm| {
            let rc = ReliableComm::with_config(comm, fast_cfg());
            let me = comm.rank();
            let peer = 1 - me;
            let sbuf = [me as u8 + 10; 16];
            let mut rbuf = [0u8; 16];
            let n = rc.sendrecv(&sbuf, peer, Tag(1), &mut rbuf, peer, Tag(1)).unwrap();
            (n, rbuf[0])
        });
        assert_eq!(out.results[0], (16, 11));
        assert_eq!(out.results[1], (16, 10));
    }

    #[test]
    fn send_times_out_when_never_acked() {
        let out = ThreadWorld::run(2, |comm| {
            if comm.rank() == 0 {
                let rc = ReliableComm::with_config(
                    comm,
                    RetryConfig {
                        base_timeout: Duration::from_millis(5),
                        max_timeout: Duration::from_millis(10),
                        max_attempts: 3,
                    },
                );
                // rank 1 never runs the protocol, so no ack ever comes
                let err = rc.send(&[1u8; 8], 1, Tag(0)).unwrap_err();
                // release rank 1
                comm.send(&[0], 1, Tag(9)).unwrap();
                Some(err)
            } else {
                let mut buf = [0u8; 1];
                comm.recv(&mut buf, 0, Tag(9)).unwrap();
                None
            }
        });
        assert_eq!(out.results[0], Some(CommError::Timeout { peer: 1 }));
    }

    #[test]
    fn loopback_skips_protocol() {
        let out = ThreadWorld::run(1, |comm| {
            let rc = ReliableComm::new(comm);
            rc.send(&[9u8; 4], 0, Tag(0)).unwrap();
            let mut buf = [0u8; 4];
            rc.recv(&mut buf, 0, Tag(0)).unwrap();
            buf[0]
        });
        assert_eq!(out.results[0], 9);
    }

    #[test]
    fn recv_timeout_passes_through() {
        let out = ThreadWorld::run(2, |comm| {
            let rc = ReliableComm::with_config(comm, fast_cfg());
            if comm.rank() == 0 {
                let mut buf = [0u8; 4];
                let err =
                    rc.recv_timeout(&mut buf, 1, Tag(5), Duration::from_millis(30)).unwrap_err();
                comm.send(&[0], 1, Tag(9)).unwrap();
                Some(err)
            } else {
                let mut buf = [0u8; 1];
                comm.recv(&mut buf, 0, Tag(9)).unwrap();
                None
            }
        });
        assert_eq!(out.results[0], Some(CommError::Timeout { peer: 1 }));
    }

    #[test]
    fn truncation_surfaces_like_plain_recv() {
        let out = ThreadWorld::run(2, |comm| {
            let rc = ReliableComm::with_config(comm, fast_cfg());
            if comm.rank() == 0 {
                // the ack never comes back (receiver errors out first), so
                // tolerate either outcome of the send
                let _ = rc.send(&[1u8; 64], 1, Tag(0));
                let mut buf = [0u8; 1];
                comm.recv(&mut buf, 1, Tag(9)).unwrap();
                None
            } else {
                let mut small = [0u8; 8];
                let err = rc.recv(&mut small, 0, Tag(0)).unwrap_err();
                comm.send(&[0], 0, Tag(9)).unwrap();
                Some(err)
            }
        });
        assert_eq!(out.results[1], Some(CommError::Truncation { capacity: 8, incoming: 64 }));
    }
}
