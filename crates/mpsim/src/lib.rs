//! # mpsim — an MPI-like message-passing runtime for collective-algorithm research
//!
//! This crate provides the point-to-point substrate on which the broadcast
//! collectives of the paper *"A Bandwidth-saving Optimization for MPI Broadcast
//! Collective Operation"* (Zhou et al., ICPP 2015) are implemented and measured.
//!
//! It deliberately mirrors the small slice of MPI semantics the paper's
//! pseudo-code relies on:
//!
//! * a fixed-size *world* of `P` ranks (`0..P`),
//! * blocking, tag-matched [`Communicator::send`] / [`Communicator::recv`] with
//!   per-`(source, tag)` FIFO ordering (MPI's non-overtaking rule),
//! * a combined [`Communicator::sendrecv`] (the workhorse of ring allgather),
//! * a [`Communicator::barrier`],
//! * per-rank traffic accounting ([`TrafficStats`]) so that the paper's
//!   transfer-count arithmetic (`P·(P−1)` vs the tuned count) can be *measured*
//!   rather than merely asserted.
//!
//! Three executors implement the trait surface:
//!
//! * [`ThreadWorld`] (this crate): one OS thread per rank with real byte
//!   movement through mailboxes — used for correctness tests and wall-clock
//!   (intra-node-style) benchmarks;
//! * `netsim::SimWorld` (sibling crate): the same trait over a virtual-time
//!   cluster simulator standing in for the paper's Cray XC40;
//! * [`EventWorld`] (this crate): a single-threaded discrete-event reactor
//!   where ranks are cooperatively scheduled futures over the async twin of
//!   the trait ([`AsyncCommunicator`]) — used for cluster-scale worlds
//!   (P in the thousands) that OS threads cannot reach.
//!
//! Collective algorithms are written once against the trait and run unchanged
//! on all of them, exactly like the paper's "user-level" implementation runs
//! on both of its machines; [`SyncComm`] and [`complete_now`] bridge the
//! blocking and async surfaces in either direction.
//!
//! ## Example
//!
//! ```
//! use mpsim::{ThreadWorld, Communicator, Tag};
//!
//! let outcome = ThreadWorld::run(4, |comm| {
//!     // rank 0 sends its rank to everyone else
//!     if comm.rank() == 0 {
//!         for peer in 1..comm.size() {
//!             comm.send(&[42], peer, Tag(7)).unwrap();
//!         }
//!         42u8
//!     } else {
//!         let mut buf = [0u8; 1];
//!         comm.recv(&mut buf, 0, Tag(7)).unwrap();
//!         buf[0]
//!     }
//! });
//! assert!(outcome.results.iter().all(|&v| v == 42));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod acomm;
pub mod barrier;
pub mod comm;
pub mod counters;
pub mod error;
pub mod event_comm;
pub mod event_mailbox;
pub mod event_timer;
pub mod mailbox;
pub mod nonblocking;
pub mod pool;
pub mod proto;
pub mod rank;
pub mod reliable;
pub mod sub_comm;
pub mod sync;
#[cfg_attr(not(feature = "fast-sync"), allow(dead_code))]
pub(crate) mod sync_fast;
#[cfg_attr(feature = "fast-sync", allow(dead_code))]
pub(crate) mod sync_std;
pub mod thread_comm;

pub use acomm::{complete_now, AsyncCommunicator, AsyncNonBlocking, SyncComm};
pub use barrier::StopBarrier;
pub use comm::{
    disjoint_span_lists, scatter_spans, spans_len, split_send_recv, validate_spans, Communicator,
    IoSpan,
};
pub use counters::{PeerTraffic, ReactorStats, TrafficStats, WakeupStats, WorldTraffic};
pub use error::{CommError, Result};
pub use event_comm::{EventComm, EventWorld};
pub use event_mailbox::LaneMailbox;
pub use event_timer::{TimerHandle, TimerWheel};
pub use nonblocking::NonBlocking;
pub use pool::{BufferPool, Payload, PoolStats, PooledBuf, SharedBuf};
pub use rank::{
    absolute_rank, ceil_div, ceil_log2, ceil_pof2, is_pof2, relative_rank, ring_left, ring_right,
    Rank, Tag,
};
pub use reliable::{ReliableComm, RetryConfig};
pub use sub_comm::SubComm;
pub use thread_comm::{ThreadComm, ThreadWorld, WorldOutcome};
