//! Error type shared by every [`Communicator`](crate::Communicator) backend.

use crate::rank::Rank;

/// Errors surfaced by point-to-point and collective operations.
///
/// MPI reports most of these as fatal; we surface them as values so tests can
/// assert on them, and collectives propagate them with `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A received message was longer than the posted receive buffer
    /// (MPI's `MPI_ERR_TRUNCATE`).
    Truncation {
        /// Capacity of the posted receive buffer.
        capacity: usize,
        /// Size of the matched incoming message.
        incoming: usize,
    },
    /// A rank argument was outside `0..size`.
    InvalidRank {
        /// The offending rank.
        rank: Rank,
        /// The communicator size.
        size: usize,
    },
    /// A count/displacement pair pointed outside the caller's buffer.
    OutOfBounds {
        /// Requested displacement.
        disp: usize,
        /// Requested count.
        count: usize,
        /// Buffer length.
        len: usize,
    },
    /// Two spans of a vectored operation overlap. Vectored gathers/scatters
    /// treat the segment list as a partition of distinct buffer regions;
    /// overlap is always a displacement-arithmetic bug in the caller.
    SpanOverlap {
        /// One offending span as `(disp, count)`.
        a: (usize, usize),
        /// The other offending span as `(disp, count)`.
        b: (usize, usize),
    },
    /// The world was torn down (a peer panicked or exited) while this rank
    /// was blocked in a call.
    WorldStopped,
    /// A deadline-bounded operation (e.g.
    /// [`recv_timeout`](crate::Communicator::recv_timeout)) expired before a
    /// matching message arrived.
    Timeout {
        /// The peer the operation was waiting on.
        peer: Rank,
    },
    /// The peer a blocking operation depended on is known to have failed or
    /// exited the world while the operation could still match it. Unlike
    /// [`WorldStopped`](CommError::WorldStopped), the rest of the world is
    /// still running; callers may recover (see `bcast-core`'s `recovery`).
    PeerFailed {
        /// The failed rank.
        rank: Rank,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Truncation { capacity, incoming } => write!(
                f,
                "message truncated: incoming {incoming} bytes exceeds receive capacity {capacity}"
            ),
            CommError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            CommError::OutOfBounds { disp, count, len } => write!(
                f,
                "region [{disp}, {disp}+{count}) out of bounds for buffer of length {len}"
            ),
            CommError::SpanOverlap { a: (ad, ac), b: (bd, bc) } => {
                write!(f, "vectored spans overlap: [{ad}, {ad}+{ac}) intersects [{bd}, {bd}+{bc})")
            }
            CommError::WorldStopped => write!(f, "world stopped while operation was in flight"),
            CommError::Timeout { peer } => {
                write!(f, "operation timed out waiting on peer rank {peer}")
            }
            CommError::PeerFailed { rank } => {
                write!(f, "peer rank {rank} failed while operation was in flight")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, CommError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_mention_key_numbers() {
        let e = CommError::Truncation { capacity: 4, incoming: 9 };
        let s = e.to_string();
        assert!(s.contains('4') && s.contains('9'));

        let e = CommError::InvalidRank { rank: 12, size: 8 };
        assert!(e.to_string().contains("12"));

        let e = CommError::OutOfBounds { disp: 10, count: 20, len: 16 };
        assert!(e.to_string().contains("16"));

        let e = CommError::SpanOverlap { a: (8, 4), b: (10, 6) };
        let s = e.to_string();
        assert!(s.contains("overlap") && s.contains('8') && s.contains("10"));

        assert!(CommError::WorldStopped.to_string().contains("stopped"));

        let e = CommError::Timeout { peer: 3 };
        assert!(e.to_string().contains("timed out") && e.to_string().contains('3'));

        let e = CommError::PeerFailed { rank: 5 };
        assert!(e.to_string().contains("failed") && e.to_string().contains('5'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CommError::InvalidRank { rank: 1, size: 1 },
            CommError::InvalidRank { rank: 1, size: 1 }
        );
        assert_ne!(CommError::WorldStopped, CommError::InvalidRank { rank: 0, size: 1 });
    }
}
